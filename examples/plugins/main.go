// Plugins: a host application with separately-licensed add-on modules.
//
// This is the paper's motivating scenario (Section 2.2): a Matlab/VS-Code
// style host with many third-party plugins, each sold under its own
// license — different kinds (count-based, time-based, perpetual) — all
// attested locally by one SL-Local with spatially-local lease IDs. One
// plugin's license is revoked mid-run and its next check fails while the
// others keep working.
//
//	go run ./examples/plugins
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lease"
)

type plugin struct {
	name    string
	license string
	kind    lease.Kind
	budget  int64
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plugins:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := core.NewSystem(core.Config{MachineName: "designer-ws"})
	if err != nil {
		return err
	}

	plugins := []plugin{
		{"signal-toolbox", "lic-signal", lease.CountBased, 500},
		{"image-filters", "lic-image", lease.CountBased, 500},
		{"solver-pro", "lic-solver", lease.CountBased, 500},
		{"exporter", "lic-export", lease.Perpetual, 1},
		{"beta-feature", "lic-beta", lease.CountBased, 500},
	}
	for _, p := range plugins {
		if err := sys.RegisterLicense(p.license, p.kind, p.budget); err != nil {
			return err
		}
	}

	host, err := sys.LaunchApp("design-studio")
	if err != nil {
		return err
	}
	for _, p := range plugins {
		host.Guard(p.name+".run", p.license)
	}

	// A work session: every plugin is invoked repeatedly.
	invocations := make(map[string]int, len(plugins))
	for round := 0; round < 50; round++ {
		for _, p := range plugins {
			if err := host.Execute(p.name+".run", func() error {
				invocations[p.name]++
				return nil
			}); err != nil {
				return fmt.Errorf("round %d, plugin %s: %w", round, p.name, err)
			}
		}
	}
	fmt.Println("work session complete:")
	for _, p := range plugins {
		fmt.Printf("  %-16s (%-9s license): %d invocations\n", p.name, p.kind, invocations[p.name])
	}
	fmt.Printf("SL-Local served everything locally: %+v\n", sys.Local().Stats())
	fmt.Printf("lease-tree footprint: %d KB (all plugin leases share one subtree)\n\n",
		sys.Local().TreeFootprint()>>10)

	// The vendor revokes the beta feature. Cached grants may drain first;
	// the next renewal is refused and the plugin dies while others live.
	if err := sys.Remote().Revoke("lic-beta"); err != nil {
		return err
	}
	fmt.Println("vendor revoked lic-beta…")
	var betaDenied bool
	for i := 0; i < 200 && !betaDenied; i++ {
		if err := host.Execute("beta-feature.run", func() error { return nil }); err != nil {
			fmt.Printf("beta-feature denied after cached grants drained: %v\n", err)
			betaDenied = true
		}
	}
	if !betaDenied {
		return fmt.Errorf("revoked plugin kept running")
	}
	// Other plugins are unaffected.
	if err := host.Execute("signal-toolbox.run", func() error { return nil }); err != nil {
		return fmt.Errorf("unrelated plugin affected by revocation: %w", err)
	}
	fmt.Println("other plugins unaffected — per-add-on leases are independent")
	return nil
}
