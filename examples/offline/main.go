// Offline: running through network outages on pre-distributed leases.
//
// This example demonstrates the paper's adaptive lease pre-distribution
// (Section 5.3): SL-Remote sizes each client's sub-GCL using its health h,
// network reliability n, and the per-license expected-loss bound τ. A
// healthy client on a flaky link receives a *larger* sub-lease (the 1/n
// compensation of Algorithm 1, line 7), so it keeps serving its
// applications locally through an extended outage — and a crash forfeits
// everything, bounding what an attacker could gain by crash-replaying.
//
//	go run ./examples/offline
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "offline:", err)
		os.Exit(1)
	}
}

func run() error {
	// A client behind a link that drops 30% of messages.
	sys, err := core.NewSystem(core.Config{
		MachineName: "field-laptop",
		Network:     &netsim.LinkConfig{Reliability: 0.7, Seed: 42},
	})
	if err != nil {
		return err
	}
	const license = "lic-field-suite"
	if err := sys.RegisterLicense(license, lease.CountBased, 100_000); err != nil {
		return err
	}
	slid := sys.Local().SLID()

	// Tell SL-Remote this client is healthy but on a bad network: the
	// Algorithm 1 inputs (in a deployment the server measures these).
	if err := sys.Remote().SetClientProfile(slid, 0.98, 0.7, 1.0); err != nil {
		return err
	}

	app, err := sys.LaunchApp("field-suite")
	if err != nil {
		return err
	}
	app.Guard("analyze", license)

	// First use fetches a sub-GCL; the network benefit makes it generous.
	if err := app.Execute("analyze", func() error { return nil }); err != nil {
		return err
	}
	granted := sys.Remote().Outstanding(slid, license)
	fmt.Printf("sub-GCL pre-distributed to the flaky client: %d units\n", granted)
	fmt.Println("(Algorithm 1 compensates reliable-but-disconnected clients with 1/n)")

	// Total outage: the link goes down. The cached sub-GCL keeps the
	// application running.
	sys.Link().SetDown(true)
	served := 0
	for i := 0; i < 2000; i++ {
		if err := app.Execute("analyze", func() error { return nil }); err != nil {
			break
		}
		served++
	}
	fmt.Printf("served %d license checks fully offline\n", served)
	if served < 1000 {
		return fmt.Errorf("offline service collapsed after %d checks", served)
	}

	// The link heals; service continues seamlessly with renewals.
	sys.Link().SetDown(false)
	for i := 0; i < 500; i++ {
		if err := app.Execute("analyze", func() error { return nil }); err != nil {
			return fmt.Errorf("post-outage check %d: %w", i, err)
		}
	}
	fmt.Println("link healed: renewals resumed transparently")

	// Crash economics: a crash forfeits the outstanding units — this is
	// the expected loss that τ bounds across the fleet.
	before := sys.Remote().Outstanding(slid, license)
	sys.Crash()
	if err := sys.Restart(); err != nil {
		return err
	}
	lic, err := sys.Remote().License(license)
	if err != nil {
		return err
	}
	fmt.Printf("crash forfeited %d outstanding units (recorded loss: %d; τ bounds its expectation at %.0f)\n",
		before, lic.Lost, lic.Tau)
	return nil
}
