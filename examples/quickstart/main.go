// Quickstart: license-protect one application end to end.
//
// This example stands up a complete SecureLease deployment on one machine
// (simulated SGX, SL-Remote, SL-Local), registers a count-based license,
// launches an application whose key function is guarded, runs it within
// its budget, exhausts the license, and shows the denial — then
// demonstrates the graceful shutdown / restore cycle.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// One call wires the whole deployment: machine, attestation,
	// SL-Remote, SL-Local (already initialized: remote-attested, SLID
	// assigned).
	sys, err := core.NewSystem(core.Config{MachineName: "workstation"})
	if err != nil {
		return err
	}
	fmt.Printf("SL-Local initialized as %q\n", sys.Local().SLID())

	// Observe the deployment through the same metrics the daemons export
	// on -metrics-addr: a registry over the machine, SL-Local, and
	// SL-Remote, dumped in Prometheus text form at the end.
	metrics := obs.NewRegistry()
	sys.Machine().ExposeMetrics(metrics)
	sys.Local().ExposeMetrics(metrics, nil)
	sys.Remote().ExposeMetrics(metrics)

	// The vendor registers a 40-execution license for the report add-on.
	const license = "lic-report-addon"
	if err := sys.RegisterLicense(license, lease.CountBased, 40); err != nil {
		return err
	}

	// The application guards its key function — the renderer without
	// which the add-on is useless — behind that license.
	app, err := sys.LaunchApp("report-tool")
	if err != nil {
		return err
	}
	app.Guard("render_report", license)

	// Use the add-on: every Execute consumes one lease grant; SL-Local
	// serves them locally from its cached sub-GCL (no network, no remote
	// attestation per check).
	rendered := 0
	for i := 0; i < 20; i++ {
		err := app.Execute("render_report", func() error {
			rendered++
			return nil
		})
		if err != nil {
			return fmt.Errorf("render %d: %w", i, err)
		}
	}
	fmt.Printf("rendered %d reports; SL-Local stats: %+v\n", rendered, sys.Local().Stats())

	// Graceful shutdown: the lease tree is committed, the root key is
	// escrowed with SL-Remote; a restart restores every counter.
	if err := sys.Shutdown(); err != nil {
		return err
	}
	if err := sys.Restart(); err != nil {
		return err
	}
	app, err = sys.LaunchApp("report-tool")
	if err != nil {
		return err
	}
	app.Guard("render_report", license)
	// Restart built a fresh SL-Local instance; point its metric callbacks
	// at the registry again (re-registration replaces the old instance's).
	sys.Local().ExposeMetrics(metrics, nil)
	fmt.Println("restarted: lease counters restored from the committed tree")

	// Burn through the rest of the license.
	for {
		if err := app.Execute("render_report", func() error {
			rendered++
			return nil
		}); err != nil {
			fmt.Printf("after %d total renders the lease is exhausted: %v\n", rendered, err)
			break
		}
		if rendered > 100 {
			return errors.New("license never expired — counting is broken")
		}
	}
	if rendered != 40 {
		return fmt.Errorf("rendered %d, want exactly the licensed 40", rendered)
	}
	fmt.Println("exactly the licensed 40 executions were allowed — SecureLease enforced the count across a restart")

	fmt.Println("\nfinal metrics (/metrics exposition):")
	if err := metrics.WritePrometheus(os.Stdout); err != nil {
		return err
	}
	return nil
}
