// FaaS: high-frequency license checking with token batching.
//
// This example reproduces the paper's FaaS scenario (Section 2.2 and the
// FaaS workloads of Table 4): a burst of short function invocations, each
// requiring a license check. It compares the same burst with and without
// the 10-tokens-per-attestation batching of Section 7.3 and shows the
// ~10× reduction in local attestations — and contrasts both with what an
// F-LaaS-style remote check per invocation would cost in wall time.
//
//	go run ./examples/faas
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/sllocal"
)

const (
	invocations = 5000
	license     = "lic-wordcount-fn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faas:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("FaaS burst: %d function invocations, each license-checked\n\n", invocations)
	unbatched, err := burst(1)
	if err != nil {
		return err
	}
	batched, err := burst(10)
	if err != nil {
		return err
	}
	fmt.Printf("  batch=1 : %6d local attestations, lease path %8v of virtual time\n",
		unbatched.attests, unbatched.virtual.Round(time.Microsecond))
	fmt.Printf("  batch=10: %6d local attestations, lease path %8v of virtual time (%.1f× fewer attestations)\n",
		batched.attests, batched.virtual.Round(time.Microsecond),
		float64(unbatched.attests)/float64(batched.attests))

	// What the F-LaaS model would cost: one 3.5 s remote attestation per
	// invocation.
	flaas := time.Duration(invocations) * 3500 * time.Millisecond
	fmt.Printf("\n  F-LaaS equivalent (one remote attestation per check): %v\n", flaas)
	fmt.Printf("  SecureLease is %.0f× faster on the license path\n",
		float64(flaas)/float64(batched.virtual))
	return nil
}

type burstResult struct {
	attests int64
	virtual time.Duration
}

func burst(batch int) (burstResult, error) {
	sys, err := core.NewSystem(core.Config{
		MachineName: fmt.Sprintf("faas-node-batch%d", batch),
		Local:       sllocal.Config{TokenBatch: batch, MemoryBudget: 1600 << 10},
	})
	if err != nil {
		return burstResult{}, err
	}
	if err := sys.RegisterLicense(license, lease.CountBased, 10*invocations); err != nil {
		return burstResult{}, err
	}
	fn, err := sys.LaunchApp("wordcount")
	if err != nil {
		return burstResult{}, err
	}
	fn.Guard("invoke", license)

	start := sys.Machine().Clock().Now()
	rasBefore := sys.Machine().Stats().RemoteAttests
	for i := 0; i < invocations; i++ {
		if err := fn.Execute("invoke", func() error { return nil }); err != nil {
			return burstResult{}, fmt.Errorf("invocation %d: %w", i, err)
		}
	}
	elapsed := sys.Machine().Clock().Elapsed(start, sys.Machine().Model())
	// Subtract the remote-attestation component to isolate the local path
	// (renewals happen rarely; the paper's Figure 9 separates them too).
	ras := sys.Machine().Stats().RemoteAttests - rasBefore
	elapsed -= time.Duration(ras) * 3500 * time.Millisecond
	return burstResult{
		attests: sys.Local().Stats().LocalAttests,
		virtual: elapsed,
	}, nil
}
