// Protected code: the PCL flow of Section 2.3.1 — plain vs lease-gated.
//
// The vendor ships an application whose decryption kernel is *encrypted*
// in the binary. At runtime the enclave quotes itself, the vendor's key
// server verifies the quote and releases the decryption key, and the code
// is decrypted inside the enclave. The example then contrasts:
//
//   - plain PCL: once decrypted, the code runs forever (the paper's
//     "sad part" — one-shot protection);
//
//   - SecureLease-gated PCL: the lease logic is embedded in the secure
//     code, so every execution demands a token and the license's count is
//     enforced exactly.
//
//     go run ./examples/protectedcode
package main

import (
	"fmt"
	"os"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/pcl"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slmanager"
	"repro/internal/slremote"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "protectedcode:", err)
		os.Exit(1)
	}
}

func run() error {
	// Client machine + attestation plumbing.
	machine, err := sgx.NewMachine(sgx.MachineConfig{Name: "customer"})
	if err != nil {
		return err
	}
	platform, err := attest.NewPlatform("customer", machine)
	if err != nil {
		return err
	}
	service := attest.NewService()
	service.RegisterPlatform(platform)

	// The application's secure-region enclave; the vendor trusts its
	// measurement.
	enclave, err := machine.CreateEnclave("media-app", []byte("media-app-v3"), 0)
	if err != nil {
		return err
	}
	service.TrustMeasurement(enclave.Measurement())

	// Vendor side: provision the encrypted kernel.
	keyServer, err := pcl.NewKeyServer(service)
	if err != nil {
		return err
	}
	encFn, err := keyServer.Provision("codec.decode", []byte("proprietary codec kernel"), enclave.Measurement())
	if err != nil {
		return err
	}
	fmt.Printf("binary ships with %q encrypted (%d bytes of ciphertext)\n",
		encFn.Name, len(encFn.Ciphertext))

	// --- Plain PCL ---------------------------------------------------
	plain, err := pcl.NewLoader(enclave, platform, keyServer, nil)
	if err != nil {
		return err
	}
	if err := plain.Load(encFn, func() error { return nil }, ""); err != nil {
		return err
	}
	runs := 0
	for i := 0; i < 100_000; i++ {
		if err := plain.Execute("codec.decode"); err != nil {
			break
		}
		runs++
	}
	fmt.Printf("plain PCL: decrypted once, then ran %d times with zero further checks\n", runs)

	// --- Lease-gated PCL ---------------------------------------------
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		return err
	}
	if err := remote.RegisterLicense("lic-codec", lease.CountBased, 25); err != nil {
		return err
	}
	local, err := sllocal.New(sllocal.Config{TokenBatch: 1}, sllocal.Deps{
		Machine: machine, Platform: platform, Remote: remote,
	})
	if err != nil {
		return err
	}
	if err := local.Init(); err != nil {
		return err
	}
	manager, err := slmanager.New(enclave, local)
	if err != nil {
		return err
	}
	gated, err := pcl.NewLoader(enclave, platform, keyServer, manager)
	if err != nil {
		return err
	}
	if err := gated.Load(encFn, func() error { return nil }, "lic-codec"); err != nil {
		return err
	}
	runs = 0
	var denial error
	for i := 0; i < 100_000; i++ {
		if err := gated.Execute("codec.decode"); err != nil {
			denial = err
			break
		}
		runs++
	}
	fmt.Printf("lease-gated PCL: ran exactly %d times (25 licensed), then: %v\n", runs, denial)
	if runs != 25 {
		return fmt.Errorf("count enforcement broken: %d runs", runs)
	}
	fmt.Println("embedding the lease logic in the secure code turns one-shot PCL into a leasable capability")
	return nil
}
