package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/attest"
	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/slremote"
	"repro/internal/store"
)

// leaderProbeInterval paces the follower's liveness probes against its
// leader. Probes are plain TCP connects: finding out whether the process
// is alive needs no attestation.
const leaderProbeInterval = time.Second

type followerParams struct {
	leaderAddr    string
	listenAddr    string
	stateDir      string
	auditFile     string
	metricsAddr   string
	traceBuffer   int
	shard         int
	dir           *cluster.Directory
	promoteAfter  time.Duration
	sealKey       seccrypto.Key
	cfg           slremote.Config
	service       *attest.Service
	insecure      bool
	secret        string
	secretFile    string
	syncMode      store.SyncMode
	snapshotEvery int
	drainTimeout  time.Duration
}

// runFollower is the daemon's standby mode: tail the leader's WAL over
// the attested channel, keep a warm replica, and — once the leader stays
// unreachable for promoteAfter — finish replaying whatever was shipped
// and take over the shard on this daemon's own listen address.
func runFollower(p followerParams) error {
	rc, err := followerChannelConfig(p.insecure, p.secret, p.secretFile)
	if err != nil {
		return err
	}

	// The follower's observability bundle survives promotion: the same
	// registry, span ring, and flight recorder keep counting once this
	// process serves the shard, so the failover timeline (probe timeout
	// → drain → promote → epoch bump) lives in one black box.
	nodeObs := cluster.NewNodeObs("sl-remote-follower", p.traceBuffer)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			nodeObs.Flight.DumpText(os.Stderr)
		}
	}()
	var promoted atomic.Bool
	if p.metricsAddr != "" {
		ep, err := obs.StartHTTPOpts(p.metricsAddr, nodeObs.Registry, nodeObs.Tracer, obs.HandlerOptions{
			// A follower is "ready" only once it serves the shard itself.
			Ready:  promoted.Load,
			Events: nodeObs.Flight.HTTPHandler(),
		})
		if err != nil {
			return err
		}
		defer ep.Close()
		log.Printf("observability endpoint on http://%s/metrics (readyz turns 200 on promotion)", ep.Addr())
	}

	// The shard's audit chain: the promoted leader appends to the same
	// file the dead leader used, keeping one verifiable chain across
	// incarnations when both ran on this host.
	auditPath := p.auditFile
	if auditPath == "" {
		auditPath = filepath.Join(p.stateDir, "audit.log")
	}
	auditLog, err := audit.Open(auditPath, p.sealKey)
	if err != nil {
		return err
	}
	defer auditLog.Close()

	f, err := cluster.StartFollower(cluster.FollowerOptions{
		Shard:      p.shard,
		LeaderAddr: p.leaderAddr,
		SealKey:    p.sealKey,
		Config:     p.cfg,
		Service:    p.service,
		Channel:    rc,
		Obs:        nodeObs,
	})
	if err != nil {
		return err
	}
	log.Printf("sl-remote: follower of %s (shard %d): tailing WAL, promoting after %v of leader silence",
		p.leaderAddr, p.shard, p.promoteAfter)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)

	probe := time.NewTicker(leaderProbeInterval)
	defer probe.Stop()
	var silentSince time.Time
	for {
		select {
		case sig := <-sigs:
			log.Printf("sl-remote: follower: %v: exiting (%d records replicated; leader keeps serving)", sig, f.Applied())
			return f.Close()
		case <-probe.C:
		}
		conn, err := net.DialTimeout("tcp", p.leaderAddr, leaderProbeInterval)
		if err == nil {
			conn.Close()
			silentSince = time.Time{}
			continue
		}
		if silentSince.IsZero() {
			silentSince = time.Now()
			log.Printf("sl-remote: follower: leader %s unreachable: %v", p.leaderAddr, err)
		}
		if time.Since(silentSince) < p.promoteAfter {
			continue
		}
		log.Printf("sl-remote: follower: leader silent for %v: promoting", time.Since(silentSince).Round(time.Second))
		cluster.EmitProbeTimeout(nodeObs.Flight, p.shard, p.leaderAddr, time.Since(silentSince))
		break
	}

	// Drain pulls until the leader's durable tip — or, with the leader
	// dead, until the connection fails, leaving exactly the prefix the
	// leader managed to ship, which is a legal conserving state.
	if err := f.Drain(); err != nil {
		return fmt.Errorf("draining replication stream: %w", err)
	}
	serverRC, err := channelConfig(p.insecure, p.secret, p.secretFile, true)
	if err != nil {
		return err
	}
	node, err := f.Promote(cluster.NodeOptions{
		Shard:         p.shard,
		Dir:           p.stateDir,
		SealKey:       p.sealKey,
		Config:        p.cfg,
		Service:       p.service,
		Channel:       serverRC,
		Directory:     p.dir,
		Audit:         auditLog,
		SyncMode:      p.syncMode,
		SnapshotEvery: p.snapshotEvery,
		ListenAddr:    p.listenAddr,
		AdvertiseAddr: p.listenAddr,
		Logf:          log.Printf,
	})
	if err != nil {
		return fmt.Errorf("promoting follower: %w", err)
	}
	promoted.Store(true)
	_, epoch := p.dir.Leader(p.shard)
	log.Printf("sl-remote: promoted: serving shard %d on %s at epoch %d (%d replicated records)",
		p.shard, node.Addr(), epoch, f.Applied())

	sig := <-sigs
	log.Printf("sl-remote: %v: draining (timeout %v)", sig, p.drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), p.drainTimeout)
	defer cancel()
	if err := node.Shutdown(ctx); err != nil {
		return err
	}
	if err := nodeObs.Flight.Persist(filepath.Join(p.stateDir, "flight.log")); err != nil {
		log.Printf("sl-remote: persisting flight recorder: %v", err)
	}
	log.Printf("sl-remote: state snapshotted to %s; shutdown complete", p.stateDir)
	return nil
}

// followerChannelConfig builds the replication client's channel: the
// follower presents the SL-Remote code identity (it is one) and pins the
// leader's.
func followerChannelConfig(insecure bool, secret, secretFile string) (*ratls.Config, error) {
	if insecure {
		return ratls.Insecure(), nil
	}
	raw, err := loadChannelSecret(secret, secretFile)
	if err != nil {
		return nil, err
	}
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "sl-remote-follower"})
	if err != nil {
		return nil, err
	}
	return ratls.NewProvisioned("sl-remote-follower", m, raw, slremote.EnclaveCodeIdentity, slremote.EnclaveCodeIdentity)
}
