// Command sl-remote runs the SecureLease license server (SL-Remote) as a
// TCP daemon. SL-Local daemons on client machines connect to it for
// initialization (remote attestation + SLID assignment), lease renewal
// (Algorithm 1), and root-key escrow.
//
// The wire channel is attested by default: clients connect over RA-TLS,
// with both daemons deriving channel credentials from a shared
// provisioning secret (-ratls-secret or -ratls-secret-file, same value
// on every daemon). Pass -insecure to serve explicit plaintext instead.
//
// Licenses can be pre-registered at startup with repeated -license flags:
//
//	sl-remote -addr :7600 -ratls-secret swarm -license demo:count:100000 -license pro:perpetual:1
//
// With -state-dir the server becomes durable: every state mutation is
// write-ahead-logged, snapshots compact the log, and a restart recovers
// the full license ledger, SLID registry, and (sealed) root-key escrow
// vault from disk:
//
//	sl-remote -addr :7600 -state-dir /var/lib/sl-remote -seal-secret-file /etc/sl-remote/seal \
//	          -fsync batched -snapshot-every 1024 -license demo:count:100000
//
// SIGINT/SIGTERM drain in-flight requests, take a final snapshot, and
// exit cleanly.
//
// # Sharded clusters
//
// A fleet of sl-remote daemons can split the license hash space. Every
// daemon gets the same -shards count and -peer list (leader addresses in
// shard order) plus its own -shard-index; requests for licenses owned by
// another shard are answered with a not_leader redirect that sl-local
// clients follow transparently:
//
//	sl-remote -addr :7600 -shards 2 -shard-index 0 -peer host-a:7600 -peer host-b:7600 ...
//	sl-remote -addr :7600 -shards 2 -shard-index 1 -peer host-a:7600 -peer host-b:7600 ...
//
// With -state-dir, a sharded daemon also serves its WAL as a replication
// stream, so a standby started with -follow tails it and keeps a warm
// copy of the shard's state:
//
//	sl-remote -addr :7601 -follow host-a:7600 -shards 2 -shard-index 0 \
//	          -peer host-a:7600 -peer host-b:7600 -state-dir /var/lib/sl-remote ...
//
// The follower probes its leader; once the leader stays unreachable for
// -promote-after, the follower finishes replaying whatever WAL was
// shipped, promotes itself onto -state-dir, and starts serving the
// shard's hash range in a new epoch. (The routing directory is
// per-process in this reproduction — production would share it through a
// coordination service — so peers learn of the promotion by restarting
// with an updated -peer list.)
package main

import (
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/attest"
	"repro/internal/audit"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
	"repro/internal/store"
	"repro/internal/wire"
)

type stringFlags []string

func (l *stringFlags) String() string { return strings.Join(*l, ",") }
func (l *stringFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		cli.Fatalf("sl-remote: %v", err)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:7600", "listen address")
		metricsAddr = flag.String("metrics-addr", "", "observability endpoint address (/metrics, /healthz, /readyz, /trace, /events, /audit); empty disables")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the observability endpoint")
		traceBuffer = flag.Int("trace-buffer", 4096, "span ring-buffer capacity; /trace marks the dump truncated once the ring wraps")

		d        = flag.Float64("d", 4, "Algorithm 1 scale-down factor D (paper: 4)")
		th       = flag.Float64("th", 0.9, "health threshold T_H (paper: 0.9)")
		beta     = flag.Float64("beta", 0.01, "initial beta (paper: 0.01)")
		tau      = flag.Float64("tau", 0.10, "expected-loss bound as fraction of TG (paper: 0.10)")
		open     = flag.Bool("open-attestation", true, "accept any platform/measurement (demo mode; disable to require explicit enrollment)")
		licenses stringFlags

		shards       = flag.Int("shards", 1, "total shard count of the cluster this server belongs to (1: unsharded)")
		shardIndex   = flag.Int("shard-index", 0, "this server's shard index in [0, shards)")
		peers        stringFlags
		follow       = flag.String("follow", "", "follower mode: tail this shard leader's WAL over the wire and promote to serving leader if it dies (requires -state-dir)")
		promoteAfter = flag.Duration("promote-after", 5*time.Second, "follower mode: promote once the leader has been unreachable this long")

		stateDir       = flag.String("state-dir", "", "directory for the durable state (WAL + snapshots); empty runs in-memory only")
		fsync          = flag.String("fsync", "batched", "WAL durability: always (fsync per record), batched (group commit), off (no fsync)")
		snapshotEvery  = flag.Int("snapshot-every", 1024, "take a snapshot and compact the WAL after this many logged records; 0 snapshots only at shutdown")
		sealSecret     = flag.String("seal-secret", "", "secret sealing escrowed root keys and snapshots on disk (stands in for the SGX sealing key; required with -state-dir)")
		sealSecretFile = flag.String("seal-secret-file", "", "read the seal secret from this file instead of the command line")
		auditFile      = flag.String("audit-file", "", "tamper-evident lease audit log path (defaults to <state-dir>/audit.log with -state-dir; requires the seal secret)")
		drainTimeout   = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests before force-closing connections")

		insecure        = flag.Bool("insecure", false, "speak explicit plaintext on the wire channel instead of the attested (RA-TLS) default; both daemons must agree")
		ratlsSecret     = flag.String("ratls-secret", "", "shared provisioning secret for the attested channel (both daemons must use the same secret)")
		ratlsSecretFile = flag.String("ratls-secret-file", "", "read the channel provisioning secret from this file instead of the command line")
		ticketRotate    = flag.Duration("ratls-ticket-rotate", 0, "rotate the session-ticket secret at this interval, forcing resumed clients back through a full quote-verified handshake; 0 never rotates")
	)
	flag.Var(&licenses, "license", licenseFlagHelp)
	flag.Var(&peers, "peer", "shard leader address, repeated once per shard in shard order; required when -shards > 1")
	flag.Parse()

	specs, err := parseLicenses(licenses)
	if err != nil {
		return err
	}

	// Sharded deployments build a static routing directory from the -peer
	// list; the wire layer's shard gate consults it on every
	// license-scoped request.
	sharded := *shards > 1 || len(peers) > 0 || *follow != ""
	var clusterDir *cluster.Directory
	if sharded {
		if *shardIndex < 0 || *shardIndex >= *shards {
			return fmt.Errorf("-shard-index %d out of range [0, %d)", *shardIndex, *shards)
		}
		if len(peers) == 0 && *follow != "" {
			// A lone leader/standby pair: the leader is the whole peer list.
			peers = stringFlags{*follow}
		}
		if len(peers) != *shards {
			return fmt.Errorf("-shards %d needs exactly %d -peer flags (leader addresses in shard order), got %d", *shards, *shards, len(peers))
		}
		ring, err := cluster.NewRing(*shards, 0)
		if err != nil {
			return err
		}
		clusterDir = cluster.NewDirectory(ring)
		for i, p := range peers {
			clusterDir.SetLeader(i, p)
		}
	}

	var service *attest.Service
	if !*open {
		service = attest.NewService()
		log.Printf("attestation service enabled: enroll platforms before clients can init")
	}
	cfg := slremote.Config{
		D:               *d,
		HealthThreshold: *th,
		Beta:            *beta,
		TauFraction:     *tau,
	}

	if *follow != "" {
		if *stateDir == "" {
			return errors.New("-follow requires -state-dir: the promoted leader's durable state lives there")
		}
		if len(specs) > 0 {
			log.Printf("ignoring %d -license flags: follower state replicates from the leader", len(specs))
		}
		sealKey, err := loadSealKey(*sealSecret, *sealSecretFile)
		if err != nil {
			return err
		}
		mode, err := store.ParseSyncMode(*fsync)
		if err != nil {
			return err
		}
		return runFollower(followerParams{
			leaderAddr:    *follow,
			listenAddr:    *addr,
			stateDir:      *stateDir,
			auditFile:     *auditFile,
			metricsAddr:   *metricsAddr,
			traceBuffer:   *traceBuffer,
			shard:         *shardIndex,
			dir:           clusterDir,
			promoteAfter:  *promoteAfter,
			sealKey:       sealKey,
			cfg:           cfg,
			service:       service,
			insecure:      *insecure,
			secret:        *ratlsSecret,
			secretFile:    *ratlsSecretFile,
			syncMode:      mode,
			snapshotEvery: *snapshotEvery,
			drainTimeout:  *drainTimeout,
		})
	}

	// Instrumentation is always on: the registry and span ring feed the
	// HTTP endpoint when -metrics-addr is set, and the wire obs_pull RPC
	// (fleet scraping over the attested channel) regardless. The flight
	// recorder is the always-on black box: SIGQUIT dumps it to stderr,
	// and a graceful shutdown persists it next to the WAL.
	reg, tracer := obs.Default(), obs.NewTracer(*traceBuffer)
	rec := flight.NewRecorder(flight.DefaultCapacity)
	tracer.ExposeMetrics(reg)
	rec.ExposeMetrics(reg)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			rec.DumpText(os.Stderr)
		}
	}()

	// The seal key protects both the durable state and the audit log.
	var sealKey seccrypto.Key
	if *stateDir != "" || *auditFile != "" {
		sealKey, err = loadSealKey(*sealSecret, *sealSecretFile)
		if err != nil {
			return err
		}
	}

	// Open the audit log before anything mutates state so the chain covers
	// every decision of this process's lifetime.
	auditPath := *auditFile
	if auditPath == "" && *stateDir != "" {
		auditPath = filepath.Join(*stateDir, "audit.log")
	}
	var auditLog *audit.Log
	if auditPath != "" {
		auditLog, err = audit.Open(auditPath, sealKey)
		if err != nil {
			return err
		}
		defer auditLog.Close()
		log.Printf("audit log at %s (%d records on chain)", auditPath, auditLog.Len())
	}

	// The observability endpoint comes up before recovery so /healthz
	// answers as soon as the process lives while /readyz stays 503 until
	// the WAL/snapshot replay finishes and the wire listener is bound.
	var ready atomic.Bool
	var ep *obs.HTTPServer
	if *metricsAddr != "" {
		opts := obs.HandlerOptions{Ready: ready.Load, PProf: *pprofOn, Events: rec.HTTPHandler()}
		if auditLog != nil {
			opts.Audit = auditLog.HTTPHandler()
		}
		ep, err = obs.StartHTTPOpts(*metricsAddr, reg, tracer, opts)
		if err != nil {
			return err
		}
		defer ep.Close()
		log.Printf("observability endpoint on http://%s/metrics", ep.Addr())
	}

	// Stand up the server: recovered from -state-dir when given, purely
	// in-memory otherwise.
	var remote *slremote.Server
	var st *store.Store
	if *stateDir != "" {
		mode, err := store.ParseSyncMode(*fsync)
		if err != nil {
			return err
		}
		var rec *store.Recovered
		st, rec, err = store.Open(store.Options{
			Dir:     *stateDir,
			Mode:    mode,
			Metrics: store.ExposeMetrics(reg),
		})
		if err != nil {
			return err
		}
		defer st.Close()
		remote, err = slremote.RecoverServer(cfg, service, rec, slremote.PersistConfig{
			Log: st, Snap: st, SealKey: sealKey, SnapshotEvery: *snapshotEvery,
		})
		if err != nil {
			return err
		}
		if !rec.Empty() {
			log.Printf("recovered state from %s (generation %d, %d WAL records replayed, licenses: %s)",
				*stateDir, rec.Generation, len(rec.Records), strings.Join(remote.LicenseIDs(), ", "))
		}
	} else {
		remote, err = slremote.NewServer(cfg, service)
		if err != nil {
			return err
		}
	}

	// Register -license flags, skipping IDs already present in recovered
	// state (re-running the same command line after a restart is the
	// normal deployment pattern).
	existing := make(map[string]bool)
	for _, id := range remote.LicenseIDs() {
		existing[id] = true
	}
	for _, spec := range specs {
		if existing[spec.id] {
			log.Printf("license %q already in recovered state; flag ignored", spec.id)
			continue
		}
		if err := remote.RegisterLicense(spec.id, spec.kind, spec.total); err != nil {
			return err
		}
		log.Printf("registered license %q (%s, %d GCL units)", spec.id, spec.kind, spec.total)
	}

	remote.AttachAudit(auditLog)

	rc, err := channelConfig(*insecure, *ratlsSecret, *ratlsSecretFile, sharded)
	if err != nil {
		return err
	}
	srv, err := wire.NewServer(remote, log.Printf, rc)
	if err != nil {
		return err
	}
	if clusterDir != nil {
		self := peers[*shardIndex]
		srv.SetShardGate(clusterDir.Gate(*shardIndex, self))
		log.Printf("shard %d of %d (as %s): requests for other shards' licenses get not_leader redirects", *shardIndex, *shards, self)
		if st != nil {
			srv.SetReplSource(st)
			log.Printf("replication source enabled: followers may tail this shard's WAL")
		}
	}
	remote.ExposeMetrics(reg)
	srv.ExposeMetrics(reg, tracer)
	auditLog.ExposeMetrics(reg)
	rc.ExposeMetrics(reg, tracer)
	remote.SetFlightRecorder(rec)
	srv.SetFlightRecorder(rec)
	rc.SetFlightRecorder(rec)
	// The wire listener answers obs_pull scrapes with the same exposition
	// the HTTP endpoint serves, so a fleet aggregator can pull metrics,
	// traces, and flight events over the attested channel alone.
	nodeObs := &cluster.NodeObs{Name: "sl-remote", Registry: reg, Tracer: tracer, Flight: rec}
	srv.SetObsSource(nodeObs.PullSource())
	if *ticketRotate > 0 && !rc.IsInsecure() {
		rotateDone := make(chan struct{})
		defer close(rotateDone)
		go func() {
			tick := time.NewTicker(*ticketRotate)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := rc.RotateTicketSecret(); err != nil {
						log.Printf("ticket rotation: %v", err)
					}
				case <-rotateDone:
					return
				}
			}
		}()
		log.Printf("rotating session-ticket secret every %v", *ticketRotate)
	}
	if rc.IsInsecure() {
		log.Printf("wire channel: explicit plaintext (-insecure)")
	} else {
		log.Printf("wire channel: attested (RA-TLS), presenting %s", slremote.EnclaveCodeIdentity)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	ready.Store(true)
	log.Printf("sl-remote: listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		log.Printf("sl-remote: %v: draining (timeout %v)", sig, *drainTimeout)
		rec.Emit("slremote.shutdown", flight.KV{K: "signal", V: sig.String()})
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("sl-remote: drain incomplete: %v", err)
	}
	<-serveErr
	if st != nil {
		if err := remote.SnapshotNow(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		if err := st.Close(); err != nil {
			return fmt.Errorf("closing state: %w", err)
		}
		log.Printf("sl-remote: state snapshotted to %s", *stateDir)
	}
	if *stateDir != "" {
		// The black box lands next to the WAL: a post-mortem can replay
		// the process's last DefaultCapacity events with flight.ReadDump.
		if err := rec.Persist(filepath.Join(*stateDir, "flight.log")); err != nil {
			log.Printf("sl-remote: persisting flight recorder: %v", err)
		}
	}
	log.Printf("sl-remote: shutdown complete")
	return nil
}

// channelConfig builds the server's wire-channel config: RA-TLS by
// default (presenting the SL-Remote code identity on a dedicated channel
// machine, pinning SL-Local's), plaintext only behind -insecure. Sharded
// servers additionally trust the SL-Remote code identity itself, since
// peer shards and followers connect over the same channel.
func channelConfig(insecure bool, secret, secretFile string, sharded bool) (*ratls.Config, error) {
	if insecure {
		return ratls.Insecure(), nil
	}
	raw, err := loadChannelSecret(secret, secretFile)
	if err != nil {
		return nil, err
	}
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "sl-remote"})
	if err != nil {
		return nil, err
	}
	trusted := [][]byte{sllocal.EnclaveCodeIdentity}
	if sharded {
		trusted = append(trusted, slremote.EnclaveCodeIdentity)
	}
	return ratls.NewProvisioned("sl-remote", m, raw, slremote.EnclaveCodeIdentity, trusted...)
}

// loadChannelSecret resolves the -ratls-secret[-file] flags; the attested
// default refuses to start without one.
func loadChannelSecret(secret, file string) ([]byte, error) {
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("reading -ratls-secret-file: %w", err)
		}
		secret = strings.TrimSpace(string(raw))
	}
	if secret == "" {
		return nil, errors.New("the wire channel is attested by default: provide -ratls-secret or -ratls-secret-file (shared with every sl-local), or opt out explicitly with -insecure")
	}
	return []byte(secret), nil
}

// loadSealKey derives the 128-bit seal key from the operator's secret (a
// stand-in for the SGX sealing key, which would be MRSIGNER-derived inside
// a real enclave).
func loadSealKey(secret, file string) (seccrypto.Key, error) {
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return seccrypto.Key{}, fmt.Errorf("reading -seal-secret-file: %w", err)
		}
		secret = strings.TrimSpace(string(raw))
	}
	if secret == "" {
		return seccrypto.Key{}, errors.New("-state-dir and -audit-file require -seal-secret or -seal-secret-file (escrowed keys, snapshots, and the audit chain are sealed on disk)")
	}
	sum := sha256.Sum256([]byte(secret))
	return seccrypto.KeyFromBytes(sum[:seccrypto.KeySize])
}

const licenseFlagHelp = `pre-register a license; repeatable. Grammar: id:kind:totalGCL where
id is a unique name (no colons), kind is one of count, time, exec-time,
perpetual, and totalGCL is a positive integer budget (for perpetual
licenses: the number of seats). Duplicate ids are rejected.`

type licenseSpec struct {
	id    string
	kind  lease.Kind
	total int64
}

// parseLicenses parses all -license flags and rejects duplicate IDs early,
// before any server state exists.
func parseLicenses(specs []string) ([]licenseSpec, error) {
	out := make([]licenseSpec, 0, len(specs))
	seen := make(map[string]string, len(specs))
	for _, spec := range specs {
		id, kind, total, err := parseLicense(spec)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("license %q: duplicate id %q (already defined by -license %s)", spec, id, prev)
		}
		seen[id] = spec
		out = append(out, licenseSpec{id: id, kind: kind, total: total})
	}
	return out, nil
}

func parseLicense(spec string) (string, lease.Kind, int64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return "", 0, 0, fmt.Errorf("license %q: want id:kind:totalGCL", spec)
	}
	if parts[0] == "" {
		return "", 0, 0, fmt.Errorf("license %q: empty id", spec)
	}
	var kind lease.Kind
	switch parts[1] {
	case "count":
		kind = lease.CountBased
	case "time":
		kind = lease.TimeBased
	case "exec-time":
		kind = lease.ExecTimeBased
	case "perpetual":
		kind = lease.Perpetual
	default:
		return "", 0, 0, fmt.Errorf("license %q: unknown kind %q (want count, time, exec-time, or perpetual)", spec, parts[1])
	}
	total, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil || total <= 0 {
		return "", 0, 0, fmt.Errorf("license %q: bad total %q", spec, parts[2])
	}
	return parts[0], kind, total, nil
}
