// Command sl-remote runs the SecureLease license server (SL-Remote) as a
// TCP daemon. SL-Local daemons on client machines connect to it for
// initialization (remote attestation + SLID assignment), lease renewal
// (Algorithm 1), and root-key escrow.
//
// Licenses can be pre-registered at startup with repeated -license flags:
//
//	sl-remote -addr :7600 -license demo:count:100000 -license pro:perpetual:1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/slremote"
	"repro/internal/wire"
)

type licenseFlags []string

func (l *licenseFlags) String() string { return strings.Join(*l, ",") }
func (l *licenseFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sl-remote:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:7600", "listen address")
		metricsAddr = flag.String("metrics-addr", "", "observability endpoint address (/metrics, /healthz, /trace); empty disables")

		d        = flag.Float64("d", 4, "Algorithm 1 scale-down factor D (paper: 4)")
		th       = flag.Float64("th", 0.9, "health threshold T_H (paper: 0.9)")
		beta     = flag.Float64("beta", 0.01, "initial beta (paper: 0.01)")
		tau      = flag.Float64("tau", 0.10, "expected-loss bound as fraction of TG (paper: 0.10)")
		open     = flag.Bool("open-attestation", true, "accept any platform/measurement (demo mode; disable to require explicit enrollment)")
		licenses licenseFlags
	)
	flag.Var(&licenses, "license", "pre-register license as id:kind:totalGCL (kind: count|time|exec-time|perpetual); repeatable")
	flag.Parse()

	var service *attest.Service
	if !*open {
		service = attest.NewService()
		log.Printf("attestation service enabled: enroll platforms before clients can init")
	}
	remote, err := slremote.NewServer(slremote.Config{
		D:               *d,
		HealthThreshold: *th,
		Beta:            *beta,
		TauFraction:     *tau,
	}, service)
	if err != nil {
		return err
	}
	for _, spec := range licenses {
		id, kind, total, err := parseLicense(spec)
		if err != nil {
			return err
		}
		if err := remote.RegisterLicense(id, kind, total); err != nil {
			return err
		}
		log.Printf("registered license %q (%s, %d GCL units)", id, kind, total)
	}

	srv, err := wire.NewServer(remote, log.Printf)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		reg, tracer := obs.Default(), obs.DefaultTracer()
		remote.ExposeMetrics(reg)
		srv.ExposeMetrics(reg, tracer)
		ep, err := obs.StartHTTP(*metricsAddr, reg, tracer)
		if err != nil {
			return err
		}
		defer ep.Close()
		log.Printf("observability endpoint on http://%s/metrics", ep.Addr())
	}
	return srv.ListenAndServe(*addr)
}

func parseLicense(spec string) (string, lease.Kind, int64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return "", 0, 0, fmt.Errorf("license %q: want id:kind:totalGCL", spec)
	}
	var kind lease.Kind
	switch parts[1] {
	case "count":
		kind = lease.CountBased
	case "time":
		kind = lease.TimeBased
	case "exec-time":
		kind = lease.ExecTimeBased
	case "perpetual":
		kind = lease.Perpetual
	default:
		return "", 0, 0, fmt.Errorf("license %q: unknown kind %q", spec, parts[1])
	}
	total, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil || total <= 0 {
		return "", 0, 0, fmt.Errorf("license %q: bad total %q", spec, parts[2])
	}
	return parts[0], kind, total, nil
}
