// Command sl-local runs a SecureLease client node: it stands up a
// simulated SGX machine, connects to a remote SL-Remote daemon over TCP,
// initializes the SL-Local lease service (remote attestation, SLID, lease
// tree restore), and then drives a demo workload of license checks so the
// end-to-end flow can be observed against a live server.
//
// The wire channel is attested by default: both daemons derive their
// channel credentials from a shared provisioning secret, so they must be
// started with the same -ratls-secret (or -ratls-secret-file). Pass
// -insecure on both to run the demo over explicit plaintext instead.
//
//	sl-remote -addr :7600 -ratls-secret swarm -license demo:count:100000 &
//	sl-local  -remote 127.0.0.1:7600 -ratls-secret swarm -license demo -checks 1000 -batch 10
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/attest"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ratls"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
	"repro/internal/wire"
)

// channelConfig builds the daemon's wire-channel config: RA-TLS by
// default (presenting the SL-Local code identity, pinning SL-Remote's),
// plaintext only behind the explicit -insecure flag.
func channelConfig(insecure bool, secret, secretFile, name string, m *sgx.Machine) (*ratls.Config, error) {
	if insecure {
		return ratls.Insecure(), nil
	}
	raw, err := loadChannelSecret(secret, secretFile)
	if err != nil {
		return nil, err
	}
	return ratls.NewProvisioned(name, m, raw, sllocal.EnclaveCodeIdentity, slremote.EnclaveCodeIdentity)
}

// loadChannelSecret resolves the -ratls-secret[-file] flags; the attested
// default refuses to start without one.
func loadChannelSecret(secret, file string) ([]byte, error) {
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("reading -ratls-secret-file: %w", err)
		}
		secret = strings.TrimSpace(string(raw))
	}
	if secret == "" {
		return nil, errors.New("the wire channel is attested by default: provide -ratls-secret or -ratls-secret-file (shared with the peer daemon), or opt out explicitly with -insecure")
	}
	return []byte(secret), nil
}

func main() {
	if err := run(); err != nil {
		cli.Fatalf("sl-local: %v", err)
	}
}

func run() error {
	var (
		remoteAddr  = flag.String("remote", "127.0.0.1:7600", "SL-Remote address")
		license     = flag.String("license", "demo", "license ID to check against")
		checks      = flag.Int("checks", 1000, "number of license checks to perform")
		batch       = flag.Int("batch", 10, "tokens granted per local attestation")
		name        = flag.String("name", "client", "machine name")
		metricsAddr = flag.String("metrics-addr", "", "observability endpoint address (/metrics, /healthz, /readyz, /trace, /events); empty disables")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the observability endpoint")
		traceBuffer = flag.Int("trace-buffer", 4096, "span ring-buffer capacity; /trace marks the dump truncated once the ring wraps")
		linger      = flag.Duration("linger", 0, "keep running (and serving metrics) this long after the workload finishes")

		insecure        = flag.Bool("insecure", false, "speak explicit plaintext on the wire channel instead of the attested (RA-TLS) default; both daemons must agree")
		ratlsSecret     = flag.String("ratls-secret", "", "shared provisioning secret for the attested channel (both daemons must use the same secret)")
		ratlsSecretFile = flag.String("ratls-secret-file", "", "read the channel provisioning secret from this file instead of the command line")
	)
	flag.Parse()

	machine, err := sgx.NewMachine(sgx.MachineConfig{Name: *name})
	if err != nil {
		return err
	}
	platform, err := attest.NewPlatform(*name, machine)
	if err != nil {
		return err
	}
	rc, err := channelConfig(*insecure, *ratlsSecret, *ratlsSecretFile, *name, machine)
	if err != nil {
		return err
	}
	client, err := wire.Dial(*remoteAddr, rc)
	if err != nil {
		return err
	}
	defer client.Close()

	svc, err := sllocal.New(sllocal.Config{TokenBatch: *batch}, sllocal.Deps{
		Machine:  machine,
		Platform: platform,
		Remote:   client,
		State:    &sllocal.UntrustedState{},
	})
	if err != nil {
		return err
	}
	// The flight recorder is always on (SIGQUIT dumps it to stderr); the
	// metric registry and span ring feed the HTTP endpoint when enabled.
	rec := flight.NewRecorder(flight.DefaultCapacity)
	rc.SetFlightRecorder(rec)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			rec.DumpText(os.Stderr)
		}
	}()
	// /readyz stays 503 until attestation and Init succeed below.
	var ready atomic.Bool
	if *metricsAddr != "" {
		reg, tracer := obs.Default(), obs.NewTracer(*traceBuffer)
		machine.ExposeMetrics(reg)
		svc.ExposeMetrics(reg, tracer)
		client.ExposeMetrics(reg, tracer)
		rc.ExposeMetrics(reg, tracer)
		tracer.ExposeMetrics(reg)
		rec.ExposeMetrics(reg)
		ep, err := obs.StartHTTPOpts(*metricsAddr, reg, tracer,
			obs.HandlerOptions{Ready: ready.Load, PProf: *pprofOn, Events: rec.HTTPHandler()})
		if err != nil {
			return err
		}
		defer ep.Close()
		fmt.Printf("sl-local: observability endpoint on http://%s/metrics\n", ep.Addr())
	}
	start := time.Now()
	if err := svc.Init(); err != nil {
		return err
	}
	ready.Store(true)
	fmt.Printf("sl-local: initialized as %s in %v (virtual RA latency charged to the machine clock)\n",
		svc.SLID(), time.Since(start).Round(time.Millisecond))

	app, err := machine.CreateEnclave("demo-app", []byte("demo-app"), 0)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM stop the workload early; the shutdown path below
	// still runs, so the lease tree is committed and the root key escrowed
	// — an interrupted client is a graceful shutdown, not a crash.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)

	issued := 0
	vStart := machine.Clock().Now()
	rasBefore := machine.Stats().RemoteAttests
workload:
	for issued < *checks {
		select {
		case sig := <-sigs:
			fmt.Printf("sl-local: %v after %d checks: shutting down gracefully\n", sig, issued)
			break workload
		default:
		}
		tok, err := svc.RequestToken(app, *license)
		if err != nil {
			return fmt.Errorf("after %d checks: %w", issued, err)
		}
		for tok.Use() && issued < *checks {
			issued++
		}
	}
	vElapsed := machine.Clock().Elapsed(vStart, machine.Model())
	st := svc.Stats()
	ms := machine.Stats()
	fmt.Printf("sl-local: %d checks served — %d local attestations, %d renewals, %d remote attestations\n",
		issued, st.LocalAttests, st.Renewals, ms.RemoteAttests)
	loopRAs := ms.RemoteAttests - rasBefore
	fmt.Printf("sl-local: virtual time for the lease path: %v (%.2f µs/check excluding RAs)\n",
		vElapsed.Round(time.Millisecond),
		float64(vElapsed.Microseconds()-loopRAs*3_500_000)/float64(issued))

	rec.Emit("sllocal.shutdown",
		flight.KV{K: "slid", V: svc.SLID()},
		flight.KV{K: "checks", V: strconv.Itoa(issued)})
	if err := svc.Shutdown(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("sl-local: graceful shutdown complete (lease tree committed, root key escrowed)")
	if *linger > 0 {
		fmt.Printf("sl-local: lingering %v for metric scrapes\n", *linger)
		select {
		case <-time.After(*linger):
		case sig := <-sigs:
			fmt.Printf("sl-local: %v: linger cut short\n", sig)
		}
	}
	return nil
}
