// Command slbench regenerates the paper's evaluation artifacts: every
// table and figure of Section 7 has a driver.
//
//	slbench -exp all
//	slbench -exp table1
//	slbench -exp table5 -scale 2
//	slbench -exp table6
//	slbench -exp figure7 -workload openssl
//	slbench -exp figure8 -window 1s
//	slbench -exp figure9
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/harness"
)

func main() {
	if err := run(); err != nil {
		cli.Fatalf("slbench: %v", err)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table5|table6|figure7|figure8|figure9|ablation|fleet|scalable|cluster|all (cluster only runs when named explicitly)")
		scale    = flag.Int("scale", 1, "workload input scale factor")
		seed     = flag.Int64("seed", 7, "clustering seed")
		window   = flag.Duration("window", 500*time.Millisecond, "figure 8 measurement window")
		workload = flag.String("workload", "openssl", "figure 7 workload")
		repeats  = flag.Int("repeats", 5, "table 1 timing repeats")
		clients  = flag.Int("clients", 1_000_000, "cluster experiment: simulated clients")
		shards   = flag.Int("shards", 4, "cluster experiment: shard count")
		kills    = flag.Int("kills", 0, "cluster experiment: leader kills injected mid-run (chaos-swarm variant)")
		pipeline = flag.Int("pipeline", 1, "cluster experiment: max renewals in flight (1 = lock-step; >1 models the pipelined wire client, trading per-event determinism for throughput)")
		obsDump  = flag.String("obs-dump", "", "cluster experiment: observe every node, render the merged failover timeline, and write the fleet artifacts (metrics.prom, metrics.json, flight.json) into this directory")
	)
	flag.Parse()

	run := func(name string, fn func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := run("table1", func() error {
		res, err := harness.Table1(*repeats)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := run("table5", func() error {
		res, err := harness.Table5(*scale, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := run("table6", func() error {
		res, err := harness.Table6()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := run("figure7", func() error {
		glam, sl, summary, err := harness.Figure7(*workload, *scale, *seed)
		if err != nil {
			return err
		}
		fmt.Println(summary)
		glamPath := fmt.Sprintf("figure7-%s-glamdring.dot", *workload)
		slPath := fmt.Sprintf("figure7-%s-securelease.dot", *workload)
		if err := os.WriteFile(glamPath, []byte(glam), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(slPath, []byte(sl), 0o644); err != nil {
			return err
		}
		fmt.Printf("DOT files written: %s, %s (render with graphviz)\n", glamPath, slPath)
		return nil
	}); err != nil {
		return err
	}

	if err := run("figure8", func() error {
		res, err := harness.Figure8(*window)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := run("figure9", func() error {
		res, err := harness.Figure9(*scale, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := run("ablation", func() error {
		part, err := harness.AblationPartition(*scale, *seed)
		if err != nil {
			return err
		}
		fmt.Println(part.Render())
		batch, err := harness.AblationBatch(2000)
		if err != nil {
			return err
		}
		fmt.Println(batch.Render())
		dsweep, err := harness.AblationD(4000)
		if err != nil {
			return err
		}
		fmt.Println(dsweep.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := run("fleet", func() error {
		res, err := harness.Fleet([]harness.FleetClient{
			{Name: "stable", Health: 0.99, Reliability: 0.95, Weight: 1},
			{Name: "flaky-net", Health: 0.95, Reliability: 0.6, Weight: 1},
			{Name: "crashy", Health: 0.5, Reliability: 0.9, Weight: 1},
			{Name: "weak", Health: 0.7, Reliability: 0.7, Weight: 0.5},
		}, 6, 100_000, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := run("scalable", func() error {
		res, err := harness.ScalableSGX(*scale, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}); err != nil {
		return err
	}

	// The cluster experiment simulates a million clients by default and
	// runs for minutes, so -exp all skips it; ask for it by name.
	if *exp == "cluster" {
		if err := run("cluster", func() error {
			res, err := harness.ClusterBench(harness.ClusterBenchOptions{
				Clients:  *clients,
				Shards:   *shards,
				Kills:    *kills,
				Seed:     *seed,
				Pipeline: *pipeline,
				Observe:  *obsDump != "",
				ObsDump:  *obsDump,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
			return nil
		}); err != nil {
			return err
		}
	}

	return nil
}
