// Command slobs is the fleet observability plane: it scrapes every
// node's metric/trace/flight exposition — over plain HTTP or over the
// attested wire channel — merges them under the fleet rules (counters
// sum, gauges follow the rule table, histogram buckets merge so fleet
// p50/p99 are recomputed from real counts), and either prints the
// result once or serves it continuously.
//
// Serve a 3-node fleet:
//
//	slobs -addr :9300 -node shard0=http://127.0.0.1:9101 \
//	      -node shard1=http://127.0.0.1:9102 -node shard2=http://127.0.0.1:9103
//
// One-shot merged metrics, a stitched cross-node trace, the merged
// flight timeline, or per-node scrape health:
//
//	slobs -node a=http://... -node b=http://...
//	slobs -node a=http://... -node b=http://... -trace 3fa9c1...
//	slobs -node a=http://... -node b=http://... -events
//	slobs -node a=http://... -node b=http://... -nodes
//
// Scraping over the attested channel (the node's wire listener answers
// obs_pull; metrics never leave the enclave boundary outside RA-TLS):
//
//	slobs -wire shard0=127.0.0.1:7600 -ratls-secret swarm
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cli"
	"repro/internal/obs/fleet"
	"repro/internal/ratls"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
)

// targetList collects repeated -node/-wire name=endpoint flags.
type targetList []string

func (l *targetList) String() string { return strings.Join(*l, ",") }

func (l *targetList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=endpoint, got %q", v)
	}
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		cli.Fatalf("slobs: %v", err)
	}
}

func run() error {
	var httpTargets, wireTargets targetList
	flag.Var(&httpTargets, "node", "HTTP scrape target as name=http://host:port (repeatable)")
	flag.Var(&wireTargets, "wire", "attested-channel scrape target as name=host:port (repeatable)")
	var (
		addr     = flag.String("addr", "", "serve the merged fleet endpoint on this address (empty: one-shot mode)")
		interval = flag.Duration("interval", fleet.DefaultInterval, "scrape interval in serve mode")
		timeout  = flag.Duration("scrape-timeout", fleet.DefaultTimeout, "per-target scrape timeout")
		traceID  = flag.String("trace", "", "one-shot: print the stitched cross-node trace for this hex trace ID")
		events   = flag.Bool("events", false, "one-shot: print the merged flight-recorder timeline")
		nodes    = flag.Bool("nodes", false, "one-shot: print per-node scrape health")
		asJSON   = flag.Bool("json", false, "one-shot: emit JSON instead of text")

		insecure        = flag.Bool("insecure", false, "speak explicit plaintext to -wire targets instead of the attested (RA-TLS) default")
		ratlsSecret     = flag.String("ratls-secret", "", "shared provisioning secret for the attested channel to -wire targets")
		ratlsSecretFile = flag.String("ratls-secret-file", "", "read the channel provisioning secret from this file")
		name            = flag.String("name", "slobs", "machine name presented on attested channels")
	)
	flag.Parse()

	targets, err := buildTargets(httpTargets, wireTargets, *insecure, *ratlsSecret, *ratlsSecretFile, *name)
	if err != nil {
		return err
	}
	if len(targets) == 0 {
		return fmt.Errorf("no targets: pass at least one -node name=url or -wire name=addr")
	}

	agg := fleet.New(fleet.Options{
		Targets:  targets,
		Interval: *interval,
		Timeout:  *timeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	if *addr != "" {
		agg.Start()
		defer agg.Stop()
		srv, err := agg.Serve(*addr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("slobs: serving fleet view of %d nodes on %s (/metrics /trace /events /nodes)\n",
			len(targets), srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		return nil
	}

	return oneShot(agg, *traceID, *events, *nodes, *asJSON)
}

// oneShot scrapes once and prints the requested view to stdout.
func oneShot(agg *fleet.Aggregator, traceID string, events, nodes, asJSON bool) error {
	emitJSON := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	switch {
	case traceID != "":
		tr := agg.StitchTrace(traceID)
		if asJSON {
			return emitJSON(tr)
		}
		fmt.Print(tr.Render())
		return nil
	case events:
		evs := agg.Events()
		if asJSON {
			return emitJSON(evs)
		}
		for _, ev := range evs {
			fmt.Println(ev.String())
		}
		return nil
	case nodes:
		if err := agg.ScrapeOnce(); err != nil {
			fmt.Fprintf(os.Stderr, "slobs: %v\n", err)
		}
		return emitJSON(agg.Nodes())
	default:
		// Merged metrics. Scrape errors are reported but don't abort:
		// a partially-scraped fleet view (with fleet_node_up=0 for the
		// missing nodes) is exactly what an operator wants during an
		// outage.
		if err := agg.ScrapeOnce(); err != nil {
			fmt.Fprintf(os.Stderr, "slobs: %v\n", err)
		}
		if asJSON {
			return agg.WriteExport(os.Stdout)
		}
		return agg.WritePrometheus(os.Stdout)
	}
}

// buildTargets resolves the -node/-wire flags into fleet targets,
// minting one attested channel config per wire target.
func buildTargets(httpTargets, wireTargets targetList, insecure bool, secret, secretFile, name string) ([]fleet.Target, error) {
	var out []fleet.Target
	for _, nv := range httpTargets {
		n, url, _ := strings.Cut(nv, "=")
		out = append(out, fleet.Target{Name: n, URL: url})
	}
	if len(wireTargets) == 0 {
		return out, nil
	}
	machine, err := sgx.NewMachine(sgx.MachineConfig{Name: name})
	if err != nil {
		return nil, err
	}
	for _, nv := range wireTargets {
		n, addr, _ := strings.Cut(nv, "=")
		rc, err := channelConfig(insecure, secret, secretFile, name, machine)
		if err != nil {
			return nil, err
		}
		out = append(out, fleet.Target{Name: n, Addr: addr, Channel: rc})
	}
	return out, nil
}

// channelConfig mirrors the daemons' channel wiring: RA-TLS by default,
// plaintext only behind the explicit -insecure flag.
func channelConfig(insecure bool, secret, secretFile, name string, m *sgx.Machine) (*ratls.Config, error) {
	if insecure {
		return ratls.Insecure(), nil
	}
	if secretFile != "" {
		raw, err := os.ReadFile(secretFile)
		if err != nil {
			return nil, fmt.Errorf("reading -ratls-secret-file: %w", err)
		}
		secret = strings.TrimSpace(string(raw))
	}
	if secret == "" {
		return nil, fmt.Errorf("the wire channel is attested by default: provide -ratls-secret or -ratls-secret-file, or opt out explicitly with -insecure")
	}
	return ratls.NewProvisioned(name, m, []byte(secret), sllocal.EnclaveCodeIdentity, slremote.EnclaveCodeIdentity)
}
