package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkAuditAppendSealed-8   1000   104125 ns/op   1824 B/op   21 allocs/op")
	if !ok {
		t.Fatal("result line rejected")
	}
	if r.Name != "BenchmarkAuditAppendSealed" || r.Procs != 8 {
		t.Errorf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 1000 || r.NsPerOp != 104125 || r.BytesPerOp != 1824 || r.AllocsPerOp != 21 {
		t.Errorf("metrics = %+v", r)
	}

	// Custom units land in Extra.
	r, ok = parseLine("BenchmarkThroughput-4 7 12.5 ns/op 99.9 MB/s")
	if !ok || r.Extra["MB/s"] != 99.9 {
		t.Errorf("extra metric: ok=%v %+v", ok, r)
	}

	// Non-result lines pass through.
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro/internal/obs\t0.016s",
		"BenchmarkBroken notanumber",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-result line %q", line)
		}
	}
}
