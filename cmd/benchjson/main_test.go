package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkAuditAppendSealed-8   1000   104125 ns/op   1824 B/op   21 allocs/op")
	if !ok {
		t.Fatal("result line rejected")
	}
	if r.Name != "BenchmarkAuditAppendSealed" || r.Procs != 8 {
		t.Errorf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 1000 || r.NsPerOp != 104125 || r.BytesPerOp != 1824 || r.AllocsPerOp != 21 {
		t.Errorf("metrics = %+v", r)
	}

	// Custom units land in Extra.
	r, ok = parseLine("BenchmarkThroughput-4 7 12.5 ns/op 99.9 MB/s")
	if !ok || r.Extra["MB/s"] != 99.9 {
		t.Errorf("extra metric: ok=%v %+v", ok, r)
	}

	// Non-result lines pass through.
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro/internal/obs\t0.016s",
		"BenchmarkBroken notanumber",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-result line %q", line)
		}
	}
}

func TestCompareBaseline(t *testing.T) {
	writeBaseline := func(results []result) string {
		raw, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "baseline.json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := writeBaseline([]result{
		{Name: "BenchmarkRenew", Iterations: 100, NsPerOp: 1000},
		{Name: "BenchmarkHandshake", Iterations: 100, NsPerOp: 50000},
	})

	// Within tolerance: 8% slower passes a 10% gate.
	ok := []result{
		{Name: "BenchmarkRenew", Iterations: 100, NsPerOp: 1080},
		{Name: "BenchmarkHandshake", Iterations: 100, NsPerOp: 40000},
	}
	if err := compareBaseline(ok, base, 0.10); err != nil {
		t.Fatalf("8%% regression failed a 10%% gate: %v", err)
	}

	// Beyond tolerance: 25% slower fails and names the benchmark.
	bad := []result{
		{Name: "BenchmarkRenew", Iterations: 100, NsPerOp: 1250},
		{Name: "BenchmarkHandshake", Iterations: 100, NsPerOp: 50000},
	}
	err := compareBaseline(bad, base, 0.10)
	if err == nil {
		t.Fatal("25% regression passed a 10% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkRenew") {
		t.Fatalf("regression error does not name the benchmark: %v", err)
	}

	// A benchmark missing from the run is reported but never fails the
	// gate, and extra benchmarks in the run are ignored.
	partial := []result{
		{Name: "BenchmarkRenew", Iterations: 100, NsPerOp: 990},
		{Name: "BenchmarkNew", Iterations: 100, NsPerOp: 1},
	}
	if err := compareBaseline(partial, base, 0.10); err != nil {
		t.Fatalf("missing baseline benchmark failed the gate: %v", err)
	}

	// Unreadable or malformed baselines are hard errors: a silently
	// skipped gate would read as a pass.
	if err := compareBaseline(ok, filepath.Join(t.TempDir(), "nope.json"), 0.10); err == nil {
		t.Fatal("missing baseline file passed")
	}
	garbled := filepath.Join(t.TempDir(), "garbled.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareBaseline(ok, garbled, 0.10); err == nil {
		t.Fatal("garbled baseline passed")
	}
}
