// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark result line, so CI can archive a
// machine-readable benchmark artifact (BENCH_obs.json) next to the build:
//
//	go test -bench . -benchtime 1x ./... | benchjson -o BENCH_obs.json
//
// Everything that is not a benchmark result line (package headers, PASS/ok
// trailers, log output) passes through to stderr untouched, so the tool is
// transparent in a pipeline. It never fails on unparseable input — the CI
// smoke step should only go red when the benchmarks themselves fail to
// build or run.
//
// With -baseline the tool additionally gates the run against a committed
// baseline (a previous -o output): any benchmark whose ns/op grew more
// than -tolerance (default 0.10, i.e. >10% throughput loss) beyond its
// baseline value exits non-zero, naming each regressed benchmark:
//
//	go test -bench . -benchtime 100x ./... | benchjson -o BENCH.json -baseline ci/BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line, e.g.
//
//	BenchmarkAuditAppendSealed-8   1000   104125 ns/op   1824 B/op   21 allocs/op
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra keeps any additional metric pairs (MB/s, custom b.ReportMetric
	// units) without the tool having to know them.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the JSON array to this file (default stdout)")
	baseline := flag.String("baseline", "", "gate against this baseline JSON (a previous -o output); exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op growth over -baseline before the gate fails")
	flag.Parse()

	results := parse(os.Stdin)

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: wrote %d results to %s\n", len(results), *out)
	}

	if *baseline != "" {
		if err := compareBaseline(results, *baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// compareBaseline fails when any benchmark present in both the baseline
// and this run regressed more than tolerance in ns/op. Benchmarks that
// only exist on one side are reported but never fail the gate — CI may
// shard or add benchmarks without invalidating the committed baseline.
func compareBaseline(results []result, path string, tolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base []result
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	current := make(map[string]result, len(results))
	for _, r := range results {
		current[r.Name] = r
	}
	var regressions []string
	checked := 0
	for _, b := range base {
		if b.NsPerOp <= 0 {
			continue
		}
		c, ok := current[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s missing from this run (not gated)\n", b.Name)
			continue
		}
		if c.NsPerOp <= 0 {
			continue
		}
		checked++
		if c.NsPerOp > b.NsPerOp*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
				b.Name, c.NsPerOp, b.NsPerOp, (c.NsPerOp/b.NsPerOp-1)*100, tolerance*100))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("performance regression vs %s:\n  %s", path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within +%.0f%% of %s\n", checked, tolerance*100, path)
	return nil
}

func parse(f *os.File) []result {
	results := []result{} // marshal [] rather than null when nothing matched
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		results = append(results, r)
	}
	return results
}

// parseLine decodes one "Benchmark... N metric unit [metric unit]..." line.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Iterations: iters}
	r.Name = fields[0]
	// The -N GOMAXPROCS suffix is part of the name; split it out.
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], procs
		}
	}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
