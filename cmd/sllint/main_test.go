package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/lint"
)

const lockdiscFixture = "../../internal/lint/testdata/src/lockdisc"

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"secretflow", "lockdisc", "walorder", "spanend", "obsnames"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{lockdiscFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[lockdisc]") {
		t.Errorf("text output missing [lockdisc] tag:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("text output missing findings summary:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", lockdiscFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected findings in the lockdisc fixture")
	}
	for _, d := range diags {
		if d.Check != "lockdisc" {
			t.Errorf("unexpected check %q in %v", d.Check, d)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if strings.Contains(out.String(), "finding(s)") {
		t.Error("JSON mode must not append the text summary line")
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "-checks", "walorder", lockdiscFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (walorder does not fire outside slremote); stderr: %s", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("clean JSON output must still be a valid array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected empty array, got %v", diags)
	}
}

func TestChecksSubset(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-checks", "lockdisc", lockdiscFixture}, &out, &errb); code != 1 {
		t.Fatalf("-checks lockdisc exit code = %d, want 1; stderr: %s", code, errb.String())
	}
}

func TestUnknownCheck(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-checks", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown check exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bogus") {
		t.Errorf("stderr does not name the unknown check:\n%s", errb.String())
	}
}
