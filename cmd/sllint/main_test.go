package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

const lockdiscFixture = "../../internal/lint/testdata/src/lockdisc"

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"secretflow", "lockdisc", "guardedby", "lockorder", "walorder", "spanend", "obsnames"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{lockdiscFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[lockdisc]") {
		t.Errorf("text output missing [lockdisc] tag:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("text output missing findings summary:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", lockdiscFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected findings in the lockdisc fixture")
	}
	for _, d := range diags {
		if d.Check != "lockdisc" {
			t.Errorf("unexpected check %q in %v", d.Check, d)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if strings.Contains(out.String(), "finding(s)") {
		t.Error("JSON mode must not append the text summary line")
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "-checks", "walorder", lockdiscFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (walorder does not fire outside slremote); stderr: %s", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("clean JSON output must still be a valid array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected empty array, got %v", diags)
	}
}

func TestChecksSubset(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-checks", "lockdisc", lockdiscFixture}, &out, &errb); code != 1 {
		t.Fatalf("-checks lockdisc exit code = %d, want 1; stderr: %s", code, errb.String())
	}
}

func TestUnknownCheck(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-checks", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown check exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bogus") {
		t.Errorf("stderr does not name the unknown check:\n%s", errb.String())
	}
	// The error must also list every valid name, so the fix is one
	// copy-paste away.
	for _, name := range []string{"secretflow", "lockdisc", "guardedby", "lockorder", "walorder", "spanend", "obsnames"} {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("stderr does not list valid check %q:\n%s", name, errb.String())
		}
	}
}

const lockorderFixture = "../../internal/lint/testdata/src/lockorder"

func TestLockGraphDOT(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lockgraph.dot")
	var out, errb strings.Builder
	// The lockorder fixture has cycles, so findings exit 1 — the graph
	// must be written regardless.
	if code := run([]string{"-lockgraph", path, lockorderFixture}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("lockgraph artifact not written: %v", err)
	}
	dot := string(data)
	if !strings.HasPrefix(dot, "digraph") {
		t.Errorf("artifact is not DOT:\n%s", dot)
	}
	if !strings.Contains(dot, ".A.mu") || !strings.Contains(dot, ".B.mu") {
		t.Errorf("DOT graph missing fixture lock classes:\n%s", dot)
	}
}

func TestLockGraphJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lockgraph.json")
	var out, errb strings.Builder
	if code := run([]string{"-lockgraph", path, lockorderFixture}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("lockgraph artifact not written: %v", err)
	}
	var artifact lint.LockGraphArtifact
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if len(artifact.Nodes) == 0 || len(artifact.Edges) == 0 {
		t.Errorf("artifact empty: %+v", artifact)
	}
	if len(artifact.Cycles) != 3 {
		t.Errorf("fixture has 3 lock cycles, artifact records %d: %v",
			len(artifact.Cycles), artifact.Cycles)
	}
	for _, e := range artifact.Edges {
		if e.From == "" || e.To == "" || e.Witness == "" {
			t.Errorf("incomplete edge: %+v", e)
		}
	}
}

func TestLockGraphRequiresLockOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lockgraph.dot")
	var out, errb strings.Builder
	if code := run([]string{"-checks", "lockdisc", "-lockgraph", path, lockorderFixture}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 when -lockgraph runs without lockorder", code)
	}
	if !strings.Contains(errb.String(), "lockorder") {
		t.Errorf("stderr does not explain the missing check:\n%s", errb.String())
	}
	if _, err := os.Stat(path); err == nil {
		t.Error("artifact must not be written on usage error")
	}
}
