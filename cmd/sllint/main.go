// Command sllint runs the SecureLease static-analysis suite
// (internal/lint) over the repository and exits non-zero on findings. It
// is the machine check behind the conventions the codebase is written in:
// no key material in logs/metrics/unsealed wire fields, across function
// boundaries (secretflow), *Locked only under mu or on unpublished
// objects (lockdisc), mutex-guarded fields accessed with their guard held
// (guardedby), an acyclic global lock-acquisition graph (lockorder),
// WAL-before-apply in SL-Remote (walorder), spans ended on all paths
// (spanend), and well-formed unique metric names (obsnames).
//
//	sllint ./...             # analyze the whole module (CI gate)
//	sllint internal/wire     # analyze one package directory
//	sllint -json ./...       # machine-readable diagnostics
//	sllint -checks lockdisc,walorder ./...
//	sllint -lockgraph lockgraph.dot ./...   # emit the acquisition graph
//
// Findings can be suppressed with a justified comment on or above the
// flagged line:
//
//	//sllint:ignore walorder replay folds records already durable in the WAL; logging them again would double-append
//
// A suppression without a written reason is itself a finding. Exit codes:
// 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit diagnostics as a JSON array")
		checks    = fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list      = fs.Bool("list", false, "list available checks and exit")
		lockgraph = fs.String("lockgraph", "", "write the lock-acquisition graph to this file (.dot or .json)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sllint [-json] [-checks a,b] [-lockgraph out.dot] [./... | package dirs]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *checks != "" {
		want := make(map[string]bool)
		for _, c := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(c)] = true
		}
		var kept []lint.Analyzer
		var valid []string
		for _, a := range analyzers {
			valid = append(valid, a.Name())
			if want[a.Name()] {
				kept = append(kept, a)
				delete(want, a.Name())
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for u := range want {
				unknown = append(unknown, u)
			}
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "sllint: unknown check %q (valid checks: %s)\n",
				unknown[0], strings.Join(valid, ", "))
			return 2
		}
		analyzers = kept
	}
	if *lockgraph != "" && !hasLockOrder(analyzers) {
		fmt.Fprintln(stderr, "sllint: -lockgraph requires the lockorder check (add it to -checks)")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sllint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "sllint:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(stderr, "sllint:", err)
				return 2
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.LoadDir(strings.TrimSuffix(pat, "/"))
			if err != nil {
				fmt.Fprintln(stderr, "sllint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	runner := &lint.Runner{Analyzers: analyzers, TrimDir: loader.ModuleRoot()}
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		runner.Package(pkg)
	}
	diags := runner.Finish()

	if *lockgraph != "" {
		if err := writeLockGraph(*lockgraph, analyzers); err != nil {
			fmt.Fprintln(stderr, "sllint:", err)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "sllint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "sllint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// lockGrapher is implemented by the lockorder analyzer: the acquisition
// graph it built, plus the serializable artifact form.
type lockGrapher interface {
	LockGraph() (*callgraph.Graph, lint.LockGraphArtifact)
}

func hasLockOrder(analyzers []lint.Analyzer) bool {
	for _, a := range analyzers {
		if _, ok := a.(lockGrapher); ok {
			return true
		}
	}
	return false
}

// writeLockGraph renders the lock-acquisition graph as Graphviz DOT or
// JSON, chosen by the output file's extension.
func writeLockGraph(path string, analyzers []lint.Analyzer) error {
	for _, a := range analyzers {
		lg, ok := a.(lockGrapher)
		if !ok {
			continue
		}
		g, artifact := lg.LockGraph()
		if g == nil {
			g = callgraph.New()
		}
		var out []byte
		if strings.HasSuffix(path, ".json") {
			var err error
			out, err = json.MarshalIndent(artifact, "", "  ")
			if err != nil {
				return err
			}
			out = append(out, '\n')
		} else {
			out = []byte(g.DOT("lock-order", nil))
		}
		return os.WriteFile(path, out, 0o644)
	}
	return fmt.Errorf("-lockgraph: lockorder analyzer not in the run")
}
