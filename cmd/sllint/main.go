// Command sllint runs the SecureLease static-analysis suite
// (internal/lint) over the repository and exits non-zero on findings. It
// is the machine check behind the conventions the codebase is written in:
// no key material in logs/metrics/unsealed wire fields (secretflow),
// *Locked only under mu (lockdisc), WAL-before-apply in SL-Remote
// (walorder), spans ended on all paths (spanend), and well-formed unique
// metric names (obsnames).
//
//	sllint ./...             # analyze the whole module (CI gate)
//	sllint internal/wire     # analyze one package directory
//	sllint -json ./...       # machine-readable diagnostics
//	sllint -checks lockdisc,walorder ./...
//
// Findings can be suppressed with a justified comment on or above the
// flagged line:
//
//	//sllint:ignore lockdisc the tree is unpublished while Restore runs; nothing can race
//
// A suppression without a written reason is itself a finding. Exit codes:
// 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit diagnostics as a JSON array")
		checks  = fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list    = fs.Bool("list", false, "list available checks and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sllint [-json] [-checks a,b] [./... | package dirs]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *checks != "" {
		want := make(map[string]bool)
		for _, c := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(c)] = true
		}
		var kept []lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				kept = append(kept, a)
				delete(want, a.Name())
			}
		}
		for unknown := range want {
			fmt.Fprintf(stderr, "sllint: unknown check %q\n", unknown)
			return 2
		}
		analyzers = kept
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sllint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "sllint:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(stderr, "sllint:", err)
				return 2
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.LoadDir(strings.TrimSuffix(pat, "/"))
			if err != nil {
				fmt.Fprintln(stderr, "sllint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	runner := &lint.Runner{Analyzers: analyzers, TrimDir: loader.ModuleRoot()}
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		runner.Package(pkg)
	}
	diags := runner.Finish()

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "sllint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "sllint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
