// Command slpartition partitions a workload's call graph with every
// scheme the paper compares and prints the resulting migration sets and
// their estimated costs. With -dot it also writes Graphviz files showing
// the clusters and the migrated functions (the paper's Figure 7).
//
//	slpartition -workload openssl
//	slpartition -workload bfs -dot -mt 92MB-equivalent-bytes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/partition"
	"repro/internal/sgx"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		cli.Fatalf("slpartition: %v", err)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "openssl", "workload to partition (see -list)")
		list     = flag.Bool("list", false, "list available workloads and exit")
		scale    = flag.Int("scale", 1, "input scale factor")
		seed     = flag.Int64("seed", 7, "clustering seed")
		k        = flag.Int("k", 0, "k-means cluster count (0 = heuristic)")
		mt       = flag.Int64("mt", 0, "memory threshold m_t in bytes (0 = EPC size)")
		rt       = flag.Float64("rt", 0, "overhead threshold r_t (0 = 0.5)")
		dot      = flag.Bool("dot", false, "write Graphviz DOT files per scheme")
	)
	flag.Parse()

	if *list {
		for _, s := range workloads.All() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
		}
		return nil
	}

	spec, err := workloads.Get(*workload)
	if err != nil {
		return err
	}
	prof, err := spec.Run(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: %s\n", spec.Name, prof.Output)
	fmt.Printf("call graph: %d functions, %d edges, %d dynamic work units\n\n",
		prof.Graph.Len(), len(prof.Graph.Edges()), prof.Trace.TotalWork())

	opts := partition.Options{K: *k, MemThreshold: *mt, OverheadThreshold: *rt, Seed: *seed}
	schemes := []struct {
		name string
		run  func() (*partition.Partition, error)
	}{
		{"securelease", func() (*partition.Partition, error) {
			return partition.SecureLease(prof.Graph, prof.Trace, opts)
		}},
		{"glamdring", func() (*partition.Partition, error) {
			return partition.Glamdring(prof.Graph, 1)
		}},
		{"f-laas", func() (*partition.Partition, error) {
			return partition.FLaaS(prof.Graph, 3)
		}},
		{"am-only", func() (*partition.Partition, error) {
			return partition.AMOnly(prof.Graph)
		}},
		{"full-enclave", func() (*partition.Partition, error) {
			return partition.FullEnclave(prof.Graph)
		}},
	}

	est := partition.NewEstimator(sgx.DefaultCostModel())
	for _, s := range schemes {
		p, err := s.run()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		cost := est.Evaluate(prof.Graph, prof.Trace, p.Migrated)
		fmt.Printf("%s:\n", s.name)
		fmt.Printf("  migrated (%d): %v\n", len(p.MigratedList()), p.MigratedList())
		fmt.Printf("  static: %d B (%.1f%% of app)   dynamic coverage: %.1f%%\n",
			cost.StaticBytes, 100*cost.StaticFraction, 100*cost.DynamicCoverage)
		fmt.Printf("  ecalls: %d  ocalls: %d  EPC: %d MB  faults: %d  predicted overhead: %.2f%%\n\n",
			cost.ECalls, cost.OCalls, cost.EPCBytes>>20, cost.EPCFaults, 100*cost.PredictedOverhead)

		if *dot {
			path := fmt.Sprintf("%s-%s.dot", spec.Name, s.name)
			if err := os.WriteFile(path, []byte(prof.Graph.DOT(spec.Name+" "+s.name, p.Migrated)), 0o644); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n\n", path)
		}
	}
	return nil
}
