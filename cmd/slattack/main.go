// Command slattack demonstrates control-flow-bending (CFB) attacks against
// the three protection levels the paper analyzes (Figure 6): a
// software-only authentication module, an AM-only-in-SGX deployment, and a
// full SecureLease partition. It runs the MySQL-style victim model on the
// attacker's virtual CPU and reports which attacks obtain the program's
// real functionality.
package main

import (
	"errors"
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cli"
)

func main() {
	if err := run(); err != nil {
		cli.Fatalf("slattack: %v", err)
	}
}

func run() error {
	verbose := flag.Bool("v", false, "print per-attack details")
	flag.Parse()

	ref, err := attack.ReferenceOutput(attack.NoSGX)
	if err != nil {
		return err
	}

	levels := []struct {
		level attack.Protection
		name  string
	}{
		{attack.NoSGX, "software AM (no SGX)"},
		{attack.AMOnlySGX, "AM-only in SGX"},
		{attack.SecureLeaseSGX, "SecureLease partition"},
	}
	attacks := []struct {
		name   string
		tamper attack.Tamper
	}{
		{"branch flip (force jne fall-through)",
			attack.Tamper{FlipBranches: map[string]bool{"auth_check": true}}},
		{"state forge (fake auth result)",
			attack.Tamper{ForgeVars: map[string]int64{"auth_res": 1}}},
		{"skip AM + forge state",
			attack.Tamper{SkipCalls: map[string]bool{"acl_authenticate": true},
				ForgeVars: map[string]int64{"auth_res": 1}}},
		{"flip + forge everything the attacker can guess",
			attack.Tamper{FlipBranches: map[string]bool{"auth_check": true},
				ForgeVars: map[string]int64{"auth_res": 1, "parse_tree": 12345}}},
	}
	deny := attack.GateFunc(func(string) error { return errors.New("no valid lease") })

	fmt.Println("CFB attack matrix (victim: MySQL-style flow, invalid license):")
	fmt.Println()
	anyUnexpected := false
	for _, l := range levels {
		broken := 0
		for _, a := range attacks {
			cpu, err := attack.NewVCPU(attack.NewMySQLModel(l.level, false), deny, a.tamper)
			if err != nil {
				return err
			}
			res, err := cpu.Run()
			if err != nil {
				return err
			}
			success := res.FullyFunctional(ref)
			if success {
				broken++
			}
			if *verbose {
				fmt.Printf("  %-24s | %-45s → success=%v (completed=%v denials=%d)\n",
					l.name, a.name, success, res.Completed, res.EnclaveDenials)
			}
		}
		verdict := "RESISTS all attacks"
		if broken > 0 {
			verdict = fmt.Sprintf("BROKEN by %d/%d attacks", broken, len(attacks))
		}
		fmt.Printf("  %-24s → %s\n", l.name, verdict)
		if (l.level == attack.SecureLeaseSGX) == (broken > 0) {
			anyUnexpected = true
		}
	}
	fmt.Println()
	if anyUnexpected {
		return errors.New("unexpected attack outcome — the defense matrix does not match the paper")
	}
	fmt.Println("Result matches the paper: software and AM-only defenses fall to CFB;")
	fmt.Println("the SecureLease partition leaves the attacker without the key functions.")
	return nil
}
