package kmeans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/callgraph"
)

func TestRunSeparatesObviousClusters(t *testing.T) {
	// Two tight blobs far apart.
	var points [][]float64
	for i := 0; i < 20; i++ {
		points = append(points, []float64{float64(i % 3), float64(i % 2)})
	}
	for i := 0; i < 20; i++ {
		points = append(points, []float64{100 + float64(i%3), 100 + float64(i%2)})
	}
	res, err := Run(points, 2, 100, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	first := res.Assignment[0]
	for i := 0; i < 20; i++ {
		if res.Assignment[i] != first {
			t.Fatalf("blob A split at %d", i)
		}
	}
	second := res.Assignment[20]
	if second == first {
		t.Fatal("blobs merged")
	}
	for i := 20; i < 40; i++ {
		if res.Assignment[i] != second {
			t.Fatalf("blob B split at %d", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(nil, 2, 10, rng); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := Run([][]float64{{1}}, 0, 10, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Run([][]float64{{1}}, 1, 10, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := Run([][]float64{{1}, {1, 2}}, 1, 10, rng); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestRunKLargerThanPoints(t *testing.T) {
	points := [][]float64{{0}, {10}}
	res, err := Run(points, 5, 10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Fatal("distinct points share a cluster with k>n")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	points := make([][]float64, 50)
	src := rand.New(rand.NewSource(7))
	for i := range points {
		points[i] = []float64{src.Float64() * 10, src.Float64() * 10}
	}
	a, err := Run(points, 4, 100, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(points, 4, 100, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("nondeterministic assignment at %d", i)
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("nondeterministic inertia")
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := Run(points, 2, 10, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %v, want 0", res.Inertia)
	}
}

func TestRunInvariantsProperty(t *testing.T) {
	// Properties: every point gets a cluster in range; inertia is finite
	// and non-negative.
	f := func(seed int64, raw []float64, kRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for i, v := range raw {
			if v != v || v > 1e9 || v < -1e9 { // NaN/huge guards
				raw[i] = float64(i)
			}
		}
		points := make([][]float64, len(raw)/2)
		for i := range points {
			points[i] = []float64{raw[2*i], raw[2*i+1]}
		}
		k := int(kRaw%5) + 1
		res, err := Run(points, k, 50, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if res.Inertia < 0 {
			return false
		}
		limit := k
		if limit > len(points) {
			limit = len(points)
		}
		for _, a := range res.Assignment {
			if a < 0 || a >= limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// modularGraph builds a graph with nMod dense modules of size modSize and
// sparse inter-module edges.
func modularGraph(t testing.TB, nMod, modSize int) *callgraph.Graph {
	t.Helper()
	g := callgraph.New()
	name := func(m, i int) string {
		return string(rune('A'+m)) + "-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	for m := 0; m < nMod; m++ {
		for i := 0; i < modSize; i++ {
			if err := g.AddNode(callgraph.Node{
				Name:        name(m, i),
				CodeBytes:   int64(100 + i),
				MemoryBytes: 4096,
				Module:      string(rune('A' + m)),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Dense intra-module edges through a hub (star + chain).
	for m := 0; m < nMod; m++ {
		hub := name(m, 0)
		for i := 1; i < modSize; i++ {
			if err := g.AddCall(hub, name(m, i), 50); err != nil {
				t.Fatal(err)
			}
			if err := g.AddCall(name(m, i), hub, 30); err != nil {
				t.Fatal(err)
			}
			if i > 1 {
				if err := g.AddCall(name(m, i-1), name(m, i), 20); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Sparse inter-module edges.
	for m := 1; m < nMod; m++ {
		if err := g.AddCall(name(0, 0), name(m, 0), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestClusterGraphRecoversModules(t *testing.T) {
	g := modularGraph(t, 4, 8)
	labels, err := ClusterGraph(g, 4, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("ClusterGraph: %v", err)
	}
	// Evaluate cluster purity: functions of one module should mostly share
	// a label. Majority-label agreement must be high.
	byModule := make(map[string]map[int]int)
	for _, n := range g.Names() {
		mod := g.Node(n).Module
		if byModule[mod] == nil {
			byModule[mod] = make(map[int]int)
		}
		byModule[mod][labels[n]]++
	}
	agree, total := 0, 0
	for _, counts := range byModule {
		best := 0
		sum := 0
		for _, c := range counts {
			sum += c
			if c > best {
				best = c
			}
		}
		agree += best
		total += sum
	}
	purity := float64(agree) / float64(total)
	if purity < 0.8 {
		t.Fatalf("cluster purity = %v, want ≥0.8", purity)
	}
}

func TestClusterGraphEmpty(t *testing.T) {
	if _, err := ClusterGraph(callgraph.New(), 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestEmbedGraphShape(t *testing.T) {
	g := modularGraph(t, 2, 5)
	vecs, names := EmbedGraph(g, 4)
	if len(vecs) != g.Len() || len(names) != g.Len() {
		t.Fatalf("embedding sizes: %d vectors, %d names", len(vecs), len(names))
	}
	for i, v := range vecs {
		if len(v) != 5 { // 4 landmarks + 1 structural
			t.Fatalf("vector %d has dim %d", i, len(v))
		}
	}
	// Landmark cap.
	vecs2, _ := EmbedGraph(g, 1000)
	if len(vecs2[0]) != g.Len()+1 {
		t.Fatalf("landmark cap: dim %d, want %d", len(vecs2[0]), g.Len()+1)
	}
}

func BenchmarkClusterGraph(b *testing.B) {
	g := modularGraph(b, 6, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClusterGraph(g, 6, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}
