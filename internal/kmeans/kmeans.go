// Package kmeans implements the k-means clustering algorithm SecureLease
// uses to find submodule clusters in an application's call graph
// (Section 4.2.1 of the paper, citing Kanungo et al.), plus the graph
// embedding that turns call-graph nodes into feature vectors.
//
// All randomness comes from a caller-supplied *rand.Rand so clustering is
// deterministic per seed.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/callgraph"
)

// Result is the output of one clustering run.
type Result struct {
	// Assignment maps each point index to its cluster in [0, K).
	Assignment []int
	// Centroids are the final cluster centers.
	Centroids [][]float64
	// Iterations is how many Lloyd iterations ran.
	Iterations int
	// Inertia is the summed squared distance of points to their centroids.
	Inertia float64
}

// Run clusters points into k groups with k-means++ seeding and Lloyd
// iterations, stopping after maxIter iterations or when assignments are
// stable. Points must be non-empty and share one dimension.
func Run(points [][]float64, k, maxIter int, rng *rand.Rand) (Result, error) {
	if len(points) == 0 {
		return Result{}, errors.New("kmeans: no points")
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("kmeans: k must be positive, got %d", k)
	}
	if rng == nil {
		return Result{}, errors.New("kmeans: nil rng (pass a seeded *rand.Rand)")
	}
	if k > len(points) {
		k = len(points)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return Result{}, fmt.Errorf("kmeans: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}

	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids; re-seed empty clusters from the farthest
		// point to keep k effective clusters.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				next[c][d] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				next[c] = append([]float64(nil), points[farthestPoint(points, centroids)]...)
				continue
			}
			for d := range next[c] {
				next[c][d] /= float64(counts[c])
			}
		}
		centroids = next
	}

	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return Result{Assignment: assign, Centroids: centroids, Iterations: iter, Inertia: inertia}, nil
}

// seedPlusPlus picks initial centroids with the k-means++ strategy.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	dists := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if sd := sqDist(p, c); sd < d {
					d = sd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(len(points))]...))
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, d := range dists {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func farthestPoint(points [][]float64, centroids [][]float64) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		d := math.Inf(1)
		for _, c := range centroids {
			if sd := sqDist(p, c); sd < d {
				d = sd
			}
		}
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// EmbedGraph turns call-graph nodes into feature vectors for clustering.
// The embedding concatenates, for each of the top-degree "landmark"
// functions, the node's normalized undirected edge weight to that landmark.
// Nodes of one module share heavy edges to the same landmarks (the paper's
// intra-cluster-dominance observation), so they land close together.
//
// It returns the vectors in the order of g.Names() along with that order.
func EmbedGraph(g *callgraph.Graph, landmarks int) ([][]float64, []string) {
	names := g.Names()
	if landmarks <= 0 {
		landmarks = 8
	}
	if landmarks > len(names) {
		landmarks = len(names)
	}

	// Landmarks: high-weight functions chosen for diversity, so that each
	// dense submodule contributes roughly one landmark (its hub) instead
	// of the single hottest module monopolizing the feature space. A
	// candidate is diverse if its direct connection to every already
	// chosen landmark is a small fraction of its own total weight.
	type degree struct {
		name   string
		weight int64
	}
	degs := make([]degree, 0, len(names))
	for _, n := range names {
		var w int64
		for _, c := range g.Neighbors(n) {
			w += c
		}
		degs = append(degs, degree{n, w})
	}
	sort.SliceStable(degs, func(i, j int) bool {
		if degs[i].weight != degs[j].weight {
			return degs[i].weight > degs[j].weight
		}
		return degs[i].name < degs[j].name
	})
	landmarkNames := make([]string, 0, landmarks)
	chosen := make(map[string]bool, landmarks)
	for _, d := range degs {
		if len(landmarkNames) == landmarks {
			break
		}
		nb := g.Neighbors(d.name)
		diverse := true
		for _, lm := range landmarkNames {
			if float64(nb[lm]) > 0.25*float64(d.weight) {
				diverse = false
				break
			}
		}
		if diverse {
			landmarkNames = append(landmarkNames, d.name)
			chosen[d.name] = true
		}
	}
	// Fill any remaining slots with the next-highest-weight functions.
	for _, d := range degs {
		if len(landmarkNames) == landmarks {
			break
		}
		if !chosen[d.name] {
			landmarkNames = append(landmarkNames, d.name)
			chosen[d.name] = true
		}
	}

	vectors := make([][]float64, len(names))
	for i, n := range names {
		nb := g.Neighbors(n)
		var total int64
		for _, c := range nb {
			total += c
		}
		vec := make([]float64, landmarks+1)
		for j, lm := range landmarkNames {
			w := nb[lm]
			if n == lm {
				// A landmark is maximally associated with itself.
				w = total + 1
			}
			if total > 0 {
				vec[j] = float64(w) / float64(total+1)
			}
		}
		// One structural feature: log code size, weakly weighted, to
		// separate disconnected nodes deterministically.
		if cb := g.Node(n).CodeBytes; cb > 0 {
			vec[landmarks] = 0.01 * math.Log1p(float64(cb))
		}
		vectors[i] = vec
	}
	return vectors, names
}

// ClusterGraph embeds the graph and k-means-clusters it, returning a
// cluster label per function name.
func ClusterGraph(g *callgraph.Graph, k int, rng *rand.Rand) (map[string]int, error) {
	if g.Len() == 0 {
		return nil, errors.New("kmeans: empty graph")
	}
	vectors, names := EmbedGraph(g, 2*k)
	res, err := Run(vectors, k, 200, rng)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(names))
	for i, n := range names {
		out[n] = res.Assignment[i]
	}
	return out, nil
}
