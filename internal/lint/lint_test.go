package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// sharedLoader memoizes type-checked packages across subtests: the
// fixtures that import repro/internal/wire pull in a large slice of the
// module, and loading it once is enough.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

func fixturePackage(t *testing.T, dir string) *lint.Package {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = lint.NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

// wantMarkRE extracts the expected-diagnostic regexes of one `// want`
// comment (backtick-quoted, analysistest style).
var wantMarkRE = regexp.MustCompile("`([^`]+)`")

// collectWants parses the fixture's `// want` comments into a map from
// line number to pending regexes.
func collectWants(t *testing.T, pkg *lint.Package) map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[int][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, m := range wantMarkRE.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("line %d: bad want regex %q: %v", line, m[1], err)
					}
					wants[line] = append(wants[line], re)
				}
			}
		}
	}
	return wants
}

// checkGolden runs the analyzers over the fixture and matches the
// resulting diagnostics against its `// want` comments: every diagnostic
// must be wanted, and every want must be hit. Diagnostics of the sllint
// pseudo-check (which reports at comment positions where a want marker
// cannot sit) are returned to the caller instead of matched.
func checkGolden(t *testing.T, dir string, analyzers ...lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	pkg := fixturePackage(t, dir)
	wants := collectWants(t, pkg)

	runner := &lint.Runner{Analyzers: analyzers}
	runner.Package(pkg)

	var meta []lint.Diagnostic
	for _, d := range runner.Finish() {
		if d.Check == "sllint" {
			meta = append(meta, d)
			continue
		}
		matched := false
		rest := wants[d.Line][:0]
		for _, re := range wants[d.Line] {
			if !matched && re.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, re)
		}
		wants[d.Line] = rest
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, res := range wants {
		for _, re := range res {
			t.Errorf("line %d: expected diagnostic matching %q, got none", line, re)
		}
	}
	return meta
}

func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		dir string
		mk  func() lint.Analyzer
	}{
		{"secretflow", lint.NewSecretFlow},
		{"secretflowx", lint.NewSecretFlow},
		{"lockdisc", lint.NewLockDisc},
		{"guardedby", lint.NewGuardedBy},
		{"lockorder", lint.NewLockOrder},
		{"walorder", lint.NewWALOrder},
		{"spanend", lint.NewSpanEnd},
		{"obsnames", lint.NewObsNames},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			if meta := checkGolden(t, tc.dir, tc.mk()); len(meta) != 0 {
				t.Errorf("unexpected sllint diagnostics: %v", meta)
			}
		})
	}
}

// TestSuppressions drives the //sllint:ignore machinery: a justified
// suppression silences the line below it; a reasonless or unknown-check
// suppression is itself a finding and silences nothing.
func TestSuppressions(t *testing.T) {
	meta := checkGolden(t, "ignore", lint.NewLockDisc())
	var gotReasonless, gotUnknown int
	for _, d := range meta {
		switch {
		case strings.Contains(d.Message, "carries no justification"):
			gotReasonless++
		case strings.Contains(d.Message, "unknown check"):
			gotUnknown++
		default:
			t.Errorf("unexpected sllint diagnostic: %s", d)
		}
	}
	if gotReasonless != 1 || gotUnknown != 1 {
		t.Errorf("sllint diagnostics: got %d reasonless + %d unknown-check, want 1 + 1 (all: %v)",
			gotReasonless, gotUnknown, meta)
	}
}

// TestDiagnosticString pins the file:line:col rendering the CI gate greps.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Check: "lockdisc", File: "internal/x/y.go", Line: 12, Col: 3, Message: "m"}
	if got, want := d.String(), "internal/x/y.go:12:3: [lockdisc] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestDefaultAnalyzers pins the suite composition and name uniqueness the
// -checks flag and suppression grammar rely on.
func TestDefaultAnalyzers(t *testing.T) {
	got := lint.DefaultAnalyzers()
	want := []string{"secretflow", "lockdisc", "guardedby", "lockorder", "walorder", "spanend", "obsnames"}
	if len(got) != len(want) {
		t.Fatalf("DefaultAnalyzers: %d analyzers, want %d", len(got), len(want))
	}
	seen := make(map[string]bool)
	for i, a := range got {
		if a.Name() != want[i] {
			t.Errorf("analyzer %d: name %q, want %q", i, a.Name(), want[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %q has no doc line", a.Name())
		}
		if seen[a.Name()] {
			t.Errorf("duplicate analyzer name %q", a.Name())
		}
		seen[a.Name()] = true
	}
}

// TestRunnerTrimDir checks module-relative path rendering.
func TestRunnerTrimDir(t *testing.T) {
	pkg := fixturePackage(t, "lockdisc")
	runner := &lint.Runner{Analyzers: []lint.Analyzer{lint.NewLockDisc()}, TrimDir: loader.ModuleRoot()}
	runner.Package(pkg)
	diags := runner.Finish()
	if len(diags) == 0 {
		t.Fatal("expected findings in the lockdisc fixture")
	}
	for _, d := range diags {
		if filepath.IsAbs(d.File) {
			t.Errorf("diagnostic path not trimmed to module root: %s", d.File)
		}
		if want := filepath.ToSlash(filepath.Join("internal", "lint", "testdata", "src", "lockdisc", "lockdisc.go")); filepath.ToSlash(d.File) != want {
			t.Errorf("diagnostic file = %q, want %q", d.File, want)
		}
	}
}

// TestFinishSorted checks the stable file/line/col ordering.
func TestFinishSorted(t *testing.T) {
	pkg := fixturePackage(t, "lockdisc")
	runner := &lint.Runner{Analyzers: []lint.Analyzer{lint.NewLockDisc()}}
	runner.Package(pkg)
	diags := runner.Finish()
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File == b.File && (a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col)) {
			t.Errorf("diagnostics out of order: %s before %s", fmt.Sprint(a), fmt.Sprint(b))
		}
	}
}
