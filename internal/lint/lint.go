// Package lint is a stdlib-only static-analysis framework that enforces
// SecureLease's security invariants over this repository's own source.
//
// The paper's Glamdring baseline partitions applications by static taint
// analysis from annotated secret data; this package applies the same
// discipline to the codebase that implements SecureLease. Conventions that
// previously lived in reviewers' heads are machine-checked:
//
//   - secretflow: key material (seccrypto.Key values, root keys, OBKs, seal
//     secrets) must never reach untrusted sinks — log/fmt output, obs
//     metric or annotation values, or unsealed wire struct fields;
//   - lockdisc: *Locked functions run only with the receiver's mu held and
//     never lock or unlock it themselves;
//   - walorder: inside SL-Remote, every apply*Locked mutation is dominated
//     by a checked logLocked call (write-ahead discipline);
//   - spanend: every Tracer.Start/StartLinked span is ended on all paths;
//   - obsnames: metric names are well-formed, unique, and histograms carry
//     a unit suffix.
//
// Packages are loaded with go/parser and type-checked with go/types via a
// module-aware importer (load.go) — no dependencies outside the standard
// library. Findings can be suppressed with a justified
// "//sllint:ignore <check> <reason>" comment (ignore.go); a suppression
// without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info

	report func(check string, pos token.Pos, msg string)
}

// Reportf records a finding for the given check at pos.
func (p *Pass) Reportf(check string, pos token.Pos, format string, args ...any) {
	p.report(check, pos, fmt.Sprintf(format, args...))
}

// Analyzer checks one package at a time.
type Analyzer interface {
	// Name is the check identifier used in diagnostics and suppressions.
	Name() string
	// Doc is a one-line description of what the check enforces.
	Doc() string
	// Run inspects one package and reports findings through the pass.
	Run(*Pass)
}

// Finisher is implemented by analyzers that accumulate cross-package state
// (obsnames' duplicate detection) and report it after the last package.
type Finisher interface {
	Finish(report func(check string, pos token.Position, msg string))
}

// ProgramPass hands the whole-program engine to a program analyzer after
// every package has been collected.
type ProgramPass struct {
	Engine *Engine

	report func(check string, pos token.Pos, msg string)
}

// Reportf records a finding for the given check at pos.
func (p *ProgramPass) Reportf(check string, pos token.Pos, format string, args ...any) {
	p.report(check, pos, fmt.Sprintf(format, args...))
}

// ProgramAnalyzer is implemented by analyzers that need the
// interprocedural engine (call graph + function summaries) rather than
// one package at a time. Their Run is a no-op; RunProgram fires once,
// after the last package.
type ProgramAnalyzer interface {
	Analyzer
	RunProgram(*ProgramPass)
}

// DefaultAnalyzers returns the full SecureLease suite, in stable order.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewSecretFlow(),
		NewLockDisc(),
		NewGuardedBy(),
		NewLockOrder(),
		NewWALOrder(),
		NewSpanEnd(),
		NewObsNames(),
	}
}

// Runner applies an analyzer suite over packages, applies //sllint:ignore
// suppressions, and produces sorted diagnostics.
type Runner struct {
	Analyzers []Analyzer
	// TrimDir, when set, makes diagnostic file paths relative to it
	// (normally the module root).
	TrimDir string

	diags []Diagnostic
	supps []suppression
	pkgs  []*Package

	// engine is the whole-program analysis built at Finish; exposed so
	// callers (cmd/sllint's -lockgraph) can extract artifacts after a run.
	engine *Engine
}

// Engine returns the interprocedural engine built during Finish, or nil
// when no program analyzer was in the suite.
func (r *Runner) Engine() *Engine { return r.engine }

// Package runs every analyzer over one loaded package and collects that
// package's suppression comments.
func (r *Runner) Package(pkg *Package) {
	pass := &Pass{
		Fset:  pkg.Fset,
		Path:  pkg.Path,
		Pkg:   pkg.Types,
		Files: pkg.Files,
		Info:  pkg.Info,
	}
	pass.report = func(check string, pos token.Pos, msg string) {
		r.add(check, pkg.Fset.Position(pos), msg)
	}
	r.supps = append(r.supps, collectSuppressions(pkg, r.knownChecks(), func(pos token.Position, msg string) {
		r.add(checkSuppression, pos, msg)
	})...)
	r.pkgs = append(r.pkgs, pkg)
	for _, a := range r.Analyzers {
		a.Run(pass)
	}
}

// Finish builds the interprocedural engine and runs program analyzers,
// runs cross-package finishers, filters suppressed findings, flags
// suppressions that no longer suppress anything, and returns the
// remaining diagnostics sorted by position.
func (r *Runner) Finish() []Diagnostic {
	var progs []ProgramAnalyzer
	for _, a := range r.Analyzers {
		if p, ok := a.(ProgramAnalyzer); ok {
			progs = append(progs, p)
		}
	}
	if len(progs) > 0 && len(r.pkgs) > 0 {
		r.engine = NewEngine(r.pkgs)
		pp := &ProgramPass{Engine: r.engine}
		pp.report = func(check string, pos token.Pos, msg string) {
			r.add(check, r.engine.Fset.Position(pos), msg)
		}
		for _, p := range progs {
			p.RunProgram(pp)
		}
	}
	for _, a := range r.Analyzers {
		if f, ok := a.(Finisher); ok {
			f.Finish(func(check string, pos token.Position, msg string) {
				r.add(check, pos, msg)
			})
		}
	}
	kept := r.diags[:0]
	for _, d := range r.diags {
		if !r.suppressed(d) {
			kept = append(kept, d)
		}
	}
	// A suppression that matched nothing is dead weight — and, after an
	// engine upgrade, usually a discharged proof obligation. Deleting it
	// is mandatory: stale ignores hide future regressions. Only enabled
	// checks count: a suppression of a check that did not run this pass
	// had nothing to match and proves nothing either way.
	enabled := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		enabled[a.Name()] = true
	}
	for _, s := range r.supps {
		if s.matched || !enabled[s.check] {
			continue
		}
		kept = append(kept, r.makeDiag(checkSuppression,
			token.Position{Filename: s.file, Line: s.line, Column: 1},
			fmt.Sprintf("unused suppression: no %s finding on this or the next line — delete it", s.check)))
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return kept
}

func (r *Runner) add(check string, pos token.Position, msg string) {
	r.diags = append(r.diags, r.makeDiag(check, pos, msg))
}

func (r *Runner) makeDiag(check string, pos token.Position, msg string) Diagnostic {
	file := pos.Filename
	if r.TrimDir != "" {
		if rel, err := filepath.Rel(r.TrimDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return Diagnostic{
		Check:   check,
		File:    file,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: msg,
	}
}

// knownChecks is the set of check names a suppression may legally target:
// the full registry plus anything extra this runner carries — NOT just the
// enabled subset, or a run scoped with -checks would reclassify every
// suppression of a disabled check as malformed.
func (r *Runner) knownChecks() map[string]bool {
	defaults := DefaultAnalyzers()
	known := make(map[string]bool, len(defaults)+len(r.Analyzers))
	for _, a := range defaults {
		known[a.Name()] = true
	}
	for _, a := range r.Analyzers {
		known[a.Name()] = true
	}
	return known
}

func (r *Runner) suppressed(d Diagnostic) bool {
	if d.Check == checkSuppression {
		return false // the suppression machinery cannot silence itself
	}
	for i := range r.supps {
		s := &r.supps[i]
		if s.check != d.Check {
			continue
		}
		if !sameFile(s.file, d.File, r.TrimDir) {
			continue
		}
		// A suppression covers its own line and the line below it
		// (comment-above style).
		if d.Line == s.line || d.Line == s.line+1 {
			s.matched = true
			return true
		}
	}
	return false
}

func sameFile(abs, diagFile, trim string) bool {
	if abs == diagFile {
		return true
	}
	if trim == "" {
		return false
	}
	rel, err := filepath.Rel(trim, abs)
	return err == nil && rel == diagFile
}

// ---- shared AST/type helpers used by several analyzers ----

// calleeFunc resolves the called function or method of a call expression,
// or nil when the callee is not a named function (builtin, func value).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathHasSuffix reports whether obj's defining package path matches the
// given path suffix (e.g. "internal/obs" matches "repro/internal/obs").
func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix) || strings.HasSuffix(path, suffix)
}

// deref unwraps pointer types.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedType returns the named type of t (through pointers), or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// recvNamed returns the receiver's named type of a method, or nil for
// plain functions.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedType(sig.Recv().Type())
}

// isMethodOn reports whether fn is a method named name on the named type
// typeName defined in a package whose path ends in pkgSuffix.
func isMethodOn(fn *types.Func, pkgSuffix, typeName string, names ...string) bool {
	named := recvNamed(fn)
	if named == nil || named.Obj().Name() != typeName {
		return false
	}
	if !pkgPathHasSuffix(named.Obj().Pkg(), pkgSuffix) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// chainString renders a selector chain like "s.tree" or "c.mu"; it returns
// "" for expressions that are not pure ident/selector chains.
func chainString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := chainString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	default:
		return ""
	}
}

// funcLitRanges collects the position ranges of every function literal
// under root, so analyzers can treat closure bodies as separate lexical
// scopes (a closure runs at an unknown time: lock regions and span
// lifetimes must not flow into it).
func funcLitRanges(root ast.Node) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ranges = append(ranges, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	return ranges
}

// scopeAt returns the innermost function-literal range containing pos, or
// (-1) when pos belongs to the outer function body.
func scopeAt(ranges [][2]token.Pos, pos token.Pos) int {
	best := -1
	for i, r := range ranges {
		if r[0] <= pos && pos < r[1] {
			// Innermost literal: the narrowest containing range.
			if best == -1 || (ranges[best][0] <= r[0] && r[1] <= ranges[best][1]) {
				best = i
			}
		}
	}
	return best
}
