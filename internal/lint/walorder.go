package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
)

// walOrder enforces SL-Remote's write-ahead discipline: inside a package
// named slremote, every call to an apply*Locked state-transition helper
// must be dominated by a *checked* logLocked call in the same function —
// the WAL records the outcome before the mutation is applied, and a log
// failure aborts the mutation (`if err := s.logLocked(ev); err != nil {
// return ... }`).
//
// Functions themselves named apply*Locked are exempt: they are the replay
// fold (applyEventLocked and the helpers it shares with the live paths),
// and replay must not re-log what it reads from the WAL.
type walOrder struct{}

// NewWALOrder returns the walorder analyzer.
func NewWALOrder() Analyzer { return &walOrder{} }

func (*walOrder) Name() string { return "walorder" }
func (*walOrder) Doc() string {
	return "in slremote, apply*Locked mutations must be preceded by a checked logLocked call"
}

var applyLockedRE = regexp.MustCompile(`^apply.*Locked$`)

func (a *walOrder) Run(pass *Pass) {
	if pass.Pkg.Name() != "slremote" {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if applyLockedRE.MatchString(fd.Name.Name) {
				continue // replay fold: must not re-log
			}
			a.checkFunc(pass, fd)
		}
	}
}

type walEvent struct {
	pos   token.Pos
	scope int
	kind  walEventKind
	name  string
}

type walEventKind uint8

const (
	evCheckedLog   walEventKind = iota // if err := s.logLocked(ev); err != nil { return ... }
	evUncheckedLog                     // logLocked whose error is dropped or not aborted on
	evApplyCall                        // call to apply*Locked
)

func (a *walOrder) checkFunc(pass *Pass, fd *ast.FuncDecl) {
	lits := funcLitRanges(fd.Body)
	var events []walEvent

	// Classify logLocked calls by walking statements with block context:
	// the checked form is an if-init whose body aborts with return.
	var walkStmts func(stmts []ast.Stmt)
	classifyLog := func(call *ast.CallExpr, checked bool) {
		kind := evUncheckedLog
		if checked {
			kind = evCheckedLog
		}
		events = append(events, walEvent{
			pos: call.Pos(), scope: scopeAt(lits, call.Pos()), kind: kind,
		})
	}
	walkStmts = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.IfStmt:
				if call := logLockedCallIn(s.Init); call != nil {
					classifyLog(call, isNilCheck(s.Cond) && bodyAborts(s.Body))
				}
				walkStmts(s.Body.List)
				if s.Else != nil {
					if blk, ok := s.Else.(*ast.BlockStmt); ok {
						walkStmts(blk.List)
					} else if elif, ok := s.Else.(*ast.IfStmt); ok {
						walkStmts([]ast.Stmt{elif})
					}
				}
			case *ast.AssignStmt:
				if call := logLockedCallIn(s); call != nil {
					// err := s.logLocked(ev) followed by an aborting
					// `if err != nil` is the checked two-statement form.
					checked := false
					if next, ok := nextIf(stmts, i); ok {
						checked = isNilCheck(next.Cond) && bodyAborts(next.Body)
					}
					classifyLog(call, checked)
				}
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && isLogLockedCall(call) {
					classifyLog(call, false)
				}
			case *ast.BlockStmt:
				walkStmts(s.List)
			case *ast.ForStmt:
				walkStmts(s.Body.List)
			case *ast.RangeStmt:
				walkStmts(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkStmts(cc.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkStmts(cc.Body)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						walkStmts(cc.Body)
					}
				}
			case *ast.DeferStmt, *ast.GoStmt:
				// Closure bodies are collected by the apply scan below; a
				// logLocked inside one never dominates an apply outside.
			}
		}
	}
	walkStmts(fd.Body.List)

	// apply*Locked call sites.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if applyLockedRE.MatchString(name) {
			events = append(events, walEvent{
				pos: call.Pos(), scope: scopeAt(lits, call.Pos()),
				kind: evApplyCall, name: name,
			})
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	logged := make(map[int]walEventKind) // scope -> best logLocked kind seen
	seenLog := make(map[int]bool)
	for _, ev := range events {
		switch ev.kind {
		case evCheckedLog, evUncheckedLog:
			if !seenLog[ev.scope] || ev.kind == evCheckedLog {
				logged[ev.scope] = ev.kind
			}
			seenLog[ev.scope] = true
		case evApplyCall:
			if !seenLog[ev.scope] {
				pass.Reportf(a.Name(), ev.pos,
					"%s applied without a preceding logLocked: the mutation would not survive a crash (write-ahead discipline)", ev.name)
			} else if logged[ev.scope] != evCheckedLog {
				pass.Reportf(a.Name(), ev.pos,
					"%s applied after an unchecked logLocked: a WAL append failure must abort the mutation", ev.name)
			}
		}
	}
}

// logLockedCallIn extracts a logLocked call from an assignment or if-init
// statement like `err := s.logLocked(ev)`.
func logLockedCallIn(stmt ast.Stmt) *ast.CallExpr {
	asg, ok := stmt.(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 {
		return nil
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isLogLockedCall(call) {
		return nil
	}
	// `_ = s.logLocked(ev)` drops the error: treat as unchecked by
	// reporting it through the ExprStmt-like path (caller still records
	// the call; checked-ness is decided by the surrounding form).
	return call
}

func isLogLockedCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "logLocked"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "logLocked"
	}
	return false
}

// isNilCheck matches `X != nil` conditions.
func isNilCheck(cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	return isNilIdent(bin.X) != isNilIdent(bin.Y) // exactly one side is nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// bodyAborts reports whether a block unconditionally leaves the function
// on its main path (return or panic as a top-level statement).
func bodyAborts(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// nextIf returns the next statement after index i when it is an IfStmt.
func nextIf(stmts []ast.Stmt, i int) (*ast.IfStmt, bool) {
	if i+1 >= len(stmts) {
		return nil, false
	}
	next, ok := stmts[i+1].(*ast.IfStmt)
	return next, ok
}
