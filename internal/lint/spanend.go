package lint

import (
	"go/ast"
	"go/token"
)

// spanEnd verifies that every span created with obs Tracer.Start or
// Tracer.StartLinked is ended on all paths — an unended span never reaches
// the trace ring buffer, so the operation silently disappears from /trace.
//
// The check is lexical:
//
//   - the Start result must be bound to a variable (a dropped result can
//     never be ended);
//   - `defer span.End(err)` anywhere in the function settles it;
//   - an End referenced from a closure settles it (the closure owns the
//     span's lifetime — wire.Server's idempotent `done` pattern);
//   - otherwise every return statement lexically after the Start must be
//     preceded by an End call: an early `return` between Start and End
//     leaks the span.
type spanEnd struct{}

// NewSpanEnd returns the spanend analyzer.
func NewSpanEnd() Analyzer { return &spanEnd{} }

func (*spanEnd) Name() string { return "spanend" }
func (*spanEnd) Doc() string {
	return "every Tracer.Start/StartLinked span must be ended on all paths (typically via defer)"
}

func (a *spanEnd) Run(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(pass, fd)
		}
	}
}

// isTracerStart reports whether call is obs Tracer.Start or StartLinked.
func isTracerStart(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	return isMethodOn(fn, "internal/obs", "Tracer", "Start", "StartLinked")
}

func (a *spanEnd) checkFunc(pass *Pass, fd *ast.FuncDecl) {
	lits := funcLitRanges(fd.Body)

	// Bind Start calls to variables; flag dropped results.
	type binding struct {
		objKey   any // types.Object of the bound variable
		startPos token.Pos
		scope    int
	}
	var bindings []binding
	parentOf := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parentOf[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTracerStart(pass, call) {
			return true
		}
		parent := parentOf[call]
		switch p := parent.(type) {
		case *ast.AssignStmt:
			// span := tr.Start(...) — possibly one of several RHS values.
			for i, rhs := range p.Rhs {
				if rhs != call && ast.Unparen(rhs) != call {
					continue
				}
				idx := i
				if len(p.Lhs) != len(p.Rhs) {
					idx = 0
				}
				if id, ok := ast.Unparen(p.Lhs[idx]).(*ast.Ident); ok && id.Name != "_" {
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj != nil {
						bindings = append(bindings, binding{
							objKey: obj, startPos: call.Pos(), scope: scopeAt(lits, call.Pos()),
						})
						return true
					}
				}
				pass.Reportf(a.Name(), call.Pos(),
					"span from Tracer.%s is not bound to a variable: it can never be ended", startName(pass, call))
			}
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if v != call && ast.Unparen(v) != call {
					continue
				}
				if i < len(p.Names) {
					if obj := pass.Info.Defs[p.Names[i]]; obj != nil {
						bindings = append(bindings, binding{
							objKey: obj, startPos: call.Pos(), scope: scopeAt(lits, call.Pos()),
						})
						return true
					}
				}
			}
		case *ast.SelectorExpr:
			// Chained call: tr.Start("x").End(nil) is fine, anything else
			// leaks the span.
			if p.Sel.Name != "End" {
				pass.Reportf(a.Name(), call.Pos(),
					"span from Tracer.%s escapes without a binding: bind it and End it on all paths", startName(pass, call))
			}
		case *ast.ReturnStmt:
			// `return t.Start(name)` hands the span to the caller, who now
			// owns ending it (obs's own Start wrappers do this).
		default:
			pass.Reportf(a.Name(), call.Pos(),
				"span from Tracer.%s is dropped: bind the result and End it on all paths", startName(pass, call))
		}
		return true
	})

	if len(bindings) == 0 {
		return
	}

	// For each bound span, gather End calls and defer/closure settlement.
	for _, b := range bindings {
		settled := false
		var endPositions []token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if settled {
				return false
			}
			switch n := n.(type) {
			case *ast.DeferStmt:
				if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
					if usesObj(pass, sel.X, b.objKey) {
						settled = true
						return false
					}
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
					if usesObj(pass, sel.X, b.objKey) {
						if scopeAt(lits, n.Pos()) != b.scope {
							// End lives in a closure: the closure owns the
							// span's lifetime (wire.Server's done pattern).
							settled = true
							return false
						}
						endPositions = append(endPositions, n.Pos())
					}
				}
			case *ast.ReturnStmt:
				// Returning the span hands End ownership to the caller
				// (Span.Child builds a sub-span and returns it).
				if scopeAt(lits, n.Pos()) == b.scope {
					for _, res := range n.Results {
						if usesObj(pass, res, b.objKey) {
							settled = true
							return false
						}
					}
				}
			}
			return true
		})
		if settled {
			continue
		}
		if len(endPositions) == 0 {
			pass.Reportf(a.Name(), b.startPos,
				"span started here is never ended: End it on all paths (typically `defer span.End(err)`)")
			continue
		}
		// Every return after the Start (in the same scope) must be
		// preceded by an End.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() <= b.startPos || scopeAt(lits, ret.Pos()) != b.scope {
				return true
			}
			for _, ep := range endPositions {
				if ep > b.startPos && ep < ret.Pos() {
					return true
				}
			}
			pass.Reportf(a.Name(), ret.Pos(),
				"return leaks the span started at %s: no End call on this path",
				pass.Fset.Position(b.startPos))
			return true
		})
	}
}

func startName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass.Info, call); fn != nil {
		return fn.Name()
	}
	return "Start"
}

// usesObj reports whether expr is an identifier resolving to obj.
func usesObj(pass *Pass, expr ast.Expr, obj any) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	if u := pass.Info.Uses[id]; u != nil && u == obj {
		return true
	}
	if d := pass.Info.Defs[id]; d != nil && d == obj {
		return true
	}
	return false
}
