package lint

import (
	"go/types"
	"sort"
)

// guardedBy infers which fields of a mutex-carrying struct are guarded by
// which mutex, then flags every access that does not hold the guard.
//
// Inference is by majority: a field accessed under mutex m in a strict
// majority of its (non-fresh) accesses — and at least twice — is inferred
// guarded by m. An explicit annotation on the field overrides inference:
//
//	type Tree struct {
//		mu    sync.RWMutex
//		nodes map[string]*node // guardedby: mu
//		hits  uint64           // guardedby: none
//	}
//
// "guardedby: none" opts a field out entirely (e.g. atomics). Structs may
// carry several mutexes — each field is matched to its own guard — and
// RWMutex strength is checked: reads are legal under RLock or Lock,
// writes require Lock. Accesses to unpublished objects (fresh locals,
// constructors, restore walks over fresh receivers) are exempt, which is
// what lets constructor code initialize fields without locks and keeps
// the planned striped leasetree verifiable rather than suppressed.
//
// Fields never written outside construction are immutable-after-publish
// and never inferred; write-locked entry via the *Locked naming
// convention counts as holding the receiver's mu.
type guardedBy struct{}

// NewGuardedBy returns the guardedby analyzer.
func NewGuardedBy() Analyzer { return &guardedBy{} }

func (*guardedBy) Name() string { return "guardedby" }
func (*guardedBy) Doc() string {
	return "struct fields guarded by a mutex (inferred or annotated) are only accessed with it held"
}

// Run is a no-op: guardedby needs program-wide access counts.
func (a *guardedBy) Run(*Pass) {}

// fieldAccess is one observed access to a guarded-candidate field.
type fieldAccess struct {
	ev   lockEvent
	held map[string]lockStrength // this object's mutex fields → strength
}

func (a *guardedBy) RunProgram(pass *ProgramPass) {
	e := pass.Engine

	// Collect every access to a field of a mutex-carrying struct, with
	// the holding state of that object's own mutexes at the access.
	byField := make(map[fieldKey][]fieldAccess)
	for _, fi := range e.Funcs() {
		facts := e.lockFactsOf(fi)
		for i, ev := range facts.events {
			if ev.kind != evFieldAccess {
				continue
			}
			if unpublishedObj(e, fi, facts, ev.baseObj, ev.pos) {
				continue // construction: nothing can race yet
			}
			h := facts.held(i)
			held := make(map[string]lockStrength, len(ev.sinfo.mutexes))
			for mu := range ev.sinfo.mutexes {
				held[mu] = h[ev.chain+"."+mu].strength
			}
			byField[ev.fkey] = append(byField[ev.fkey], fieldAccess{ev: ev, held: held})
		}
	}

	// Bad annotations are findings regardless of access counts.
	for _, tn := range sortedStructKeys(e) {
		si := e.structs[tn]
		for field, mu := range si.guardedBy {
			if mu == "none" {
				continue
			}
			if _, ok := si.mutexes[mu]; !ok {
				pass.Reportf(a.Name(), si.guardedByPos[field],
					"guardedby annotation on %s.%s names unknown mutex field %q",
					tn.Name(), field, mu)
			}
		}
	}

	for _, fkey := range sortedFieldKeys(byField) {
		accesses := byField[fkey]
		si := e.structs[fkey.typ]
		if si == nil {
			continue
		}
		guard, ok := a.guardFor(si, fkey.field, accesses)
		if !ok {
			continue
		}
		rw := si.mutexes[guard]
		tname := fkey.typ.Name()
		muName := tname + "." + guard
		for _, acc := range accesses {
			s := acc.held[guard]
			switch {
			case acc.ev.isWrite && s == heldRead && rw:
				pass.Reportf(a.Name(), acc.ev.pos,
					"write to %s.%s under RLock: %s must be write-locked",
					tname, fkey.field, muName)
			case acc.ev.isWrite && s != heldWrite:
				pass.Reportf(a.Name(), acc.ev.pos,
					"write to %s.%s without %s held", tname, fkey.field, muName)
			case !acc.ev.isWrite && s == heldNone:
				pass.Reportf(a.Name(), acc.ev.pos,
					"read of %s.%s without %s held", tname, fkey.field, muName)
			}
		}
	}
}

// guardFor decides which mutex guards the field: an explicit annotation
// wins; otherwise a mutex held for a strict majority (and at least two)
// of the accesses is inferred — but only for fields that are ever written
// after publication (immutable fields need no guard).
func (a *guardedBy) guardFor(si *structInfo, field string, accesses []fieldAccess) (string, bool) {
	if ann, ok := si.guardedBy[field]; ok {
		if ann == "none" {
			return "", false
		}
		if _, known := si.mutexes[ann]; !known {
			return "", false // bad annotation, reported separately
		}
		return ann, true
	}
	writes := 0
	for _, acc := range accesses {
		if acc.ev.isWrite {
			writes++
		}
	}
	if writes == 0 {
		return "", false
	}
	best, bestCnt := "", 0
	for _, mu := range sortedMutexNames(si) {
		cnt := 0
		for _, acc := range accesses {
			if acc.held[mu] != heldNone {
				cnt++
			}
		}
		if cnt > bestCnt {
			best, bestCnt = mu, cnt
		}
	}
	if bestCnt < 2 || 2*bestCnt <= len(accesses) {
		return "", false
	}
	return best, true
}

// ---- deterministic iteration helpers ----

func sortedStructKeys(e *Engine) []*types.TypeName {
	keys := make([]*types.TypeName, 0, len(e.structs))
	for tn := range e.structs {
		keys = append(keys, tn)
	}
	sort.Slice(keys, func(i, j int) bool { return typeClass(keys[i]) < typeClass(keys[j]) })
	return keys
}

func sortedFieldKeys(m map[fieldKey][]fieldAccess) []fieldKey {
	keys := make([]fieldKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

func sortedMutexNames(si *structInfo) []string {
	names := make([]string, 0, len(si.mutexes))
	for mu := range si.mutexes {
		names = append(names, mu)
	}
	sort.Strings(names)
	return names
}
