package lint

// lockfacts.go computes, per function, the lexical lock facts shared by
// the lockdisc, guardedby, and lockorder analyzers: one position-sorted
// event stream (mutex operations, *Locked calls, resolved call sites,
// struct-field accesses) simulated once to record which lock chains are
// held at every event. Closure bodies are separate lexical scopes, as in
// v1 — but a closure that provably runs only at its direct call sites
// (bound to a local used solely in call position, or an IIFE) inherits
// the intersection of the held sets at those sites.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockStrength orders how a mutex is held.
type lockStrength uint8

const (
	heldNone  lockStrength = iota
	heldRead               // RLock
	heldWrite              // Lock / TryLock
)

// heldInfo is one held lock: its strength and canonical class.
type heldInfo struct {
	strength lockStrength
	class    string
}

type lockEventKind uint8

const (
	evLock        lockEventKind = iota // Lock / RLock / TryLock
	evUnlock                           // non-deferred Unlock / RUnlock
	evDeferUnlock                      // deferred Unlock (region stays open)
	evUnlockAbort                      // Unlock in an aborting branch (outer region stays open)
	evLockedCall                       // call to a *Locked function
	evCall                             // resolved call site (static or closure-bound)
	evFieldAccess                      // access to a field of a mutex-carrying struct
)

// lockEvent is one entry of the per-function event stream.
type lockEvent struct {
	pos   token.Pos
	scope int // funcLit index, -1 for the function body
	kind  lockEventKind
	chain string // "s.mu" for lock ops; "s" for *Locked calls and accesses
	class string // canonical lock class for lock ops ("" when unresolvable)
	read  bool   // RLock/RUnlock
	name  string // method/field name

	callee       *FuncInfo    // resolved callee (evCall, evLockedCall)
	goCall       bool         // call sits in a go statement
	deferCall    bool         // call sits in a defer statement
	closureScope int          // directly-invoked closure's scope index, -1 otherwise
	baseObj      types.Object // root object of a single-ident base chain
	fkey         fieldKey     // evFieldAccess
	isWrite      bool         // evFieldAccess
	sinfo        *structInfo  // evFieldAccess owner
}

// lockFacts is the computed lock model of one function.
type lockFacts struct {
	built       bool
	freshLocals map[types.Object]bool
	// freshUntil: locals that start fresh but are published at a known
	// position; accesses strictly before it are still unpublished.
	freshUntil map[types.Object]token.Pos
	events     []lockEvent
	// heldAt[i]: chains held (per this event's scope) just before event i.
	heldAt []map[string]heldInfo
	// inherited[scope]: holds a closure scope inherits from its call sites.
	inherited map[int]map[string]heldInfo
	lits      [][2]token.Pos
}

// held returns the effective held set at event i: the lexical holds of
// the event's scope plus anything the scope inherits from call sites.
func (f *lockFacts) held(i int) map[string]heldInfo {
	ev := f.events[i]
	inh := f.inherited[ev.scope]
	if len(inh) == 0 {
		return f.heldAt[i]
	}
	merged := make(map[string]heldInfo, len(f.heldAt[i])+len(inh))
	for k, v := range inh {
		merged[k] = v
	}
	for k, v := range f.heldAt[i] {
		if have, ok := merged[k]; !ok || v.strength > have.strength {
			merged[k] = v
		}
	}
	return merged
}

// heldStrength looks up one chain in the effective held set at event i.
func (f *lockFacts) heldStrength(i int, chain string) lockStrength {
	return f.held(i)[chain].strength
}

// mutexMethodNames are the sync.Mutex/RWMutex operations the simulation
// models.
var mutexMethodNames = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "Unlock": true, "RUnlock": true,
}

// lockFactsOf builds (and caches) the lock facts for fi.
func (e *Engine) lockFactsOf(fi *FuncInfo) *lockFacts {
	if fi.lock != nil && fi.lock.built {
		return fi.lock
	}
	if fi.lock == nil {
		fi.lock = &lockFacts{}
	}
	f := fi.lock
	f.built = true
	f.freshLocals = e.freshLocals(fi)
	f.lits = funcLitRanges(fi.Decl.Body)
	f.inherited = make(map[int]map[string]heldInfo)

	info := fi.Pkg.Info
	body := fi.Decl.Body

	// Call-position context: deferred and go-spawned calls.
	deferred := make(map[*ast.CallExpr]bool)
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.GoStmt:
			goCalls[n.Call] = true
		}
		return true
	})
	aborting := abortingUnlockPositions(body)

	// Write positions: selectors assigned to, incremented, or
	// address-taken count as writes.
	writeSel := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writeSel[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writeSel[ast.Unparen(n.X)] = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				writeSel[ast.Unparen(n.X)] = true
			}
		}
		return true
	})

	// Closure bindings: locals holding exactly one FuncLit and used only
	// in direct (non-go, non-defer) call position inherit held sets.
	bound, callUse := e.closureBindings(fi, deferred, goCalls)

	litIndex := func(pos token.Pos) int {
		for i, r := range f.lits {
			if r[0] == pos {
				return i
			}
		}
		return -1
	}
	rootObj := func(chain string, x ast.Expr) types.Object {
		if strings.Contains(chain, ".") || chain == "" {
			return nil
		}
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			return nil
		}
		return info.Uses[id]
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			e.collectCallEvent(fi, f, n, info, deferred, goCalls, aborting, bound, litIndex, rootObj)
		case *ast.SelectorExpr:
			v, ok := info.Uses[n.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			tv, ok := info.Types[n.X]
			if !ok {
				return true
			}
			sinfo := e.structInfoFor(tv.Type)
			if sinfo == nil {
				return true
			}
			if _, isMu := sinfo.mutexes[n.Sel.Name]; isMu {
				return true // mutex fields are lock-op territory
			}
			chain := chainString(n.X)
			if chain == "" {
				return true // computed base: cannot match held chains
			}
			f.events = append(f.events, lockEvent{
				pos: n.Sel.Pos(), scope: scopeAt(f.lits, n.Pos()),
				kind: evFieldAccess, chain: chain, name: n.Sel.Name,
				isWrite: writeSel[n], baseObj: rootObj(chain, n.X),
				fkey:  fieldKey{typ: sinfo.obj, field: n.Sel.Name},
				sinfo: sinfo, closureScope: -1,
			})
		}
		return true
	})
	_ = callUse

	sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].pos < f.events[j].pos })

	// Simulate: per-scope held state in lexical order, snapshotting the
	// state just before each event. A *Locked function starts with its
	// receiver's mu write-held — that is the convention's contract.
	state := make(map[int]map[string]heldInfo)
	if recv := receiverName(fi.Decl); recv != "" && strings.HasSuffix(fi.Fn.Name(), "Locked") {
		class := ""
		if named := recvNamed(fi.Fn); named != nil {
			if si := e.structs[named.Obj()]; si != nil {
				if _, ok := si.mutexes["mu"]; ok {
					class = typeClass(named.Obj()) + ".mu"
				}
			}
		}
		state[-1] = map[string]heldInfo{recv + ".mu": {strength: heldWrite, class: class}}
	}
	f.heldAt = make([]map[string]heldInfo, len(f.events))
	for i, ev := range f.events {
		cur := state[ev.scope]
		if cur == nil {
			cur = make(map[string]heldInfo)
			state[ev.scope] = cur
		}
		snap := make(map[string]heldInfo, len(cur))
		for k, v := range cur {
			snap[k] = v
		}
		f.heldAt[i] = snap
		switch ev.kind {
		case evLock:
			if ev.chain != "" {
				strength := heldWrite
				if ev.read {
					strength = heldRead
				}
				if have, ok := cur[ev.chain]; !ok || strength > have.strength {
					cur[ev.chain] = heldInfo{strength: strength, class: ev.class}
				}
			}
		case evUnlock:
			if ev.chain != "" {
				delete(cur, ev.chain)
			}
		}
	}

	// Closure inheritance: intersection of held sets over all direct call
	// sites, iterated so nested closures converge.
	sites := make(map[int][]int)
	for i, ev := range f.events {
		if ev.closureScope >= 0 {
			sites[ev.closureScope] = append(sites[ev.closureScope], i)
		}
	}
	for round := 0; round < 3; round++ {
		for scope, idxs := range sites {
			var inter map[string]heldInfo
			for _, i := range idxs {
				h := f.held(i)
				if inter == nil {
					inter = make(map[string]heldInfo, len(h))
					for k, v := range h {
						inter[k] = v
					}
					continue
				}
				for k, v := range inter {
					hv, ok := h[k]
					if !ok {
						delete(inter, k)
						continue
					}
					if hv.strength < v.strength {
						inter[k] = hv
					}
				}
			}
			if inter == nil {
				inter = map[string]heldInfo{}
			}
			f.inherited[scope] = inter
		}
	}
	return f
}

// collectCallEvent classifies one call expression into lock-op, *Locked,
// resolved-call, or closure-call events.
func (e *Engine) collectCallEvent(fi *FuncInfo, f *lockFacts, call *ast.CallExpr, info *types.Info,
	deferred, goCalls map[*ast.CallExpr]bool, aborting map[token.Pos]bool,
	bound map[types.Object]int, litIndex func(token.Pos) int, rootObj func(string, ast.Expr) types.Object) {

	scope := scopeAt(f.lits, call.Pos())
	fn := calleeFunc(info, call)

	// Mutex operations: type-based (any sync.Mutex/RWMutex method), with
	// the v1 name-based ".mu" chain as fallback for non-sync mutexes.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && mutexMethodNames[sel.Sel.Name] {
		isSyncMutex := fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
			recvNamed(fn) != nil && (recvNamed(fn).Obj().Name() == "Mutex" || recvNamed(fn).Obj().Name() == "RWMutex")
		chain := chainString(sel.X)
		if isSyncMutex || (chain != "" && strings.HasSuffix(chain, ".mu")) {
			name := sel.Sel.Name
			kind := evLock
			if name == "Unlock" || name == "RUnlock" {
				kind = evUnlock
				switch {
				case deferred[call]:
					kind = evDeferUnlock
				case aborting[call.Pos()]:
					kind = evUnlockAbort
				}
			}
			f.events = append(f.events, lockEvent{
				pos: call.Pos(), scope: scope, kind: kind, chain: chain,
				class: e.lockClassOf(fi, sel.X), name: name,
				read: name == "RLock" || name == "RUnlock", closureScope: -1,
			})
			return
		}
	}

	ev := lockEvent{
		pos: call.Pos(), scope: scope, kind: evCall,
		goCall: goCalls[call], deferCall: deferred[call], closureScope: -1,
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if strings.HasSuffix(fun.Sel.Name, "Locked") {
			ev.kind = evLockedCall
			ev.name = fun.Sel.Name
			ev.chain = chainString(fun.X)
			ev.baseObj = rootObj(ev.chain, fun.X)
		}
	case *ast.Ident:
		if strings.HasSuffix(fun.Name, "Locked") {
			ev.kind = evLockedCall
			ev.name = fun.Name
		} else if obj := info.Uses[fun]; obj != nil {
			if scopeIdx, ok := bound[obj]; ok {
				ev.closureScope = scopeIdx
			}
		}
	case *ast.FuncLit:
		ev.closureScope = litIndex(fun.Pos()) // IIFE
	}
	if fn != nil {
		ev.callee = e.funcs[fn]
	}
	if ev.kind == evCall && ev.callee == nil && ev.closureScope < 0 {
		return // nothing any analyzer can use
	}
	f.events = append(f.events, ev)
}

// closureBindings finds local variables bound to exactly one function
// literal and used only in direct call position (never deferred, spawned,
// passed, or stored): calls through them transfer the caller's held set
// into the literal's scope. Returns the obj→scope map and the set of
// idents that are call-position uses.
func (e *Engine) closureBindings(fi *FuncInfo, deferred, goCalls map[*ast.CallExpr]bool) (map[types.Object]int, map[*ast.Ident]bool) {
	info := fi.Pkg.Info
	lits := funcLitRanges(fi.Decl.Body)
	litIdx := func(pos token.Pos) int {
		for i, r := range lits {
			if r[0] == pos {
				return i
			}
		}
		return -1
	}
	cand := make(map[types.Object]int)
	assignments := make(map[types.Object]int)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, lhs := range asg.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, isSig := obj.Type().(*types.Signature); !isSig {
				continue
			}
			assignments[obj]++
			if lit, ok := ast.Unparen(asg.Rhs[i]).(*ast.FuncLit); ok {
				cand[obj] = litIdx(lit.Pos())
			}
		}
		return true
	})
	// A second assignment, or any use outside direct call position,
	// disqualifies.
	callUse := make(map[*ast.Ident]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isCand := cand[obj]; !isCand {
			return true
		}
		if deferred[call] || goCalls[call] {
			delete(cand, obj) // runs at an unknown time
			return true
		}
		callUse[id] = true
		return true
	})
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isCand := cand[obj]; isCand && !callUse[id] {
			delete(cand, obj)
		}
		return true
	})
	for obj := range cand {
		if assignments[obj] != 1 || cand[obj] < 0 {
			delete(cand, obj)
		}
	}
	return cand, callUse
}

// lockClassOf renders the canonical class of a mutex expression: a field
// mutex is "<pkg>.<Type>.<field>", a package-level mutex "<pkg>.<var>",
// and a function-local mutex "<pkg>.<func>.<var>".
func (e *Engine) lockClassOf(fi *FuncInfo, muExpr ast.Expr) string {
	info := fi.Pkg.Info
	switch x := ast.Unparen(muExpr).(type) {
	case *ast.SelectorExpr:
		v, ok := info.Uses[x.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return ""
		}
		tv, ok := info.Types[x.X]
		if !ok {
			return ""
		}
		named := namedType(tv.Type)
		if named == nil {
			return ""
		}
		return typeClass(named.Obj()) + "." + x.Sel.Name
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		pkgPath := fi.Fn.Pkg().Path()
		if v.Parent() == fi.Pkg.Types.Scope() {
			return pkgPath + "." + v.Name()
		}
		return pkgPath + "." + funcDisplayName(fi.Fn) + "." + v.Name()
	}
	return ""
}

// typeClass renders "<pkgpath>.<TypeName>".
func typeClass(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// unpublishedObj reports whether obj is provably unreachable by any other
// goroutine while fi runs: a fresh local of fi, or fi's receiver when
// every analyzed call site passes an unpublished receiver. This is the
// escape-aware exemption lockdisc and guardedby share — locking an object
// nothing else can see proves nothing, and not locking it risks nothing.
func unpublishedObj(e *Engine, fi *FuncInfo, facts *lockFacts, obj types.Object, pos token.Pos) bool {
	if obj == nil {
		return false
	}
	if facts.freshLocals[obj] {
		return true
	}
	if until, ok := facts.freshUntil[obj]; ok && pos < until {
		return true // before the object's first publication point
	}
	if idx, ok := fi.paramIdx[obj]; ok && idx == 0 && fi.Decl.Recv != nil {
		return e.freshOnly[fi.Fn]
	}
	return false
}
