package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// BenchmarkSllint measures a full cold run of the suite over this
// repository — parse, type-check, analyze, every package. This is the
// latency a CI gate or a pre-commit hook pays, so it rides through
// cmd/benchjson into the CI bench-smoke artifact like the other
// hot-path benchmarks. It also doubles as a cleanliness assertion: the
// repo at HEAD must produce zero findings.
func BenchmarkSllint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		runner := &lint.Runner{Analyzers: lint.DefaultAnalyzers(), TrimDir: loader.ModuleRoot()}
		for _, pkg := range pkgs {
			runner.Package(pkg)
		}
		if diags := runner.Finish(); len(diags) != 0 {
			b.Fatalf("repository is not sllint-clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
}
