package lint

import (
	"go/types"
	"strings"
)

// secretFlow is a Glamdring-style taint analysis, interprocedural since
// v2: values that carry key material (anything typed seccrypto.Key,
// identifiers named after root keys / OBKs / seal secrets, plaintext
// recovered by seccrypto.Validate) must never reach an untrusted sink:
//
//   - log.* and fmt.Print*/Fprint* output,
//   - fmt.Errorf / fmt.Sprintf when a %v/%s/%x/%X/%q verb consumes the
//     tainted argument,
//   - obs metric, label, or span-annotation values (the /metrics and
//     /trace endpoints are unauthenticated),
//   - fields of wire structs (the envelope is untrusted transport; secrets
//     must be sealed with seccrypto before crossing it),
//   - any analyzed function whose summary says the parameter flows to one
//     of the above — a helper that forwards a root key to log.Printf two
//     frames down is a sink at the call site.
//
// Taint also flows through the program: functions that return secrets
// taint their callers (summary result taint), struct fields that ever
// store a secret taint every read of that field, and sanitizer summaries
// transfer across call boundaries — a wrapper whose result is
// seccrypto.Protect(...) of its input is as clean as Protect itself.
//
// Sealing (seccrypto.Protect/ProtectWithKey), hashing, and channel
// sealing (ratls.SealForChannel, which only releases key bytes onto an
// attested connection) sanitize; values of untaintable shape (numbers,
// bools, errors) never carry taint, which
// keeps len(key.Bytes()) or an error derived from a key operation clean.
// The audited process-exit helper internal/cli.Fatalf is whitelisted: it
// is the single reviewed path for flag-validation fatals.
type secretFlow struct{}

// NewSecretFlow returns the secretflow analyzer.
func NewSecretFlow() Analyzer { return &secretFlow{} }

func (*secretFlow) Name() string { return "secretflow" }
func (*secretFlow) Doc() string {
	return "key material must not reach logs, fmt output, obs values, or unsealed wire fields — across function boundaries"
}

// Run is a no-op: secretflow needs whole-program summaries.
func (a *secretFlow) Run(*Pass) {}

// RunProgram replays the taint walk over every function in report mode:
// the engine's summaries are stable by now, so call sites answer from
// them and intrinsic taint reaching a sink becomes a diagnostic.
func (a *secretFlow) RunProgram(pass *ProgramPass) {
	for _, fi := range pass.Engine.Funcs() {
		lt := newLocalTaint(pass.Engine, fi, pass)
		lt.run()
	}
}

// secretName reports whether an identifier names key material by
// convention. Deliberately narrow: the robust signal is the seccrypto.Key
// type; names only catch raw []byte/string carriers of the same secrets.
func secretName(name string) bool {
	n := strings.ToLower(name)
	if n == "obk" {
		return true
	}
	return strings.Contains(n, "rootkey") ||
		strings.Contains(n, "sealsecret") ||
		strings.Contains(n, "sealkey")
}

// isSeccryptoKey reports whether t is seccrypto.Key (through pointers).
func isSeccryptoKey(t types.Type) bool {
	named := namedType(t)
	return named != nil && named.Obj().Name() == "Key" &&
		pkgPathHasSuffix(named.Obj().Pkg(), "internal/seccrypto")
}

// taintableType reports whether a value of type t can carry secret bytes.
// Numbers, bools, and errors cannot: len(key.Bytes()) and the error from a
// failed seal are clean by construction.
func taintableType(t types.Type) bool {
	if t == nil {
		return true // unknown: stay conservative
	}
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		// Multi-value call results: tainted if any element can be.
		for i := 0; i < tup.Len(); i++ {
			if taintableType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		return taintableType(u.Elem())
	case *types.Slice, *types.Array, *types.Struct, *types.Interface, *types.Map, *types.Chan:
		return true
	default:
		return false
	}
}

// isSanitizer reports whether fn launders secret inputs: authenticated
// sealing and cryptographic hashing produce values safe for untrusted
// sinks. ratls.SealForChannel qualifies because it refuses at runtime to
// release key bytes onto anything but an attested (or explicitly
// insecure) connection — the TLS record layer then seals them in
// transit, so its result is the channel-sealed form of the key.
func isSanitizer(fn *types.Func) bool {
	if pkgPathHasSuffix(fn.Pkg(), "internal/seccrypto") {
		switch fn.Name() {
		case "Protect", "ProtectWithKey", "SHA256Sum64", "Murmur64":
			return true
		}
	}
	if pkgPathHasSuffix(fn.Pkg(), "internal/ratls") && fn.Name() == "SealForChannel" {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "crypto/sha256" {
		return true
	}
	return false
}

// flaggedVerbs are the fmt verbs that render an argument's contents.
var flaggedVerbs = map[byte]bool{'v': true, 's': true, 'x': true, 'X': true, 'q': true}

// parseVerbs extracts the verb letters of a format string in argument
// order ('%%' is skipped; flags, width, and precision are ignored).
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.IndexByte("+-# 0123456789.*[]", format[i]) >= 0 {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

// isWireStruct reports whether t names a struct in the wire package.
func isWireStruct(t types.Type) bool {
	named := namedType(t)
	if named == nil || !pkgPathHasSuffix(named.Obj().Pkg(), "internal/wire") {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}
