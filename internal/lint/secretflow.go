package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// secretFlow is a Glamdring-style intra-procedural taint analysis: values
// that carry key material (anything typed seccrypto.Key, identifiers named
// after root keys / OBKs / seal secrets, plaintext recovered by
// seccrypto.Validate) must never reach an untrusted sink:
//
//   - log.* and fmt.Print*/Fprint* output,
//   - fmt.Errorf / fmt.Sprintf when a %v/%s/%x/%X/%q verb consumes the
//     tainted argument,
//   - obs metric, label, or span-annotation values (the /metrics and
//     /trace endpoints are unauthenticated),
//   - fields of wire structs (the envelope is untrusted transport; secrets
//     must be sealed with seccrypto before crossing it).
//
// Sealing (seccrypto.Protect/ProtectWithKey), hashing, and channel
// sealing (ratls.SealForChannel, which only releases key bytes onto an
// attested connection) sanitize; values of untaintable shape (numbers,
// bools, errors) never carry taint, which
// keeps len(key.Bytes()) or an error derived from a key operation clean.
// The audited process-exit helper internal/cli.Fatalf is whitelisted: it
// is the single reviewed path for flag-validation fatals.
type secretFlow struct{}

// NewSecretFlow returns the secretflow analyzer.
func NewSecretFlow() Analyzer { return &secretFlow{} }

func (*secretFlow) Name() string { return "secretflow" }
func (*secretFlow) Doc() string {
	return "key material must not reach logs, fmt output, obs values, or unsealed wire fields"
}

func (a *secretFlow) Run(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(pass, fd)
		}
	}
}

// secretName reports whether an identifier names key material by
// convention. Deliberately narrow: the robust signal is the seccrypto.Key
// type; names only catch raw []byte/string carriers of the same secrets.
func secretName(name string) bool {
	n := strings.ToLower(name)
	if n == "obk" {
		return true
	}
	return strings.Contains(n, "rootkey") ||
		strings.Contains(n, "sealsecret") ||
		strings.Contains(n, "sealkey")
}

// isSeccryptoKey reports whether t is seccrypto.Key (through pointers).
func isSeccryptoKey(t types.Type) bool {
	named := namedType(t)
	return named != nil && named.Obj().Name() == "Key" &&
		pkgPathHasSuffix(named.Obj().Pkg(), "internal/seccrypto")
}

// taintableType reports whether a value of type t can carry secret bytes.
// Numbers, bools, and errors cannot: len(key.Bytes()) and the error from a
// failed seal are clean by construction.
func taintableType(t types.Type) bool {
	if t == nil {
		return true // unknown: stay conservative
	}
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		// Multi-value call results: tainted if any element can be.
		for i := 0; i < tup.Len(); i++ {
			if taintableType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		return taintableType(u.Elem())
	case *types.Slice, *types.Array, *types.Struct, *types.Interface, *types.Map, *types.Chan:
		return true
	default:
		return false
	}
}

type taintState struct {
	pass    *Pass
	tainted map[types.Object]bool
}

func (a *secretFlow) checkFunc(pass *Pass, fd *ast.FuncDecl) {
	st := &taintState{pass: pass, tainted: make(map[types.Object]bool)}

	// Seed: every object declared in this function whose type is
	// seccrypto.Key, or whose name marks it as key material (params,
	// locals, receivers).
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if isSeccryptoKey(obj.Type()) || (secretName(id.Name) && taintableType(obj.Type())) {
			st.tainted[obj] = true
		}
		return true
	})

	// Propagate through assignments to a fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			anyRHS := false
			for _, rhs := range asg.Rhs {
				if st.exprTainted(rhs) {
					anyRHS = true
					break
				}
			}
			if !anyRHS {
				return true
			}
			for _, lhs := range asg.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || st.tainted[obj] || !taintableType(obj.Type()) {
					continue
				}
				st.tainted[obj] = true
				changed = true
			}
			return true
		})
	}

	// Sinks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			a.checkCallSink(pass, st, n)
		case *ast.CompositeLit:
			a.checkWireComposite(pass, st, n)
		case *ast.AssignStmt:
			a.checkWireFieldAssign(pass, st, n)
		}
		return true
	})
}

// exprTainted reports whether evaluating e can yield secret bytes.
func (st *taintState) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if tv, ok := st.pass.Info.Types[e]; ok && !taintableType(tv.Type) {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.pass.Info.Uses[e]
		if obj == nil {
			obj = st.pass.Info.Defs[e]
		}
		if obj != nil {
			if st.tainted[obj] {
				return true
			}
			if isSeccryptoKey(obj.Type()) {
				return true
			}
		}
		return secretName(e.Name)
	case *ast.SelectorExpr:
		if sel := st.pass.Info.Uses[e.Sel]; sel != nil && isSeccryptoKey(sel.Type()) {
			return true
		}
		return secretName(e.Sel.Name) || st.exprTainted(e.X)
	case *ast.CallExpr:
		return st.callTainted(e)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return false
		}
		return st.exprTainted(e.X) || st.exprTainted(e.Y)
	case *ast.UnaryExpr:
		return st.exprTainted(e.X)
	case *ast.StarExpr:
		return st.exprTainted(e.X)
	case *ast.ParenExpr:
		return st.exprTainted(e.X)
	case *ast.IndexExpr:
		return st.exprTainted(e.X)
	case *ast.SliceExpr:
		return st.exprTainted(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if st.exprTainted(el) {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return st.exprTainted(e.Value)
	case *ast.TypeAssertExpr:
		return st.exprTainted(e.X)
	default:
		return false
	}
}

// callTainted decides whether a call's result carries taint: sanitizers
// (sealing, hashing) launder, seccrypto.Validate re-introduces plaintext,
// and everything else propagates taint from arguments and receiver.
func (st *taintState) callTainted(call *ast.CallExpr) bool {
	fn := calleeFunc(st.pass.Info, call)
	if fn != nil {
		if isSanitizer(fn) {
			return false
		}
		if pkgPathHasSuffix(fn.Pkg(), "internal/seccrypto") && fn.Name() == "Validate" {
			return true // recovered plaintext payload
		}
	}
	// Conversions like string(rootKey) keep the taint of their operand;
	// builtin len/cap land on untaintable result types upstream.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && st.exprTainted(sel.X) {
		return true
	}
	for _, arg := range call.Args {
		if st.exprTainted(arg) {
			return true
		}
	}
	return false
}

// isSanitizer reports whether fn launders secret inputs: authenticated
// sealing and cryptographic hashing produce values safe for untrusted
// sinks. ratls.SealForChannel qualifies because it refuses at runtime to
// release key bytes onto anything but an attested (or explicitly
// insecure) connection — the TLS record layer then seals them in
// transit, so its result is the channel-sealed form of the key.
func isSanitizer(fn *types.Func) bool {
	if pkgPathHasSuffix(fn.Pkg(), "internal/seccrypto") {
		switch fn.Name() {
		case "Protect", "ProtectWithKey", "SHA256Sum64", "Murmur64":
			return true
		}
	}
	if pkgPathHasSuffix(fn.Pkg(), "internal/ratls") && fn.Name() == "SealForChannel" {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "crypto/sha256" {
		return true
	}
	return false
}

// flaggedVerbs are the fmt verbs that render an argument's contents.
var flaggedVerbs = map[byte]bool{'v': true, 's': true, 'x': true, 'X': true, 'q': true}

func (a *secretFlow) checkCallSink(pass *Pass, st *taintState, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "log":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln",
			"Panic", "Panicf", "Panicln", "Output":
			a.reportTaintedArgs(pass, st, call, "log."+fn.Name())
		}
	case path == "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			a.reportTaintedArgs(pass, st, call, "fmt."+fn.Name())
		case "Errorf", "Sprintf":
			a.reportTaintedVerbArgs(pass, st, call, "fmt."+fn.Name())
		}
	case pkgPathHasSuffix(fn.Pkg(), "internal/obs"):
		// Every value handed to obs becomes scrape- or trace-visible on an
		// unauthenticated endpoint.
		for _, arg := range call.Args {
			if st.exprTainted(arg) {
				pass.Reportf(a.Name(), arg.Pos(),
					"secret value reaches obs.%s: metric/label/annotation values are exported unauthenticated", fn.Name())
			}
		}
	case pkgPathHasSuffix(fn.Pkg(), "internal/cli"):
		// Whitelisted: cli.Fatalf is the single audited fatal path for
		// flag-validation errors.
	}
}

func (a *secretFlow) reportTaintedArgs(pass *Pass, st *taintState, call *ast.CallExpr, sink string) {
	for _, arg := range call.Args {
		if st.exprTainted(arg) {
			pass.Reportf(a.Name(), arg.Pos(), "secret value reaches untrusted sink %s", sink)
		}
	}
}

// reportTaintedVerbArgs maps fmt verbs to arguments and flags tainted
// arguments consumed by a rendering verb (%v %s %x %X %q). %w is exempt:
// wrapping an error does not print key bytes (errors are untaintable).
func (a *secretFlow) reportTaintedVerbArgs(pass *Pass, st *taintState, call *ast.CallExpr, sink string) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		// Non-constant format: flag any tainted argument.
		a.reportTaintedArgs(pass, st, call, sink)
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := parseVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if flaggedVerbs[verb] && st.exprTainted(call.Args[argIdx]) {
			pass.Reportf(a.Name(), call.Args[argIdx].Pos(),
				"secret value rendered by %%%c verb in %s", verb, sink)
		}
	}
}

// parseVerbs extracts the verb letters of a format string in argument
// order ('%%' is skipped; flags, width, and precision are ignored).
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.IndexByte("+-# 0123456789.*[]", format[i]) >= 0 {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

// isWireStruct reports whether t names a struct in the wire package.
func isWireStruct(t types.Type) bool {
	named := namedType(t)
	if named == nil || !pkgPathHasSuffix(named.Obj().Pkg(), "internal/wire") {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

func (a *secretFlow) checkWireComposite(pass *Pass, st *taintState, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !isWireStruct(tv.Type) {
		return
	}
	for _, el := range lit.Elts {
		val := el
		field := ""
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = id.Name
			}
		}
		if st.exprTainted(val) {
			pass.Reportf(a.Name(), val.Pos(),
				"secret value stored in unsealed wire field %s.%s: seal with seccrypto before it crosses the wire",
				namedType(tv.Type).Obj().Name(), field)
		}
	}
}

func (a *secretFlow) checkWireFieldAssign(pass *Pass, st *taintState, asg *ast.AssignStmt) {
	for i, lhs := range asg.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok || !isWireStruct(tv.Type) {
			continue
		}
		rhs := asg.Rhs[0]
		if len(asg.Rhs) == len(asg.Lhs) {
			rhs = asg.Rhs[i]
		}
		if st.exprTainted(rhs) {
			pass.Reportf(a.Name(), rhs.Pos(),
				"secret value stored in unsealed wire field %s.%s: seal with seccrypto before it crosses the wire",
				namedType(tv.Type).Obj().Name(), sel.Sel.Name)
		}
	}
}
