package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing Go module using
// only the standard library: module-local imports are resolved directly
// against the module tree (memoized, cycle-checked), everything else goes
// through go/importer's source importer (which reads GOROOT source).
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // by import path
	loading    map[string]bool     // import-cycle guard
}

// NewLoader locates the module containing dir (by walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModuleRoot returns the absolute path of the module root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package under the module root (the ./... pattern),
// skipping testdata and hidden directories, sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.moduleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || name == "vendor") {
				return filepath.SkipDir
			}
			if has, err := hasGoFiles(p); err != nil {
				return err
			} else if has {
				dirs = append(dirs, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return l.LoadDirs(dirs)
}

// LoadDirs loads the packages rooted at the given directories.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.moduleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.moduleRoot)
	}
	path := l.modulePath
	if rel != "." {
		path = l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// Import implements types.Importer: module-local paths are loaded from
// source, everything else is delegated to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.moduleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
