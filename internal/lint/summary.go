package lint

// summary.go is the dataflow half of the engine: each function gets a
// Summary — which results carry secret taint, which parameters flow to
// untrusted sinks or into struct fields, which results are freshly
// allocated, which lock classes the function (transitively) acquires —
// and localTaint computes the per-function facts those summaries are
// built from. The same localTaint walk runs twice per function: once in
// summarize mode while the engine iterates to a fixpoint, and once in
// report mode when the secretflow analyzer replays it with stable
// summaries and emits diagnostics.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// maxParams bounds the parameter bitsets; parameters beyond it are
// ignored (no function in this module comes close).
const maxParams = 64

// Summary is the engine's computed model of one function.
type Summary struct {
	// returnsFresh[j]: result j is a freshly allocated object no other
	// goroutine can reach when the function returns.
	returnsFresh []bool
	// acquires maps lock classes this function acquires, directly or
	// through callees, to a witness position.
	acquires map[string]token.Pos

	// resultTaint[j]: result j carries secret bytes regardless of the
	// arguments (the function mints or unseals a secret itself).
	resultTaint []bool
	// resultFrom[j]: bitset of parameters whose taint flows, unsanitized,
	// into result j. The receiver is parameter 0.
	resultFrom []uint64
	// sinkParams: bitset of parameters that reach an untrusted sink inside
	// this function or one of its callees. Parameters that are secret by
	// declaration (seccrypto.Key type, secret name) are excluded — the
	// function reports those locally, so call sites must not double up.
	sinkParams uint64
	// sinkDesc describes, per sink parameter, the ultimate sink.
	sinkDesc map[int]string
	// paramToField: parameters stored into fields of analyzed structs;
	// when a call site passes a secret, the engine marks the field tainted
	// program-wide.
	paramToField map[int][]fieldKey
	// intrinsicFieldStores: fields this function stores intrinsically
	// tainted values into.
	intrinsicFieldStores []fieldKey
}

func newSummary(fi *FuncInfo) *Summary {
	return &Summary{
		returnsFresh: make([]bool, fi.results),
		acquires:     make(map[string]token.Pos),
		resultTaint:  make([]bool, fi.results),
		resultFrom:   make([]uint64, fi.results),
		sinkDesc:     make(map[int]string),
		paramToField: make(map[int][]fieldKey),
	}
}

// mergeTaint unions a summarize-mode run into the summary; it reports
// whether anything grew (the engine's fixpoint condition). All fields are
// monotone, so iteration converges.
func (s *Summary) mergeTaint(lt *localTaint) bool {
	changed := false
	for j := range lt.resultTaint {
		if lt.resultTaint[j] && !s.resultTaint[j] {
			s.resultTaint[j] = true
			changed = true
		}
		if lt.resultFrom[j]&^s.resultFrom[j] != 0 {
			s.resultFrom[j] |= lt.resultFrom[j]
			changed = true
		}
	}
	if lt.sinkParams&^s.sinkParams != 0 {
		s.sinkParams |= lt.sinkParams
		changed = true
	}
	for p, desc := range lt.sinkDesc {
		if _, ok := s.sinkDesc[p]; !ok {
			s.sinkDesc[p] = desc
		}
	}
	for p, keys := range lt.paramToField {
		for _, k := range keys {
			if !containsFieldKey(s.paramToField[p], k) {
				s.paramToField[p] = append(s.paramToField[p], k)
				changed = true
			}
		}
	}
	for _, k := range lt.intrFieldStores {
		if !containsFieldKey(s.intrinsicFieldStores, k) {
			s.intrinsicFieldStores = append(s.intrinsicFieldStores, k)
			changed = true
		}
	}
	return changed
}

func containsFieldKey(keys []fieldKey, k fieldKey) bool {
	for _, have := range keys {
		if have == k {
			return true
		}
	}
	return false
}

// taintVal is the two-level taint lattice element: intrinsic taint
// (definitely secret bytes) and parameter-relative taint (secret iff the
// corresponding caller argument is).
type taintVal struct {
	intr   bool
	params uint64
}

func (a taintVal) or(b taintVal) taintVal {
	return taintVal{intr: a.intr || b.intr, params: a.params | b.params}
}

func (a taintVal) zero() bool { return !a.intr && a.params == 0 }

// localTaint runs the taint walk over one function body. With pass == nil
// it summarizes (accumulating into the exported fields below); with a
// pass it reports diagnostics against stable summaries.
type localTaint struct {
	e    *Engine
	fi   *FuncInfo
	pass *ProgramPass // nil in summarize mode
	info *types.Info

	tainted   map[types.Object]taintVal
	namedRes  []types.Object // named result variables, for bare returns
	litRanges [][2]token.Pos

	// summarize-mode accumulators, merged into the Summary.
	resultTaint     []bool
	resultFrom      []uint64
	sinkParams      uint64
	sinkDesc        map[int]string
	paramToField    map[int][]fieldKey
	intrFieldStores []fieldKey
}

func newLocalTaint(e *Engine, fi *FuncInfo, pass *ProgramPass) *localTaint {
	return &localTaint{
		e:            e,
		fi:           fi,
		pass:         pass,
		info:         fi.Pkg.Info,
		tainted:      make(map[types.Object]taintVal),
		litRanges:    funcLitRanges(fi.Decl.Body),
		resultTaint:  make([]bool, fi.results),
		resultFrom:   make([]uint64, fi.results),
		sinkDesc:     make(map[int]string),
		paramToField: make(map[int][]fieldKey),
	}
}

func (lt *localTaint) run() {
	lt.seed()
	lt.propagate()
	lt.walkSinksAndFlows()
}

// seed marks every declared object that is secret by type or name, and
// every parameter with its parameter bit.
func (lt *localTaint) seed() {
	fd := lt.fi.Decl
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := lt.info.Defs[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if isSeccryptoKey(obj.Type()) || (secretName(id.Name) && taintableType(obj.Type())) {
			lt.taint(obj, taintVal{intr: true})
		}
		return true
	})
	for obj, idx := range lt.fi.paramIdx {
		if idx < maxParams && taintableType(obj.Type()) {
			lt.taint(obj, taintVal{params: 1 << idx})
		}
	}
	// Named results participate in bare-return handling.
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				if obj := lt.info.Defs[name]; obj != nil {
					lt.namedRes = append(lt.namedRes, obj)
				}
			}
		}
	}
}

func (lt *localTaint) taint(obj types.Object, tv taintVal) bool {
	have := lt.tainted[obj]
	merged := have.or(tv)
	if merged == have {
		return false
	}
	lt.tainted[obj] = merged
	return true
}

// propagate runs the assignment fixpoint: any tainted right-hand side
// taints every assignable left-hand identifier (v1 semantics, lifted to
// the two-level lattice).
func (lt *localTaint) propagate() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(lt.fi.Decl.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			var tv taintVal
			for _, rhs := range asg.Rhs {
				tv = tv.or(lt.exprTaint(rhs))
			}
			if tv.zero() {
				return true
			}
			for _, lhs := range asg.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := lt.info.Defs[id]
				if obj == nil {
					obj = lt.info.Uses[id]
				}
				if obj == nil || !taintableType(obj.Type()) {
					continue
				}
				if lt.taint(obj, tv) {
					changed = true
				}
			}
			return true
		})
	}
}

// exprTaint reports what evaluating e can yield: intrinsic secret bytes,
// parameter-relative taint, or neither.
func (lt *localTaint) exprTaint(e ast.Expr) taintVal {
	if e == nil {
		return taintVal{}
	}
	if tv, ok := lt.info.Types[e]; ok && !taintableType(tv.Type) {
		return taintVal{}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := lt.info.Uses[e]
		if obj == nil {
			obj = lt.info.Defs[e]
		}
		var tv taintVal
		if obj != nil {
			tv = lt.tainted[obj]
			if isSeccryptoKey(obj.Type()) {
				tv.intr = true
			}
		}
		if secretName(e.Name) {
			tv.intr = true
		}
		return tv
	case *ast.SelectorExpr:
		var tv taintVal
		if sel := lt.info.Uses[e.Sel]; sel != nil && isSeccryptoKey(sel.Type()) {
			tv.intr = true
		}
		if secretName(e.Sel.Name) {
			tv.intr = true
		}
		if k, ok := lt.fieldKeyOf(e); ok {
			if lt.e.fieldTaint[k] {
				tv.intr = true // the field holds secret bytes somewhere in the program
			}
			// Field-sensitive: a resolvable field of an analyzed struct
			// carries only its own taint (key type, secret name, recorded
			// field store) — not the base struct's. opts.Dir stays clean
			// even when opts.SealKey is a key.
			return tv
		}
		return tv.or(lt.exprTaint(e.X))
	case *ast.CallExpr:
		return lt.callTaint(e)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return taintVal{}
		}
		return lt.exprTaint(e.X).or(lt.exprTaint(e.Y))
	case *ast.UnaryExpr:
		return lt.exprTaint(e.X)
	case *ast.StarExpr:
		return lt.exprTaint(e.X)
	case *ast.ParenExpr:
		return lt.exprTaint(e.X)
	case *ast.IndexExpr:
		return lt.exprTaint(e.X)
	case *ast.SliceExpr:
		return lt.exprTaint(e.X)
	case *ast.CompositeLit:
		var tv taintVal
		for _, el := range e.Elts {
			tv = tv.or(lt.exprTaint(el))
		}
		return tv
	case *ast.KeyValueExpr:
		return lt.exprTaint(e.Value)
	case *ast.TypeAssertExpr:
		return lt.exprTaint(e.X)
	default:
		return taintVal{}
	}
}

// callTaint decides what a call's result carries. Sanitizers launder,
// seccrypto.Validate re-introduces plaintext, analyzed callees answer
// from their summaries, and unknown callees propagate taint from receiver
// and arguments (v1's conservative rule).
func (lt *localTaint) callTaint(call *ast.CallExpr) taintVal {
	fn := calleeFunc(lt.info, call)
	if fn != nil {
		if isSanitizer(fn) {
			return taintVal{}
		}
		if pkgPathHasSuffix(fn.Pkg(), "internal/seccrypto") && fn.Name() == "Validate" {
			return taintVal{intr: true} // recovered plaintext payload
		}
		if target := lt.e.funcs[fn]; target != nil && target.summary != nil {
			return lt.summaryCallTaint(call, target)
		}
	}
	// Conversions like string(rootKey) keep the taint of their operand;
	// builtin len/cap land on untaintable result types upstream.
	var tv taintVal
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		tv = tv.or(lt.exprTaint(sel.X))
	}
	for _, arg := range call.Args {
		tv = tv.or(lt.exprTaint(arg))
	}
	return tv
}

// summaryCallTaint answers a call to an analyzed function from its
// summary: intrinsic result taint carries unconditionally; parameter-
// relative result taint carries the taint of the matching arguments.
func (lt *localTaint) summaryCallTaint(call *ast.CallExpr, target *FuncInfo) taintVal {
	s := target.summary
	var out taintVal
	for j := range s.resultTaint {
		if s.resultTaint[j] {
			out.intr = true
		}
	}
	var args [][]ast.Expr
	for j := range s.resultFrom {
		bits := s.resultFrom[j]
		if bits == 0 {
			continue
		}
		if args == nil {
			args = argsByParam(call, target)
		}
		for p := 0; p < len(args) && p < maxParams; p++ {
			if bits&(1<<p) == 0 {
				continue
			}
			for _, a := range args[p] {
				out = out.or(lt.exprTaint(a))
			}
		}
	}
	return out
}

// argsByParam maps a call's argument expressions onto the callee's
// parameter indexes (receiver = 0; variadic extras land on the last
// parameter). Slots with no syntactic argument stay empty.
func argsByParam(call *ast.CallExpr, callee *FuncInfo) [][]ast.Expr {
	n := callee.numParams()
	if n == 0 {
		return nil
	}
	args := make([][]ast.Expr, n)
	offset := 0
	if callee.Decl.Recv != nil {
		offset = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args[0] = []ast.Expr{sel.X}
		}
	}
	for i, a := range call.Args {
		p := i + offset
		if p >= n {
			p = n - 1 // variadic tail
		}
		args[p] = append(args[p], a)
	}
	return args
}

// numParams counts the function's parameters including the receiver.
func (fi *FuncInfo) numParams() int {
	sig, ok := fi.Fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n
}

// fieldKeyOf resolves a selector to (named struct type, field), when the
// struct is declared in an analyzed package.
func (lt *localTaint) fieldKeyOf(sel *ast.SelectorExpr) (fieldKey, bool) {
	v, ok := lt.info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return fieldKey{}, false
	}
	tv, ok := lt.info.Types[sel.X]
	if !ok {
		return fieldKey{}, false
	}
	named := namedType(tv.Type)
	if named == nil || !lt.e.analyzedPkg(named.Obj().Pkg()) {
		return fieldKey{}, false
	}
	return fieldKey{typ: named.Obj(), field: sel.Sel.Name}, true
}

// ---- sinks, field flows, and returns ----

func (lt *localTaint) walkSinksAndFlows() {
	ast.Inspect(lt.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			lt.checkCallSink(n)
		case *ast.CompositeLit:
			lt.checkWireComposite(n)
		case *ast.AssignStmt:
			lt.checkWireFieldAssign(n)
			lt.recordFieldStores(n)
		case *ast.ReturnStmt:
			lt.recordReturn(n)
		}
		return true
	})
}

// sinkHit handles one value reaching a sink: intrinsic taint is reported
// (report mode), pure parameter-relative taint becomes a sink-parameter
// summary entry (summarize mode). A value that is both (a parameter
// secret by declaration) is reported locally and deliberately NOT
// summarized, so the call site does not report it a second time.
func (lt *localTaint) sinkHit(tv taintVal, pos token.Pos, desc string, format string, fargs ...any) {
	if tv.intr {
		if lt.pass != nil {
			lt.pass.Reportf("secretflow", pos, format, fargs...)
		}
		return
	}
	if tv.params == 0 || lt.pass != nil {
		return
	}
	lt.sinkParams |= tv.params
	for p := 0; p < maxParams; p++ {
		if tv.params&(1<<p) != 0 {
			if _, ok := lt.sinkDesc[p]; !ok {
				lt.sinkDesc[p] = desc
			}
		}
	}
}

func (lt *localTaint) checkCallSink(call *ast.CallExpr) {
	fn := calleeFunc(lt.info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "log":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln",
			"Panic", "Panicf", "Panicln", "Output":
			lt.hitArgs(call, "log."+fn.Name())
		}
	case path == "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			lt.hitArgs(call, "fmt."+fn.Name())
		case "Errorf", "Sprintf":
			lt.hitVerbArgs(call, "fmt."+fn.Name())
		}
	case pkgPathHasSuffix(fn.Pkg(), "internal/obs"):
		// Every value handed to obs becomes scrape- or trace-visible on an
		// unauthenticated endpoint.
		for _, arg := range call.Args {
			lt.sinkHit(lt.exprTaint(arg), arg.Pos(), "obs."+fn.Name(),
				"secret value reaches obs.%s: metric/label/annotation values are exported unauthenticated", fn.Name())
		}
	case pkgPathHasSuffix(fn.Pkg(), "internal/cli"):
		// Whitelisted: cli.Fatalf is the single audited fatal path for
		// flag-validation errors.
	default:
		lt.checkForwarding(call, fn)
	}
}

// checkForwarding is the interprocedural half: a call to an analyzed
// function whose summary says parameter p reaches a sink is itself a sink
// for argument p.
func (lt *localTaint) checkForwarding(call *ast.CallExpr, fn *types.Func) {
	target := lt.e.funcs[fn]
	if target == nil || target.summary == nil || target.summary.sinkParams == 0 {
		return
	}
	if isSanitizer(fn) {
		return
	}
	args := argsByParam(call, target)
	for p := 0; p < len(args) && p < maxParams; p++ {
		if target.summary.sinkParams&(1<<p) == 0 {
			continue
		}
		desc := target.summary.sinkDesc[p]
		for _, a := range args[p] {
			lt.sinkHit(lt.exprTaint(a), a.Pos(), desc,
				"secret value passed to %s, which forwards it to %s", funcDisplayName(fn), desc)
		}
	}
}

func (lt *localTaint) hitArgs(call *ast.CallExpr, sink string) {
	for _, arg := range call.Args {
		lt.sinkHit(lt.exprTaint(arg), arg.Pos(), sink,
			"secret value reaches untrusted sink %s", sink)
	}
}

// hitVerbArgs maps fmt verbs to arguments and flags tainted arguments
// consumed by a rendering verb (%v %s %x %X %q). %w is exempt: wrapping
// an error does not print key bytes (errors are untaintable).
func (lt *localTaint) hitVerbArgs(call *ast.CallExpr, sink string) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		// Non-constant format: flag any tainted argument.
		lt.hitArgs(call, sink)
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := parseVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if flaggedVerbs[verb] {
			arg := call.Args[argIdx]
			lt.sinkHit(lt.exprTaint(arg), arg.Pos(), sink,
				"secret value rendered by %%%c verb in %s", verb, sink)
		}
	}
}

func (lt *localTaint) checkWireComposite(clit *ast.CompositeLit) {
	tv, ok := lt.info.Types[clit]
	if !ok || !isWireStruct(tv.Type) {
		return
	}
	tname := namedType(tv.Type).Obj().Name()
	for _, el := range clit.Elts {
		val := el
		field := ""
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = id.Name
			}
		}
		lt.sinkHit(lt.exprTaint(val), val.Pos(),
			"unsealed wire field "+tname+"."+field,
			"secret value stored in unsealed wire field %s.%s: seal with seccrypto before it crosses the wire",
			tname, field)
	}
}

func (lt *localTaint) checkWireFieldAssign(asg *ast.AssignStmt) {
	for i, lhs := range asg.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		tv, ok := lt.info.Types[sel.X]
		if !ok || !isWireStruct(tv.Type) {
			continue
		}
		rhs := asg.Rhs[0]
		if len(asg.Rhs) == len(asg.Lhs) {
			rhs = asg.Rhs[i]
		}
		tname := namedType(tv.Type).Obj().Name()
		lt.sinkHit(lt.exprTaint(rhs), rhs.Pos(),
			"unsealed wire field "+tname+"."+sel.Sel.Name,
			"secret value stored in unsealed wire field %s.%s: seal with seccrypto before it crosses the wire",
			tname, sel.Sel.Name)
	}
}

// recordFieldStores feeds the engine's program-wide field taint: storing
// an intrinsic secret into a struct field marks the field; storing a
// parameter records the parameter→field flow so call sites decide.
func (lt *localTaint) recordFieldStores(asg *ast.AssignStmt) {
	if lt.pass != nil {
		return // summaries are stable during the report pass
	}
	for i, lhs := range asg.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if tv, ok := lt.info.Types[sel.X]; ok && isWireStruct(tv.Type) {
			continue // wire stores are sinks, handled above
		}
		k, ok := lt.fieldKeyOf(sel)
		if !ok {
			continue
		}
		if fobj := lt.info.Uses[sel.Sel]; fobj != nil {
			if isSeccryptoKey(fobj.Type()) || !taintableType(fobj.Type()) {
				continue // intrinsic by type, or cannot carry bytes
			}
		}
		rhs := asg.Rhs[0]
		if len(asg.Rhs) == len(asg.Lhs) {
			rhs = asg.Rhs[i]
		}
		tv := lt.exprTaint(rhs)
		if tv.intr {
			if !containsFieldKey(lt.intrFieldStores, k) {
				lt.intrFieldStores = append(lt.intrFieldStores, k)
			}
			continue
		}
		for p := 0; p < maxParams; p++ {
			if tv.params&(1<<p) != 0 && !containsFieldKey(lt.paramToField[p], k) {
				lt.paramToField[p] = append(lt.paramToField[p], k)
			}
		}
	}
}

// recordReturn accumulates result taint for the summary (summarize mode,
// outer function body only).
func (lt *localTaint) recordReturn(ret *ast.ReturnStmt) {
	if lt.pass != nil || lt.fi.results == 0 {
		return
	}
	if scopeAt(lt.litRanges, ret.Pos()) != -1 {
		return // a closure's return is not the function's
	}
	if len(ret.Results) == 0 {
		// Bare return: named results carry whatever was assigned to them.
		var tv taintVal
		for _, obj := range lt.namedRes {
			tv = tv.or(lt.tainted[obj])
		}
		for j := 0; j < lt.fi.results; j++ {
			if tv.intr {
				lt.resultTaint[j] = true
			}
			lt.resultFrom[j] |= tv.params
		}
		return
	}
	if len(ret.Results) != lt.fi.results {
		// Tuple forwarding (return f()): union the call's taint over all
		// results.
		var tv taintVal
		for _, res := range ret.Results {
			tv = tv.or(lt.exprTaint(res))
		}
		for j := 0; j < lt.fi.results; j++ {
			if tv.intr {
				lt.resultTaint[j] = true
			}
			lt.resultFrom[j] |= tv.params
		}
		return
	}
	for j, res := range ret.Results {
		tv := lt.exprTaint(res)
		if tv.intr {
			lt.resultTaint[j] = true
		}
		lt.resultFrom[j] |= tv.params
	}
}
