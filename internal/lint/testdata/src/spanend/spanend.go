// Package spanend is a golden fixture for the spanend analyzer.
package spanend

import (
	"errors"

	"repro/internal/obs"
)

// Good ends via defer: the canonical shape.
func Good(tr *obs.Tracer) {
	span := tr.Start("good")
	defer span.End(nil)
}

// Instant chains End directly: fine.
func Instant(tr *obs.Tracer) {
	tr.Start("instant").End(nil)
}

// Linked covers StartLinked the same way.
func Linked(tr *obs.Tracer, sc obs.SpanContext) {
	span := tr.StartLinked("linked", sc)
	defer span.End(nil)
}

// Factory hands the bound span to the caller: End ownership transfers.
func Factory(tr *obs.Tracer) *obs.Span {
	span := tr.Start("factory")
	span.Annotate("k", "v")
	return span
}

// Direct returns the span without ever binding it: also a transfer.
func Direct(tr *obs.Tracer) *obs.Span {
	return tr.Start("direct")
}

// ClosureOwned hands the span's lifetime to a closure (the wire.Server
// `done` pattern): settled.
func ClosureOwned(tr *obs.Tracer) func() {
	span := tr.Start("closure")
	return func() { span.End(nil) }
}

// Dropped never binds the result, so nothing can ever end it.
func Dropped(tr *obs.Tracer) {
	tr.Start("dropped") // want `span from Tracer.Start is dropped`
}

// NeverEnded binds the span but no path ends it.
func NeverEnded(tr *obs.Tracer) {
	span := tr.Start("leak") // want `span started here is never ended`
	span.Annotate("k", "v")
}

// EarlyReturn ends the happy path but leaks on the error path.
func EarlyReturn(tr *obs.Tracer, fail bool) error {
	span := tr.Start("early")
	if fail {
		return errors.New("fail") // want `return leaks the span`
	}
	span.End(nil)
	return nil
}
