// Package lockdisc is a golden fixture for the lockdisc analyzer.
package lockdisc

import "sync"

// Counter is the standard mu-guarded struct the convention is written for.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) bumpLocked() { c.n++ }

// Add is clean: the exported method takes the lock before the Locked call.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

// AddEarlyExit is clean: the Unlock inside the aborting branch balances
// that branch's own return and does not close the outer region.
func (c *Counter) AddEarlyExit(skip bool) {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return
	}
	c.bumpLocked()
	c.mu.Unlock()
}

// chainLocked calling bumpLocked from a *Locked body is the norm.
func (c *Counter) chainLocked() {
	c.bumpLocked()
}

// AddUnsafe calls the Locked helper with no lock anywhere in sight.
func (c *Counter) AddUnsafe() {
	c.bumpLocked() // want `c.bumpLocked called without c.mu held`
}

// AddAfterUnlock calls the helper after the region genuinely closed.
func (c *Counter) AddAfterUnlock() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.bumpLocked() // want `c.bumpLocked called without c.mu held`
}

// Spawn holds the lock at spawn time, but the goroutine body is a separate
// scope: the lock is not known to be held when it runs.
func (c *Counter) Spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.bumpLocked() // want `c.bumpLocked called without c.mu held`
	}()
}

// selfLockLocked violates rule 1 twice: a *Locked method owns neither the
// Lock nor the Unlock of its receiver's mu.
func (c *Counter) selfLockLocked() {
	c.mu.Lock() // want `selfLockLocked must run with c.mu held and must not call c.mu.Lock itself`
	c.n++
	c.mu.Unlock() // want `selfLockLocked must run with c.mu held and must not call c.mu.Unlock itself`
}

// NewCounter initializes through the Locked helper on a fresh local:
// nothing else can see the object yet, so no lock is needed.
func NewCounter() *Counter {
	c := &Counter{}
	c.bumpLocked()
	return c
}

// restoreLocked is called only on fresh receivers (below) and from other
// exempt contexts: the receiver-freshness fixpoint proves every call site.
func (c *Counter) restoreLocked(n int) {
	c.n = n
	c.bumpLocked()
}

// NewRestored drives restoreLocked on a fresh local: clean.
func NewRestored(n int) *Counter {
	c := &Counter{}
	c.restoreLocked(n)
	return c
}

// published is a sink that publishes its argument.
var published *Counter

// BuildAndPublish calls the Locked helper after the object escaped: from
// the publication point on, freshness no longer excuses the call.
func BuildAndPublish() *Counter {
	c := &Counter{}
	c.bumpLocked() // clean: still unpublished here
	published = c
	c.bumpLocked() // want `c.bumpLocked called without c.mu held`
	return c
}

// Inherit binds a closure and invokes it only inside the locked region:
// the closure inherits the held set from its single call site.
func (c *Counter) Inherit() {
	bump := func() {
		c.bumpLocked()
	}
	c.mu.Lock()
	bump()
	c.mu.Unlock()
}

// Escape spawns the closure on a goroutine: no call-site inheritance, so
// the Locked call inside is bare.
func (c *Counter) Escape() {
	go func() {
		c.bumpLocked() // want `c.bumpLocked called without c.mu held`
	}()
}
