// Package guardedby is a golden fixture for the guardedby analyzer:
// majority inference, multi-mutex structs, RWMutex strength, explicit
// annotations, and the near-miss that must stay silent.
package guardedby

import "sync"

// Ledger carries two mutexes guarding disjoint fields: bal is inferred
// guarded by mu, hist by rw — each from its own access majority.
type Ledger struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	bal  int
	hist []string
}

// Deposit and Balance access bal under mu: the inference majority.
func (l *Ledger) Deposit(n int) {
	l.mu.Lock()
	l.bal += n
	l.mu.Unlock()
}

func (l *Ledger) Balance() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bal
}

// Cheat writes bal with no lock at all.
func (l *Ledger) Cheat() {
	l.bal = 0 // want `write to Ledger.bal without Ledger.mu held`
}

// Append holds the write lock: both the read and the write of hist count
// as guarded accesses.
func (l *Ledger) Append(s string) {
	l.rw.Lock()
	l.hist = append(l.hist, s)
	l.rw.Unlock()
}

// Last reads hist under RLock — reads are legal under either strength.
func (l *Ledger) Last() string {
	l.rw.RLock()
	defer l.rw.RUnlock()
	return l.hist[len(l.hist)-1]
}

// Mutate writes hist under RLock: a read lock does not license writes.
func (l *Ledger) Mutate() {
	l.rw.RLock()
	defer l.rw.RUnlock()
	l.hist = nil // want `write to Ledger.hist under RLock: Ledger.rw must be write-locked`
}

// Annotated: explicit annotations beat inference in both directions.
type Annotated struct {
	mu sync.Mutex
	// guardedby: mu
	seen []string
	// guardedby: none
	hits int
}

// Observe has the only accesses to both fields: far too few for majority
// inference, but the annotations decide anyway.
func (a *Annotated) Observe(k string) {
	a.hits++
	a.seen = append(a.seen, k) // want `write to Annotated.seen without Annotated.mu held` `read of Annotated.seen without Annotated.mu held`
}

// Typo names a mutex field that does not exist.
type Typo struct {
	mu sync.Mutex
	// guardedby: mux
	v int // want `guardedby annotation on Typo.v names unknown mutex field "mux"`
}

// Touch keeps v accessed so the struct is not dead code; the bad
// annotation suppresses inference, so no access findings appear.
func (t *Typo) Touch() {
	t.v++
}

// Loose is the near-miss: bare is written under mu in only one of three
// accesses — no majority, no inference, no findings.
type Loose struct {
	mu   sync.Mutex
	bare int
}

func (l *Loose) A() {
	l.mu.Lock()
	l.bare++
	l.mu.Unlock()
}

func (l *Loose) B() { l.bare++ }

func (l *Loose) C() int { return l.bare }

// Builder writes fields on a fresh local before publication: exempt, and
// the constructor write does not poison the inference of guarded use.
func NewLedger() *Ledger {
	l := &Ledger{}
	l.bal = 100
	l.hist = []string{"open"}
	return l
}
