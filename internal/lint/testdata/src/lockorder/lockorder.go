// Package lockorder is a golden fixture for the lockorder analyzer:
// a direct 2-cycle, a 3-cycle closed through a callee's summary, the
// defer-unlock region that still orders later acquisitions, and the
// consistently-ordered baseline that must stay silent.
package lockorder

import "sync"

// ---- 2-cycle: two functions acquire A and B in opposite orders ----

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func AB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock acquisition cycle: .*\.A\.mu ⇄ .*\.B\.mu \(potential deadlock`
	b.mu.Unlock()
	a.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// ---- 3-cycle: C → D through a helper's summary, D → E and E → C
// directly; no single function sees the whole cycle ----

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func CD(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `lock acquisition cycle: .*\.C\.mu ⇄ .*\.D\.mu ⇄ .*\.E\.mu \(potential deadlock`
	c.mu.Unlock()
}

func DE(d *D, e *E) {
	d.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	d.mu.Unlock()
}

func EC(c *C, e *E) {
	e.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	e.mu.Unlock()
}

// ---- defer-unlock: the deferred release keeps F.mu's region open, so
// the G acquisition below it is still ordered F → G, closing a cycle
// with GF ----

type F struct{ mu sync.Mutex }
type G struct{ mu sync.Mutex }

func FG(f *F, g *G) {
	f.mu.Lock()
	defer f.mu.Unlock()
	g.mu.Lock() // want `lock acquisition cycle: .*\.F\.mu ⇄ .*\.G\.mu \(potential deadlock`
	g.mu.Unlock()
}

func GF(f *F, g *G) {
	g.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	g.mu.Unlock()
}

// ---- baseline: H before I everywhere, including through the helper —
// a diamond, not a cycle; no findings ----

type H struct{ mu sync.Mutex }
type I struct{ mu sync.Mutex }

func lockI(i *I) {
	i.mu.Lock()
	i.mu.Unlock()
}

func HI(h *H, i *I) {
	h.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	h.mu.Unlock()
}

func HIViaHelper(h *H, i *I) {
	h.mu.Lock()
	lockI(i)
	h.mu.Unlock()
}
