// Package secretflow is a golden fixture for the secretflow analyzer:
// every `// want` comment marks an expected diagnostic, everything else is
// a near-miss that must stay clean.
package secretflow

import (
	"crypto/rand"
	"fmt"
	"log"
	"net"

	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/wire"
)

// LeakLog prints raw key bytes: the canonical hit.
func LeakLog(key seccrypto.Key) {
	log.Printf("loaded key %x", key.Bytes()) // want `secret value reaches untrusted sink log.Printf`
}

// LeakErrorf renders a named root key through a %x verb.
func LeakErrorf(rootKey []byte) error {
	return fmt.Errorf("root key %x unusable", rootKey) // want `secret value rendered by %x verb in fmt.Errorf`
}

// WrapClean wraps an error derived from a key operation: errors are
// untaintable, so %w (and even %v on the error) stays clean.
func WrapClean(key seccrypto.Key) error {
	_, err := seccrypto.ProtectWithKey(nil, key, rand.Reader)
	if err != nil {
		return fmt.Errorf("sealing: %w", err)
	}
	return nil
}

// LengthClean logs a derived number: len() launders by type.
func LengthClean(key seccrypto.Key) {
	log.Printf("key length %d", len(key.Bytes()))
}

// SealedBeforeLog seals first: authenticated sealing sanitizes, so the
// ciphertext may be logged and shipped.
func SealedBeforeLog(key seccrypto.Key, payload []byte) error {
	sealed, err := seccrypto.ProtectWithKey(payload, key, rand.Reader)
	if err != nil {
		return err
	}
	log.Printf("sealed blob %x", sealed)
	return nil
}

// LeakAnnotate exports key bytes on the unauthenticated /trace endpoint.
func LeakAnnotate(span *obs.Span, key seccrypto.Key) {
	span.Annotate("key", string(key.Bytes())) // want `secret value reaches obs.Annotate`
}

// LeakWireField stores raw key bytes in an unsealed wire struct.
func LeakWireField(slid string, key seccrypto.Key) wire.EscrowRequest {
	return wire.EscrowRequest{SLID: slid, Key: key.Bytes()} // want `secret value stored in unsealed wire field EscrowRequest.Key`
}

// SealedWireField ships the sealed form: clean.
func SealedWireField(slid string, key seccrypto.Key, payload []byte) (wire.EscrowRequest, error) {
	sealed, err := seccrypto.ProtectWithKey(payload, key, rand.Reader)
	if err != nil {
		return wire.EscrowRequest{}, err
	}
	return wire.EscrowRequest{SLID: slid, Key: sealed}, nil
}

// ValidateReintroduces marks recovered plaintext as secret again.
func ValidateReintroduces(sealed []byte, key seccrypto.Key) {
	plain, err := seccrypto.Validate(sealed, key)
	if err != nil {
		return
	}
	log.Printf("recovered %s", plain) // want `secret value reaches untrusted sink log.Printf`
}

// ChannelSealedWireField releases the key through ratls.SealForChannel:
// the call gates on the connection being an attested (or explicitly
// insecure) channel, so its result is channel-sealed and may cross the
// wire struct. Clean.
func ChannelSealedWireField(slid string, key seccrypto.Key, conn net.Conn) (wire.EscrowRequest, error) {
	sealed, err := ratls.SealForChannel(key, conn)
	if err != nil {
		return wire.EscrowRequest{}, err
	}
	return wire.EscrowRequest{SLID: slid, Key: sealed}, nil
}

// PlaintextConnStillTaints is the near-miss twin: writing the raw key
// bytes to a net.Conn directly — no channel gate — remains a leak.
func PlaintextConnStillTaints(slid string, key seccrypto.Key, conn net.Conn) error {
	raw := key.Bytes()
	log.Printf("escrowing %x", raw) // want `secret value reaches untrusted sink log.Printf`
	_, err := conn.Write(raw)
	return err
}

// ChannelSealStillGuardsItsInput sanitizes only the RESULT: the key
// passed in stays tainted, so rendering it afterwards is still a leak.
func ChannelSealStillGuardsItsInput(key seccrypto.Key, conn net.Conn) {
	sealed, err := ratls.SealForChannel(key, conn)
	if err != nil {
		return
	}
	log.Printf("sealed for channel: %d bytes", len(sealed))
	log.Printf("key was %x", key.Bytes()) // want `secret value reaches untrusted sink log.Printf`
}
