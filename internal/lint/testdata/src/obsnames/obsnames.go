// Package obsnames is a golden fixture for the obsnames analyzer.
package obsnames

import (
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Register exercises the naming rules at direct registration sites.
func Register(reg *obs.Registry) {
	reg.Counter("good_total", "A well-formed counter.")
	reg.Counter("BadName", "CamelCase drifts from the exposition format.") // want `metric name "BadName" does not match`
	reg.Histogram("latency", "A histogram without a unit.", nil)           // want `histogram "latency" lacks a unit suffix`
	reg.Histogram("latency_seconds", "A histogram with a unit.", nil)
}

// RegisterDup registers the same literal twice: the second site collides.
func RegisterDup(reg *obs.Registry) {
	reg.Gauge("dup_value", "First registration wins.")
	reg.Gauge("dup_value", "Second registration collides.") // want `metric "dup_value" already registered`
}

// RegisterDynamic defeats static auditing: names must be literals.
func RegisterDynamic(reg *obs.Registry, name string) {
	reg.Counter(name, "A dynamic name.") // want `metric name passed to Registry.Counter is not a string literal`
}

// RegisterWrapped uses the forwarding-closure idiom the ExposeMetrics
// implementations share: the literal is checked at the wrapper call site,
// and the forwarding registration inside the closure stays clean.
func RegisterWrapped(reg *obs.Registry) {
	counter := func(name, help string) {
		reg.Counter(name, help)
	}
	counter("wrapped_total", "A forwarded literal.")
	counter("WrappedBad", "Checked where the literal lives.") // want `metric name "WrappedBad" does not match`
}

// EmitEvents exercises the flight-event vocabulary rules.
func EmitEvents(rec *flight.Recorder, kind string) {
	rec.Emit("subsys.good_event", flight.KV{K: "k", V: "v"})
	rec.Emit("BadKind")    // want `flight-event kind "BadKind" does not match`
	rec.Emit(kind)         // want `flight-event kind passed to Recorder.Emit is not a string literal`
	rec.Emit("good_total") // a flight kind may coincide with a metric name: separate namespaces
}

// EmitDup re-emits a kind already emitted above: the vocabulary demands a
// single emission site per kind.
func EmitDup(rec *flight.Recorder) {
	rec.Emit("subsys.good_event") // want `flight-event kind "subsys.good_event" already emitted`
}
