// Package ignore exercises the suppression machinery against the lockdisc
// analyzer: a justified suppression silences its line and the line below;
// a reasonless or unknown-check suppression is itself a finding (asserted
// programmatically in lint_test.go — the sllint pseudo-check reports at
// the comment's own line, where a want marker cannot sit).
package ignore

import "sync"

// Box is the minimal mu-guarded struct.
type Box struct {
	mu sync.Mutex
	n  int
}

func (b *Box) incLocked() { b.n++ }

// Justified is silenced by a suppression carrying a written reason.
func (b *Box) Justified() {
	//sllint:ignore lockdisc the box is unpublished in this fixture; nothing can race
	b.incLocked()
}

// Unjustified carries a reasonless suppression: the suppression is the
// finding, and the lockdisc diagnostic below it survives.
func (b *Box) Unjustified() {
	//sllint:ignore lockdisc
	b.incLocked() // want `b.incLocked called without b.mu held`
}

// UnknownCheck names a check that does not exist.
func (b *Box) UnknownCheck() {
	//sllint:ignore nosuchcheck this check name is wrong
	b.incLocked() // want `b.incLocked called without b.mu held`
}
