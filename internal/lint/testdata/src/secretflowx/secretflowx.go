// Package secretflowx is a golden fixture for interprocedural secretflow:
// taint crossing function boundaries through parameters, returns, and
// sanitizing wrappers — none of these flows is visible to a single-
// function analysis.
package secretflowx

import (
	"crypto/rand"
	"log"

	"repro/internal/seccrypto"
)

// relay is a neutral helper: nothing in its body names a secret, but its
// summary records that the parameter reaches log.Printf.
func relay(note string) {
	log.Printf("note: %s", note)
}

// LeakViaRelay passes key bytes through the neutral helper: the report
// lands at the call site, where the secret actually enters the flow.
func LeakViaRelay(key seccrypto.Key) {
	relay(string(key.Bytes())) // want `secret value passed to relay, which forwards it to log.Printf`
}

// RelayClean passes an honest note through the same helper: the summary
// is parameter-relative, so clean arguments stay clean.
func RelayClean() {
	relay("lease renewed")
}

// loadRootKey returns secret material: its result summary carries
// intrinsic taint into every caller.
func loadRootKey() []byte {
	rootKey := []byte("0123456789abcdef")
	return rootKey
}

// LeakViaReturn logs the tainted return value of a helper whose body it
// never sees.
func LeakViaReturn() {
	k := loadRootKey()
	log.Printf("boot key %x", k) // want `secret value reaches untrusted sink log.Printf`
}

// sealFor wraps the sanitizer: the helper's return is sealed ciphertext,
// so the transfer of the sanitizer summary keeps callers clean.
func sealFor(key seccrypto.Key, payload []byte) []byte {
	sealed, err := seccrypto.ProtectWithKey(payload, key, rand.Reader)
	if err != nil {
		return nil
	}
	return sealed
}

// SealedViaHelper logs ciphertext produced by the wrapping helper: clean.
func SealedViaHelper(key seccrypto.Key, payload []byte) {
	log.Printf("sealed %x", sealFor(key, payload))
}

// forward hops taint across two levels: relay's summary feeds forward's,
// and the report still lands on the outermost call site.
func forward(v string) {
	relay(v)
}

// LeakTwoHops exercises summary transitivity.
func LeakTwoHops(key seccrypto.Key) {
	forward(string(key.Bytes())) // want `secret value passed to forward, which forwards it to log.Printf`
}
