// Package slremote (under the walorder fixture directory) exercises the
// write-ahead discipline: the analyzer only fires in a package with this
// name, mirroring the real SL-Remote.
package slremote

type event struct{ Op string }

// Server is a miniature of the real thing: a WAL append (logLocked) must
// dominate every apply*Locked mutation.
type Server struct {
	state map[string]int
	err   error
}

func (s *Server) logLocked(ev event) error { return s.err }

func (s *Server) applyGrantLocked(ev event) { s.state[ev.Op]++ }

// Grant is the discipline done right: checked if-init log, then apply.
func (s *Server) Grant(ev event) error {
	if err := s.logLocked(ev); err != nil {
		return err
	}
	s.applyGrantLocked(ev)
	return nil
}

// GrantTwoStep uses the assign-then-check form, equally fine.
func (s *Server) GrantTwoStep(ev event) error {
	err := s.logLocked(ev)
	if err != nil {
		return err
	}
	s.applyGrantLocked(ev)
	return nil
}

// GrantUnlogged mutates without any WAL append.
func (s *Server) GrantUnlogged(ev event) {
	s.applyGrantLocked(ev) // want `applyGrantLocked applied without a preceding logLocked`
}

// GrantUnchecked appends but drops the error: a failed append must abort.
func (s *Server) GrantUnchecked(ev event) {
	_ = s.logLocked(ev)
	s.applyGrantLocked(ev) // want `applyGrantLocked applied after an unchecked logLocked`
}

// applyReplayLocked is the replay fold: it re-applies records already
// durable in the WAL and is exempt by name.
func (s *Server) applyReplayLocked(evs []event) {
	for _, ev := range evs {
		s.applyGrantLocked(ev)
	}
}
