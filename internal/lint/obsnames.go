package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// obsNames audits every metric registration against the repo's exposition
// conventions:
//
//   - names match ^[a-z][a-z0-9_]*$ (Prometheus-safe, no camelCase drift);
//   - histogram names end in a unit suffix (_seconds, _bytes, _units) so
//     bucket boundaries are interpretable;
//   - no metric name literal is registered from two different source
//     sites anywhere in the repo — duplicate registrations silently share
//     (or, across kinds, corrupt) a family;
//   - registration names are string literals, so all of the above is
//     statically checkable. Local wrapper closures that forward a name
//     parameter (`counter := func(name, ...) { reg.CounterFunc(name, ...) }`)
//     are followed: the literals at the wrapper's call sites are checked
//     instead.
//
// It applies the same discipline to the flight recorder's event
// vocabulary: every kind passed to flight.Recorder.Emit must be a string
// literal matching ^[a-z][a-z0-9_.]*$ (dotted subsystem.event form), and
// each kind may have exactly one emission site in the repo — a kind
// emitted from two places can no longer be read as "this code path ran".
// Shared emissions go through a named helper holding the single literal
// (see cluster.EmitProbeTimeout). Flight kinds and metric names are
// separate namespaces: a kind may coincide with a metric name.
type obsNames struct {
	first      map[string]token.Position // metric name -> first registration site
	firstEmit  map[string]token.Position // flight kind -> first emission site
	dups       []dupSite
	flightDups []dupSite
}

type dupSite struct {
	name  string
	pos   token.Position
	first token.Position
}

// NewObsNames returns the obsnames analyzer. It accumulates cross-package
// state: duplicates are reported in Finish, after the last package.
func NewObsNames() Analyzer {
	return &obsNames{
		first:     make(map[string]token.Position),
		firstEmit: make(map[string]token.Position),
	}
}

func (*obsNames) Name() string { return "obsnames" }
func (*obsNames) Doc() string {
	return "metric names are lower_snake and unique, histograms carry a unit suffix, and flight-event kinds are dotted literals with one emission site each"
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// flightKindRE constrains flight-event kinds: lower-case dotted
// subsystem.event identifiers.
var flightKindRE = regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)

// histogramUnitSuffixes are the unit suffixes a histogram name may end in.
var histogramUnitSuffixes = []string{"_seconds", "_bytes", "_units"}

// registryMethods maps obs.Registry registration methods to whether they
// create a histogram family.
var registryMethods = map[string]bool{
	"Counter":      false,
	"Gauge":        false,
	"Histogram":    true,
	"CounterVec":   false,
	"GaugeVec":     false,
	"HistogramVec": true,
	"CounterFunc":  false,
	"GaugeFunc":    false,
}

func (a *obsNames) Run(pass *Pass) {
	for _, file := range pass.Files {
		wrappers, forwarded := findMetricWrappers(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			// Call of a local wrapper closure: the literal lives here.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if w, isWrapper := wrappers[pass.Info.Uses[id]]; isWrapper {
					if w.nameIdx < len(call.Args) {
						a.checkName(pass, call.Args[w.nameIdx], w.method, w.isHist)
					}
					return true
				}
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if isMethodOn(fn, "internal/obs/flight", "Recorder", "Emit") {
				a.checkFlightKind(pass, call.Args[0])
				return true
			}
			_, ok = registryMethods[fn.Name()]
			if !ok || !isMethodOn(fn, "internal/obs", "Registry", fn.Name()) {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && forwarded[pass.Info.Uses[id]] {
				// A wrapper forwarding its name parameter: every literal was
				// checked at the wrapper's call sites above.
				return true
			}
			a.checkName(pass, call.Args[0], fn.Name(), registryMethods[fn.Name()])
			return true
		})
	}
}

// constString resolves arg to a compile-time string: a literal or a
// string-typed constant (both are statically auditable).
func constString(pass *Pass, arg ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[ast.Unparen(arg)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkName validates one metric-name argument to a registration (direct
// or through a wrapper closure) named method.
func (a *obsNames) checkName(pass *Pass, arg ast.Expr, method string, isHist bool) {
	name, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(a.Name(), arg.Pos(),
			"metric name passed to Registry.%s is not a string literal: names must be statically auditable", method)
		return
	}
	if !metricNameRE.MatchString(name) {
		pass.Reportf(a.Name(), arg.Pos(),
			"metric name %q does not match %s", name, metricNameRE)
	}
	if isHist && !hasUnitSuffix(name) {
		pass.Reportf(a.Name(), arg.Pos(),
			"histogram %q lacks a unit suffix (want one of %s)", name,
			strings.Join(histogramUnitSuffixes, ", "))
	}
	pos := pass.Fset.Position(arg.Pos())
	if first, seen := a.first[name]; seen {
		a.dups = append(a.dups, dupSite{name: name, pos: pos, first: first})
	} else {
		a.first[name] = pos
	}
}

// checkFlightKind validates one kind argument to flight.Recorder.Emit.
func (a *obsNames) checkFlightKind(pass *Pass, arg ast.Expr) {
	kind, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(a.Name(), arg.Pos(),
			"flight-event kind passed to Recorder.Emit is not a string literal: the event vocabulary must be statically auditable")
		return
	}
	if !flightKindRE.MatchString(kind) {
		pass.Reportf(a.Name(), arg.Pos(),
			"flight-event kind %q does not match %s", kind, flightKindRE)
	}
	pos := pass.Fset.Position(arg.Pos())
	if first, seen := a.firstEmit[kind]; seen {
		a.flightDups = append(a.flightDups, dupSite{name: kind, pos: pos, first: first})
	} else {
		a.firstEmit[kind] = pos
	}
}

// metricWrapper describes a local closure that forwards a name parameter
// to a Registry registration method — the `counter := func(name, help
// string, fn func() int64) { reg.CounterFunc(name, ...) }` idiom the
// ExposeMetrics implementations use to cut repetition.
type metricWrapper struct {
	method  string
	isHist  bool
	nameIdx int // flattened index of the forwarded name parameter
}

// findMetricWrappers locates wrapper closures in file. It returns the
// wrappers keyed by the closure variable's object, plus the set of
// forwarded name-parameter objects (so the inner non-literal registration
// is not itself reported).
func findMetricWrappers(pass *Pass, file *ast.File) (map[types.Object]metricWrapper, map[types.Object]bool) {
	wrappers := make(map[types.Object]metricWrapper)
	forwarded := make(map[types.Object]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || asg.Tok != token.DEFINE || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		fl, ok := asg.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		obj := pass.Info.Defs[lhs]
		if obj == nil {
			return true
		}
		var params []types.Object
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				params = append(params, pass.Info.Defs[name])
			}
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			isHist, known := registryMethods[fn.Name()]
			if !known || !isMethodOn(fn, "internal/obs", "Registry", fn.Name()) {
				return true
			}
			argID, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return true
			}
			use := pass.Info.Uses[argID]
			for i, p := range params {
				if p != nil && p == use {
					wrappers[obj] = metricWrapper{method: fn.Name(), isHist: isHist, nameIdx: i}
					forwarded[use] = true
					return false
				}
			}
			return true
		})
		return true
	})
	return wrappers, forwarded
}

// Finish reports duplicate registration literals found across the run.
func (a *obsNames) Finish(report func(check string, pos token.Position, msg string)) {
	for _, d := range a.dups {
		report(a.Name(), d.pos,
			"metric "+strconv.Quote(d.name)+" already registered at "+d.first.String()+
				": duplicate registration literals make families collide")
	}
	for _, d := range a.flightDups {
		report(a.Name(), d.pos,
			"flight-event kind "+strconv.Quote(d.name)+" already emitted at "+d.first.String()+
				": each kind gets one emission site — share it through a named helper")
	}
}

func hasUnitSuffix(name string) bool {
	for _, s := range histogramUnitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}
