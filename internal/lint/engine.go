package lint

// engine.go is the interprocedural core of the v2 suite: a module-wide
// call graph over every analyzed package plus context-insensitive,
// summary-based dataflow. Each function gets a computed Summary — taint
// in/out per parameter and result, locks acquired, fresh-object results —
// and fixpoint iteration propagates summaries across the graph until
// nothing changes. Program analyzers (secretflow, lockdisc, guardedby,
// lockorder) consume the stable summaries through a ProgramPass; the
// engine itself reports nothing.
//
// The design follows the paper's partitioning pipeline: SecureLease
// decides which code may touch authorization state from whole-program
// information flow, and SecV (PAPERS.md) tracks secure values across
// function boundaries the same way — per-function summaries joined over a
// call graph, not inlining.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/callgraph"
)

// FuncInfo is one analyzed function: its type object, declaration, and
// the package it was loaded from, plus the engine-computed summary.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	summary *Summary
	lock    *lockFacts
	// paramIdx maps the receiver (index 0 when present) and parameter
	// objects to their summary index.
	paramIdx map[types.Object]int
	// results is the number of declared results.
	results int
	// variadic marks a ...T final parameter.
	variadic bool
}

// CallEdge is one resolved call site: caller invokes callee at Call.
type CallEdge struct {
	Caller *FuncInfo
	Callee *FuncInfo
	Call   *ast.CallExpr
	// Dynamic marks edges resolved through an interface method set (the
	// callee is one of possibly many implementations).
	Dynamic bool
}

// Engine is the whole-program view: packages, call graph, summaries.
type Engine struct {
	Fset *token.FileSet
	Pkgs []*Package

	funcs map[*types.Func]*FuncInfo
	order []*FuncInfo // deterministic (file/position) iteration order

	calleesOf map[*types.Func][]CallEdge
	callersOf map[*types.Func][]CallEdge

	// structs indexes every named struct type declared in the analyzed
	// packages that carries at least one sync.Mutex/RWMutex field.
	structs map[*types.TypeName]*structInfo

	// fieldTaint records struct fields observed to hold secret bytes
	// somewhere in the program ((type, field) granularity); reads of such
	// fields are intrinsically tainted everywhere.
	fieldTaint map[fieldKey]bool

	// freshOnly marks unexported methods whose every call site passes an
	// unpublished receiver (directly fresh, or the caller's own receiver
	// where the caller is itself freshOnly).
	freshOnly map[*types.Func]bool

	// namedTypes is every named type declared in analyzed packages, for
	// interface method-set resolution.
	namedTypes []*types.Named
}

// structInfo describes a mutex-carrying struct for guardedby/lockorder.
type structInfo struct {
	obj *types.TypeName
	// mutexes maps mutex-typed field names to true when the field is a
	// sync.RWMutex (false = plain Mutex).
	mutexes map[string]bool
	// guardedBy maps data-field names to an annotated mutex field name;
	// the special value "none" opts the field out of inference.
	guardedBy map[string]string
	// guardedByPos positions each annotation, for reporting bad ones.
	guardedByPos map[string]token.Pos
}

// fieldKey identifies one field of one named struct type.
type fieldKey struct {
	typ   *types.TypeName
	field string
}

func (k fieldKey) String() string {
	pkg := ""
	if k.typ.Pkg() != nil {
		pkg = k.typ.Pkg().Path() + "."
	}
	return pkg + k.typ.Name() + "." + k.field
}

// NewEngine builds the call graph and runs every summary fixpoint over
// the given packages. The packages must share one FileSet (the Loader
// guarantees this).
func NewEngine(pkgs []*Package) *Engine {
	e := &Engine{
		Pkgs:       pkgs,
		funcs:      make(map[*types.Func]*FuncInfo),
		calleesOf:  make(map[*types.Func][]CallEdge),
		callersOf:  make(map[*types.Func][]CallEdge),
		structs:    make(map[*types.TypeName]*structInfo),
		fieldTaint: make(map[fieldKey]bool),
		freshOnly:  make(map[*types.Func]bool),
	}
	if len(pkgs) > 0 {
		e.Fset = pkgs[0].Fset
	}
	e.indexFunctions()
	e.indexTypes()
	e.resolveCalls()
	e.computeFreshness()
	e.computeLockFacts()
	e.computeAcquires()
	e.computeTaint()
	return e
}

// FuncOf returns the FuncInfo for fn, or nil when fn is outside the
// analyzed program (stdlib, unloaded module packages).
func (e *Engine) FuncOf(fn *types.Func) *FuncInfo { return e.funcs[fn] }

// Funcs returns every analyzed function in deterministic order.
func (e *Engine) Funcs() []*FuncInfo { return e.order }

// Callers returns the resolved call edges targeting fn.
func (e *Engine) Callers(fn *types.Func) []CallEdge { return e.callersOf[fn] }

// Callees returns the resolved call edges leaving fn.
func (e *Engine) Callees(fn *types.Func) []CallEdge { return e.calleesOf[fn] }

// ---- indexing ----

func (e *Engine) indexFunctions() {
	for _, pkg := range e.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg, paramIdx: make(map[types.Object]int)}
				idx := 0
				if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
					if obj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
						fi.paramIdx[obj] = idx
					}
					idx++
				} else if fd.Recv != nil {
					idx++ // unnamed receiver still occupies index 0
				}
				if fd.Type.Params != nil {
					for _, f := range fd.Type.Params.List {
						if len(f.Names) == 0 {
							idx++
							continue
						}
						for _, name := range f.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								fi.paramIdx[obj] = idx
							}
							idx++
						}
					}
				}
				if sig, ok := fn.Type().(*types.Signature); ok {
					fi.results = sig.Results().Len()
					fi.variadic = sig.Variadic()
				}
				e.funcs[fn] = fi
				e.order = append(e.order, fi)
			}
		}
	}
	sort.Slice(e.order, func(i, j int) bool { return e.order[i].Decl.Pos() < e.order[j].Decl.Pos() })
}

// indexTypes collects named types (for interface resolution) and
// mutex-carrying structs with their guardedby annotations.
func (e *Engine) indexTypes() {
	for _, pkg := range e.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			e.namedTypes = append(e.namedTypes, named)
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			info := &structInfo{
				obj:          tn,
				mutexes:      make(map[string]bool),
				guardedBy:    make(map[string]string),
				guardedByPos: make(map[string]token.Pos),
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if rw, isMu := mutexKind(f.Type()); isMu {
					info.mutexes[f.Name()] = rw
				}
			}
			if len(info.mutexes) > 0 {
				e.structs[tn] = info
			}
		}
	}
	// Annotations need the AST: scan struct field comments.
	for _, pkg := range e.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					return true
				}
				info := e.structs[tn]
				if info == nil {
					return true
				}
				for _, field := range st.Fields.List {
					mu := guardedByAnnotation(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						info.guardedBy[name.Name] = mu
						info.guardedByPos[name.Name] = field.Pos()
					}
				}
				return true
			})
		}
	}
}

// guardedByAnnotation extracts the mutex field name from a
// "// guardedby: mu" comment attached to (above or trailing) a struct
// field. "none" opts the field out of inference.
func guardedByAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "guardedby:"); ok {
				if f := strings.Fields(rest); len(f) > 0 {
					return f[0]
				}
			}
		}
	}
	return ""
}

// mutexKind reports whether t is sync.Mutex or sync.RWMutex; rw is true
// for RWMutex.
func mutexKind(t types.Type) (rw, isMutex bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// structInfoFor returns the mutex-struct info for t (through pointers),
// or nil.
func (e *Engine) structInfoFor(t types.Type) *structInfo {
	named := namedType(t)
	if named == nil {
		return nil
	}
	return e.structs[named.Obj()]
}

// ---- call graph ----

func (e *Engine) resolveCalls() {
	for _, fi := range e.order {
		// funcVals maps local variables that hold exactly one statically
		// known function value to that function.
		funcVals := localFuncValues(fi)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, target := range e.calleeTargets(fi, call, funcVals) {
				edge := CallEdge{Caller: fi, Callee: target.fi, Call: call, Dynamic: target.dynamic}
				e.calleesOf[fi.Fn] = append(e.calleesOf[fi.Fn], edge)
				e.callersOf[target.fi.Fn] = append(e.callersOf[target.fi.Fn], edge)
			}
			return true
		})
	}
}

type callTarget struct {
	fi      *FuncInfo
	dynamic bool
}

// calleeTargets resolves a call to its analyzed targets: direct function
// and method calls, interface method calls (via method sets over the
// program's named types), and calls through local function-valued
// variables with a single known assignment.
func (e *Engine) calleeTargets(fi *FuncInfo, call *ast.CallExpr, funcVals map[types.Object]*types.Func) []callTarget {
	info := fi.Pkg.Info
	if fn := calleeFunc(info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				// Only interfaces declared in analyzed packages resolve to
				// their implementations; widening stdlib interfaces
				// (io.Writer, error) would flood the graph with spurious
				// dynamic edges.
				if e.analyzedPkg(fn.Pkg()) {
					return e.resolveInterfaceCall(fn.Name(), iface)
				}
				return nil
			}
		}
		if target := e.funcs[fn]; target != nil {
			return []callTarget{{fi: target}}
		}
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if fn := funcVals[obj]; fn != nil {
			if target := e.funcs[fn]; target != nil {
				return []callTarget{{fi: target}}
			}
		}
	}
	return nil
}

// analyzedPkg reports whether p is one of the packages under analysis.
func (e *Engine) analyzedPkg(p *types.Package) bool {
	if p == nil {
		return false
	}
	for _, pkg := range e.Pkgs {
		if pkg.Types == p {
			return true
		}
	}
	return false
}

// resolveInterfaceCall returns every analyzed concrete method named name
// on a program type implementing iface.
func (e *Engine) resolveInterfaceCall(name string, iface *types.Interface) []callTarget {
	var targets []callTarget
	for _, named := range e.namedTypes {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, nil, name)
		if m, ok := obj.(*types.Func); ok {
			if target := e.funcs[m]; target != nil {
				targets = append(targets, callTarget{fi: target, dynamic: true})
			}
		}
	}
	return targets
}

// localFuncValues finds local variables assigned exactly one statically
// known function value (v := s.handle or v := helper), so calls through
// them resolve. A variable assigned twice, or from a dynamic expression,
// resolves to nothing.
func localFuncValues(fi *FuncInfo) map[types.Object]*types.Func {
	info := fi.Pkg.Info
	assigns := make(map[types.Object][]*types.Func)
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		var fn *types.Func
		switch r := ast.Unparen(rhs).(type) {
		case *ast.Ident:
			fn, _ = info.Uses[r].(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = info.Uses[r.Sel].(*types.Func)
		}
		assigns[obj] = append(assigns[obj], fn) // nil marks a dynamic assignment
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i := range asg.Lhs {
			if _, isFunc := info.Types[asg.Rhs[i]].Type.(*types.Signature); isFunc {
				record(asg.Lhs[i], asg.Rhs[i])
			}
		}
		return true
	})
	out := make(map[types.Object]*types.Func)
	for obj, fns := range assigns {
		if len(fns) == 1 && fns[0] != nil {
			out[obj] = fns[0]
		}
	}
	return out
}

// ---- freshness ----

// computeFreshness runs two fixpoints: returnsFresh (a function result is
// a freshly allocated, unpublished object) and freshOnly (an unexported
// method every caller invokes on an unpublished receiver). Both feed the
// escape-aware exemptions in lockdisc and guardedby: code touching an
// object no other goroutine can reach yet needs no lock.
func (e *Engine) computeFreshness() {
	// returnsFresh to a fixpoint: fresh locals may come from calls whose
	// summaries stabilize over rounds, so the per-function cache is
	// invalidated at the top of each round.
	for round := 0; round < 10; round++ {
		changed := false
		for _, fi := range e.order {
			if fi.lock != nil {
				fi.lock.freshLocals = nil
				fi.lock.freshUntil = nil
			}
			fresh := e.freshLocals(fi)
			rf := e.returnsFreshOf(fi, fresh)
			if fi.summary == nil {
				fi.summary = newSummary(fi)
			}
			if !boolSliceEq(fi.summary.returnsFresh, rf) {
				fi.summary.returnsFresh = rf
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// freshOnly: greatest fixpoint over unexported methods with at least
	// one analyzed call site. Start optimistic, knock out any method with
	// a call site whose receiver cannot be proven unpublished.
	cand := make(map[*types.Func]bool)
	for _, fi := range e.order {
		fn := fi.Fn
		if fn.Exported() || recvNamed(fn) == nil {
			continue
		}
		if len(e.callersOf[fn]) > 0 {
			cand[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range cand {
			for _, edge := range e.callersOf[fn] {
				if !e.callSiteRecvFresh(edge, cand) {
					delete(cand, fn)
					changed = true
					break
				}
			}
		}
	}
	e.freshOnly = cand
}

// callSiteRecvFresh reports whether the receiver expression at edge is
// unpublished: a fresh local of the caller, or the caller's own receiver
// when the caller is itself (still assumed) fresh-only.
func (e *Engine) callSiteRecvFresh(edge CallEdge, cand map[*types.Func]bool) bool {
	sel, ok := ast.Unparen(edge.Call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	caller := edge.Caller
	obj := caller.Pkg.Info.Uses[recv]
	if obj == nil {
		return false
	}
	if e.freshLocals(caller)[obj] {
		return true
	}
	if until, ok := caller.lock.freshUntil[obj]; ok && edge.Call.Pos() < until {
		return true // receiver not yet published at this call
	}
	if idx, isParam := caller.paramIdx[obj]; isParam && idx == 0 && caller.Decl.Recv != nil {
		return cand[caller.Fn] || e.freshOnly[caller.Fn]
	}
	return false
}

// freshLocals computes the set of local variables in fi that hold a
// freshly allocated object that never escapes: assigned exactly once from
// a fresh source (&T{...}, new(T), or a call returning fresh) and never
// published (stored into a field/index/global, passed as a non-receiver
// argument, captured by a closure, or sent on a channel). Flow-
// insensitive and conservative: one publishing use anywhere kills
// freshness everywhere. Returning the object does not publish it — no
// concurrent access can have started before the function returns.
func (e *Engine) freshLocals(fi *FuncInfo) map[types.Object]bool {
	if fi.lock != nil && fi.lock.freshLocals != nil {
		return fi.lock.freshLocals
	}
	info := fi.Pkg.Info
	fresh := make(map[types.Object]bool)
	assigned := make(map[types.Object]int)

	objOf := func(x ast.Expr) types.Object {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range asg.Lhs {
			obj := objOf(lhs)
			if obj == nil {
				continue
			}
			assigned[obj]++
			var rhs ast.Expr
			if len(asg.Rhs) == len(asg.Lhs) {
				rhs = asg.Rhs[i]
			} else if len(asg.Rhs) == 1 {
				// Multi-value call: result i of the single call.
				if call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr); ok {
					if e.callReturnsFresh(fi, call, i) {
						fresh[obj] = true
					}
					continue
				}
			}
			if rhs != nil && e.freshExpr(fi, rhs) {
				fresh[obj] = true
			}
		}
		return true
	})

	// Publication scan: any use that could hand the object to another
	// goroutine or store it somewhere reachable revokes freshness — but
	// only from its first publication position onward. A publication
	// inside a loop revokes from the loop's start (a later iteration's
	// use follows an earlier iteration's publish).
	var loopRanges [][2]token.Pos
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopRanges = append(loopRanges, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	killed := make(map[types.Object]token.Pos)
	kill := func(obj types.Object, pos token.Pos) {
		if obj == nil || !fresh[obj] {
			return
		}
		for _, r := range loopRanges {
			if r[0] <= pos && pos < r[1] && r[0] < pos {
				pos = r[0]
			}
		}
		if cur, ok := killed[obj]; !ok || pos < cur {
			killed[obj] = pos
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Arguments publish; the receiver of a method call does not
			// (calling a method on a fresh object keeps it local).
			for _, arg := range n.Args {
				kill(objOf(arg), arg.Pos())
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				// Aliasing or storing into a field, index, or global all
				// publish; conservative even for plain local rebinding.
				kill(objOf(rhs), rhs.Pos())
			}
		case *ast.FuncLit:
			// Captured variables may outlive the function; the closure can
			// run any time after it is created.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					kill(info.Uses[id], n.Pos())
				}
				return true
			})
			return false
		case *ast.SendStmt:
			kill(objOf(n.Value), n.Value.Pos())
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				kill(objOf(v), v.Pos())
			}
		}
		return true
	})

	until := make(map[types.Object]token.Pos)
	for obj := range fresh {
		if assigned[obj] != 1 {
			delete(fresh, obj)
			continue
		}
		if pos, ok := killed[obj]; ok {
			delete(fresh, obj)
			until[obj] = pos
		}
	}
	if fi.lock == nil {
		fi.lock = &lockFacts{}
	}
	fi.lock.freshLocals = fresh
	fi.lock.freshUntil = until
	return fresh
}

// freshExpr reports whether evaluating expr yields a freshly allocated
// object: &T{...}, new(T), or a single-result call returning fresh.
func (e *Engine) freshExpr(fi *FuncInfo, expr ast.Expr) bool {
	switch x := ast.Unparen(expr).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := fi.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		return e.callReturnsFresh(fi, x, 0)
	}
	return false
}

// callReturnsFresh reports whether result i of the call is fresh per the
// callee's summary.
func (e *Engine) callReturnsFresh(fi *FuncInfo, call *ast.CallExpr, i int) bool {
	fn := calleeFunc(fi.Pkg.Info, call)
	if fn == nil {
		return false
	}
	target := e.funcs[fn]
	if target == nil || target.summary == nil {
		return false
	}
	rf := target.summary.returnsFresh
	return i < len(rf) && rf[i]
}

// returnsFreshOf computes the per-result freshness of fi: result j is
// fresh when every return statement yields a fresh expression (or nil)
// in position j. A function with no return statements returns nothing.
func (e *Engine) returnsFreshOf(fi *FuncInfo, fresh map[types.Object]bool) []bool {
	if fi.results == 0 {
		return nil
	}
	rf := make([]bool, fi.results)
	for j := range rf {
		rf[j] = true
	}
	sawReturn := false
	lits := funcLitRanges(fi.Decl.Body)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if scopeAt(lits, ret.Pos()) != -1 {
			return true // a closure's return is not the function's
		}
		sawReturn = true
		if len(ret.Results) != fi.results {
			// Bare return (named results) or tuple forwarding: give up.
			for j := range rf {
				rf[j] = false
			}
			return true
		}
		for j, res := range ret.Results {
			if !rf[j] {
				continue
			}
			if isNilIdent(res) || e.freshExpr(fi, res) {
				continue
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				obj := fi.Pkg.Info.Uses[id]
				if obj != nil && fresh[obj] {
					continue
				}
			}
			rf[j] = false
		}
		return true
	})
	if !sawReturn {
		return make([]bool, fi.results)
	}
	return rf
}

// ReceiverFreshOnly reports whether every analyzed call site invokes fn
// on an unpublished receiver.
func (e *Engine) ReceiverFreshOnly(fn *types.Func) bool { return e.freshOnly[fn] }

// ---- transitive lock acquisition ----

// computeLockFacts runs the lexical lock walk over every function once
// (the facts are shared by lockdisc, guardedby, and lockorder) and seeds
// each summary with the function's locally acquired lock classes.
func (e *Engine) computeLockFacts() {
	for _, fi := range e.order {
		f := e.lockFactsOf(fi)
		if fi.summary == nil {
			fi.summary = newSummary(fi)
		}
		for _, ev := range f.events {
			if ev.kind == evLock && ev.class != "" {
				if _, ok := fi.summary.acquires[ev.class]; !ok {
					fi.summary.acquires[ev.class] = ev.pos
				}
			}
		}
	}
}

// computeAcquires closes the per-function acquired-lock sets over the
// call graph: acquires(F) = local(F) ∪ ⋃ acquires(callees). Round-based
// union, monotone, so it converges.
func (e *Engine) computeAcquires() {
	for changed := true; changed; {
		changed = false
		for _, fi := range e.order {
			sum := fi.summary
			for _, edge := range e.calleesOf[fi.Fn] {
				callee := edge.Callee.summary
				if callee == nil {
					continue
				}
				for class, pos := range callee.acquires {
					if _, ok := sum.acquires[class]; !ok {
						sum.acquires[class] = pos
						changed = true
					}
				}
			}
		}
	}
}

// ---- taint fixpoint ----

// computeTaint iterates taint summarization over the whole program until
// summaries and the global field-taint set stop growing. Everything is
// monotone (sets only grow), so the loop terminates; the round cap is a
// backstop, not a correctness requirement.
func (e *Engine) computeTaint() {
	for round := 0; round < 24; round++ {
		changed := false
		for _, fi := range e.order {
			lt := newLocalTaint(e, fi, nil)
			lt.run()
			if fi.summary.mergeTaint(lt) {
				changed = true
			}
		}
		if e.applyFieldStores() {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// applyFieldStores promotes summary-recorded parameter→field flows into
// global field taint when some call site passes an intrinsically tainted
// argument, plus directly observed intrinsic stores. Returns true when
// the field-taint set grew.
func (e *Engine) applyFieldStores() bool {
	grew := false
	mark := func(k fieldKey) {
		if !e.fieldTaint[k] {
			e.fieldTaint[k] = true
			grew = true
		}
	}
	for _, fi := range e.order {
		for _, k := range fi.summary.intrinsicFieldStores {
			mark(k)
		}
	}
	for _, fi := range e.order {
		if len(fi.summary.paramToField) == 0 {
			continue
		}
		for _, edge := range e.callersOf[fi.Fn] {
			lt := newLocalTaint(e, edge.Caller, nil)
			lt.seed()
			lt.propagate()
			args := argsByParam(edge.Call, fi)
			for p, keys := range fi.summary.paramToField {
				if p >= len(args) {
					continue
				}
				for _, a := range args[p] {
					if lt.exprTaint(a).intr {
						for _, k := range keys {
							mark(k)
						}
						break
					}
				}
			}
		}
	}
	return grew
}

// CallGraph exports the engine's function-level call graph as a
// callgraph.Graph (nodes named pkgpath.Func, modules = package paths),
// tying the lint engine to the partitioning model the paper's SL-Manager
// builds on.
func (e *Engine) CallGraph() *callgraph.Graph {
	g := callgraph.New()
	name := func(fi *FuncInfo) string { return fi.Fn.Pkg().Path() + "." + funcDisplayName(fi.Fn) }
	for _, fi := range e.order {
		_ = g.AddNode(callgraph.Node{
			Name:      name(fi),
			Module:    fi.Fn.Pkg().Path(),
			CodeBytes: int64(fi.Decl.End() - fi.Decl.Pos()),
		})
	}
	for _, fi := range e.order {
		for _, edge := range e.calleesOf[fi.Fn] {
			_ = g.AddCall(name(fi), name(edge.Callee), 1)
		}
	}
	return g
}

// funcDisplayName renders "Type.Method" for methods, "Func" otherwise.
func funcDisplayName(fn *types.Func) string {
	if named := recvNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func boolSliceEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
