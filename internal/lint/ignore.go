package lint

import (
	"go/token"
	"strings"
)

// checkSuppression is the pseudo-check under which malformed suppression
// comments are reported. It cannot itself be suppressed.
const checkSuppression = "sllint"

// ignorePrefix is the suppression comment marker. The full grammar is
//
//	//sllint:ignore <check> <reason...>
//
// where <check> names an analyzer and <reason> is a mandatory free-text
// justification. A suppression covers findings of that check on its own
// line and on the line directly below it (comment-above style). A
// suppression with no reason, or naming an unknown check, is itself a
// finding — ignoring a security invariant requires a written argument.
const ignorePrefix = "//sllint:ignore"

// suppression is one parsed, well-formed ignore comment. matched records
// whether it silenced at least one finding this run; an unmatched
// suppression is itself reported (lint.go), so discharged proof
// obligations cannot linger as stale ignores.
type suppression struct {
	file    string
	line    int
	check   string
	matched bool
}

// collectSuppressions scans a package's comments for ignore markers,
// reporting malformed ones through report.
func collectSuppressions(pkg *Package, known map[string]bool, report func(pos token.Position, msg string)) []suppression {
	var supps []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "suppression names no check: want //sllint:ignore <check> <reason>")
					continue
				}
				check := fields[0]
				if !known[check] {
					report(pos, "suppression names unknown check "+quote(check))
					continue
				}
				if len(fields) < 2 {
					report(pos, "suppression of "+check+" carries no justification: a reason is mandatory")
					continue
				}
				supps = append(supps, suppression{file: pos.Filename, line: pos.Line, check: check})
			}
		}
	}
	return supps
}

func quote(s string) string { return `"` + s + `"` }
