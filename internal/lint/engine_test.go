package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// engineOver builds the interprocedural engine over one fixture package
// by running the default (program-analyzer-bearing) suite.
func engineOver(t *testing.T, dir string) *lint.Engine {
	t.Helper()
	pkg := fixturePackage(t, dir)
	runner := &lint.Runner{Analyzers: []lint.Analyzer{lint.NewLockDisc()}}
	runner.Package(pkg)
	runner.Finish()
	e := runner.Engine()
	if e == nil {
		t.Fatal("Runner.Engine() nil after Finish with a program analyzer")
	}
	return e
}

func findFunc(t *testing.T, e *lint.Engine, name string) *lint.FuncInfo {
	t.Helper()
	for _, fi := range e.Funcs() {
		if fi.Fn.Name() == name {
			return fi
		}
	}
	t.Fatalf("function %q not indexed by the engine", name)
	return nil
}

func TestEngineCallGraphEdges(t *testing.T) {
	e := engineOver(t, "lockdisc")
	add := findFunc(t, e, "Add")
	bump := findFunc(t, e, "bumpLocked")

	var addCallsBump bool
	for _, edge := range e.Callees(add.Fn) {
		if edge.Callee != nil && edge.Callee.Fn == bump.Fn {
			addCallsBump = true
			if edge.Caller.Fn != add.Fn {
				t.Errorf("edge caller = %v, want Add", edge.Caller.Fn)
			}
		}
	}
	if !addCallsBump {
		t.Error("Callees(Add) does not include bumpLocked")
	}

	var bumpCalledByAdd bool
	for _, edge := range e.Callers(bump.Fn) {
		if edge.Caller.Fn == add.Fn {
			bumpCalledByAdd = true
		}
	}
	if !bumpCalledByAdd {
		t.Error("Callers(bumpLocked) does not include Add")
	}

	if e.FuncOf(add.Fn) != add {
		t.Error("FuncOf does not round-trip a Funcs() entry")
	}
}

func TestEngineReceiverFreshOnly(t *testing.T) {
	e := engineOver(t, "lockdisc")
	// restoreLocked is called only on fresh locals: the greatest-fixpoint
	// proves its receiver never escapes before the call.
	if fi := findFunc(t, e, "restoreLocked"); !e.ReceiverFreshOnly(fi.Fn) {
		t.Error("restoreLocked should be receiver-fresh-only")
	}
	// bumpLocked is called on published receivers all over the fixture.
	if fi := findFunc(t, e, "bumpLocked"); e.ReceiverFreshOnly(fi.Fn) {
		t.Error("bumpLocked must not be receiver-fresh-only")
	}
}

func TestEngineExportedCallGraph(t *testing.T) {
	e := engineOver(t, "lockorder")
	g := e.CallGraph()
	if g.Len() == 0 {
		t.Fatal("exported call graph is empty")
	}
	var cdName, lockDName string
	for _, name := range g.Names() {
		if strings.HasSuffix(name, ".CD") {
			cdName = name
		}
		if strings.HasSuffix(name, ".lockD") {
			lockDName = name
		}
	}
	if cdName == "" || lockDName == "" {
		t.Fatalf("exported graph missing fixture functions: %v", g.Names())
	}
	if g.CallWeight(cdName, lockDName) == 0 {
		t.Errorf("exported graph missing CD → lockD edge")
	}
	// The function-level call graph of the fixture is acyclic even though
	// its lock graph is not.
	if cycles := g.Cycles(); len(cycles) != 0 {
		t.Errorf("fixture call graph should be a DAG, got %v", cycles)
	}
}

// TestEngineSummariesTransfer pins the interprocedural secretflow flow
// end to end at the API level: the report for a helper that forwards its
// parameter into a sink lands at the tainted call site.
func TestEngineSummariesTransfer(t *testing.T) {
	pkg := fixturePackage(t, "secretflowx")
	runner := &lint.Runner{Analyzers: []lint.Analyzer{lint.NewSecretFlow()}}
	runner.Package(pkg)
	var relayed bool
	for _, d := range runner.Finish() {
		if strings.Contains(d.Message, "passed to relay") {
			relayed = true
		}
	}
	if !relayed {
		t.Error("no call-site diagnostic for the relay helper")
	}
}
