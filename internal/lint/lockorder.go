package lint

// lockOrder builds the program's global lock-acquisition graph from the
// engine's summaries and fails on any cycle: nodes are lock classes (a
// struct's mutex field, a package-level mutex, a function-local mutex),
// and an edge A → B is witnessed wherever B is acquired — directly or
// anywhere down the call graph — while A is held. A cycle means two
// executions can acquire the same locks in opposite orders: a potential
// deadlock that no test run is guaranteed to hit.
//
// Deferred unlocks keep their region open (lock A; defer unlock; lock B
// is an A → B edge), goroutine launches are excluded (the spawned stack
// orders its own acquisitions), and acquisitions of the same class are
// not self-edges (re-locking distinct instances of one class is a
// striping concern the classifier cannot yet order).
//
// The graph is retained after the run so cmd/sllint can emit it as a
// DOT or JSON artifact (-lockgraph).
import (
	"go/token"
	"sort"
	"strings"

	"repro/internal/callgraph"
)

type lockOrder struct {
	graph    *callgraph.Graph
	artifact LockGraphArtifact
}

// NewLockOrder returns the lockorder analyzer.
func NewLockOrder() Analyzer { return &lockOrder{} }

func (*lockOrder) Name() string { return "lockorder" }
func (*lockOrder) Doc() string {
	return "the global lock-acquisition graph is acyclic (no potential lock-order deadlock)"
}

// Run is a no-op: lockorder needs the whole-program acquisition graph.
func (a *lockOrder) Run(*Pass) {}

// LockGraphArtifact is the serializable form of the acquisition graph.
type LockGraphArtifact struct {
	Nodes  []string        `json:"nodes"`
	Edges  []LockGraphEdge `json:"edges"`
	Cycles [][]string      `json:"cycles"`
}

// LockGraphEdge is one held→acquired ordering with its first witness.
type LockGraphEdge struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Witness string `json:"witness"` // file:line of the first acquisition seen
}

// LockGraph exposes the graph built by the last RunProgram, for artifact
// output; nil before any run.
func (a *lockOrder) LockGraph() (*callgraph.Graph, LockGraphArtifact) {
	return a.graph, a.artifact
}

type lockEdgeKey struct{ from, to string }

func (a *lockOrder) RunProgram(pass *ProgramPass) {
	e := pass.Engine
	classes := make(map[string]bool)
	edges := make(map[lockEdgeKey]token.Pos)

	addEdge := func(from, to string, pos token.Pos) {
		if from == "" || to == "" || from == to {
			return
		}
		classes[from], classes[to] = true, true
		if _, ok := edges[lockEdgeKey{from, to}]; !ok {
			edges[lockEdgeKey{from, to}] = pos
		}
	}

	for _, fi := range e.Funcs() {
		facts := e.lockFactsOf(fi)
		for i, ev := range facts.events {
			var acquired map[string]token.Pos
			switch ev.kind {
			case evLock:
				if ev.class == "" {
					continue
				}
				classes[ev.class] = true
				acquired = map[string]token.Pos{ev.class: ev.pos}
			case evCall, evLockedCall:
				if ev.goCall {
					continue // the spawned goroutine orders its own locks
				}
				if ev.callee == nil || ev.callee.summary == nil {
					continue
				}
				if len(ev.callee.summary.acquires) == 0 {
					continue
				}
				acquired = make(map[string]token.Pos, len(ev.callee.summary.acquires))
				for class := range ev.callee.summary.acquires {
					acquired[class] = ev.pos
				}
			default:
				continue
			}
			held := facts.held(i)
			for _, h := range held {
				for class, pos := range acquired {
					addEdge(h.class, class, pos)
				}
			}
		}
	}

	a.graph = callgraph.New()
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		_ = a.graph.AddNode(callgraph.Node{Name: c, Module: lockClassModule(c)})
	}
	keys := make([]lockEdgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	a.artifact = LockGraphArtifact{Nodes: names, Cycles: [][]string{}}
	for _, k := range keys {
		_ = a.graph.AddCall(k.from, k.to, 1)
		a.artifact.Edges = append(a.artifact.Edges, LockGraphEdge{
			From: k.from, To: k.to,
			Witness: e.Fset.Position(edges[k]).String(),
		})
	}

	for _, scc := range a.graph.Cycles() {
		sorted := append([]string(nil), scc...)
		sort.Strings(sorted)
		a.artifact.Cycles = append(a.artifact.Cycles, sorted)
		pos := a.cycleWitness(sorted, edges)
		pass.Reportf(a.Name(), pos,
			"lock acquisition cycle: %s (potential deadlock: these locks are taken in conflicting orders)",
			strings.Join(sorted, " ⇄ "))
	}
}

// cycleWitness picks the earliest witness position among the cycle's
// internal edges, so the diagnostic lands on real code.
func (a *lockOrder) cycleWitness(scc []string, edges map[lockEdgeKey]token.Pos) token.Pos {
	in := make(map[string]bool, len(scc))
	for _, c := range scc {
		in[c] = true
	}
	best := token.NoPos
	for k, pos := range edges {
		if !in[k.from] || !in[k.to] {
			continue
		}
		if len(scc) == 1 && k.from != k.to {
			continue
		}
		if best == token.NoPos || pos < best {
			best = pos
		}
	}
	return best
}

// lockClassModule extracts the package path prefix of a lock class like
// "repro/internal/slremote.Server.mu".
func lockClassModule(class string) string {
	slash := strings.LastIndex(class, "/")
	rest := class[slash+1:]
	dot := strings.Index(rest, ".")
	if dot < 0 {
		return class
	}
	return class[:slash+1+dot]
}
