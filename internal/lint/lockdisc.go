package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// lockDisc enforces the repo-wide *Locked naming convention: a function
// whose name ends in "Locked" runs with its receiver's mu held. Two rules
// follow:
//
//  1. a *Locked function must not itself lock or unlock the receiver's mu
//     (it would self-deadlock or release a lock it does not own);
//  2. a call to x.fooLocked() is legal only from another *Locked function,
//     or lexically between x.mu.Lock() (or RLock) and the next non-deferred
//     x.mu.Unlock() in the same lexical scope.
//
// Since v2 the check is escape-aware and closure-aware, using the
// engine's summaries to discharge cases the lexical rule cannot see:
//
//   - calling x.fooLocked() on an unpublished object needs no lock — x is
//     a fresh local (allocated here or returned fresh by a constructor)
//     that no other goroutine can reach yet;
//   - the same holds through unexported helpers whose every call site
//     passes an unpublished receiver (freshness flows down the call
//     graph, so a recursive restore walk over a fresh tree is clean);
//   - a closure that provably runs only at its direct call sites inherits
//     the locks held there, so a `deny := func(...)` helper invoked under
//     mu may call auditLocked.
//
// Everything else is the v1 lexical discipline — exactly the discipline
// the code is written in (Lock; defer Unlock; ...Locked calls...).
type lockDisc struct{}

// NewLockDisc returns the lockdisc analyzer.
func NewLockDisc() Analyzer { return &lockDisc{} }

func (*lockDisc) Name() string { return "lockdisc" }
func (*lockDisc) Doc() string {
	return "*Locked functions are called only with the receiver's mu held (or on unpublished objects), and never lock/unlock it themselves"
}

// Run is a no-op: lockdisc needs whole-program freshness facts.
func (a *lockDisc) Run(*Pass) {}

func (a *lockDisc) RunProgram(pass *ProgramPass) {
	for _, fi := range pass.Engine.Funcs() {
		a.checkFunc(pass, fi)
	}
}

func (a *lockDisc) checkFunc(pass *ProgramPass, fi *FuncInfo) {
	e := pass.Engine
	facts := e.lockFactsOf(fi)
	fd := fi.Decl
	inLocked := strings.HasSuffix(fd.Name.Name, "Locked")
	recvName := receiverName(fd)

	// Rule 1: a *Locked method must not operate on its receiver's mu,
	// anywhere in its body (including deferred closures).
	if inLocked && recvName != "" {
		own := recvName + ".mu"
		for _, ev := range facts.events {
			switch ev.kind {
			case evLock, evUnlock, evDeferUnlock, evUnlockAbort:
				if ev.chain == own {
					pass.Reportf(a.Name(), ev.pos,
						"%s must run with %s held and must not call %s.%s itself",
						fd.Name.Name, own, own, ev.name)
				}
			}
		}
	}

	// Rule 2: *Locked calls need the matching mu held in their scope.
	for i, ev := range facts.events {
		if ev.kind != evLockedCall {
			continue
		}
		if inLocked && ev.scope == -1 {
			continue // Locked calling Locked in its own body is the norm
		}
		if ev.chain == "" {
			// Package-level fooLocked() or a computed receiver: only a
			// *Locked context can justify it.
			if !inLocked || ev.scope != -1 {
				pass.Reportf(a.Name(), ev.pos,
					"%s called without a visible lock for it", ev.name)
			}
			continue
		}
		if facts.heldStrength(i, ev.chain+".mu") != heldNone {
			continue // held lexically, via a *Locked entry, or inherited by the closure
		}
		if unpublishedObj(e, fi, facts, ev.baseObj, ev.pos) {
			continue // no other goroutine can reach the object yet
		}
		pass.Reportf(a.Name(), ev.pos,
			"%s.%s called without %s.mu held (no preceding %s.mu.Lock in this scope)",
			ev.chain, ev.name, ev.chain, ev.chain)
	}
}

// ---- lexical helpers shared with lockfacts.go ----

// abortingUnlockPositions finds Unlock/RUnlock calls that sit in a nested
// statement list which leaves the function afterwards — the early-exit
// idiom `if s.closed { s.mu.Unlock(); return }`. Such an unlock balances
// its own branch's exit; it does not close the lock region for the code
// after the branch. Unlocks at the top level of a function (or closure)
// body are never treated this way: there the unlock genuinely ends the
// region, return or not.
func abortingUnlockPositions(body *ast.BlockStmt) map[token.Pos]bool {
	marked := make(map[token.Pos]bool)
	var walkList func(stmts []ast.Stmt, funcBody bool)
	walkList = func(stmts []ast.Stmt, funcBody bool) {
		// abortAt[i]: a top-level return or panic appears at index >= i.
		abortAt := make([]bool, len(stmts))
		abort := false
		for i := len(stmts) - 1; i >= 0; i-- {
			if stmtAborts(stmts[i]) {
				abort = true
			}
			abortAt[i] = abort
		}
		for i, stmt := range stmts {
			if !funcBody && abortAt[i] {
				if call := unlockExprStmt(stmt); call != nil {
					marked[call.Pos()] = true
				}
			}
			switch s := stmt.(type) {
			case *ast.IfStmt:
				walkList(s.Body.List, false)
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkList(e.List, false)
				case *ast.IfStmt:
					walkList([]ast.Stmt{e}, false)
				}
			case *ast.BlockStmt:
				walkList(s.List, false)
			case *ast.ForStmt:
				walkList(s.Body.List, false)
			case *ast.RangeStmt:
				walkList(s.Body.List, false)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkList(cc.Body, false)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkList(cc.Body, false)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						walkList(cc.Body, false)
					}
				}
			}
		}
	}
	walkList(body.List, true)
	// Closure bodies are their own functions: their top-level lists get
	// funcBody=true. walkList never descends into expressions, so FuncLits
	// are only ever reached here.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			walkList(fl.Body.List, true)
		}
		return true
	})
	return marked
}

// stmtAborts reports whether stmt unconditionally leaves the function.
func stmtAborts(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// unlockExprStmt returns the Unlock/RUnlock call when stmt is exactly
// `x.mu.Unlock()` as a standalone statement.
func unlockExprStmt(stmt ast.Stmt) *ast.CallExpr {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return nil
	}
	return call
}

// receiverName returns the name of fd's receiver variable, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
