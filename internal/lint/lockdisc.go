package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockDisc enforces the repo-wide *Locked naming convention: a function
// whose name ends in "Locked" runs with its receiver's mu held. Two rules
// follow:
//
//  1. a *Locked function must not itself lock or unlock the receiver's mu
//     (it would self-deadlock or release a lock it does not own);
//  2. a call to x.fooLocked() is legal only from another *Locked function,
//     or lexically between x.mu.Lock() (or RLock) and the next non-deferred
//     x.mu.Unlock() in the same lexical scope. Closure bodies are separate
//     scopes: a lock held when a closure is created is not known to be held
//     when it runs.
//
// The check is lexical, not path-sensitive — exactly the discipline the
// code is written in (Lock; defer Unlock; ...Locked calls...).
type lockDisc struct{}

// NewLockDisc returns the lockdisc analyzer.
func NewLockDisc() Analyzer { return &lockDisc{} }

func (*lockDisc) Name() string { return "lockdisc" }
func (*lockDisc) Doc() string {
	return "*Locked functions are called only with the receiver's mu held, and never lock/unlock it themselves"
}

// lockEvent is one mu operation or *Locked call, in lexical order.
type lockEvent struct {
	pos   token.Pos
	scope int    // funcLit index, -1 for the function body
	chain string // "s.mu" for lock ops, "s" for calls
	kind  lockEventKind
	name  string // callee name for calls, mu method name for lock ops
}

type lockEventKind uint8

const (
	evLock        lockEventKind = iota // Lock / RLock / TryLock
	evUnlock                           // non-deferred Unlock / RUnlock
	evDeferUnlock                      // deferred Unlock (region stays open)
	evUnlockAbort                      // Unlock in an aborting branch (outer region stays open)
	evLockedCall                       // call to a *Locked function
)

func (a *lockDisc) Run(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(pass, fd)
		}
	}
}

func (a *lockDisc) checkFunc(pass *Pass, fd *ast.FuncDecl) {
	lits := funcLitRanges(fd.Body)
	events := collectLockEvents(pass, fd, lits)
	inLocked := strings.HasSuffix(fd.Name.Name, "Locked")
	recvName := receiverName(fd)

	// Rule 1: a *Locked method must not operate on its receiver's mu,
	// anywhere in its body (including deferred closures).
	if inLocked && recvName != "" {
		own := recvName + ".mu"
		for _, ev := range events {
			if ev.chain == own && ev.kind != evLockedCall {
				pass.Reportf(a.Name(), ev.pos,
					"%s must run with %s held and must not call %s.%s itself",
					fd.Name.Name, own, own, ev.name)
			}
		}
	}

	// Rule 2: *Locked calls need the matching mu held in their scope.
	type heldKey struct {
		scope int
		chain string
	}
	held := make(map[heldKey]bool)
	key := func(scope int, chain string) heldKey {
		return heldKey{scope, chain}
	}
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held[key(ev.scope, ev.chain)] = true
		case evUnlock:
			held[key(ev.scope, ev.chain)] = false
		case evDeferUnlock, evUnlockAbort:
			// A deferred Unlock runs at function exit, and an Unlock in an
			// early-exit branch balances that branch's own return: either
			// way the region stays open for the code that follows.
		case evLockedCall:
			if inLocked && ev.scope == -1 {
				continue // Locked calling Locked in its own body is the norm
			}
			if ev.chain == "" {
				// Package-level fooLocked() or a computed receiver: only a
				// *Locked context can justify it.
				if !inLocked || ev.scope != -1 {
					pass.Reportf(a.Name(), ev.pos,
						"%s called without a visible lock for it", ev.name)
				}
				continue
			}
			if !held[key(ev.scope, ev.chain+".mu")] {
				pass.Reportf(a.Name(), ev.pos,
					"%s.%s called without %s.mu held (no preceding %s.mu.Lock in this scope)",
					ev.chain, ev.name, ev.chain, ev.chain)
			}
		}
	}
}

// collectLockEvents gathers mu operations and *Locked calls under fd in
// lexical order, tagged with the innermost closure scope containing them.
func collectLockEvents(pass *Pass, fd *ast.FuncDecl, lits [][2]token.Pos) []lockEvent {
	var events []lockEvent
	deferred := make(map[*ast.CallExpr]bool)
	aborting := abortingUnlockPositions(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			// Plain fooLocked() calls.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && strings.HasSuffix(id.Name, "Locked") {
				events = append(events, lockEvent{
					pos: call.Pos(), scope: scopeAt(lits, call.Pos()),
					kind: evLockedCall, name: id.Name,
				})
			}
			return true
		}
		name := sel.Sel.Name
		switch name {
		case "Lock", "RLock", "TryLock", "Unlock", "RUnlock":
			chain := chainString(sel.X)
			if chain == "" || !strings.HasSuffix(chain, ".mu") {
				return true
			}
			kind := evLock
			if name == "Unlock" || name == "RUnlock" {
				kind = evUnlock
				switch {
				case deferred[call]:
					kind = evDeferUnlock
				case aborting[call.Pos()]:
					kind = evUnlockAbort
				}
			}
			events = append(events, lockEvent{
				pos: call.Pos(), scope: scopeAt(lits, call.Pos()),
				chain: chain, kind: kind, name: name,
			})
		default:
			if strings.HasSuffix(name, "Locked") {
				events = append(events, lockEvent{
					pos: call.Pos(), scope: scopeAt(lits, call.Pos()),
					chain: chainString(sel.X), kind: evLockedCall, name: name,
				})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// abortingUnlockPositions finds Unlock/RUnlock calls that sit in a nested
// statement list which leaves the function afterwards — the early-exit
// idiom `if s.closed { s.mu.Unlock(); return }`. Such an unlock balances
// its own branch's exit; it does not close the lock region for the code
// after the branch. Unlocks at the top level of a function (or closure)
// body are never treated this way: there the unlock genuinely ends the
// region, return or not.
func abortingUnlockPositions(body *ast.BlockStmt) map[token.Pos]bool {
	marked := make(map[token.Pos]bool)
	var walkList func(stmts []ast.Stmt, funcBody bool)
	walkList = func(stmts []ast.Stmt, funcBody bool) {
		// abortAt[i]: a top-level return or panic appears at index >= i.
		abortAt := make([]bool, len(stmts))
		abort := false
		for i := len(stmts) - 1; i >= 0; i-- {
			if stmtAborts(stmts[i]) {
				abort = true
			}
			abortAt[i] = abort
		}
		for i, stmt := range stmts {
			if !funcBody && abortAt[i] {
				if call := unlockExprStmt(stmt); call != nil {
					marked[call.Pos()] = true
				}
			}
			switch s := stmt.(type) {
			case *ast.IfStmt:
				walkList(s.Body.List, false)
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkList(e.List, false)
				case *ast.IfStmt:
					walkList([]ast.Stmt{e}, false)
				}
			case *ast.BlockStmt:
				walkList(s.List, false)
			case *ast.ForStmt:
				walkList(s.Body.List, false)
			case *ast.RangeStmt:
				walkList(s.Body.List, false)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkList(cc.Body, false)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkList(cc.Body, false)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						walkList(cc.Body, false)
					}
				}
			}
		}
	}
	walkList(body.List, true)
	// Closure bodies are their own functions: their top-level lists get
	// funcBody=true. walkList never descends into expressions, so FuncLits
	// are only ever reached here.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			walkList(fl.Body.List, true)
		}
		return true
	})
	return marked
}

// stmtAborts reports whether stmt unconditionally leaves the function.
func stmtAborts(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// unlockExprStmt returns the Unlock/RUnlock call when stmt is exactly
// `x.mu.Unlock()` as a standalone statement.
func unlockExprStmt(stmt ast.Stmt) *ast.CallExpr {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return nil
	}
	return call
}

// receiverName returns the name of fd's receiver variable, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
