package slremote

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

func initClient(t *testing.T, s *Server) string {
	t.Helper()
	res, err := s.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient: %v", err)
	}
	return res.SLID
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{D: 0.5, HealthThreshold: 0.9, Beta: 0.01, TauFraction: 0.1},
		{D: 4, HealthThreshold: 2, Beta: 0.01, TauFraction: 0.1},
		{D: 4, HealthThreshold: 0.9, Beta: 0, TauFraction: 0.1},
		{D: 4, HealthThreshold: 0.9, Beta: 0.01, TauFraction: 0},
		{D: 4, HealthThreshold: 0.9, Beta: 0.01, TauFraction: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRegisterLicense(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	if err := s.RegisterLicense("lic", lease.CountBased, 1000); err == nil {
		t.Fatal("duplicate license accepted")
	}
	if err := s.RegisterLicense("neg", lease.CountBased, 0); err == nil {
		t.Fatal("zero-budget license accepted")
	}
	lic, err := s.License("lic")
	if err != nil {
		t.Fatalf("License: %v", err)
	}
	if lic.TotalGCL != 1000 || lic.Remaining != 1000 {
		t.Fatalf("license = %+v", lic)
	}
	if lic.Tau != 100 { // 10% of 1000
		t.Fatalf("tau = %v, want 100", lic.Tau)
	}
	if _, err := s.License("nope"); !errors.Is(err, ErrUnknownLicense) {
		t.Fatalf("unknown license: %v", err)
	}
}

func TestInitClientAssignsStableSLIDs(t *testing.T) {
	s := newServer(t)
	a := initClient(t, s)
	b := initClient(t, s)
	if a == b {
		t.Fatal("two clients got the same SLID")
	}
	// Re-init with an existing SLID keeps it.
	res, err := s.InitClient(a, attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("re-init: %v", err)
	}
	if res.SLID != a {
		t.Fatalf("re-init changed SLID: %q → %q", a, res.SLID)
	}
	if s.Stats().RemoteAttestations != 3 {
		t.Fatalf("RA count = %d, want 3", s.Stats().RemoteAttestations)
	}
}

func TestInitClientVerifiesQuote(t *testing.T) {
	svc := attest.NewService()
	s, err := NewServer(DefaultConfig(), svc)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	m, err := sgx.NewMachine(sgx.MachineConfig{EPCBytes: 1 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("client", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	encl, err := m.CreateEnclave("sl-local", []byte("sl-local-code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	quote, err := plat.CreateQuote(encl, nil)
	if err != nil {
		t.Fatalf("CreateQuote: %v", err)
	}

	// Unregistered platform → attestation failure.
	if _, err := s.InitClient("", quote, m); !errors.Is(err, ErrAttestationFailed) {
		t.Fatalf("unattested init: got %v", err)
	}

	svc.RegisterPlatform(plat)
	svc.TrustMeasurement(encl.Measurement())
	res, err := s.InitClient("", quote, m)
	if err != nil {
		t.Fatalf("attested init: %v", err)
	}
	if res.SLID == "" {
		t.Fatal("empty SLID")
	}
	if m.Stats().RemoteAttests != 2 {
		t.Fatalf("client RA charges = %d, want 2", m.Stats().RemoteAttests)
	}
}

func TestRenewLeaseBasicShare(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	slid := initClient(t, s)
	g, err := s.RenewLease(slid, "lic")
	if err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	// Single perfect-health client: G = TG = 10000, g = G/D = 2500; the
	// expected loss is 0 (h=1) so line 16 leaves it at 2500.
	if g.Units != 2500 {
		t.Fatalf("grant = %d, want 2500 (TG/D)", g.Units)
	}
	if g.GCL.Kind != lease.CountBased || g.GCL.Counter != 2500 {
		t.Fatalf("grant GCL = %+v", g.GCL)
	}
	lic, err := s.License("lic")
	if err != nil {
		t.Fatalf("License: %v", err)
	}
	if lic.Remaining != 7500 {
		t.Fatalf("remaining = %d, want 7500", lic.Remaining)
	}
	if s.Outstanding(slid, "lic") != 2500 {
		t.Fatalf("outstanding = %d", s.Outstanding(slid, "lic"))
	}
}

func TestRenewLeaseUnknowns(t *testing.T) {
	s := newServer(t)
	if _, err := s.RenewLease("ghost", "lic"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("unknown client: %v", err)
	}
	slid := initClient(t, s)
	if _, err := s.RenewLease(slid, "lic"); !errors.Is(err, ErrUnknownLicense) {
		t.Fatalf("unknown license: %v", err)
	}
}

func TestRenewLeaseConcurrencySplitsShare(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	a := initClient(t, s)
	b := initClient(t, s)
	ga, err := s.RenewLease(a, "lic")
	if err != nil {
		t.Fatalf("RenewLease a: %v", err)
	}
	// b now competes with a (a is a holder): C=2, α_b normalized to 1/2.
	gb, err := s.RenewLease(b, "lic")
	if err != nil {
		t.Fatalf("RenewLease b: %v", err)
	}
	if gb.Units >= ga.Units {
		t.Fatalf("second concurrent grant %d should be smaller than first %d", gb.Units, ga.Units)
	}
	// G_b = (1/2)·TG/2 = 2500, g = 625.
	if gb.Units != 625 {
		t.Fatalf("grant b = %d, want 625", gb.Units)
	}
}

func TestRenewLeaseHealthPenalty(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	slid := initClient(t, s)
	// Health 0.5 (below T_H=0.9): crash penalty applies, no network benefit.
	if err := s.SetClientProfile(slid, 0.5, 1.0, 1.0); err != nil {
		t.Fatalf("SetClientProfile: %v", err)
	}
	g, err := s.RenewLease(slid, "lic")
	if err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	// g = 2500·0.5 = 1250, then expected loss = 1250·0.5 = 625 > τ=1000?
	// No: 625 < 1000, so line 16: β=(1000−625)/1000=0.375, g=1250·0.375=468.
	if g.Units != 468 {
		t.Fatalf("grant = %d, want 468", g.Units)
	}
}

func TestRenewLeaseNetworkBenefit(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	slid := initClient(t, s)
	// Healthy client (h=1 > T_H) on a flaky network (n=0.5): benefit 1/n=2,
	// capped at G_i.
	if err := s.SetClientProfile(slid, 1.0, 0.5, 1.0); err != nil {
		t.Fatalf("SetClientProfile: %v", err)
	}
	g, err := s.RenewLease(slid, "lic")
	if err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	// g = 2500·1·2 = 5000, exp loss 0 → unchanged.
	if g.Units != 5000 {
		t.Fatalf("grant = %d, want 5000 (network-compensated)", g.Units)
	}

	// Very flaky network: capped at G_i = 10000.
	slid2 := initClient(t, s)
	if err := s.SetClientProfile(slid2, 1.0, 0.01, 1.0); err != nil {
		t.Fatalf("SetClientProfile: %v", err)
	}
	g2, err := s.RenewLease(slid2, "lic")
	if err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	// Two holders now: G = TG·(1/2)/2 = 2500; g = 625·100 capped at 2500.
	if g2.Units != 2500 {
		t.Fatalf("grant = %d, want capped 2500", g2.Units)
	}
}

func TestRenewLeaseExpectedLossBound(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	// An unhealthy fleet: each grant g at health h contributes g(1−h) to
	// the license's expected loss; τ = 1000.
	const tau = 1000.0
	var totalLoss float64
	for i := 0; i < 6; i++ {
		slid := initClient(t, s)
		if err := s.SetClientProfile(slid, 0.4, 1.0, 1.0); err != nil {
			t.Fatalf("SetClientProfile: %v", err)
		}
		g, err := s.RenewLease(slid, "lic")
		if err != nil {
			// Pool or policy exhaustion is acceptable late in the loop.
			if errors.Is(err, ErrLicenseExhausted) {
				break
			}
			t.Fatalf("RenewLease %d: %v", i, err)
		}
		totalLoss += float64(g.Units) * (1 - 0.4)
	}
	if totalLoss > tau {
		t.Fatalf("expected loss %v exceeds τ %v", totalLoss, tau)
	}
}

func TestRenewLeaseExhaustion(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 10); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	slid := initClient(t, s)
	var total int64
	for i := 0; i < 100; i++ {
		g, err := s.RenewLease(slid, "lic")
		if err != nil {
			if !errors.Is(err, ErrLicenseExhausted) {
				t.Fatalf("RenewLease: %v", err)
			}
			break
		}
		total += g.Units
	}
	if total > 10 {
		t.Fatalf("granted %d units from a 10-unit license", total)
	}
}

func TestRevokedLicenseDeniesRenewal(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 100); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	slid := initClient(t, s)
	if err := s.Revoke("lic"); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if _, err := s.RenewLease(slid, "lic"); !errors.Is(err, ErrLicenseRevoked) {
		t.Fatalf("revoked renewal: %v", err)
	}
	if err := s.Revoke("nope"); !errors.Is(err, ErrUnknownLicense) {
		t.Fatalf("revoke unknown: %v", err)
	}
	if s.Stats().RenewalsDenied != 1 {
		t.Fatalf("denied = %d", s.Stats().RenewalsDenied)
	}
}

func TestEscrowLifecycle(t *testing.T) {
	s := newServer(t)
	slid := initClient(t, s)
	key, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	if err := s.EscrowRootKey(slid, key); err != nil {
		t.Fatalf("EscrowRootKey: %v", err)
	}
	res, err := s.InitClient(slid, attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("re-init: %v", err)
	}
	if !res.HasOBK {
		t.Fatal("no OBK released")
	}
	if res.OBK != key {
		t.Fatal("OBK mismatch")
	}
	// Escrow is single-use: a second init has nothing.
	res2, err := s.InitClient(slid, attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("third init: %v", err)
	}
	if res2.HasOBK {
		t.Fatal("escrow released twice")
	}
	if err := s.EscrowRootKey("ghost", key); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("escrow for unknown client: %v", err)
	}
}

func TestCrashForfeitsLeasesAndEscrow(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	slid := initClient(t, s)
	g, err := s.RenewLease(slid, "lic")
	if err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	key, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	if err := s.EscrowRootKey(slid, key); err != nil {
		t.Fatalf("EscrowRootKey: %v", err)
	}
	if err := s.ReportCrash(slid); err != nil {
		t.Fatalf("ReportCrash: %v", err)
	}
	lic, err := s.License("lic")
	if err != nil {
		t.Fatalf("License: %v", err)
	}
	if lic.Lost != g.Units {
		t.Fatalf("lost = %d, want %d", lic.Lost, g.Units)
	}
	if s.Outstanding(slid, "lic") != 0 {
		t.Fatal("outstanding not forfeited")
	}
	// Post-crash init must NOT release the escrowed key (the replay
	// defence of Section 5.7).
	res, err := s.InitClient(slid, attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("post-crash init: %v", err)
	}
	if res.HasOBK {
		t.Fatal("escrow released after a crash — replay window open")
	}
	if err := s.ReportCrash("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("crash for unknown client: %v", err)
	}
}

func TestConsumeReport(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	slid := initClient(t, s)
	g, err := s.RenewLease(slid, "lic")
	if err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	if err := s.ConsumeReport(slid, "lic", g.Units/2); err != nil {
		t.Fatalf("ConsumeReport: %v", err)
	}
	if got := s.Outstanding(slid, "lic"); got != g.Units-g.Units/2 {
		t.Fatalf("outstanding = %d", got)
	}
	// Over-reporting clamps at zero.
	if err := s.ConsumeReport(slid, "lic", 1<<40); err != nil {
		t.Fatalf("ConsumeReport: %v", err)
	}
	if got := s.Outstanding(slid, "lic"); got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
	if err := s.ConsumeReport(slid, "lic", -1); err == nil {
		t.Fatal("negative consumption accepted")
	}
}

func TestGrantNeverExceedsPoolProperty(t *testing.T) {
	// Property: across arbitrary health/reliability profiles and client
	// counts, the sum of all grants never exceeds the license total.
	f := func(seed int64, profiles []struct {
		H, N, W float64
	}) bool {
		if len(profiles) == 0 {
			return true
		}
		if len(profiles) > 12 {
			profiles = profiles[:12]
		}
		s, err := NewServer(DefaultConfig(), nil)
		if err != nil {
			return false
		}
		const total = 5000
		if err := s.RegisterLicense("lic", lease.CountBased, total); err != nil {
			return false
		}
		var granted int64
		for _, p := range profiles {
			res, err := s.InitClient("", attest.Quote{}, nil)
			if err != nil {
				return false
			}
			if err := s.SetClientProfile(res.SLID, p.H, p.N, p.W); err != nil {
				return false
			}
			for r := 0; r < 3; r++ {
				g, err := s.RenewLease(res.SLID, "lic")
				if err != nil {
					break
				}
				granted += g.Units
			}
		}
		lic, err := s.License("lic")
		if err != nil {
			return false
		}
		return granted <= total && lic.Remaining >= 0 && lic.Remaining+granted == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSetClientProfileClamps(t *testing.T) {
	s := newServer(t)
	slid := initClient(t, s)
	if err := s.SetClientProfile(slid, 7, -2, -1); err != nil {
		t.Fatalf("SetClientProfile: %v", err)
	}
	if err := s.SetClientProfile("ghost", 1, 1, 1); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("profile for unknown client: %v", err)
	}
	// Clamped values must not break renewal.
	if err := s.RegisterLicense("lic", lease.CountBased, 100); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	if _, err := s.RenewLease(slid, "lic"); err != nil && !errors.Is(err, ErrLicenseExhausted) {
		t.Fatalf("RenewLease with clamped profile: %v", err)
	}
}

// TestAlgorithm1HandComputedMultiClient pins the renewal formula line by
// line for a three-client group with distinct α, h, and n values.
func TestAlgorithm1HandComputedMultiClient(t *testing.T) {
	s := newServer(t)
	const total = 12_000 // τ = 1200
	if err := s.RegisterLicense("lic", lease.CountBased, total); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}

	// Client A: weight 2, perfect health, perfect network.
	a := initClient(t, s)
	if err := s.SetClientProfile(a, 1.0, 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	// First renewal: A is the only holder/requester. C=1, α=1 (normalized),
	// G = 12000, g = G/D = 3000, h=1 → no penalty, n=1 → no benefit,
	// ExpLoss = 0 ≤ τ → β=(τ−0)/τ=1 → g=3000.
	ga, err := s.RenewLease(a, "lic")
	if err != nil {
		t.Fatalf("RenewLease a: %v", err)
	}
	if ga.Units != 3000 {
		t.Fatalf("grant A = %d, want 3000", ga.Units)
	}

	// Client B: weight 1, health 0.8 (below T_H), network 0.5 (no benefit
	// because unhealthy).
	b := initClient(t, s)
	if err := s.SetClientProfile(b, 0.8, 0.5, 1.0); err != nil {
		t.Fatal(err)
	}
	// Holders now {A(w2), B(w1)}: C=2, α_B = 1/3.
	// G_B = (1/3)·12000/2 = 2000; g = 2000/4 = 500; crash penalty ×0.8 =
	// 400; no network benefit (h ≤ T_H).
	// ExpLoss = A: 3000·(1−1)=0 + B: 400·(1−0.8)=80 ≤ τ=1200
	// → β=(1200−80)/1200=0.93333, g = 400·0.93333 = 373.33 → 373.
	gb, err := s.RenewLease(b, "lic")
	if err != nil {
		t.Fatalf("RenewLease b: %v", err)
	}
	if gb.Units != 373 {
		t.Fatalf("grant B = %d, want 373", gb.Units)
	}

	// Client C: weight 1, health 0.95 (> T_H), network 0.5 → benefit ×2.
	c := initClient(t, s)
	if err := s.SetClientProfile(c, 0.95, 0.5, 1.0); err != nil {
		t.Fatal(err)
	}
	// Holders {A(2), B(1), C(1)}: C=3, α_C = 1/4.
	// G_C = (1/4)·12000/3 = 1000; g = 1000/4 = 250; ×0.95 = 237.5;
	// benefit min(1000, 237.5·2) = 475.
	// ExpLoss = 0 (A) + 373·0.2=74.6 (B) + 475·0.05=23.75 (C) = 98.35 ≤ τ
	// → β = (1200−98.35)/1200 = 0.9180, g = 475·0.9180 = 436.06 → 436.
	gc, err := s.RenewLease(c, "lic")
	if err != nil {
		t.Fatalf("RenewLease c: %v", err)
	}
	if gc.Units != 436 {
		t.Fatalf("grant C = %d, want 436", gc.Units)
	}

	// Pool accounting is exact.
	lic, err := s.License("lic")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(total - 3000 - 373 - 436); lic.Remaining != want {
		t.Fatalf("remaining = %d, want %d", lic.Remaining, want)
	}
}

// TestAlgorithm1ScaleDownLoop forces the while-loop branch (lines 10-14):
// a fleet so unhealthy that the expected loss exceeds τ, requiring the
// β-driven scale-down to converge below the bound.
func TestAlgorithm1ScaleDownLoop(t *testing.T) {
	s := newServer(t)
	const total = 1000 // τ = 100
	if err := s.RegisterLicense("lic", lease.CountBased, total); err != nil {
		t.Fatal(err)
	}
	// Existing holder with huge exposure: health 0.1, gets some units.
	a := initClient(t, s)
	if err := s.SetClientProfile(a, 0.1, 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
	ga, err := s.RenewLease(a, "lic")
	if err != nil {
		t.Fatal(err)
	}
	// Second equally unhealthy client: the combined expected loss would
	// breach τ without the scale-down loop.
	b := initClient(t, s)
	if err := s.SetClientProfile(b, 0.1, 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
	gb, err := s.RenewLease(b, "lic")
	if err != nil && !errors.Is(err, ErrLicenseExhausted) {
		t.Fatalf("RenewLease b: %v", err)
	}
	loss := float64(ga.Units)*0.9 + float64(gb.Units)*0.9
	// The loop bounds the POST-renewal expected loss; allow the pre-grant
	// exposure of A plus a small epsilon.
	if loss > 100+float64(ga.Units)*0.9 {
		t.Fatalf("expected loss %.1f not bounded", loss)
	}
	if gb.Units >= ga.Units {
		t.Fatalf("second unhealthy grant %d not scaled below first %d", gb.Units, ga.Units)
	}
}
