package slremote

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/attest"
	"repro/internal/seccrypto"
	"repro/internal/store"
)

// Replica is a warm-standby SL-Remote built by folding a leader's shipped
// WAL stream, record by record, through the same apply helpers recovery
// uses — so a follower's state is, at every instant, exactly the state a
// crash-recovery of the leader would reach from the records shipped so
// far. It serves no clients and logs nothing; Promote turns it into a
// serving Server when the leader dies.
type Replica struct {
	s       *Server
	applied atomic.Int64
	// promoted latches Promote: once the underlying server is serving (and
	// write-ahead-logging to its own store), folding more of the dead
	// leader's records into it would corrupt the new incarnation.
	promoted bool
}

// NewReplica builds an empty replica. The seal key must match the leader's
// (shipped snapshot images and escrow records are sealed with it); the
// attestation service is carried to the promoted server, where it guards
// InitClient exactly as on any leader.
func NewReplica(cfg Config, service *attest.Service, sealKey seccrypto.Key) (*Replica, error) {
	if sealKey.IsZero() {
		return nil, errors.New("slremote: replica without a seal key")
	}
	s, err := NewServer(cfg, service)
	if err != nil {
		return nil, err
	}
	// Replay needs the seal key but must not re-log what the leader
	// already made durable — the same unattached-persister trick
	// RecoverServer uses.
	s.persist = &persister{sealKey: sealKey}
	return &Replica{s: s}, nil
}

// Rebase discards the replica's state and installs a leader snapshot image
// (sealed; nil means the empty state — a leader still on generation 0).
// The WAL records that follow a rebase start from that image's generation.
func (r *Replica) Rebase(sealed []byte) error {
	if r.promoted {
		return errors.New("slremote: replica already promoted")
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	var img snapshotImage
	if sealed != nil {
		plain, err := seccrypto.Validate(sealed, r.s.persist.sealKey)
		if err != nil {
			return fmt.Errorf("slremote: unsealing shipped snapshot (wrong seal key, or tampered image): %w", err)
		}
		if err := json.Unmarshal(plain, &img); err != nil {
			return fmt.Errorf("slremote: decoding shipped snapshot: %w", err)
		}
	}
	r.s.resetLocked()
	if sealed == nil {
		return nil
	}
	return r.s.restoreImageLocked(img)
}

// Apply folds one shipped WAL record into the replica. Like recovery,
// replay tolerates nothing: a record that does not fit the state means the
// follower and the leader have diverged, and the replica must fail loudly
// rather than promote a subtly different server.
func (r *Replica) Apply(rec []byte) error {
	if r.promoted {
		return errors.New("slremote: replica already promoted")
	}
	var ev event
	if err := json.Unmarshal(rec, &ev); err != nil {
		return fmt.Errorf("slremote: decoding shipped record: %w", err)
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if err := r.s.applyEventLocked(ev); err != nil { //sllint:ignore walorder the record is already durable in the leader's WAL; the replica folds outcomes, it never originates them
		return fmt.Errorf("slremote: applying shipped %s record: %w", ev.Op, err)
	}
	r.applied.Add(1)
	return nil
}

// ApplyBatch folds one store.TailBatch: the rebase image first (when
// present), then every record, oldest first. It returns the number of
// records applied.
func (r *Replica) ApplyBatch(b store.TailBatch) (int, error) {
	if b.Rebase {
		if err := r.Rebase(b.Snapshot); err != nil {
			return 0, err
		}
	}
	for i, rec := range b.Records {
		if err := r.Apply(rec); err != nil {
			return i, err
		}
	}
	return len(b.Records), nil
}

// Applied returns the number of WAL records folded since the last rebase
// discarded the count's baseline — the follower's replication progress.
func (r *Replica) Applied() int64 { return r.applied.Load() }

// State deep-copies the replica's current state, for conservation checks
// and replication-lag tests.
func (r *Replica) State() State { return r.s.ExportState() }

// Promote turns the replica into a serving Server: persistence attaches
// (the follower's own, fresh store), and when a Snapshotter is wired the
// inherited state is immediately compacted into a durable snapshot, so the
// new incarnation survives its own crash from the first request on. The
// caller must have stopped feeding the replica first; every later Rebase
// or Apply fails.
func (r *Replica) Promote(pc PersistConfig) (*Server, error) {
	if r.promoted {
		return nil, errors.New("slremote: replica already promoted")
	}
	if err := pc.validate(); err != nil {
		return nil, err
	}
	r.s.mu.Lock()
	r.s.persist = &persister{
		log:           pc.Log,
		snap:          pc.Snap,
		sealKey:       pc.SealKey,
		snapshotEvery: pc.SnapshotEvery,
	}
	r.s.mu.Unlock()
	r.promoted = true
	if pc.Snap != nil {
		if err := r.s.SnapshotNow(); err != nil {
			return nil, fmt.Errorf("slremote: snapshotting promoted state: %w", err)
		}
	}
	return r.s, nil
}

// resetLocked discards every license, client, and counter; Rebase installs
// a whole new image on the empty state.
func (s *Server) resetLocked() {
	s.licenses = make(map[string]*License)
	s.clients = make(map[string]*clientState)
	s.holders = make(map[string]map[string]*clientState)
	s.nextSLID = 0
	s.stats = ServerStats{}
}
