package slremote

import (
	"reflect"
	"testing"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/seccrypto"
	"repro/internal/store"
)

// tailAll pulls the leader's WAL position forward through the replica
// until it is caught up, returning the records applied.
func tailAll(t *testing.T, st *store.Store, r *Replica, gen *uint64, off *int64) int {
	t.Helper()
	total := 0
	for {
		b, err := st.TailSince(*gen, *off, 0)
		if err != nil {
			t.Fatalf("TailSince: %v", err)
		}
		n, err := r.ApplyBatch(b)
		if err != nil {
			t.Fatalf("ApplyBatch: %v", err)
		}
		total += n
		*gen, *off = b.Gen, b.NextOffset
		if b.Caught() {
			return total
		}
	}
}

func TestReplicaFollowsLeaderWAL(t *testing.T) {
	key := testSealKey(t)
	st, rec, err := store.Open(store.Options{Dir: t.TempDir(), Mode: store.SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	leader, err := RecoverServer(DefaultConfig(), nil, rec, PersistConfig{Log: st, Snap: st, SealKey: key})
	if err != nil {
		t.Fatalf("RecoverServer: %v", err)
	}
	replica, err := NewReplica(DefaultConfig(), nil, key)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}

	if err := leader.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatal(err)
	}
	init, err := leader.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient: %v", err)
	}
	if _, err := leader.RenewLease(init.SLID, "lic"); err != nil {
		t.Fatalf("RenewLease: %v", err)
	}

	var gen uint64
	var off int64
	tailAll(t, st, replica, &gen, &off)
	if got, want := replica.State(), leader.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica state diverged:\n got %+v\nwant %+v", got, want)
	}

	// More leader traffic, including an escrow (a sealed record): the
	// incremental follow must land it identically.
	rootKey, err := seccrypto.KeyFromBytes([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatalf("root key: %v", err)
	}
	if err := leader.EscrowRootKey(init.SLID, rootKey); err != nil {
		t.Fatalf("EscrowRootKey: %v", err)
	}
	if err := leader.ConsumeReport(init.SLID, "lic", 10); err != nil {
		t.Fatalf("ConsumeReport: %v", err)
	}
	tailAll(t, st, replica, &gen, &off)
	if got, want := replica.State(), leader.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica state diverged after follow:\n got %+v\nwant %+v", got, want)
	}
	if replica.Applied() == 0 {
		t.Fatalf("Applied() = 0 after folding records")
	}
}

func TestReplicaRebasesAcrossSnapshot(t *testing.T) {
	key := testSealKey(t)
	st, rec, err := store.Open(store.Options{Dir: t.TempDir(), Mode: store.SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	leader, err := RecoverServer(DefaultConfig(), nil, rec, PersistConfig{Log: st, Snap: st, SealKey: key})
	if err != nil {
		t.Fatalf("RecoverServer: %v", err)
	}
	if err := leader.RegisterLicense("lic", lease.CountBased, 500); err != nil {
		t.Fatal(err)
	}
	init, err := leader.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient: %v", err)
	}
	if err := leader.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if _, err := leader.RenewLease(init.SLID, "lic"); err != nil {
		t.Fatalf("RenewLease: %v", err)
	}

	// A replica starting from scratch sees a leader already past a
	// compaction: its first pull must rebase onto the sealed snapshot.
	replica, err := NewReplica(DefaultConfig(), nil, key)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	var gen uint64
	var off int64
	tailAll(t, st, replica, &gen, &off)
	if gen != 1 {
		t.Fatalf("follow position at generation %d, want 1", gen)
	}
	if got, want := replica.State(), leader.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica state diverged across rebase:\n got %+v\nwant %+v", got, want)
	}
}

func TestReplicaPromoteServesAndPersists(t *testing.T) {
	key := testSealKey(t)
	leaderStore, rec, err := store.Open(store.Options{Dir: t.TempDir(), Mode: store.SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer leaderStore.Close()
	leader, err := RecoverServer(DefaultConfig(), nil, rec, PersistConfig{Log: leaderStore, Snap: leaderStore, SealKey: key})
	if err != nil {
		t.Fatalf("RecoverServer: %v", err)
	}
	if err := leader.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatal(err)
	}
	init, err := leader.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient: %v", err)
	}
	if _, err := leader.RenewLease(init.SLID, "lic"); err != nil {
		t.Fatalf("RenewLease: %v", err)
	}

	replica, err := NewReplica(DefaultConfig(), nil, key)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	var gen uint64
	var off int64
	tailAll(t, leaderStore, replica, &gen, &off)
	want := leader.ExportState()

	// Promote onto the follower's own fresh store; the inherited state is
	// snapshotted immediately, so a crash right after promotion recovers
	// the full inherited state.
	followerDir := t.TempDir()
	followerStore, frec, err := store.Open(store.Options{Dir: followerDir, Mode: store.SyncAlways})
	if err != nil {
		t.Fatalf("Open follower store: %v", err)
	}
	if !frec.Empty() {
		t.Fatalf("fresh follower dir recovered state")
	}
	promoted, err := replica.Promote(PersistConfig{Log: followerStore, Snap: followerStore, SealKey: key})
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got := promoted.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("promoted state diverged:\n got %+v\nwant %+v", got, want)
	}

	// The promoted server serves and logs: a renewal lands in its store.
	if _, err := promoted.RenewLease(init.SLID, "lic"); err != nil {
		t.Fatalf("RenewLease on promoted server: %v", err)
	}
	wantAfter := promoted.ExportState()
	if err := followerStore.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, rec2, err := store.Open(store.Options{Dir: followerDir, Mode: store.SyncAlways})
	if err != nil {
		t.Fatalf("reopen follower store: %v", err)
	}
	defer st2.Close()
	recovered, err := RecoverServer(DefaultConfig(), nil, rec2, PersistConfig{Log: st2, Snap: st2, SealKey: key})
	if err != nil {
		t.Fatalf("RecoverServer from follower store: %v", err)
	}
	if got := recovered.ExportState(); !reflect.DeepEqual(got, wantAfter) {
		t.Fatalf("recovery of promoted store diverged:\n got %+v\nwant %+v", got, wantAfter)
	}

	// The replica is sealed off after promotion.
	if err := replica.Apply([]byte(`{"op":"crash","slid":"x"}`)); err == nil {
		t.Fatalf("Apply after Promote succeeded")
	}
}
