// Package slremote implements SL-Remote, SecureLease's trusted license
// server (Sections 4.4, 5.1, 5.3 of the paper). SL-Remote:
//
//   - registers licenses, each with a total GCL budget TG shared by a
//     multi-party group of client machines;
//   - remote-attests every SL-Local instance once at initialization and
//     assigns it a stable SLID;
//   - escrows each SL-Local's lease-tree root key at graceful shutdown and
//     releases it (the "old backup key", OBK) at the next initialization —
//     the mechanism that defeats replay of stale lease trees;
//   - renews leases with the adaptive policy of Algorithm 1, sizing the
//     sub-GCL g_i granted to client i from its concurrency share α_i, the
//     scale-down factor D, node health h_i, network reliability n_i, and
//     the per-license expected-loss bound τ with scale factor β;
//   - applies the pessimistic crash policy (Section 5.7): a crashed
//     SL-Local forfeits every GCL it held.
package slremote

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/audit"
	"repro/internal/lease"
	"repro/internal/obs/flight"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
)

// EnclaveCodeIdentity is the byte identity of the SL-Remote server
// enclave code; its sgx.MeasurementOf is what SL-Local daemons pin when
// they attest the server end of the wire channel.
var EnclaveCodeIdentity = []byte("securelease/sl-remote/v1")

// Errors returned by SL-Remote operations.
var (
	// ErrUnknownLicense reports an unregistered license ID.
	ErrUnknownLicense = errors.New("slremote: unknown license")
	// ErrUnknownClient reports an SLID that never initialized.
	ErrUnknownClient = errors.New("slremote: unknown client")
	// ErrLicenseExhausted reports a license whose global GCL pool is empty.
	ErrLicenseExhausted = errors.New("slremote: license exhausted")
	// ErrLicenseRevoked reports a revoked license.
	ErrLicenseRevoked = errors.New("slremote: license revoked")
	// ErrAttestationFailed reports a client that failed remote attestation.
	ErrAttestationFailed = errors.New("slremote: remote attestation failed")
	// ErrNoEscrow reports a re-initialization with no escrowed root key
	// (first boot, or state discarded after a crash).
	ErrNoEscrow = errors.New("slremote: no escrowed root key")
)

// Config tunes Algorithm 1. The defaults match the paper's evaluation
// setup (Section 7.4).
type Config struct {
	// D is the default scale-down factor: g_i starts at G_i / D.
	// The paper uses g_i = 25% of G_i, i.e. D = 4.
	D float64
	// HealthThreshold is T_H: only clients healthier than this receive the
	// network-compensation benefit. The paper uses 0.9.
	HealthThreshold float64
	// Beta is the initial per-license scale-down factor β (paper: 0.01).
	Beta float64
	// TauFraction sets each license's expected-loss bound τ as a fraction
	// of its total GCL (paper: 10%).
	TauFraction float64
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{
		D:               4,
		HealthThreshold: 0.9,
		Beta:            0.01,
		TauFraction:     0.10,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.D < 1 {
		return fmt.Errorf("slremote: D must be >= 1, got %v", c.D)
	}
	if c.HealthThreshold < 0 || c.HealthThreshold > 1 {
		return fmt.Errorf("slremote: health threshold must be in [0,1], got %v", c.HealthThreshold)
	}
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("slremote: beta must be in (0,1], got %v", c.Beta)
	}
	if c.TauFraction <= 0 || c.TauFraction > 1 {
		return fmt.Errorf("slremote: tau fraction must be in (0,1], got %v", c.TauFraction)
	}
	return nil
}

// License is one registered license with its global GCL pool.
type License struct {
	ID string
	// Kind of lease this license's GCLs represent.
	Kind lease.Kind
	// TotalGCL is TG: the total number of GCL units the license may ever
	// hand out across all clients.
	TotalGCL int64
	// Interval is the discretization step for time-based and
	// execution-time-based licenses (defaults to 24h, the paper's
	// one-day evaluation-period example).
	Interval time.Duration
	// Remaining is the undistributed portion of TotalGCL.
	Remaining int64
	// Tau is the absolute expected-loss bound τ for this license.
	Tau float64
	// Revoked marks the license dead; all renewals are refused.
	Revoked bool
	// Lost counts GCL units forfeited by crashed clients.
	Lost int64
	// Consumed counts GCL units clients reported as spent (ConsumeReport).
	// Together the counters satisfy the conservation law the chaos harness
	// checks: TotalGCL == Remaining + Σ outstanding + Consumed + Lost.
	Consumed int64
}

// clientState is SL-Remote's view of one SL-Local instance.
type clientState struct {
	slid        string
	health      float64 // h_i ∈ [0,1]
	reliability float64 // n_i ∈ (0,1]
	weight      float64 // α_i (normalized across concurrent clients at use)
	escrow      seccrypto.Key
	hasEscrow   bool
	// outstanding maps license ID → sub-GCL units currently held.
	outstanding map[string]int64
	crashed     bool
}

// Server is the SL-Remote instance. It is safe for concurrent use.
type Server struct {
	cfg     Config
	service *attest.Service

	mu       sync.Mutex
	licenses map[string]*License
	clients  map[string]*clientState
	// holders indexes, per license ID, the clients with a positive
	// outstanding balance — Algorithm 1's concurrency set. Renewals walk
	// this index instead of every registered client, which is what keeps a
	// renewal O(holders of one license) when a shard serves hundreds of
	// thousands of clients.
	holders  map[string]map[string]*clientState
	nextSLID int
	persist  *persister // nil: in-memory only (see persist.go)
	audit    *audit.Log // nil: no audit trail (see AttachAudit)

	stats   ServerStats
	metrics atomic.Pointer[serverMetrics]
	flight  atomic.Pointer[flight.Recorder]

	// renews coalesces concurrent RenewLease calls into group-committed
	// batches; it has its own mutex, taken strictly before (never inside)
	// mu.
	renews renewBatcher
}

// SetFlightRecorder wires the black-box flight recorder; the server emits
// denials and WAL compactions into it. A nil recorder (the default) is
// free.
func (s *Server) SetFlightRecorder(rec *flight.Recorder) {
	s.flight.Store(rec)
}

// AttachAudit connects the tamper-evident lease-lifecycle audit log: from
// here on every issue, renewal (with its Algorithm-1 inputs), denial,
// revocation, escrow, and crash forfeit is appended to it. Call it AFTER
// RecoverServer — WAL replay re-runs historical mutations through the same
// apply helpers, and those must not re-append records the audit chain
// already holds. Appends are best-effort: a failing audit log (counted in
// audit_append_failures_total) never blocks lease operations.
func (s *Server) AttachAudit(log *audit.Log) {
	s.mu.Lock()
	s.audit = log
	s.mu.Unlock()
}

// auditLocked appends one audit record, best-effort (nil-safe).
func (s *Server) auditLocked(rec audit.Record) {
	_ = s.audit.Append(rec)
}

// ServerStats counts server-side events.
type ServerStats struct {
	RemoteAttestations int64
	Renewals           int64
	RenewalsDenied     int64
	CrashForfeits      int64
}

// NewServer builds an SL-Remote with the given attestation service. A nil
// service disables quote verification (useful in unit tests of the policy
// alone); production paths always pass one.
func NewServer(cfg Config, service *attest.Service) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:      cfg,
		service:  service,
		licenses: make(map[string]*License),
		clients:  make(map[string]*clientState),
		holders:  make(map[string]map[string]*clientState),
	}, nil
}

// RegisterLicense adds a license with a total budget of totalGCL units.
// τ is derived from the config's TauFraction.
func (s *Server) RegisterLicense(id string, kind lease.Kind, totalGCL int64) error {
	if totalGCL <= 0 {
		return fmt.Errorf("slremote: license %q total GCL must be positive, got %d", id, totalGCL)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.licenses[id]; dup {
		return fmt.Errorf("slremote: license %q already registered", id)
	}
	if err := s.logLocked(event{Op: opRegister, License: id, Kind: uint8(kind), TotalGCL: totalGCL}); err != nil {
		return err
	}
	s.applyRegisterLocked(id, kind, totalGCL)
	s.auditLocked(audit.Record{Op: audit.OpIssue, License: id, Units: totalGCL})
	s.maybeSnapshotLocked()
	return nil
}

// applyRegisterLocked installs a license; shared by RegisterLicense and WAL
// replay.
func (s *Server) applyRegisterLocked(id string, kind lease.Kind, totalGCL int64) {
	lic := &License{
		ID:        id,
		Kind:      kind,
		TotalGCL:  totalGCL,
		Remaining: totalGCL,
		Tau:       s.cfg.TauFraction * float64(totalGCL),
	}
	if kind == lease.TimeBased || kind == lease.ExecTimeBased {
		lic.Interval = 24 * time.Hour
	}
	s.licenses[id] = lic
}

// SetLicenseInterval overrides the discretization step of a time-based or
// execution-time-based license.
func (s *Server) SetLicenseInterval(id string, interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("slremote: non-positive interval %v", interval)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lic, ok := s.licenses[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownLicense, id)
	}
	if err := s.logLocked(event{Op: opInterval, License: id, IntervalNS: int64(interval)}); err != nil {
		return err
	}
	lic.Interval = interval
	s.maybeSnapshotLocked()
	return nil
}

// License returns a copy of the license record.
func (s *Server) License(id string) (License, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lic, ok := s.licenses[id]
	if !ok {
		return License{}, fmt.Errorf("%w: %q", ErrUnknownLicense, id)
	}
	return *lic, nil
}

// Revoke kills a license: future renewals fail, and the paper's semantics
// (Section 4.3) set the counter to zero — SL-Local learns at its next
// contact.
func (s *Server) Revoke(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lic, ok := s.licenses[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownLicense, id)
	}
	if err := s.logLocked(event{Op: opRevoke, License: id}); err != nil {
		return err
	}
	s.applyRevokeLocked(lic)
	s.auditLocked(audit.Record{Op: audit.OpRevoke, License: id})
	s.maybeSnapshotLocked()
	return nil
}

func (s *Server) applyRevokeLocked(lic *License) {
	lic.Revoked = true
	if m := s.metrics.Load(); m != nil {
		m.revocations.Inc()
	}
}

// InitResult is what a successfully initialized SL-Local receives.
type InitResult struct {
	// SLID is the client's stable identifier (new or confirmed).
	SLID string
	// OBK is the escrowed root key from the previous graceful shutdown;
	// zero when HasOBK is false (first boot or post-crash).
	OBK    seccrypto.Key
	HasOBK bool
}

// InitClient performs the init() handshake of Section 5.2.4: verify the
// client's remote-attestation quote (charging the multi-second RA latency
// to the client's machine), assign or confirm its SLID, and release any
// escrowed root key. An empty slid requests a fresh identity.
func (s *Server) InitClient(slid string, quote attest.Quote, clientMachine *sgx.Machine) (InitResult, error) {
	if s.service != nil {
		if err := s.service.VerifyQuote(quote, clientMachine); err != nil {
			return InitResult{}, fmt.Errorf("%w: %v", ErrAttestationFailed, err)
		}
	} else if clientMachine != nil {
		clientMachine.ChargeRemoteAttestation()
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	next := s.nextSLID
	if slid == "" {
		next++
		slid = "slid-" + strconv.Itoa(next)
	}
	if err := s.logLocked(event{Op: opInit, SLID: slid, NextSLID: next}); err != nil {
		return InitResult{}, err
	}
	res := s.applyInitLocked(slid, next)
	s.auditLocked(audit.Record{Op: audit.OpInit, SLID: slid})
	s.maybeSnapshotLocked()
	return res, nil
}

// applyInitLocked is the state-transition half of init(): SLID bookkeeping,
// the pessimistic crash/forfeit rules of Section 5.7, and single-use escrow
// release. It is deterministic given the current state, which is what makes
// WAL replay rebuild an identical server.
func (s *Server) applyInitLocked(slid string, nextSLID int) InitResult {
	s.stats.RemoteAttestations++
	s.nextSLID = nextSLID
	c, ok := s.clients[slid]
	if !ok {
		c = &clientState{
			slid:        slid,
			health:      1,
			reliability: 1,
			weight:      1,
			outstanding: make(map[string]int64),
		}
		s.clients[slid] = c
	}
	res := InitResult{SLID: slid}
	if c.crashed {
		// Pessimistic policy: the crash already forfeited the leases and
		// invalidated any stored state; the client starts fresh.
		c.crashed = false
		c.hasEscrow = false
	} else if !c.hasEscrow {
		// A client that returns holding leases but without a graceful
		// shutdown on record must have crashed (or be replaying): forfeit
		// everything it held (Section 5.7).
		for licID, held := range c.outstanding {
			if held == 0 {
				continue
			}
			if lic, ok := s.licenses[licID]; ok {
				lic.Lost += held
				if m := s.metrics.Load(); m != nil {
					m.licenseLost.With(licID).Set(float64(lic.Lost))
				}
			}
			delete(c.outstanding, licID)
			s.clearHolderLocked(licID, c)
			s.stats.CrashForfeits++
			s.auditLocked(audit.Record{Op: audit.OpCrashForfeit, SLID: c.slid, License: licID, Units: held})
		}
	}
	if c.hasEscrow {
		res.OBK = c.escrow
		res.HasOBK = true
		c.hasEscrow = false // single use; a fresh key arrives at next shutdown
	}
	return res
}

// SetClientProfile updates SL-Remote's view of a client's health h,
// network reliability n, and demand weight α. Values are clamped to their
// domains; reliability is floored at a small epsilon to avoid division by
// zero in the network-compensation term.
func (s *Server) SetClientProfile(slid string, health, reliability, weight float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[slid]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, slid)
	}
	if err := s.logLocked(event{Op: opProfile, SLID: slid, Health: health, Reliability: reliability, Weight: weight}); err != nil {
		return err
	}
	applyProfile(c, health, reliability, weight)
	if m := s.metrics.Load(); m != nil {
		m.alg1Health.With(slid).Set(c.health)
		m.alg1Reliability.With(slid).Set(c.reliability)
	}
	s.maybeSnapshotLocked()
	return nil
}

// applyProfile clamps and installs Algorithm 1's per-client inputs.
func applyProfile(c *clientState, health, reliability, weight float64) {
	c.health = clamp01(health)
	c.reliability = math.Max(clamp01(reliability), 1e-3)
	if weight < 0 {
		weight = 0
	}
	c.weight = weight
}

// EscrowRootKey stores the client's lease-tree root key at graceful
// shutdown (Section 5.6).
func (s *Server) EscrowRootKey(slid string, key seccrypto.Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[slid]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, slid)
	}
	if s.persist != nil {
		// The root key is the one secret SL-Remote holds for a client;
		// it is sealed before the WAL record leaves the (simulated)
		// enclave, so plaintext key material never reaches disk.
		sealed, err := seccrypto.ProtectWithKey(key.Bytes(), s.persist.sealKey, nil)
		if err != nil {
			return fmt.Errorf("slremote: sealing escrowed key: %w", err)
		}
		if err := s.logLocked(event{Op: opEscrow, SLID: slid, SealedKey: sealed}); err != nil {
			return err
		}
	}
	s.applyEscrowLocked(c, key)
	s.auditLocked(audit.Record{Op: audit.OpEscrow, SLID: slid})
	s.maybeSnapshotLocked()
	return nil
}

func (s *Server) applyEscrowLocked(c *clientState, key seccrypto.Key) {
	c.escrow = key
	c.hasEscrow = true
	if m := s.metrics.Load(); m != nil {
		m.escrows.Inc()
	}
}

// ReportCrash applies the pessimistic crash policy (Section 5.7): every
// GCL unit the client held is deemed consumed, and any escrowed state is
// invalidated. The forfeited units are recorded against each license's
// Lost counter — the quantity τ bounds in expectation.
func (s *Server) ReportCrash(slid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[slid]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, slid)
	}
	if err := s.logLocked(event{Op: opCrash, SLID: slid}); err != nil {
		return err
	}
	s.applyCrashLocked(c)
	s.maybeSnapshotLocked()
	return nil
}

func (s *Server) applyCrashLocked(c *clientState) {
	for licID, held := range c.outstanding {
		if lic, ok := s.licenses[licID]; ok {
			lic.Lost += held
			if m := s.metrics.Load(); m != nil {
				m.licenseLost.With(licID).Set(float64(lic.Lost))
			}
		}
		delete(c.outstanding, licID)
		s.clearHolderLocked(licID, c)
		s.stats.CrashForfeits++
		s.auditLocked(audit.Record{Op: audit.OpCrashForfeit, SLID: c.slid, License: licID, Units: held})
	}
	c.crashed = true
	c.hasEscrow = false
}

// Grant is a renewal result: the sub-GCL handed to the client.
type Grant struct {
	License string
	// Units is g_i, the number of GCL units granted.
	Units int64
	// GCL is a ready-to-install lease counter for SL-Local.
	GCL lease.GCL
}

// renewCall is one waiter in the renewal batcher: a request parked until
// the batch that carries it commits (or is denied).
type renewCall struct {
	slid    string
	license string
	grant   Grant
	err     error
	done    chan struct{}
}

// renewBatcher coalesces concurrent RenewLease calls into group commits.
// The first caller to find no leader becomes the leader: it drains the
// pending queue, processes the whole batch under ONE hold of Server.mu
// with ONE write-ahead-log append (which rides the store's batched-fsync
// window), fans the per-caller results back out, and keeps draining until
// the queue is empty. Callers that arrive while a leader is active just
// park — their request rides the leader's next batch.
//
// Lock order: renewBatcher.mu is released before Server.mu is taken and
// is never acquired while holding it.
type renewBatcher struct {
	mu      sync.Mutex
	pending []*renewCall // guardedby: mu — calls waiting for the next batch
	leading bool         // guardedby: mu — a leader is draining the queue
}

// RenewLease runs Algorithm 1 for the named client and license and, on
// success, transfers g_i units from the license pool to the client.
//
// The concurrency C and the weight normalization Σα = 1 are computed over
// the clients currently holding or requesting this license.
//
// Concurrent calls coalesce: one caller leads, folding every pending
// renewal into a single pass under the state lock with a single
// group-committed WAL append, so N pipelined renewals cost one fsync
// window instead of N.
func (s *Server) RenewLease(slid, licenseID string) (Grant, error) {
	call := &renewCall{slid: slid, license: licenseID, done: make(chan struct{})}
	s.renews.mu.Lock()
	s.renews.pending = append(s.renews.pending, call)
	if s.renews.leading {
		s.renews.mu.Unlock()
		<-call.done
		return call.grant, call.err
	}
	s.renews.leading = true
	for {
		batch := s.renews.pending
		s.renews.pending = nil
		s.renews.mu.Unlock()
		s.renewBatch(batch)
		s.renews.mu.Lock()
		if len(s.renews.pending) == 0 {
			s.renews.leading = false
			s.renews.mu.Unlock()
			break
		}
	}
	<-call.done
	return call.grant, call.err
}

// renewBatch processes one drained batch: every call's Algorithm-1 grant
// is computed against the batch-start state (with a per-license running
// pool balance so the batch can never over-grant), the surviving grants
// are made durable with one WAL append, and only then applied. Denials
// are audited individually and never logged — a denial mutates nothing.
func (s *Server) renewBatch(batch []*renewCall) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		for _, call := range batch {
			close(call.done)
		}
	}()

	type grantPlan struct {
		call  *renewCall
		c     *clientState
		lic   *License
		units int64
		st    alg1State
	}
	plans := make([]grantPlan, 0, len(batch))
	// remaining simulates each license's pool across the batch: grants
	// planned earlier in the batch shrink what later ones may take, even
	// though nothing is applied until the WAL append succeeds.
	remaining := make(map[*License]int64)

	// Resolve every call first and collect, per license, the distinct
	// requesters in this batch: Algorithm 1 prices each grant against the
	// license's holders plus ALL of its batch co-requesters, so a
	// thundering herd renewing one license divides the pool the same way
	// sequential arrival would, instead of each request pricing itself as
	// the only newcomer.
	type resolved struct {
		c   *clientState
		lic *License
	}
	rcs := make([]resolved, len(batch))
	coByLic := make(map[string][]*clientState)
	coSeen := make(map[string]map[string]bool)
	for i, call := range batch {
		c, ok := s.clients[call.slid]
		if !ok {
			call.err = fmt.Errorf("%w: %q", ErrUnknownClient, call.slid)
			continue
		}
		lic, ok := s.licenses[call.license]
		if !ok {
			call.err = fmt.Errorf("%w: %q", ErrUnknownLicense, call.license)
			continue
		}
		rcs[i] = resolved{c: c, lic: lic}
		if coSeen[lic.ID] == nil {
			coSeen[lic.ID] = make(map[string]bool)
		}
		if !coSeen[lic.ID][c.slid] {
			coSeen[lic.ID][c.slid] = true
			coByLic[lic.ID] = append(coByLic[lic.ID], c)
		}
	}

	for i, call := range batch {
		c, lic := rcs[i].c, rcs[i].lic
		if c == nil || lic == nil {
			continue // unresolved above
		}
		deny := func(err error) {
			s.stats.RenewalsDenied++
			s.auditLocked(audit.Record{Op: audit.OpDeny, SLID: call.slid, License: call.license, Err: err.Error()})
			s.flight.Load().Emit("slremote.denial",
				flight.KV{K: "slid", V: call.slid},
				flight.KV{K: "license", V: call.license},
				flight.KV{K: "err", V: err.Error()})
			call.err = err
		}
		rem, seen := remaining[lic]
		if !seen {
			rem = lic.Remaining
		}
		if lic.Revoked {
			deny(fmt.Errorf("%w: %q", ErrLicenseRevoked, call.license))
			continue
		}
		if rem <= 0 {
			deny(fmt.Errorf("%w: %q", ErrLicenseExhausted, call.license))
			continue
		}

		var units int64
		var st alg1State
		if lic.Kind == lease.Perpetual {
			// A perpetual license is a seat, not a consumable budget:
			// activation transfers one whole unit, never a sub-division.
			units = 1
			st = alg1State{alpha: 1, gMax: 1, health: c.health, reliability: c.reliability}
		} else {
			holders, weightSum := s.holdersBatchLocked(lic.ID, c, coByLic[lic.ID])
			units, st = s.computeGrantWithLocked(c, lic, holders, weightSum)
			if units <= 0 && rem > 0 {
				// Algorithm 1's scale-downs can floor small pools to zero;
				// a live license always yields at least one unit so small
				// (e.g. 3-interval trial) licenses remain usable.
				units = 1
			}
		}
		if units <= 0 {
			deny(fmt.Errorf("%w: %q (policy granted zero units)", ErrLicenseExhausted, call.license))
			continue
		}
		if units > rem {
			units = rem
		}
		remaining[lic] = rem - units
		plans = append(plans, grantPlan{call: call, c: c, lic: lic, units: units, st: st})
	}

	if len(plans) == 0 {
		return
	}

	// The WAL records the Algorithm 1 *outcomes* (the granted units), not
	// the requests, so replay applies the exact historical transfers
	// instead of re-running the policy against a drifting view. A
	// singleton batch logs the classic opRenew record, byte-identical to
	// the pre-coalescing WAL.
	var ev event
	if len(plans) == 1 {
		ev = event{Op: opRenew, SLID: plans[0].call.slid, License: plans[0].call.license, Units: plans[0].units}
	} else {
		entries := make([]batchGrant, len(plans))
		for i, p := range plans {
			entries[i] = batchGrant{SLID: p.call.slid, License: p.call.license, Units: p.units}
		}
		ev = event{Op: opRenewBatch, Batch: entries}
	}
	if err := s.logLocked(ev); err != nil {
		for i := range plans {
			plans[i].call.err = err
		}
		return
	}

	for _, p := range plans {
		s.applyRenewLocked(p.c, p.lic, p.units)

		// Effective scale-down: the ratio the policy actually applied
		// between the client's proportional ceiling G_i and the granted
		// g_i. It starts at the configured D and grows as
		// health/reliability/expected-loss corrections bite.
		scale := s.cfg.D
		if p.units > 0 && p.st.gMax > 0 {
			scale = p.st.gMax / float64(p.units)
		}
		if m := s.metrics.Load(); m != nil {
			m.alg1Alpha.With(p.call.slid).Set(p.st.alpha)
			m.alg1ScaleDown.With(p.call.slid).Set(scale)
			m.alg1Health.With(p.call.slid).Set(p.st.health)
			m.alg1Reliability.With(p.call.slid).Set(p.st.reliability)
		}
		s.auditLocked(audit.Record{
			Op: audit.OpRenew, SLID: p.call.slid, License: p.call.license, Units: p.units,
			Alg1: &audit.Alg1{
				Alpha:        p.st.alpha,
				ScaleDown:    scale,
				Health:       p.st.health,
				Reliability:  p.st.reliability,
				ExpectedLoss: p.st.expLoss,
			},
		})
		p.call.grant = Grant{
			License: p.call.license,
			Units:   p.units,
			GCL:     lease.GCL{Kind: p.lic.Kind, Counter: p.units, Interval: p.lic.Interval},
		}
	}
	s.maybeSnapshotLocked()
}

// applyRenewLocked transfers units from the license pool to the client.
func (s *Server) applyRenewLocked(c *clientState, lic *License, units int64) {
	lic.Remaining -= units
	c.outstanding[lic.ID] += units
	if c.outstanding[lic.ID] > 0 {
		s.setHolderLocked(lic.ID, c)
	}
	s.stats.Renewals++
	if m := s.metrics.Load(); m != nil {
		m.grantUnits.Observe(float64(units))
		m.licenseRemaining.With(lic.ID).Set(float64(lic.Remaining))
	}
}

// alg1State captures the Algorithm-1 inputs and intermediates behind one
// renewal decision, feeding the audit log's renew records and the
// slremote_alg1_* gauges.
type alg1State struct {
	alpha       float64 // α_i, normalized concurrency share
	gMax        float64 // G_i, the proportional ceiling (line 3)
	health      float64 // h_i as used
	reliability float64 // n_i as used
	expLoss     float64 // Equation 1 after the final scale-down
}

// computeGrantLocked is Algorithm 1 (RenewLease) from the paper.
func (s *Server) computeGrantLocked(c *clientState, lic *License) (int64, alg1State) {
	holders, weightSum := s.holdersLocked(lic.ID, c)
	return s.computeGrantWithLocked(c, lic, holders, weightSum)
}

// computeGrantWithLocked is the Algorithm 1 body against an explicit
// concurrency set: holders must include c, and weightSum must span
// exactly holders. Coalesced batches pass a set with their co-requesters
// folded in; the single-renewal path passes holdersLocked's view.
func (s *Server) computeGrantWithLocked(c *clientState, lic *License, holders []*clientState, weightSum float64) (int64, alg1State) {
	concurrency := float64(len(holders))
	alpha := c.weight / weightSum // α_i with Σα_i = 1

	tg := float64(lic.TotalGCL)
	gMax := alpha * tg / concurrency // G_i  (line 3)
	g := gMax / s.cfg.D              // default policy (line 4)
	g *= c.health                    // crash penalty (line 5)
	if c.health > s.cfg.HealthThreshold {
		// Network benefit for healthy clients on flaky links (line 7).
		g = math.Min(gMax, g*(1/c.reliability))
	}

	beta := s.cfg.Beta // FetchBeta() (line 9)
	expLoss := s.expectedLossLocked(lic.ID, holders, c, g)
	if expLoss > lic.Tau {
		// Scale down until the expected loss is bounded (lines 10-14).
		for iter := 0; iter < 64 && expLoss > lic.Tau && g >= 1; iter++ {
			beta *= (expLoss - lic.Tau) / expLoss
			g = beta * g
			expLoss = s.expectedLossLocked(lic.ID, holders, c, g)
		}
	} else {
		// Line 16 ("scaling up"): β = (τ − ExpLoss)/τ, g = β·g. As written
		// in the paper this damps the grant in proportion to how much loss
		// headroom has been consumed; with zero expected loss it leaves g
		// unchanged.
		beta = (lic.Tau - expLoss) / lic.Tau
		g = beta * g
	}
	if g < 0 {
		g = 0
	}
	if m := s.metrics.Load(); m != nil {
		m.expectedLoss.With(lic.ID).Set(expLoss)
	}
	return int64(math.Floor(g)), alg1State{
		alpha:       alpha,
		gMax:        gMax,
		health:      c.health,
		reliability: c.reliability,
		expLoss:     expLoss,
	}
}

// holdersLocked returns the clients that currently hold or are requesting
// the license (always including the requester) and their total weight.
// Holders come back in sorted-SLID order so the floating-point sums built
// over them (weight normalization, Equation 1) are reproducible — seeded
// harness runs depend on that, and map order would break it.
func (s *Server) holdersLocked(licenseID string, requester *clientState) ([]*clientState, float64) {
	idx := s.holders[licenseID]
	slids := make([]string, 0, len(idx))
	for slid, other := range idx {
		if other == requester || other.crashed {
			continue
		}
		slids = append(slids, slid)
	}
	sort.Strings(slids)
	holders := make([]*clientState, 0, len(slids)+1)
	holders = append(holders, requester)
	weightSum := requester.weight
	for _, slid := range slids {
		other := idx[slid]
		holders = append(holders, other)
		weightSum += other.weight
	}
	if weightSum <= 0 {
		weightSum = 1
	}
	return holders, weightSum
}

// holdersBatchLocked is holdersLocked with the rest of a coalesced
// batch's requesters for the same license folded into the concurrency
// set: the batch prices every grant as if all its requesters already
// held the license, which is the state sequential arrival converges to.
// With co = {requester} it degenerates to holdersLocked exactly, so
// singleton batches price like the pre-coalescing server.
func (s *Server) holdersBatchLocked(licenseID string, requester *clientState, co []*clientState) ([]*clientState, float64) {
	idx := s.holders[licenseID]
	members := make(map[string]*clientState, len(idx)+len(co))
	for slid, other := range idx {
		if other == requester || other.crashed {
			continue
		}
		members[slid] = other
	}
	for _, r := range co {
		if r == requester || r.crashed {
			continue
		}
		members[r.slid] = r
	}
	slids := make([]string, 0, len(members))
	for slid := range members {
		slids = append(slids, slid)
	}
	sort.Strings(slids)
	holders := make([]*clientState, 0, len(slids)+1)
	holders = append(holders, requester)
	weightSum := requester.weight
	for _, slid := range slids {
		holders = append(holders, members[slid])
		weightSum += members[slid].weight
	}
	if weightSum <= 0 {
		weightSum = 1
	}
	return holders, weightSum
}

// setHolderLocked and clearHolderLocked maintain the per-license holder
// index; every mutation of a client's outstanding balance goes through one
// of them.
func (s *Server) setHolderLocked(licenseID string, c *clientState) {
	idx := s.holders[licenseID]
	if idx == nil {
		idx = make(map[string]*clientState)
		s.holders[licenseID] = idx
	}
	idx[c.slid] = c
}

func (s *Server) clearHolderLocked(licenseID string, c *clientState) {
	idx := s.holders[licenseID]
	delete(idx, c.slid)
	if len(idx) == 0 {
		delete(s.holders, licenseID)
	}
}

// expectedLossLocked computes Equation 1: ExpLoss(L) = Σ g_i (1 − h_i),
// over current holders, with the requester's holding augmented by the
// candidate grant g.
func (s *Server) expectedLossLocked(licenseID string, holders []*clientState, requester *clientState, g float64) float64 {
	var loss float64
	for _, h := range holders {
		held := float64(h.outstanding[licenseID])
		if h == requester {
			held += g
		}
		loss += held * (1 - h.health)
	}
	return loss
}

// ConsumeReport lets a client report consumption of previously granted
// units (so the server's outstanding view tracks reality and expected-loss
// computations stay honest).
func (s *Server) ConsumeReport(slid, licenseID string, units int64) error {
	if units < 0 {
		return fmt.Errorf("slremote: negative consumption %d", units)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[slid]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, slid)
	}
	held := c.outstanding[licenseID]
	if units > held {
		units = held
	}
	if err := s.logLocked(event{Op: opConsume, SLID: slid, License: licenseID, Units: units}); err != nil {
		return err
	}
	s.applyConsumeLocked(c, licenseID, units)
	s.maybeSnapshotLocked()
	return nil
}

// applyConsumeLocked moves units from the client's outstanding balance to
// the license's consumed ledger; shared by ConsumeReport and WAL replay.
// Without the Consumed counter the units would simply vanish, and no
// global invariant over the license pool could ever balance.
func (s *Server) applyConsumeLocked(c *clientState, licenseID string, units int64) {
	c.outstanding[licenseID] -= units
	if c.outstanding[licenseID] <= 0 {
		s.clearHolderLocked(licenseID, c)
	}
	if lic, ok := s.licenses[licenseID]; ok {
		lic.Consumed += units
		if m := s.metrics.Load(); m != nil {
			m.licenseConsumed.With(licenseID).Set(float64(lic.Consumed))
		}
	}
}

// Outstanding returns the units of the license currently held by a client.
func (s *Server) Outstanding(slid, licenseID string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[slid]
	if !ok {
		return 0
	}
	return c.outstanding[licenseID]
}

// Stats returns a copy of the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
