package slremote

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs/flight"
	"repro/internal/seccrypto"
	"repro/internal/store"
)

// This file is SL-Remote's durability layer. Every state mutation is
// written through a store.Logger *before* it is applied in memory
// (write-ahead discipline: a mutation the WAL never saw never happened),
// and RecoverServer rebuilds an identical Server from the newest snapshot
// plus the WAL tail. Two rules keep the scheme sound:
//
//   - events record *outcomes*, not requests: a renewal logs the units
//     Algorithm 1 granted, an init logs the SLID it assigned, so replay is
//     a pure fold over deterministic transitions;
//   - secret material is sealed before it reaches the log: escrowed
//     lease-tree root keys are AES-GCM-protected with the server's seal
//     key (seccrypto.ProtectWithKey), and snapshot images — which embed
//     those keys — are sealed whole. Plaintext key bytes never leave the
//     (simulated) enclave.

// WAL event opcodes.
const (
	opRegister = "register_license"
	opInterval = "set_interval"
	opRevoke   = "revoke"
	opInit     = "init"
	opProfile  = "set_profile"
	opEscrow   = "escrow"
	opCrash    = "crash"
	opRenew    = "renew"
	opConsume  = "consume"
	// opRenewBatch is a group-committed renewal: every grant from one
	// coalesced RenewLease batch in a single record. A singleton batch is
	// logged as a plain opRenew, so WALs written before coalescing existed
	// replay unchanged and single-caller servers keep their old format.
	opRenewBatch = "renew_batch"
)

// event is one WAL record: a state mutation with its outcome. Fields are
// a union over all opcodes; unused ones are omitted from the JSON.
type event struct {
	Op          string  `json:"op"`
	License     string  `json:"license,omitempty"`
	Kind        uint8   `json:"kind,omitempty"`
	TotalGCL    int64   `json:"total_gcl,omitempty"`
	IntervalNS  int64   `json:"interval_ns,omitempty"`
	SLID        string  `json:"slid,omitempty"`
	NextSLID    int     `json:"next_slid,omitempty"`
	Units       int64   `json:"units,omitempty"`
	Health      float64 `json:"health,omitempty"`
	Reliability float64 `json:"reliability,omitempty"`
	Weight      float64 `json:"weight,omitempty"`
	SealedKey   []byte  `json:"sealed_key,omitempty"`
	// Batch carries an opRenewBatch record's grants, in batch order.
	Batch []batchGrant `json:"batch,omitempty"`
}

// batchGrant is one grant inside an opRenewBatch record.
type batchGrant struct {
	SLID    string `json:"slid"`
	License string `json:"license"`
	Units   int64  `json:"units"`
}

// PersistConfig wires a Server to a durability backend.
type PersistConfig struct {
	// Log receives one record per state mutation, before the mutation is
	// applied.
	Log store.Logger
	// Snap receives full sealed state images; may equal Log (a
	// *store.Store implements both).
	Snap store.Snapshotter
	// SealKey seals escrowed root keys inside WAL records and whole
	// snapshot images. In a real deployment it would be an SGX sealing
	// key (MRSIGNER-derived); here it is provisioned by the operator.
	SealKey seccrypto.Key
	// SnapshotEvery takes a snapshot (and compacts the WAL) after this
	// many logged records; 0 means only explicit SnapshotNow calls.
	SnapshotEvery int
}

func (pc PersistConfig) validate() error {
	if pc.Log == nil {
		return errors.New("slremote: persistence without a Logger")
	}
	if pc.SealKey.IsZero() {
		return errors.New("slremote: persistence without a seal key")
	}
	if pc.SnapshotEvery < 0 {
		return fmt.Errorf("slremote: negative SnapshotEvery %d", pc.SnapshotEvery)
	}
	return nil
}

// persister is the Server-side persistence state, guarded by Server.mu.
type persister struct {
	log           store.Logger
	snap          store.Snapshotter
	sealKey       seccrypto.Key
	snapshotEvery int
	appended      int // records logged since the last snapshot
}

// AttachPersistence starts write-ahead logging of every mutation. Call it
// on a fresh server before any state exists; to resume from a state
// directory use RecoverServer, which attaches after replay.
func (s *Server) AttachPersistence(pc PersistConfig) error {
	if err := pc.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist = &persister{
		log:           pc.Log,
		snap:          pc.Snap,
		sealKey:       pc.SealKey,
		snapshotEvery: pc.SnapshotEvery,
	}
	return nil
}

// logLocked write-ahead-logs one event. A nil persister makes it free; an
// append failure aborts the mutation (the caller must not apply it).
func (s *Server) logLocked(ev event) error {
	if s.persist == nil {
		return nil
	}
	rec, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("slremote: encoding %s event: %w", ev.Op, err)
	}
	if err := s.persist.log.Append(rec); err != nil {
		return fmt.Errorf("slremote: logging %s event: %w", ev.Op, err)
	}
	s.persist.appended++
	return nil
}

// maybeSnapshotLocked compacts the WAL once enough records accumulated.
// Failure is not fatal to the triggering mutation (which is already
// durable in the WAL); the counter keeps its value so the next mutation
// retries.
func (s *Server) maybeSnapshotLocked() {
	p := s.persist
	if p == nil || p.snap == nil || p.snapshotEvery <= 0 || p.appended < p.snapshotEvery {
		return
	}
	_ = s.snapshotLocked()
}

// SnapshotNow serializes the full server state, seals it, and hands it to
// the Snapshotter — the graceful-shutdown path of cmd/sl-remote, and the
// periodic compaction point when SnapshotEvery is set.
func (s *Server) SnapshotNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist == nil || s.persist.snap == nil {
		return errors.New("slremote: no snapshotter attached")
	}
	return s.snapshotLocked()
}

func (s *Server) snapshotLocked() error {
	img := s.imageLocked()
	plain, err := json.Marshal(img)
	if err != nil {
		return fmt.Errorf("slremote: encoding snapshot: %w", err)
	}
	sealed, err := seccrypto.ProtectWithKey(plain, s.persist.sealKey, nil)
	if err != nil {
		return fmt.Errorf("slremote: sealing snapshot: %w", err)
	}
	if err := s.persist.snap.Snapshot(sealed); err != nil {
		return fmt.Errorf("slremote: writing snapshot: %w", err)
	}
	s.flight.Load().Emit("slremote.wal_compaction",
		flight.KV{K: "compacted_records", V: strconv.Itoa(s.persist.appended)},
		flight.KV{K: "snapshot_bytes", V: strconv.Itoa(len(sealed))})
	s.persist.appended = 0
	return nil
}

// snapshotImage is the on-disk (sealed) full-state encoding.
type snapshotImage struct {
	Licenses map[string]licenseImage `json:"licenses"`
	Clients  map[string]clientImage  `json:"clients"`
	NextSLID int                     `json:"next_slid"`
	Stats    ServerStats             `json:"stats"`
}

type licenseImage struct {
	Kind       uint8   `json:"kind"`
	TotalGCL   int64   `json:"total_gcl"`
	IntervalNS int64   `json:"interval_ns"`
	Remaining  int64   `json:"remaining"`
	Tau        float64 `json:"tau"`
	Revoked    bool    `json:"revoked"`
	Lost       int64   `json:"lost"`
	Consumed   int64   `json:"consumed,omitempty"`
}

type clientImage struct {
	Health      float64          `json:"health"`
	Reliability float64          `json:"reliability"`
	Weight      float64          `json:"weight"`
	Escrow      []byte           `json:"escrow,omitempty"` // raw key; the whole image is sealed
	HasEscrow   bool             `json:"has_escrow"`
	Outstanding map[string]int64 `json:"outstanding,omitempty"`
	Crashed     bool             `json:"crashed"`
}

func (s *Server) imageLocked() snapshotImage {
	img := snapshotImage{
		Licenses: make(map[string]licenseImage, len(s.licenses)),
		Clients:  make(map[string]clientImage, len(s.clients)),
		NextSLID: s.nextSLID,
		Stats:    s.stats,
	}
	for id, lic := range s.licenses {
		img.Licenses[id] = licenseImage{
			Kind:       uint8(lic.Kind),
			TotalGCL:   lic.TotalGCL,
			IntervalNS: int64(lic.Interval),
			Remaining:  lic.Remaining,
			Tau:        lic.Tau,
			Revoked:    lic.Revoked,
			Lost:       lic.Lost,
			Consumed:   lic.Consumed,
		}
	}
	for slid, c := range s.clients {
		ci := clientImage{
			Health:      c.health,
			Reliability: c.reliability,
			Weight:      c.weight,
			HasEscrow:   c.hasEscrow,
			Crashed:     c.crashed,
		}
		if c.hasEscrow {
			ci.Escrow = c.escrow.Bytes()
		}
		if len(c.outstanding) > 0 {
			ci.Outstanding = make(map[string]int64, len(c.outstanding))
			for k, v := range c.outstanding {
				ci.Outstanding[k] = v
			}
		}
		img.Clients[slid] = ci
	}
	return img
}

// restoreImageLocked installs a decoded snapshot into an empty server.
func (s *Server) restoreImageLocked(img snapshotImage) error {
	for id, li := range img.Licenses {
		s.licenses[id] = &License{
			ID:        id,
			Kind:      lease.Kind(li.Kind),
			TotalGCL:  li.TotalGCL,
			Interval:  time.Duration(li.IntervalNS),
			Remaining: li.Remaining,
			Tau:       li.Tau,
			Revoked:   li.Revoked,
			Lost:      li.Lost,
			Consumed:  li.Consumed,
		}
	}
	for slid, ci := range img.Clients {
		c := &clientState{
			slid:        slid,
			health:      ci.Health,
			reliability: ci.Reliability,
			weight:      ci.Weight,
			hasEscrow:   ci.HasEscrow,
			crashed:     ci.Crashed,
			outstanding: make(map[string]int64, len(ci.Outstanding)),
		}
		for k, v := range ci.Outstanding {
			c.outstanding[k] = v
			if v > 0 {
				s.setHolderLocked(k, c)
			}
		}
		if ci.HasEscrow {
			key, err := seccrypto.KeyFromBytes(ci.Escrow)
			if err != nil {
				return fmt.Errorf("slremote: snapshot escrow for %q: %w", slid, err)
			}
			c.escrow = key
		}
		s.clients[slid] = c
	}
	s.nextSLID = img.NextSLID
	s.stats = img.Stats
	return nil
}

// RecoverServer rebuilds an SL-Remote from what store.Open recovered —
// unseal the snapshot image, fold the WAL tail over it — and attaches
// persistence so new mutations keep flowing into the same log. With an
// empty Recovered it is NewServer + AttachPersistence. The Config must
// match the one the state was written under (it is policy, not state, and
// lives in flags).
func RecoverServer(cfg Config, service *attest.Service, rec *store.Recovered, pc PersistConfig) (*Server, error) {
	if err := pc.validate(); err != nil {
		return nil, err
	}
	s, err := NewServer(cfg, service)
	if err != nil {
		return nil, err
	}
	s.persist = &persister{sealKey: pc.SealKey} // replay needs the seal key, but must not re-log
	if rec != nil {
		if rec.Snapshot != nil {
			plain, err := seccrypto.Validate(rec.Snapshot, pc.SealKey)
			if err != nil {
				return nil, fmt.Errorf("slremote: unsealing snapshot (wrong seal key, or tampered image): %w", err)
			}
			var img snapshotImage
			if err := json.Unmarshal(plain, &img); err != nil {
				return nil, fmt.Errorf("slremote: decoding snapshot: %w", err)
			}
			if err := s.restoreImageLocked(img); err != nil {
				return nil, err
			}
		}
		for i, raw := range rec.Records {
			var ev event
			if err := json.Unmarshal(raw, &ev); err != nil {
				return nil, fmt.Errorf("slremote: decoding WAL record %d: %w", i, err)
			}
			if err := s.applyEventLocked(ev); err != nil { //sllint:ignore walorder replay folds records already durable in the WAL; logging them again would double-append
				return nil, fmt.Errorf("slremote: replaying WAL record %d (%s): %w", i, ev.Op, err)
			}
		}
	}
	s.persist = &persister{
		log:           pc.Log,
		snap:          pc.Snap,
		sealKey:       pc.SealKey,
		snapshotEvery: pc.SnapshotEvery,
	}
	if rec != nil {
		// A long replayed tail counts toward the next compaction.
		s.persist.appended = len(rec.Records)
	}
	return s, nil
}

// applyEventLocked folds one WAL event into the state. Replay tolerates
// nothing: an event that does not fit the state (unknown license, unknown
// client) means the log and the snapshot disagree, and recovery must fail
// loudly rather than rebuild a subtly different server.
func (s *Server) applyEventLocked(ev event) error {
	switch ev.Op {
	case opRegister:
		if _, dup := s.licenses[ev.License]; dup {
			return fmt.Errorf("license %q already exists", ev.License)
		}
		s.applyRegisterLocked(ev.License, lease.Kind(ev.Kind), ev.TotalGCL)
	case opInterval:
		lic, ok := s.licenses[ev.License]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownLicense, ev.License)
		}
		lic.Interval = time.Duration(ev.IntervalNS)
	case opRevoke:
		lic, ok := s.licenses[ev.License]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownLicense, ev.License)
		}
		s.applyRevokeLocked(lic)
	case opInit:
		s.applyInitLocked(ev.SLID, ev.NextSLID)
	case opProfile:
		c, ok := s.clients[ev.SLID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownClient, ev.SLID)
		}
		applyProfile(c, ev.Health, ev.Reliability, ev.Weight)
	case opEscrow:
		c, ok := s.clients[ev.SLID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownClient, ev.SLID)
		}
		raw, err := seccrypto.Validate(ev.SealedKey, s.persist.sealKey)
		if err != nil {
			return fmt.Errorf("unsealing escrowed key: %w", err)
		}
		key, err := seccrypto.KeyFromBytes(raw)
		if err != nil {
			return err
		}
		s.applyEscrowLocked(c, key)
	case opCrash:
		c, ok := s.clients[ev.SLID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownClient, ev.SLID)
		}
		s.applyCrashLocked(c)
	case opRenew:
		c, ok := s.clients[ev.SLID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownClient, ev.SLID)
		}
		lic, ok := s.licenses[ev.License]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownLicense, ev.License)
		}
		s.applyRenewLocked(c, lic, ev.Units)
	case opRenewBatch:
		for _, g := range ev.Batch {
			c, ok := s.clients[g.SLID]
			if !ok {
				return fmt.Errorf("%w: %q", ErrUnknownClient, g.SLID)
			}
			lic, ok := s.licenses[g.License]
			if !ok {
				return fmt.Errorf("%w: %q", ErrUnknownLicense, g.License)
			}
			s.applyRenewLocked(c, lic, g.Units)
		}
	case opConsume:
		c, ok := s.clients[ev.SLID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownClient, ev.SLID)
		}
		s.applyConsumeLocked(c, ev.License, ev.Units)
	default:
		return fmt.Errorf("unknown WAL op %q", ev.Op)
	}
	return nil
}

// State is a deep-copied, exported view of the whole server — what the
// restart-cycle tests compare with reflect.DeepEqual across a kill and a
// recovery.
type State struct {
	Licenses map[string]License
	Clients  map[string]ClientState
	NextSLID int
	Stats    ServerStats
}

// ClientState mirrors one SL-Local's server-side record.
type ClientState struct {
	SLID        string
	Health      float64
	Reliability float64
	Weight      float64
	// Escrow is the escrowed root key's raw bytes (in-memory view; on
	// disk it only ever exists sealed). Nil when HasEscrow is false.
	Escrow      []byte
	HasEscrow   bool
	Outstanding map[string]int64
	Crashed     bool
}

// ExportState deep-copies the server's full state.
func (s *Server) ExportState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{
		Licenses: make(map[string]License, len(s.licenses)),
		Clients:  make(map[string]ClientState, len(s.clients)),
		NextSLID: s.nextSLID,
		Stats:    s.stats,
	}
	for id, lic := range s.licenses {
		st.Licenses[id] = *lic
	}
	for slid, c := range s.clients {
		cs := ClientState{
			SLID:        slid,
			Health:      c.health,
			Reliability: c.reliability,
			Weight:      c.weight,
			HasEscrow:   c.hasEscrow,
			Crashed:     c.crashed,
			Outstanding: make(map[string]int64, len(c.outstanding)),
		}
		if c.hasEscrow {
			cs.Escrow = c.escrow.Bytes()
		}
		for k, v := range c.outstanding {
			cs.Outstanding[k] = v
		}
		st.Clients[slid] = cs
	}
	return st
}

// LicenseIDs returns the registered license IDs, sorted — the boot path
// uses it to reconcile -license flags against recovered state.
func (s *Server) LicenseIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.licenses))
	for id := range s.licenses {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
