package slremote

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/seccrypto"
	"repro/internal/store"
)

// recordingLogger counts and keeps every WAL append so tests can assert
// how many records a workload produced and what they decode to.
type recordingLogger struct {
	inner store.Logger
	mu    sync.Mutex
	recs  [][]byte
}

func (l *recordingLogger) Append(rec []byte) error {
	if err := l.inner.Append(rec); err != nil {
		return err
	}
	l.mu.Lock()
	l.recs = append(l.recs, append([]byte(nil), rec...))
	l.mu.Unlock()
	return nil
}

func (l *recordingLogger) renewRecords(t *testing.T) []event {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []event
	for _, rec := range l.recs {
		var ev event
		if err := json.Unmarshal(rec, &ev); err != nil {
			t.Fatalf("decoding WAL record: %v", err)
		}
		if ev.Op == opRenew || ev.Op == opRenewBatch {
			out = append(out, ev)
		}
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRenewalCoalescingGroupCommit pins the group commit: N renewals that
// arrive while the batch leader is blocked fold into ONE opRenewBatch WAL
// record (plus the leader's own singleton), every caller still gets its
// own grant, and the license pool conserves units across the batch.
func TestRenewalCoalescingGroupCommit(t *testing.T) {
	const followers = 24
	st, rec := openTestStore(t, t.TempDir())
	defer st.Close()
	if !rec.Empty() {
		t.Fatal("fresh dir not empty")
	}
	s, err := NewServer(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	log := &recordingLogger{inner: st}
	if err := s.AttachPersistence(PersistConfig{Log: log, Snap: st, SealKey: testSealKey(t)}); err != nil {
		t.Fatal(err)
	}

	const total = 1_000_000
	if err := s.RegisterLicense("lic", lease.CountBased, total); err != nil {
		t.Fatal(err)
	}
	slids := make([]string, followers+1)
	for i := range slids {
		res, err := s.InitClient("", attest.Quote{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		slids[i] = res.SLID
	}

	// Hold the state lock: the first renewal becomes the batch leader and
	// blocks inside renewBatch, everyone who arrives meanwhile parks in
	// the pending queue.
	s.mu.Lock()
	grants := make([]Grant, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		grants[0], errs[0] = s.RenewLease(slids[0], "lic")
	}()
	waitFor(t, "leader to drain its own call", func() bool {
		s.renews.mu.Lock()
		defer s.renews.mu.Unlock()
		return s.renews.leading && len(s.renews.pending) == 0
	})
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			grants[i], errs[i] = s.RenewLease(slids[i], "lic")
		}(i)
	}
	waitFor(t, "followers to park in the pending queue", func() bool {
		s.renews.mu.Lock()
		defer s.renews.mu.Unlock()
		return len(s.renews.pending) == followers
	})
	s.mu.Unlock()
	wg.Wait()

	var granted int64
	for i, err := range errs {
		if err != nil {
			t.Fatalf("renewal %d: %v", i, err)
		}
		if grants[i].Units < 1 {
			t.Fatalf("renewal %d granted %d units", i, grants[i].Units)
		}
		granted += grants[i].Units
	}

	// One singleton record for the leader, one batch record for everyone
	// who piled up behind it.
	renews := log.renewRecords(t)
	if len(renews) != 2 {
		t.Fatalf("renewal WAL appends = %d, want 2 (leader + one group commit)", len(renews))
	}
	if renews[0].Op != opRenew {
		t.Fatalf("first renewal record op = %q, want %q", renews[0].Op, opRenew)
	}
	if renews[1].Op != opRenewBatch || len(renews[1].Batch) != followers {
		t.Fatalf("second renewal record = op %q with %d grants, want %q with %d",
			renews[1].Op, len(renews[1].Batch), opRenewBatch, followers)
	}

	// Conservation: what the callers received is exactly what left the
	// pool, and the audit/stats view agrees.
	state := s.ExportState()
	lic := state.Licenses["lic"]
	if total-lic.Remaining != granted {
		t.Fatalf("pool lost %d units but callers received %d", total-lic.Remaining, granted)
	}
	if got := s.Stats().Renewals; got != int64(followers+1) {
		t.Fatalf("Renewals stat = %d, want %d", got, followers+1)
	}
}

// TestRenewBatchReplay proves opRenewBatch records recover: a WAL holding
// a group commit replays to exactly the state the live server exported.
func TestRenewBatchReplay(t *testing.T) {
	dir := t.TempDir()
	var sawBatch bool
	want := persistedServer(t, dir, 0, func(s *Server) {
		if err := s.RegisterLicense("lic", lease.CountBased, 50_000); err != nil {
			t.Fatal(err)
		}
		const n = 8
		slids := make([]string, n)
		for i := range slids {
			res, err := s.InitClient("", attest.Quote{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			slids[i] = res.SLID
		}
		// Same leader-blocking trick as the group-commit test: force one
		// real multi-grant batch into the WAL.
		s.mu.Lock()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.RenewLease(slids[0], "lic"); err != nil {
				t.Errorf("leader renewal: %v", err)
			}
		}()
		waitFor(t, "leader to drain its own call", func() bool {
			s.renews.mu.Lock()
			defer s.renews.mu.Unlock()
			return s.renews.leading && len(s.renews.pending) == 0
		})
		for i := 1; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := s.RenewLease(slids[i], "lic"); err != nil {
					t.Errorf("follower renewal %d: %v", i, err)
				}
			}(i)
		}
		waitFor(t, "followers to park in the pending queue", func() bool {
			s.renews.mu.Lock()
			defer s.renews.mu.Unlock()
			return len(s.renews.pending) == n-1
		})
		s.mu.Unlock()
		wg.Wait()
		sawBatch = true
	})
	if !sawBatch {
		t.Fatal("workload did not run")
	}
	recovered, st := recoverTestServer(t, dir)
	defer st.Close()
	if got := recovered.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state diverges:\n got %+v\nwant %+v", got, want)
	}
}

// BenchmarkRenewalCoalescing is the server-side throughput regression
// test: many goroutines renew concurrently against one persisted license,
// so batches form naturally and N renewals share WAL appends and fsync
// windows. Reported ops are renewals completed.
func BenchmarkRenewalCoalescing(b *testing.B) {
	st, _, err := store.Open(store.Options{Dir: b.TempDir(), Mode: store.SyncBatched})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s, err := NewServer(DefaultConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	key := testSealKeyBench(b)
	if err := s.AttachPersistence(PersistConfig{Log: st, Snap: st, SealKey: key}); err != nil {
		b.Fatal(err)
	}
	// Perpetual: count-based pools drain geometrically (each renewal
	// grants a share of the remainder), which caps how many iterations
	// the benchmark can run before exhaustion. Perpetual renewals hit
	// the same Algorithm-1 + WAL path without consuming the pool.
	if err := s.RegisterLicense("lic", lease.Perpetual, 1<<50); err != nil {
		b.Fatal(err)
	}
	const clients = 64
	slids := make([]string, clients)
	for i := range slids {
		res, err := s.InitClient("", attest.Quote{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		slids[i] = res.SLID
	}
	var next atomic.Int64
	// RunParallel defaults to GOMAXPROCS goroutines; on a small box that
	// can mean one renewal per sync window and no batching at all. Force
	// enough concurrent renewers that batches form regardless of core
	// count — the coalescing win is what this benchmark exists to pin.
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		slid := slids[int(next.Add(1))%clients]
		for pb.Next() {
			if _, err := s.RenewLease(slid, "lic"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func testSealKeyBench(b *testing.B) seccrypto.Key {
	b.Helper()
	key, err := seccrypto.KeyFromBytes(bytes.Repeat([]byte{0x5e}, seccrypto.KeySize))
	if err != nil {
		b.Fatal(err)
	}
	return key
}
