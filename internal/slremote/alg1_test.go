package slremote

import (
	"errors"
	"math"
	"testing"

	"repro/internal/lease"
)

func assertErrIs(t *testing.T, err, want error) {
	t.Helper()
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

// TestAlg1RenewTable pins Algorithm 1's grant arithmetic through the public
// RenewLease path, one fresh server per case so holder sets don't leak.
// With DefaultConfig (D=4, T_H=0.9, β=0.01, τ=10%·TG) and a 1000-unit
// license the expected values are exact.
func TestAlg1RenewTable(t *testing.T) {
	cases := []struct {
		name                        string
		kind                        lease.Kind
		total                       int64
		health, reliability, weight float64
		wantUnits                   int64
	}{
		{
			// α=1, C=1: G=1000, g=G/D=250; full health takes the network
			// benefit at n=1 (no-op); zero expected loss leaves β=1.
			name: "single-holder-default", kind: lease.CountBased, total: 1000,
			health: 1, reliability: 1, weight: 1, wantUnits: 250,
		},
		{
			// h=0 zeroes the grant at line 5; the pool is live, so the
			// floor-bump hands out the minimum viable single unit.
			name: "zero-health-floor-bump", kind: lease.CountBased, total: 1000,
			health: 0, reliability: 1, weight: 1, wantUnits: 1,
		},
		{
			// n=0 is floored to 1e-3 by the profile clamp; the healthy
			// client's network benefit g/n then slams into the G ceiling.
			name: "zero-reliability-capped-at-gmax", kind: lease.CountBased, total: 1000,
			health: 1, reliability: 0, weight: 1, wantUnits: 1000,
		},
		{
			// h=0.5 halves g to 125 and forfeits the benefit (h ≤ T_H).
			// ExpLoss = 125·0.5 = 62.5 ≤ τ=100, so line 16 damps by
			// β=(100−62.5)/100: g = 0.375·125 = 46.875 → 46.
			name: "moderate-health-loss-damping", kind: lease.CountBased, total: 1000,
			health: 0.5, reliability: 1, weight: 1, wantUnits: 46,
		},
		{
			// A seat, not a budget: activation is always exactly one unit.
			name: "perpetual-single-seat", kind: lease.Perpetual, total: 5,
			health: 0.3, reliability: 0.4, weight: 9, wantUnits: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newServer(t)
			if err := s.RegisterLicense("lic", tc.kind, tc.total); err != nil {
				t.Fatalf("RegisterLicense: %v", err)
			}
			slid := initClient(t, s)
			if err := s.SetClientProfile(slid, tc.health, tc.reliability, tc.weight); err != nil {
				t.Fatalf("SetClientProfile: %v", err)
			}
			grant, err := s.RenewLease(slid, "lic")
			if err != nil {
				t.Fatalf("RenewLease: %v", err)
			}
			if grant.Units != tc.wantUnits {
				t.Errorf("granted %d units, want %d", grant.Units, tc.wantUnits)
			}
			if grant.GCL.Counter != tc.wantUnits || grant.GCL.Kind != tc.kind {
				t.Errorf("GCL = %+v, want counter %d kind %v", grant.GCL, tc.wantUnits, tc.kind)
			}
			if got := s.Outstanding(slid, "lic"); got != tc.wantUnits {
				t.Errorf("outstanding = %d, want %d", got, tc.wantUnits)
			}
		})
	}
}

// TestAlg1AlphaNormalization pins the weight normalization Σα=1 over a
// holder set larger than two: weights 1,2,1 concurrency 3 on a 1200-unit
// license give the requester α=1/4 and G = α·TG/C = 100, so the default
// scale-down grants exactly 25.
func TestAlg1AlphaNormalization(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 1200); err != nil {
		t.Fatal(err)
	}
	a, b, c := initClient(t, s), initClient(t, s), initClient(t, s)
	if err := s.SetClientProfile(b, 1, 1, 2); err != nil {
		t.Fatal(err)
	}
	// Hand B and C outstanding balances directly: holdersLocked counts any
	// client with units out, and the formula under test reads only the
	// holder set, the weights, and TG. The holder index mirrors every
	// outstanding mutation, so it is maintained by hand here too.
	s.mu.Lock()
	s.clients[b].outstanding["lic"] = 100
	s.setHolderLocked("lic", s.clients[b])
	s.clients[c].outstanding["lic"] = 50
	s.setHolderLocked("lic", s.clients[c])
	units, st := s.computeGrantLocked(s.clients[a], s.licenses["lic"])
	s.mu.Unlock()

	if units != 25 {
		t.Errorf("granted %d units, want 25", units)
	}
	if math.Abs(st.alpha-0.25) > 1e-12 {
		t.Errorf("alpha = %v, want 0.25 (weights 1,2,1)", st.alpha)
	}
	if math.Abs(st.gMax-100) > 1e-9 {
		t.Errorf("gMax = %v, want 100", st.gMax)
	}
}

// TestAlg1ExpectedLossScaleDown pins lines 10-14: a large unhealthy
// holder pushes Equation 1 far past τ, and the multiplicative β scale-down
// drives the requester's grant to zero before the loop's floor.
func TestAlg1ExpectedLossScaleDown(t *testing.T) {
	s := newServer(t)
	if err := s.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatal(err)
	}
	a, b := initClient(t, s), initClient(t, s)
	if err := s.SetClientProfile(a, 0.5, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetClientProfile(b, 0.2, 1, 1); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.clients[b].outstanding["lic"] = 400
	s.setHolderLocked("lic", s.clients[b])
	units, st := s.computeGrantLocked(s.clients[a], s.licenses["lic"])
	s.mu.Unlock()

	// B alone already expects 400·0.8 = 320 lost against τ=100: no grant
	// to A can be loss-bounded, so the policy yields zero (RenewLease's
	// floor-bump, not Algorithm 1, keeps the license usable).
	if units != 0 {
		t.Errorf("granted %d units under a blown loss bound, want 0", units)
	}
	if st.expLoss <= s.licenses["lic"].Tau {
		t.Errorf("expLoss = %v, want > tau %v", st.expLoss, s.licenses["lic"].Tau)
	}
}

// TestAlg1DenialTable pins the deny paths ahead of the grant math.
func TestAlg1DenialTable(t *testing.T) {
	t.Run("exhausted", func(t *testing.T) {
		s := newServer(t)
		if err := s.RegisterLicense("lic", lease.CountBased, 4); err != nil {
			t.Fatal(err)
		}
		slid := initClient(t, s)
		for {
			if _, err := s.RenewLease(slid, "lic"); err != nil {
				if lic, _ := s.License("lic"); lic.Remaining != 0 {
					t.Fatalf("denied with %d units remaining: %v", lic.Remaining, err)
				}
				assertErrIs(t, err, ErrLicenseExhausted)
				return
			}
		}
	})
	t.Run("revoked", func(t *testing.T) {
		s := newServer(t)
		if err := s.RegisterLicense("lic", lease.CountBased, 100); err != nil {
			t.Fatal(err)
		}
		if err := s.Revoke("lic"); err != nil {
			t.Fatal(err)
		}
		slid := initClient(t, s)
		_, err := s.RenewLease(slid, "lic")
		assertErrIs(t, err, ErrLicenseRevoked)
	})
	t.Run("unknown-license", func(t *testing.T) {
		s := newServer(t)
		slid := initClient(t, s)
		_, err := s.RenewLease(slid, "ghost")
		assertErrIs(t, err, ErrUnknownLicense)
	})
	t.Run("unknown-client", func(t *testing.T) {
		s := newServer(t)
		if err := s.RegisterLicense("lic", lease.CountBased, 100); err != nil {
			t.Fatal(err)
		}
		_, err := s.RenewLease("slid-404", "lic")
		assertErrIs(t, err, ErrUnknownClient)
	})
}
