package slremote

import "repro/internal/obs"

// serverMetrics holds SL-Remote's active metrics; nil until ExposeMetrics
// runs. Record sites use obs's nil-safe methods through an atomic pointer,
// so an un-instrumented server pays nothing.
type serverMetrics struct {
	grantUnits       *obs.Histogram
	escrows          *obs.Counter
	revocations      *obs.Counter
	licenseRemaining *obs.GaugeVec
	licenseLost      *obs.GaugeVec
	licenseConsumed  *obs.GaugeVec
	expectedLoss     *obs.GaugeVec
	alg1Alpha        *obs.GaugeVec // slremote_alg1_alpha{client}
	alg1ScaleDown    *obs.GaugeVec // slremote_alg1_scale_down{client}
	alg1Health       *obs.GaugeVec // slremote_alg1_health{client}
	alg1Reliability  *obs.GaugeVec // slremote_alg1_reliability{client}
}

// ExposeMetrics registers SL-Remote's Algorithm 1 bookkeeping with an obs
// registry. Event counters are exported as scrape-time callbacks over the
// existing ServerStats; grant sizing and per-license pool state record
// actively on the renewal path.
//
// Metric inventory:
//
//	slremote_remote_attestations_total      init() quote verifications
//	slremote_renewals_total, slremote_renewals_denied_total
//	slremote_crash_forfeits_total
//	slremote_escrows_total                  root keys escrowed at shutdown
//	slremote_revocations_total
//	slremote_grant_units                    Algorithm 1 grant sizes (histogram)
//	slremote_license_remaining_units{license=...}
//	slremote_license_lost_units{license=...}
//	slremote_license_consumed_units{license=...}
//	slremote_expected_loss_units{license=...}  last Eq. 1 evaluation per license
//	slremote_alg1_alpha{client=...}            α_i at the client's last renewal
//	slremote_alg1_scale_down{client=...}       effective G_i/g_i divisor applied
//	slremote_alg1_health{client=...}           h_i as used by Algorithm 1
//	slremote_alg1_reliability{client=...}      n_i as used by Algorithm 1
func (s *Server) ExposeMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	stat := func(name, help string, fn func(ServerStats) int64) {
		reg.CounterFunc(name, help, nil, func() float64 { return float64(fn(s.Stats())) })
	}
	stat("slremote_remote_attestations_total", "Remote attestations verified at init().",
		func(st ServerStats) int64 { return st.RemoteAttestations })
	stat("slremote_renewals_total", "Algorithm 1 renewals granted.",
		func(st ServerStats) int64 { return st.Renewals })
	stat("slremote_renewals_denied_total", "Renewals refused (revoked/exhausted/zero grant).",
		func(st ServerStats) int64 { return st.RenewalsDenied })
	stat("slremote_crash_forfeits_total", "Per-license forfeits applied to crashed clients.",
		func(st ServerStats) int64 { return st.CrashForfeits })

	m := &serverMetrics{
		grantUnits: reg.Histogram("slremote_grant_units",
			"Sub-GCL units granted per renewal (Algorithm 1 output).", obs.DefSizeBuckets),
		escrows: reg.Counter("slremote_escrows_total",
			"Root keys escrowed at graceful shutdown."),
		revocations: reg.Counter("slremote_revocations_total",
			"Licenses revoked."),
		licenseRemaining: reg.GaugeVec("slremote_license_remaining_units",
			"Undistributed GCL units per license.", "license"),
		licenseLost: reg.GaugeVec("slremote_license_lost_units",
			"GCL units forfeited by crashed clients per license.", "license"),
		licenseConsumed: reg.GaugeVec("slremote_license_consumed_units",
			"GCL units clients reported as spent per license.", "license"),
		expectedLoss: reg.GaugeVec("slremote_expected_loss_units",
			"Last Equation 1 expected-loss evaluation per license.", "license"),
		alg1Alpha: reg.GaugeVec("slremote_alg1_alpha",
			"Concurrency share alpha_i at the client's last renewal.", "client"),
		alg1ScaleDown: reg.GaugeVec("slremote_alg1_scale_down",
			"Effective scale-down divisor G_i/g_i applied at the last renewal.", "client"),
		alg1Health: reg.GaugeVec("slremote_alg1_health",
			"Node health h_i as used by Algorithm 1.", "client"),
		alg1Reliability: reg.GaugeVec("slremote_alg1_reliability",
			"Network reliability n_i as used by Algorithm 1.", "client"),
	}
	s.metrics.Store(m)
}
