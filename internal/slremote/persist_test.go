package slremote

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/seccrypto"
	"repro/internal/store"
)

func testSealKey(t *testing.T) seccrypto.Key {
	t.Helper()
	key, err := seccrypto.KeyFromBytes(bytes.Repeat([]byte{0x5e}, seccrypto.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func openTestStore(t *testing.T, dir string) (*store.Store, *store.Recovered) {
	t.Helper()
	st, rec, err := store.Open(store.Options{Dir: dir, Mode: store.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	return st, rec
}

// persistedServer builds a persisted server, runs a workload against it,
// and closes the store — the write half of every replay test below.
func persistedServer(t *testing.T, dir string, snapshotEvery int, workload func(*Server)) State {
	t.Helper()
	st, rec := openTestStore(t, dir)
	if !rec.Empty() {
		t.Fatalf("fresh dir not empty: %+v", rec)
	}
	s, err := NewServer(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachPersistence(PersistConfig{
		Log: st, Snap: st, SealKey: testSealKey(t), SnapshotEvery: snapshotEvery,
	}); err != nil {
		t.Fatal(err)
	}
	workload(s)
	want := s.ExportState()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func recoverTestServer(t *testing.T, dir string) (*Server, *store.Store) {
	t.Helper()
	st, rec := openTestStore(t, dir)
	s, err := RecoverServer(DefaultConfig(), nil, rec, PersistConfig{
		Log: st, Snap: st, SealKey: testSealKey(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

// fullWorkload exercises every WAL opcode at least once.
func fullWorkload(t *testing.T) func(*Server) {
	t.Helper()
	return func(s *Server) {
		if err := s.RegisterLicense("count", lease.CountBased, 1000); err != nil {
			t.Fatal(err)
		}
		if err := s.RegisterLicense("timed", lease.TimeBased, 30); err != nil {
			t.Fatal(err)
		}
		if err := s.RegisterLicense("doomed", lease.CountBased, 10); err != nil {
			t.Fatal(err)
		}
		if err := s.SetLicenseInterval("timed", 3600e9); err != nil {
			t.Fatal(err)
		}
		res, err := s.InitClient("", attest.Quote{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		a := res.SLID
		res, err = s.InitClient("", attest.Quote{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		b := res.SLID
		if err := s.SetClientProfile(a, 0.95, 0.8, 2); err != nil {
			t.Fatal(err)
		}
		if err := s.SetClientProfile(b, 0.7, 1, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := s.RenewLease(a, "count"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.RenewLease(b, "count"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.RenewLease(a, "timed"); err != nil {
			t.Fatal(err)
		}
		if err := s.ConsumeReport(a, "count", 5); err != nil {
			t.Fatal(err)
		}
		key, err := seccrypto.NewKey(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EscrowRootKey(a, key); err != nil {
			t.Fatal(err)
		}
		if err := s.ReportCrash(b); err != nil {
			t.Fatal(err)
		}
		if err := s.Revoke("doomed"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplayRebuildsIdenticalState(t *testing.T) {
	for _, tc := range []struct {
		name          string
		snapshotEvery int
	}{
		{"wal_only", 0},
		{"snapshot_every_3", 3}, // workload spans several compactions
		{"snapshot_every_100", 100},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want := persistedServer(t, dir, tc.snapshotEvery, fullWorkload(t))
			s, st := recoverTestServer(t, dir)
			defer st.Close()
			if got := s.ExportState(); !reflect.DeepEqual(got, want) {
				t.Errorf("recovered state differs\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

func TestRecoveredServerKeepsWorking(t *testing.T) {
	dir := t.TempDir()
	persistedServer(t, dir, 0, fullWorkload(t))

	// First recovery: mutate further, then close.
	s, st := recoverTestServer(t, dir)
	res, err := s.InitClient("slid-1", attest.Quote{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasOBK {
		t.Fatal("escrowed root key not released after recovery")
	}
	if _, err := s.RenewLease("slid-1", "count"); err != nil {
		t.Fatal(err)
	}
	want := s.ExportState()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second recovery must see the post-recovery mutations too.
	s2, st2 := recoverTestServer(t, dir)
	defer st2.Close()
	if got := s2.ExportState(); !reflect.DeepEqual(got, want) {
		t.Errorf("second recovery differs\n got: %+v\nwant: %+v", got, want)
	}
}

func TestRecoverWithWrongSealKeyFails(t *testing.T) {
	dir := t.TempDir()
	persistedServer(t, dir, 1, fullWorkload(t)) // force a sealed snapshot
	st, rec := openTestStore(t, dir)
	defer st.Close()
	wrong, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverServer(DefaultConfig(), nil, rec, PersistConfig{
		Log: st, Snap: st, SealKey: wrong,
	}); err == nil {
		t.Fatal("recovery with the wrong seal key succeeded")
	}
}

func TestNoPlaintextRootKeyOnDisk(t *testing.T) {
	dir := t.TempDir()
	key, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	persistedServer(t, dir, 2, func(s *Server) {
		if err := s.RegisterLicense("count", lease.CountBased, 100); err != nil {
			t.Fatal(err)
		}
		res, err := s.InitClient("", attest.Quote{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EscrowRootKey(res.SLID, key); err != nil {
			t.Fatal(err)
		}
	})
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, key.Bytes()) {
			t.Errorf("plaintext root-key bytes found in %s", e.Name())
		}
	}
}

func TestReplayRejectsInconsistentLog(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	// A renew event for a client the log never initialized: the snapshot and
	// the log disagree, so recovery must fail loudly.
	if err := st.Append([]byte(`{"op":"renew","slid":"ghost","license":"l","units":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec := openTestStore(t, dir)
	defer st2.Close()
	_, err := RecoverServer(DefaultConfig(), nil, rec, PersistConfig{
		Log: st2, Snap: st2, SealKey: testSealKey(t),
	})
	if err == nil || !strings.Contains(err.Error(), "unknown client") {
		t.Fatalf("want unknown-client replay failure, got %v", err)
	}
}

func TestLogFailureDoesNotMutateState(t *testing.T) {
	dir := t.TempDir()
	st, rec := openTestStore(t, dir)
	s, err := RecoverServer(DefaultConfig(), nil, rec, PersistConfig{
		Log: st, Snap: st, SealKey: testSealKey(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterLicense("count", lease.CountBased, 100); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The store is closed: the WAL append fails, and the write-ahead
	// discipline must leave memory untouched.
	if err := s.RegisterLicense("late", lease.CountBased, 100); err == nil {
		t.Fatal("register succeeded with a closed store")
	}
	if ids := s.LicenseIDs(); len(ids) != 1 || ids[0] != "count" {
		t.Fatalf("state mutated despite log failure: %v", ids)
	}
}

func TestAttachPersistenceValidates(t *testing.T) {
	s, err := NewServer(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachPersistence(PersistConfig{}); err == nil {
		t.Fatal("nil Logger accepted")
	}
	st, _ := openTestStore(t, t.TempDir())
	defer st.Close()
	if err := s.AttachPersistence(PersistConfig{Log: st}); err == nil {
		t.Fatal("zero seal key accepted")
	}
	if err := s.AttachPersistence(PersistConfig{Log: st, SealKey: testSealKey(t), SnapshotEvery: -1}); err == nil {
		t.Fatal("negative SnapshotEvery accepted")
	}
}
