package slremote

import (
	"testing"

	"repro/internal/attest"
	"repro/internal/audit"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/seccrypto"
)

// TestAuditTrailCoversLifecycle drives every decision the audit log is
// specified to record — issue, init, renew (with Algorithm-1 inputs),
// denial, crash forfeit, escrow, revocation — and checks the trail.
func TestAuditTrailCoversLifecycle(t *testing.T) {
	log, err := audit.Open("", seccrypto.Key{})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t)
	s.AttachAudit(log)

	if err := s.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterLicense("doomed", lease.CountBased, 10); err != nil {
		t.Fatal(err)
	}
	res, err := s.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	slid := res.SLID
	grant, err := s.RenewLease(slid, "lic")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Revoke("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RenewLease(slid, "doomed"); err == nil {
		t.Fatal("renewal against a revoked license succeeded")
	}
	key, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EscrowRootKey(slid, key); err != nil {
		t.Fatal(err)
	}
	// A second client holding an outstanding lease crashes: pessimistic
	// forfeit.
	res2, err := s.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RenewLease(res2.SLID, "lic"); err != nil {
		t.Fatal(err)
	}
	if err := s.ReportCrash(res2.SLID); err != nil {
		t.Fatal(err)
	}

	if err := log.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	byOp := make(map[string][]audit.Record)
	for _, rec := range log.Tail(0) {
		byOp[rec.Op] = append(byOp[rec.Op], rec)
	}
	for _, op := range []string{
		audit.OpIssue, audit.OpInit, audit.OpRenew, audit.OpDeny,
		audit.OpRevoke, audit.OpEscrow, audit.OpCrashForfeit,
	} {
		if len(byOp[op]) == 0 {
			t.Errorf("no %q record in the audit trail", op)
		}
	}

	renews := byOp[audit.OpRenew]
	first := renews[0]
	if first.SLID != slid || first.License != "lic" || first.Units != grant.Units {
		t.Errorf("renew record = %+v, want slid %s lic/%d units", first, slid, grant.Units)
	}
	if first.Alg1 == nil {
		t.Fatal("renew record carries no Algorithm-1 inputs")
	}
	if first.Alg1.Alpha <= 0 || first.Alg1.Alpha > 1 ||
		first.Alg1.ScaleDown <= 0 || first.Alg1.Health <= 0 || first.Alg1.Reliability <= 0 {
		t.Errorf("Algorithm-1 inputs out of range: %+v", first.Alg1)
	}
	if deny := byOp[audit.OpDeny][0]; deny.License != "doomed" || deny.Err == "" {
		t.Errorf("deny record = %+v, want doomed with a reason", deny)
	}
	if forfeit := byOp[audit.OpCrashForfeit][0]; forfeit.SLID != res2.SLID || forfeit.Units <= 0 {
		t.Errorf("crash-forfeit record = %+v, want %s with positive units", forfeit, res2.SLID)
	}
}

// TestAlg1GaugesPerClient is the introspection acceptance check: after a
// renewal the slremote_alg1_* gauges expose that client's Algorithm-1
// state under its SLID label.
func TestAlg1GaugesPerClient(t *testing.T) {
	s := newServer(t)
	reg := obs.NewRegistry()
	s.ExposeMetrics(reg)
	if err := s.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatal(err)
	}
	a, err := s.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetClientProfile(b.SLID, 0.5, 0.9, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RenewLease(a.SLID, "lic"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RenewLease(b.SLID, "lic"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, slid := range []string{a.SLID, b.SLID} {
		labels := map[string]string{"client": slid}
		alpha := snap.Get("slremote_alg1_alpha", labels)
		if alpha <= 0 || alpha > 1 {
			t.Errorf("slremote_alg1_alpha{client=%s} = %v, want in (0,1]", slid, alpha)
		}
		if v := snap.Get("slremote_alg1_scale_down", labels); v <= 0 {
			t.Errorf("slremote_alg1_scale_down{client=%s} = %v, want > 0", slid, v)
		}
		if v := snap.Get("slremote_alg1_health", labels); v <= 0 {
			t.Errorf("slremote_alg1_health{client=%s} = %v, want > 0", slid, v)
		}
		if v := snap.Get("slremote_alg1_reliability", labels); v <= 0 {
			t.Errorf("slremote_alg1_reliability{client=%s} = %v, want > 0", slid, v)
		}
	}
	// The unhealthy client's health gauge reflects its profile.
	if v := snap.Get("slremote_alg1_health", map[string]string{"client": b.SLID}); v != 0.5 {
		t.Errorf("slremote_alg1_health{client=%s} = %v, want 0.5", b.SLID, v)
	}

	// SetClientProfile refreshes the gauges without a renewal.
	if err := s.SetClientProfile(a.SLID, 0.7, 0.8, 1); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if v := snap.Get("slremote_alg1_health", map[string]string{"client": a.SLID}); v != 0.7 {
		t.Errorf("health gauge after SetClientProfile = %v, want 0.7", v)
	}
}
