package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// svmSpec is the support-vector-machine workload (paper input: 4000
// samples, 128 features; application: text categorization). The key
// function is predict(). The trained model is what the license protects,
// so most of the pipeline touches sensitive data and both schemes carry
// moderate footprints (Glamdring 110 MB, SecureLease 85 MB in Table 5).
func svmSpec() *Spec {
	return &Spec{
		Name:         "svm",
		Description:  "Linear SVM training and inference (text categorization)",
		PaperInput:   "Samples: 4000, Features: 128 (scaled: 1000 × scale samples)",
		License:      "lic-svm",
		KeyFunctions: []string{"predict"},
		ChecksPerRun: 1000,
		Run:          runSVM,
	}
}

func runSVM(scale int) (*Profile, error) {
	scale = clampScale(scale)
	nSamples := 1000 * scale
	const nFeatures = 128

	rec := trace.NewRecorder()
	nodes := append(amNodes("svm"), []callgraph.Node{
		{Name: "svm.main", CodeBytes: 900, MemoryBytes: 16 << 10, Module: "init"},
		{Name: "svm.load_dataset", CodeBytes: 7_000, MemoryBytes: 90 << 20,
			Module: "data", TouchesSensitive: true},
		{Name: "svm.normalize", CodeBytes: 3_500, MemoryBytes: 12 << 20,
			Module: "data", TouchesSensitive: true},
		// Training and inference core: the model weights are the IP. The
		// predict() path is the key function; its cluster carries the
		// model plus margin buffers (SecureLease: 85 MB in Table 5).
		{Name: "svm.train_epoch", CodeBytes: 5_200, MemoryBytes: 40 << 20,
			Module: "model", TouchesSensitive: true},
		{Name: "svm.predict", CodeBytes: 2_400, MemoryBytes: 30 << 20,
			Module: "model", KeyFunction: true, TouchesSensitive: true},
		{Name: "svm.dot_product", CodeBytes: 1_100, MemoryBytes: 8 << 20, Module: "model", TouchesSensitive: true},
		{Name: "svm.hinge_update", CodeBytes: 1_600, MemoryBytes: 4 << 20, Module: "model", TouchesSensitive: true},
		{Name: "svm.predict_phase", CodeBytes: 1_200, MemoryBytes: 1 << 20,
			Module: "model", TouchesSensitive: true},
		{Name: "svm.metrics", CodeBytes: 1_000, MemoryBytes: 64 << 10, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "svm", "svm.main")

	// Synthetic linearly-separable-with-noise dataset.
	rng := rand.New(rand.NewSource(0x57A))
	truth := make([]float64, nFeatures)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	xs := make([][]float64, nSamples)
	ys := make([]float64, nSamples)
	for i := range xs {
		x := make([]float64, nFeatures)
		var dot float64
		for j := range x {
			x[j] = rng.NormFloat64()
			dot += x[j] * truth[j]
		}
		xs[i] = x
		if dot+0.3*rng.NormFloat64() >= 0 {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	rec.Enter("svm.main", "svm.load_dataset")
	rec.Enter("svm.load_dataset", "svm.normalize")
	rec.Work("svm.load_dataset", int64(nSamples*nFeatures/8))
	rec.Work("svm.normalize", int64(nSamples*nFeatures/32))

	// Pegasos-style SGD on the hinge loss.
	w := make([]float64, nFeatures)
	const lambda = 1e-4
	const epochs = 5
	var updates, dots int64
	step := 0
	for e := 0; e < epochs; e++ {
		rec.Enter("svm.main", "svm.train_epoch")
		for i := 0; i < nSamples; i++ {
			step++
			eta := 1 / (lambda * float64(step))
			idx := rng.Intn(nSamples)
			var margin float64
			for j := range w {
				margin += w[j] * xs[idx][j]
			}
			dots++
			scale := 1 - eta*lambda
			if ys[idx]*margin < 1 {
				for j := range w {
					w[j] = scale*w[j] + eta*ys[idx]*xs[idx][j]
				}
				updates++
			} else {
				for j := range w {
					w[j] *= scale
				}
			}
		}
		rec.Work("svm.train_epoch", int64(nSamples))
	}
	rec.EnterN("svm.train_epoch", "svm.dot_product", dots)
	rec.EnterN("svm.train_epoch", "svm.hinge_update", updates)
	rec.Work("svm.dot_product", dots*nFeatures/8)
	rec.Work("svm.hinge_update", updates*nFeatures/8)

	// predict(): score the training set; accuracy must beat chance by a
	// wide margin on this nearly separable data.
	correct := 0
	var h uint64 = 17
	for i := range xs {
		var margin float64
		for j := range w {
			margin += w[j] * xs[i][j]
		}
		pred := -1.0
		if margin >= 0 {
			pred = 1
		}
		if pred == ys[i] {
			correct++
		}
		h = mix64(h, uint64(int64(margin*1e6)))
	}
	rec.Enter("svm.main", "svm.predict_phase")
	rec.EnterN("svm.predict_phase", "svm.predict", int64(nSamples))
	rec.Work("svm.predict_phase", int64(nSamples/8))
	rec.EnterN("svm.predict", "svm.dot_product", int64(nSamples))
	rec.Work("svm.predict", int64(nSamples*nFeatures/8))

	acc := float64(correct) / float64(nSamples)
	if acc < 0.8 {
		return nil, fmt.Errorf("svm: training failed, accuracy %.3f", acc)
	}
	rec.Enter("svm.main", "svm.metrics")
	rec.Work("svm.metrics", int64(nSamples/16))
	rec.Work("svm.main", 100)

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: mix64(h, uint64(correct)),
		Output:   fmt.Sprintf("svm: %d samples, training accuracy %.3f", nSamples, acc),
	}, nil
}
