package workloads

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// opensslSpec is the encryption-library workload: encrypt and decrypt a
// file (paper input: 151 MB). The key function is decrypt() — without it
// the library is useless to a pirate. Nearly the whole library touches the
// plaintext/key material, which is why Glamdring migrates ~everything
// (99.58% static coverage ratio in Table 5).
func opensslSpec() *Spec {
	return &Spec{
		Name:         "openssl",
		Description:  "Encryption-decryption library",
		PaperInput:   "File size: 151 MB (scaled: 2 MB × scale)",
		License:      "lic-openssl",
		KeyFunctions: []string{"decrypt"},
		ChecksPerRun: 1000,
		Run:          runOpenSSL,
	}
}

func runOpenSSL(scale int) (*Profile, error) {
	scale = clampScale(scale)
	fileSize := 2 << 20 * scale

	rec := trace.NewRecorder()
	nodes := append(amNodes("openssl"), []callgraph.Node{
		{Name: "openssl.main", CodeBytes: 700, MemoryBytes: 16 << 10, Module: "init"},
		// The whole cipher pipeline touches key material, so almost every
		// module is sensitive — Glamdring takes nearly all of it, and the
		// buffers push it to the paper's 310 MB.
		{Name: "openssl.read_file", CodeBytes: 6_000, MemoryBytes: 160 << 20,
			Module: "io", TouchesSensitive: true},
		{Name: "openssl.key_schedule", CodeBytes: 11_000, MemoryBytes: 1 << 20,
			Module: "cipher", TouchesSensitive: true},
		{Name: "openssl.encrypt", CodeBytes: 240_000, MemoryBytes: 120 << 20,
			Module: "cipher", TouchesSensitive: true},
		{Name: "openssl.enc_rounds", CodeBytes: 90_000, MemoryBytes: 4 << 20,
			Module: "cipher", TouchesSensitive: true},
		// decrypt: the key function. Big code (the cipher core) but a
		// bounded working set, so SecureLease stays under the EPC. Its
		// round helpers are its own (real cipher libraries keep separate
		// encrypt/decrypt round code), so the enclave boundary never
		// splits a hot call pair.
		{Name: "openssl.decrypt", CodeBytes: 240_000, MemoryBytes: 60 << 20,
			Module: "corecipher", KeyFunction: true, TouchesSensitive: true},
		{Name: "openssl.dec_rounds", CodeBytes: 90_000, MemoryBytes: 4 << 20,
			Module: "corecipher", TouchesSensitive: true},
		{Name: "openssl.digest", CodeBytes: 90_000, MemoryBytes: 2 << 20,
			Module: "corecipher", TouchesSensitive: true},
		{Name: "openssl.write_file", CodeBytes: 5_000, MemoryBytes: 8 << 20, Module: "io"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "openssl", "openssl.main")

	// Deterministic plaintext.
	plain := make([]byte, fileSize)
	for i := range plain {
		plain[i] = byte(i*131 + i>>8)
	}
	rec.Enter("openssl.main", "openssl.read_file")
	rec.Work("openssl.read_file", int64(fileSize/64))

	// Real AES-CTR encryption.
	key := sha256.Sum256([]byte("openssl-workload-key"))
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, fmt.Errorf("openssl: cipher: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	binary.LittleEndian.PutUint64(iv, 0x0551)

	rec.Enter("openssl.main", "openssl.key_schedule")
	rec.Work("openssl.key_schedule", 500)

	ciphertext := make([]byte, fileSize)
	cipher.NewCTR(block, iv).XORKeyStream(ciphertext, plain)
	blocks := int64(fileSize / aes.BlockSize)
	rec.Enter("openssl.main", "openssl.encrypt")
	rec.EnterN("openssl.encrypt", "openssl.enc_rounds", blocks)
	rec.Work("openssl.encrypt", blocks)
	rec.Work("openssl.enc_rounds", blocks*3)

	// decrypt(): the protected path; verify the round trip.
	recovered := make([]byte, fileSize)
	cipher.NewCTR(block, iv).XORKeyStream(recovered, ciphertext)
	rec.Enter("openssl.main", "openssl.decrypt")
	rec.EnterN("openssl.decrypt", "openssl.dec_rounds", blocks)
	rec.Work("openssl.decrypt", blocks*2)
	rec.Work("openssl.dec_rounds", blocks*18)

	for i := range plain {
		if plain[i] != recovered[i] {
			return nil, fmt.Errorf("openssl: round trip mismatch at byte %d", i)
		}
	}

	// digest both to produce the checksum.
	sum := sha256.Sum256(ciphertext)
	rec.Enter("openssl.main", "openssl.digest")
	rec.Work("openssl.digest", int64(fileSize/64))
	rec.Enter("openssl.main", "openssl.write_file")
	rec.Work("openssl.write_file", int64(fileSize/64))
	rec.Work("openssl.main", 100)

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: binary.LittleEndian.Uint64(sum[:8]),
		Output:   fmt.Sprintf("openssl: %d bytes encrypted, decrypted, verified", fileSize),
	}, nil
}
