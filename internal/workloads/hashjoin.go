package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// hashjoinSpec is the mitosis-style HashJoin workload: probe a hash table,
// as used for equi-joins in databases (paper input: 1.22 GB data table).
// The key function is probe(). HashJoin is the paper's worst full-SGX case
// (>300× slowdown) because the build table thrashes the EPC.
func hashjoinSpec() *Spec {
	return &Spec{
		Name:         "hashjoin",
		Description:  "Probe a hash table (used to implement equi-join in DBs)",
		PaperInput:   "Data table: 1.22 GB (scaled: 200K build rows × scale)",
		License:      "lic-hashjoin",
		KeyFunctions: []string{"probe"},
		ChecksPerRun: 1000,
		Run:          runHashJoin,
	}
}

func runHashJoin(scale int) (*Profile, error) {
	scale = clampScale(scale)
	nBuild := 200_000 * scale
	nProbe := 2 * nBuild

	rec := trace.NewRecorder()
	nodes := append(amNodes("hashjoin"), []callgraph.Node{
		{Name: "hashjoin.main", CodeBytes: 850, MemoryBytes: 16 << 10, Module: "init"},
		// The build table is the sensitive bulk (paper: 130 MB Glamdring).
		{Name: "hashjoin.load_tables", CodeBytes: 9_500, MemoryBytes: 110 << 20,
			Module: "data", TouchesSensitive: true},
		{Name: "hashjoin.build", CodeBytes: 4_200, MemoryBytes: 16 << 20,
			Module: "data", TouchesSensitive: true},
		// The probe core (SecureLease's pick; 4 MB).
		{Name: "hashjoin.probe", CodeBytes: 3_100, MemoryBytes: 2 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "hashjoin.hash_key", CodeBytes: 900, MemoryBytes: 64 << 10, Module: "core", TouchesSensitive: true},
		{Name: "hashjoin.emit", CodeBytes: 1_200, MemoryBytes: 1 << 20, Module: "core", TouchesSensitive: true},
		{Name: "hashjoin.probe_phase", CodeBytes: 1_400, MemoryBytes: 512 << 10,
			Module: "core", TouchesSensitive: true},
		{Name: "hashjoin.summary", CodeBytes: 700, MemoryBytes: 32 << 10, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "hashjoin", "hashjoin.main")
	rec.Enter("hashjoin.main", "hashjoin.load_tables")
	rec.Work("hashjoin.load_tables", int64((nBuild+nProbe)/8))

	rng := rand.New(rand.NewSource(0x4A54))
	type row struct {
		key uint64
		val uint32
	}
	build := make([]row, nBuild)
	for i := range build {
		build[i] = row{key: uint64(rng.Intn(nBuild * 2)), val: rng.Uint32()}
	}

	// Build phase: open-addressing table keyed on row.key.
	rec.Enter("hashjoin.load_tables", "hashjoin.build")
	size := 1
	for size < nBuild*2 {
		size <<= 1
	}
	mask := uint64(size - 1)
	keys := make([]uint64, size)
	vals := make([]uint32, size)
	used := make([]bool, size)
	hash := func(k uint64) uint64 {
		k *= 0x9e3779b97f4a7c15
		k ^= k >> 29
		return k
	}
	var buildSteps int64
	for _, r := range build {
		i := hash(r.key) & mask
		for used[i] {
			if keys[i] == r.key {
				break
			}
			i = (i + 1) & mask
			buildSteps++
		}
		keys[i], vals[i], used[i] = r.key, r.val, true
		buildSteps++
	}
	rec.Work("hashjoin.build", buildSteps/4)
	rec.EnterN("hashjoin.build", "hashjoin.hash_key", int64(nBuild))

	// Probe phase: the protected core.
	var matches int
	var h uint64 = 11
	var probeSteps, emits int64
	for p := 0; p < nProbe; p++ {
		key := uint64(rng.Intn(nBuild * 4))
		i := hash(key) & mask
		for used[i] {
			probeSteps++
			if keys[i] == key {
				matches++
				emits++
				h = mix64(h, key^uint64(vals[i]))
				break
			}
			i = (i + 1) & mask
		}
		probeSteps++
	}
	rec.Enter("hashjoin.main", "hashjoin.probe_phase")
	rec.EnterN("hashjoin.probe_phase", "hashjoin.probe", int64(nProbe))
	rec.Work("hashjoin.probe_phase", int64(nProbe/4))
	rec.EnterN("hashjoin.probe", "hashjoin.hash_key", int64(nProbe))
	rec.EnterN("hashjoin.probe", "hashjoin.emit", emits)
	rec.Work("hashjoin.probe", probeSteps)
	rec.Work("hashjoin.hash_key", int64(nBuild+nProbe))
	rec.Work("hashjoin.emit", emits)

	rec.Enter("hashjoin.main", "hashjoin.summary")
	rec.Work("hashjoin.summary", 10)
	rec.Work("hashjoin.main", 100)

	if matches == 0 {
		return nil, fmt.Errorf("hashjoin: no matches out of %d probes", nProbe)
	}

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: h,
		Output: fmt.Sprintf("hashjoin: %d matches from %d probes against %d build rows",
			matches, nProbe, nBuild),
	}, nil
}
