package workloads

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// jsonparserSpec is the FaaS JSON-parsing workload: parse a stream of JSON
// strings (paper input: 10K documents of ~1 KB each). The key function is
// parse(). The parser below is a from-scratch recursive-descent JSON
// parser, so the workload exercises real parsing logic.
func jsonparserSpec() *Spec {
	return &Spec{
		Name:         "jsonparser",
		Description:  "Parse JSON strings (FaaS)",
		PaperInput:   "Size: 1 KB, Count: 10K (scaled: 2K docs × scale)",
		License:      "lic-jsonparser",
		KeyFunctions: []string{"parse"},
		FaaS:         true,
		ChecksPerRun: 10_000,
		Run:          runJSONParser,
	}
}

func runJSONParser(scale int) (*Profile, error) {
	scale = clampScale(scale)
	nDocs := 2000 * scale

	rec := trace.NewRecorder()
	nodes := append(amNodes("jsonparser"), []callgraph.Node{
		{Name: "jsonparser.main", CodeBytes: 900, MemoryBytes: 16 << 10, Module: "init"},
		{Name: "jsonparser.ingest", CodeBytes: 4_800, MemoryBytes: 26 << 20,
			Module: "io", TouchesSensitive: true},
		// parse() and its helpers are the protected core.
		{Name: "jsonparser.parse", CodeBytes: 7_200, MemoryBytes: 2 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "jsonparser.lex", CodeBytes: 3_900, MemoryBytes: 512 << 10, Module: "core", TouchesSensitive: true},
		{Name: "jsonparser.parse_value", CodeBytes: 4_400, MemoryBytes: 512 << 10, Module: "core", TouchesSensitive: true},
		{Name: "jsonparser.validate", CodeBytes: 1_800, MemoryBytes: 256 << 10, Module: "core", TouchesSensitive: true},
		{Name: "jsonparser.parse_stream", CodeBytes: 1_500, MemoryBytes: 512 << 10,
			Module: "core", TouchesSensitive: true},
		{Name: "jsonparser.emit", CodeBytes: 900, MemoryBytes: 64 << 10, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "jsonparser", "jsonparser.main")

	rng := rand.New(rand.NewSource(0x150))
	genDoc := func(i int) string {
		var b strings.Builder
		fmt.Fprintf(&b, `{"id":%d,"name":"item-%d","tags":[`, i, i)
		nTags := 1 + rng.Intn(5)
		for t := 0; t < nTags; t++ {
			if t > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `"t%d"`, rng.Intn(100))
		}
		fmt.Fprintf(&b, `],"score":%d.%02d,"active":%v,"meta":{"depth":%d,"note":null}}`,
			rng.Intn(1000), rng.Intn(100), rng.Intn(2) == 0, rng.Intn(9))
		return b.String()
	}

	var totalBytes, totalValues int64
	var h uint64 = 23
	var parseErrors int
	for i := 0; i < nDocs; i++ {
		doc := genDoc(i)
		totalBytes += int64(len(doc))
		v, consumed, err := parseJSON(doc)
		if err != nil {
			parseErrors++
			continue
		}
		if consumed != len(doc) {
			return nil, fmt.Errorf("jsonparser: doc %d: trailing garbage after offset %d", i, consumed)
		}
		nVals := countValues(v)
		totalValues += int64(nVals)
		obj, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("jsonparser: doc %d: top level is %T", i, v)
		}
		id, ok := obj["id"].(float64)
		if !ok || int(id) != i {
			return nil, fmt.Errorf("jsonparser: doc %d: bad id field %v", i, obj["id"])
		}
		h = mix64(h, uint64(nVals)<<32|uint64(i))
	}
	if parseErrors > 0 {
		return nil, fmt.Errorf("jsonparser: %d parse errors on valid input", parseErrors)
	}

	rec.Enter("jsonparser.main", "jsonparser.ingest")
	rec.Work("jsonparser.ingest", totalBytes/32)
	rec.Enter("jsonparser.main", "jsonparser.parse_stream")
	rec.EnterN("jsonparser.parse_stream", "jsonparser.parse", int64(nDocs))
	rec.Work("jsonparser.parse_stream", int64(nDocs))
	rec.EnterN("jsonparser.parse", "jsonparser.lex", totalBytes/8)
	rec.EnterN("jsonparser.parse", "jsonparser.parse_value", totalValues)
	rec.EnterN("jsonparser.parse", "jsonparser.validate", int64(nDocs))
	rec.Work("jsonparser.parse", totalBytes/4)
	rec.Work("jsonparser.lex", totalBytes/8)
	rec.Work("jsonparser.parse_value", totalValues)
	rec.Work("jsonparser.validate", int64(nDocs)*2)
	rec.Enter("jsonparser.main", "jsonparser.emit")
	rec.Work("jsonparser.emit", int64(nDocs))
	rec.Work("jsonparser.main", 100)

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: mix64(h, uint64(totalValues)),
		Output: fmt.Sprintf("jsonparser: %d docs, %d bytes, %d values parsed",
			nDocs, totalBytes, totalValues),
	}, nil
}

// parseJSON is a from-scratch recursive-descent JSON parser. It returns
// the value, the number of bytes consumed, and an error on malformed
// input. Supported: objects, arrays, strings (with \" \\ \/ \n \t \r \u
// escapes), numbers, true/false/null.
func parseJSON(s string) (any, int, error) {
	p := &jsonParser{s: s}
	p.skipSpace()
	v, err := p.value()
	if err != nil {
		return nil, p.i, err
	}
	p.skipSpace()
	return v, p.i, nil
}

type jsonParser struct {
	s string
	i int
}

var errJSON = errors.New("jsonparser: malformed JSON")

func (p *jsonParser) skipSpace() {
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jsonParser) value() (any, error) {
	if p.i >= len(p.s) {
		return nil, fmt.Errorf("%w: unexpected end", errJSON)
	}
	switch c := p.s[p.i]; {
	case c == '{':
		return p.object()
	case c == '[':
		return p.array()
	case c == '"':
		return p.str()
	case c == 't':
		return p.literal("true", true)
	case c == 'f':
		return p.literal("false", false)
	case c == 'n':
		return p.literal("null", nil)
	case c == '-' || (c >= '0' && c <= '9'):
		return p.number()
	default:
		return nil, fmt.Errorf("%w: unexpected %q at %d", errJSON, c, p.i)
	}
}

func (p *jsonParser) object() (any, error) {
	p.i++ // {
	out := make(map[string]any)
	p.skipSpace()
	if p.i < len(p.s) && p.s[p.i] == '}' {
		p.i++
		return out, nil
	}
	for {
		p.skipSpace()
		if p.i >= len(p.s) || p.s[p.i] != '"' {
			return nil, fmt.Errorf("%w: want object key at %d", errJSON, p.i)
		}
		key, err := p.str()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.i >= len(p.s) || p.s[p.i] != ':' {
			return nil, fmt.Errorf("%w: want ':' at %d", errJSON, p.i)
		}
		p.i++
		p.skipSpace()
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		out[key.(string)] = v
		p.skipSpace()
		if p.i >= len(p.s) {
			return nil, fmt.Errorf("%w: unterminated object", errJSON)
		}
		switch p.s[p.i] {
		case ',':
			p.i++
		case '}':
			p.i++
			return out, nil
		default:
			return nil, fmt.Errorf("%w: want ',' or '}' at %d", errJSON, p.i)
		}
	}
}

func (p *jsonParser) array() (any, error) {
	p.i++ // [
	var out []any
	p.skipSpace()
	if p.i < len(p.s) && p.s[p.i] == ']' {
		p.i++
		return out, nil
	}
	for {
		p.skipSpace()
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.skipSpace()
		if p.i >= len(p.s) {
			return nil, fmt.Errorf("%w: unterminated array", errJSON)
		}
		switch p.s[p.i] {
		case ',':
			p.i++
		case ']':
			p.i++
			return out, nil
		default:
			return nil, fmt.Errorf("%w: want ',' or ']' at %d", errJSON, p.i)
		}
	}
}

func (p *jsonParser) str() (any, error) {
	p.i++ // "
	var b strings.Builder
	for p.i < len(p.s) {
		c := p.s[p.i]
		switch c {
		case '"':
			p.i++
			return b.String(), nil
		case '\\':
			p.i++
			if p.i >= len(p.s) {
				return nil, fmt.Errorf("%w: dangling escape", errJSON)
			}
			switch p.s[p.i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case '/':
				b.WriteByte('/')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'u':
				if p.i+4 >= len(p.s) {
					return nil, fmt.Errorf("%w: short \\u escape", errJSON)
				}
				code, err := strconv.ParseUint(p.s[p.i+1:p.i+5], 16, 32)
				if err != nil {
					return nil, fmt.Errorf("%w: bad \\u escape", errJSON)
				}
				b.WriteRune(rune(code))
				p.i += 4
			default:
				return nil, fmt.Errorf("%w: unknown escape \\%c", errJSON, p.s[p.i])
			}
			p.i++
		default:
			b.WriteByte(c)
			p.i++
		}
	}
	return nil, fmt.Errorf("%w: unterminated string", errJSON)
}

func (p *jsonParser) number() (any, error) {
	start := p.i
	if p.i < len(p.s) && p.s[p.i] == '-' {
		p.i++
	}
	for p.i < len(p.s) && (p.s[p.i] >= '0' && p.s[p.i] <= '9' || p.s[p.i] == '.' ||
		p.s[p.i] == 'e' || p.s[p.i] == 'E' || p.s[p.i] == '+' || p.s[p.i] == '-') {
		p.i++
	}
	f, err := strconv.ParseFloat(p.s[start:p.i], 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad number %q", errJSON, p.s[start:p.i])
	}
	return f, nil
}

func (p *jsonParser) literal(word string, v any) (any, error) {
	if !strings.HasPrefix(p.s[p.i:], word) {
		return nil, fmt.Errorf("%w: bad literal at %d", errJSON, p.i)
	}
	p.i += len(word)
	return v, nil
}

// countValues counts all values in a parsed JSON tree.
func countValues(v any) int {
	switch t := v.(type) {
	case map[string]any:
		n := 1
		for _, c := range t {
			n += countValues(c)
		}
		return n
	case []any:
		n := 1
		for _, c := range t {
			n += countValues(c)
		}
		return n
	default:
		return 1
	}
}
