package workloads

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// keyvalueSpec is the Cloudburst-style FaaS key-value store workload:
// read and write operations against a store (paper input: 70 MB, 500K
// elements — the paper's heaviest license-check load at 500K checks in
// under a minute). The key function is set().
func keyvalueSpec() *Spec {
	return &Spec{
		Name:         "keyvalue",
		Description:  "Read and write operations on a key-value store (FaaS)",
		PaperInput:   "70 MB, 500K elements (scaled: 50K ops × scale)",
		License:      "lic-keyvalue",
		KeyFunctions: []string{"set"},
		FaaS:         true,
		ChecksPerRun: 50_000,
		Run:          runKeyValue,
	}
}

func runKeyValue(scale int) (*Profile, error) {
	scale = clampScale(scale)
	nOps := 50_000 * scale

	rec := trace.NewRecorder()
	nodes := append(amNodes("keyvalue"), []callgraph.Node{
		{Name: "keyvalue.main", CodeBytes: 950, MemoryBytes: 16 << 10, Module: "init"},
		// The value heap is the bulk (paper: 162 MB under Glamdring).
		{Name: "keyvalue.value_heap", CodeBytes: 8_200, MemoryBytes: 140 << 20,
			Module: "data", TouchesSensitive: true},
		{Name: "keyvalue.index", CodeBytes: 6_100, MemoryBytes: 18 << 20,
			Module: "data", TouchesSensitive: true},
		// The write path is the protected core (4 MB for SecureLease).
		{Name: "keyvalue.set", CodeBytes: 2_700, MemoryBytes: 2 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "keyvalue.get", CodeBytes: 1_900, MemoryBytes: 1 << 20, Module: "core", TouchesSensitive: true},
		{Name: "keyvalue.serialize", CodeBytes: 1_500, MemoryBytes: 512 << 10, Module: "core", TouchesSensitive: true},
		{Name: "keyvalue.server_loop", CodeBytes: 1_600, MemoryBytes: 512 << 10,
			Module: "core", TouchesSensitive: true},
		{Name: "keyvalue.report", CodeBytes: 800, MemoryBytes: 32 << 10, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "keyvalue", "keyvalue.main")
	rec.Enter("keyvalue.main", "keyvalue.value_heap")
	rec.Enter("keyvalue.value_heap", "keyvalue.index")

	store := make(map[uint32][]byte)
	rng := rand.New(rand.NewSource(0x4B56))
	keySpace := uint32(nOps / 2)
	var sets, gets, hits, heapBytes int64
	var h uint64 = 19
	for i := 0; i < nOps; i++ {
		k := rng.Uint32() % keySpace
		if i%3 != 2 { // 2/3 writes: set() is the hot, protected path
			val := make([]byte, 16+rng.Intn(48))
			binary.LittleEndian.PutUint32(val, k)
			binary.LittleEndian.PutUint64(val[4:], uint64(i))
			store[k] = val
			sets++
			heapBytes += int64(len(val))
		} else {
			if v, ok := store[k]; ok {
				hits++
				h = mix64(h, uint64(binary.LittleEndian.Uint32(v)))
			}
			gets++
		}
	}
	rec.Enter("keyvalue.main", "keyvalue.server_loop")
	rec.EnterN("keyvalue.server_loop", "keyvalue.set", sets)
	rec.Work("keyvalue.server_loop", (sets+gets)/4)
	rec.EnterN("keyvalue.set", "keyvalue.serialize", sets)
	rec.EnterN("keyvalue.set", "keyvalue.value_heap", sets/64+1) // buffered writes
	rec.EnterN("keyvalue.server_loop", "keyvalue.get", gets)
	rec.EnterN("keyvalue.get", "keyvalue.index", gets/64+1) // batched index reads
	rec.Work("keyvalue.set", sets*4)
	rec.Work("keyvalue.serialize", sets*2)
	rec.Work("keyvalue.value_heap", heapBytes/32)
	rec.Work("keyvalue.get", gets*2)
	rec.Work("keyvalue.index", gets)

	// Verify every stored value round-trips.
	for k, v := range store {
		if binary.LittleEndian.Uint32(v) != k {
			return nil, fmt.Errorf("keyvalue: corrupt value for key %d", k)
		}
	}
	rec.Enter("keyvalue.main", "keyvalue.report")
	rec.Work("keyvalue.report", 10)
	rec.Work("keyvalue.main", 100)

	if hits == 0 {
		return nil, fmt.Errorf("keyvalue: zero read hits out of %d reads", gets)
	}

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: mix64(h, uint64(len(store))),
		Output: fmt.Sprintf("keyvalue: %d sets, %d gets (%d hits), %d live keys",
			sets, gets, hits, len(store)),
	}, nil
}
