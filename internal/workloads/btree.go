package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// btreeSpec is the mitosis-style B-Tree workload: build a B-Tree and
// perform lookups (paper input: 3M elements). The key functions are
// find(), leaf(), and create() — the tree navigation core.
func btreeSpec() *Spec {
	return &Spec{
		Name:         "btree",
		Description:  "Create a B-Tree and perform lookup operations on it",
		PaperInput:   "Elements: 3M (scaled: 30K × scale)",
		License:      "lic-btree",
		KeyFunctions: []string{"find", "leaf", "create"},
		ChecksPerRun: 1000,
		Run:          runBTree,
	}
}

// btNode is one node of an order-16 B-Tree.
type btNode struct {
	keys     []uint64
	children []*btNode
	leaf     bool
}

const btOrder = 16 // max children

func runBTree(scale int) (*Profile, error) {
	scale = clampScale(scale)
	nElems := 30_000 * scale

	rec := trace.NewRecorder()
	nodes := append(amNodes("btree"), []callgraph.Node{
		{Name: "btree.main", CodeBytes: 800, MemoryBytes: 16 << 10, Module: "init"},
		// Bulk element storage: the sensitive data Glamdring taints
		// (paper: 280 MB under Glamdring).
		{Name: "btree.load_elements", CodeBytes: 10_000, MemoryBytes: 250 << 20,
			Module: "data", TouchesSensitive: true},
		{Name: "btree.buffer_pool", CodeBytes: 8_000, MemoryBytes: 24 << 20,
			Module: "data", TouchesSensitive: true},
		// Navigation core (SecureLease's pick; paper: 4 MB, 0 faults).
		{Name: "btree.create", CodeBytes: 3_000, MemoryBytes: 1 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "btree.find", CodeBytes: 2_200, MemoryBytes: 512 << 10,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "btree.leaf", CodeBytes: 1_800, MemoryBytes: 512 << 10,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "btree.split_child", CodeBytes: 2_700, MemoryBytes: 1 << 20, Module: "core", TouchesSensitive: true},
		{Name: "btree.lookup_phase", CodeBytes: 1_300, MemoryBytes: 256 << 10,
			Module: "core", TouchesSensitive: true},
		{Name: "btree.stats", CodeBytes: 900, MemoryBytes: 32 << 10, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "btree", "btree.main")
	rec.Enter("btree.main", "btree.load_elements")
	rec.Enter("btree.load_elements", "btree.buffer_pool")
	rec.Work("btree.load_elements", int64(nElems/8))
	rec.Work("btree.buffer_pool", int64(nElems/32))

	rng := rand.New(rand.NewSource(0xB7EE))
	elems := make([]uint64, nElems)
	for i := range elems {
		elems[i] = rng.Uint64() >> 1
	}

	// create(): build the tree by repeated insertion.
	rec.Enter("btree.main", "btree.create")
	root := &btNode{leaf: true}
	var splits, createWork int64
	insert := func(key uint64) {
		if len(root.keys) == btOrder-1 {
			old := root
			root = &btNode{children: []*btNode{old}}
			splitChild(root, 0)
			splits++
		}
		n := root
		for !n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
			if len(n.children[i].keys) == btOrder-1 {
				splitChild(n, i)
				splits++
				if key > n.keys[i] {
					i++
				}
			}
			n = n.children[i]
			createWork++
		}
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		createWork++
	}
	for _, k := range elems {
		insert(k)
	}
	rec.Work("btree.create", createWork)
	rec.EnterN("btree.create", "btree.split_child", splits)
	rec.Work("btree.split_child", splits*btOrder)

	// find(): look up every inserted element plus misses.
	var found, missed int
	var findHops, leafChecks int64
	lookup := func(key uint64) bool {
		n := root
		for {
			i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
			if i < len(n.keys) && n.keys[i] == key {
				return true
			}
			if n.leaf {
				leafChecks++
				return false
			}
			n = n.children[i]
			findHops++
		}
	}
	nLookups := nElems
	for i := 0; i < nLookups; i++ {
		var key uint64
		if i%4 == 3 {
			key = rng.Uint64() | 1<<63 // guaranteed miss (inserts cleared MSB)
		} else {
			key = elems[rng.Intn(len(elems))]
		}
		if lookup(key) {
			found++
		} else {
			missed++
		}
	}
	rec.Enter("btree.main", "btree.lookup_phase")
	rec.EnterN("btree.lookup_phase", "btree.find", int64(nLookups))
	rec.Work("btree.lookup_phase", int64(nLookups/4))
	rec.EnterN("btree.find", "btree.leaf", leafChecks)
	rec.Work("btree.find", findHops)
	rec.Work("btree.leaf", leafChecks)

	rec.Enter("btree.main", "btree.stats")
	rec.Work("btree.stats", 10)
	rec.Work("btree.main", 100)

	if missed == 0 || found == 0 {
		return nil, fmt.Errorf("btree: implausible lookup results (found=%d missed=%d)", found, missed)
	}

	h := mix64(mix64(7, uint64(found)), uint64(missed))
	h = mix64(h, uint64(treeDepth(root)))

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: h,
		Output: fmt.Sprintf("btree: %d elements, depth %d, %d hits / %d misses",
			nElems, treeDepth(root), found, missed),
	}, nil
}

// splitChild splits the full i-th child of n (standard B-Tree split).
func splitChild(n *btNode, i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	midKey := child.keys[mid]
	right := &btNode{
		leaf: child.leaf,
		keys: append([]uint64(nil), child.keys[mid+1:]...),
	}
	if !child.leaf {
		right.children = append([]*btNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]

	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func treeDepth(n *btNode) int {
	d := 1
	for !n.leaf {
		n = n.children[0]
		d++
	}
	return d
}
