package workloads

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// mapreduceSpec is the FaaS MapReduce workload: count word occurrences
// across a set of files with 5 mappers and 2 reducers (paper input: 19 MB
// of data). Key functions: tokenize() and word_count(). As a FaaS
// workload, each map/reduce invocation performs a license check — the
// paper's high-frequency checking scenario.
func mapreduceSpec() *Spec {
	return &Spec{
		Name:         "mapreduce",
		Description:  "Count the occurrences of words in a set of files (FaaS)",
		PaperInput:   "Data: 19 MB, Map: 5, Reduce: 2 (scaled: ~100K words × scale)",
		License:      "lic-mapreduce",
		KeyFunctions: []string{"tokenize", "word_count"},
		FaaS:         true,
		ChecksPerRun: 10_000, // FaaS: one check per function invocation
		Run:          runMapReduce,
	}
}

const (
	mrMappers  = 5
	mrReducers = 2
)

func runMapReduce(scale int) (*Profile, error) {
	scale = clampScale(scale)
	nWords := 100_000 * scale

	rec := trace.NewRecorder()
	nodes := append(amNodes("mapreduce"), []callgraph.Node{
		{Name: "mapreduce.main", CodeBytes: 1_000, MemoryBytes: 16 << 10, Module: "init"},
		{Name: "mapreduce.load_corpus", CodeBytes: 6_500, MemoryBytes: 40 << 20,
			Module: "data", TouchesSensitive: true},
		{Name: "mapreduce.tokenize", CodeBytes: 3_800, MemoryBytes: 16 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "mapreduce.word_count", CodeBytes: 3_200, MemoryBytes: 12 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "mapreduce.shuffle", CodeBytes: 2_900, MemoryBytes: 8 << 20,
			Module: "core", TouchesSensitive: true},
		{Name: "mapreduce.emit_results", CodeBytes: 1_200, MemoryBytes: 1 << 20, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "mapreduce", "mapreduce.main")

	// Build a synthetic corpus with a Zipf-ish word distribution.
	vocab := make([]string, 500)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%03d", i)
	}
	rng := rand.New(rand.NewSource(0x3A9))
	var corpus strings.Builder
	corpus.Grow(nWords * 6)
	for i := 0; i < nWords; i++ {
		idx := rng.Intn(len(vocab))
		if rng.Intn(3) > 0 {
			idx = rng.Intn(30) // head-heavy
		}
		corpus.WriteString(vocab[idx])
		if i%12 == 11 {
			corpus.WriteByte('\n')
		} else {
			corpus.WriteByte(' ')
		}
	}
	text := corpus.String()
	rec.Enter("mapreduce.main", "mapreduce.load_corpus")
	rec.Work("mapreduce.load_corpus", int64(len(text)/64))

	// Split into 5 shards and map in parallel (real goroutines, as a FaaS
	// platform would fan out function invocations).
	shardSize := (len(text) + mrMappers - 1) / mrMappers
	partials := make([]map[string]int, mrMappers)
	var wg sync.WaitGroup
	for m := 0; m < mrMappers; m++ {
		lo := m * shardSize
		hi := lo + shardSize
		if lo > len(text) {
			lo = len(text)
		}
		if hi > len(text) {
			hi = len(text)
		}
		// Align shard boundaries to whitespace so no word is split.
		for lo > 0 && lo < len(text) && text[lo-1] != ' ' && text[lo-1] != '\n' {
			lo++
		}
		for hi < len(text) && text[hi-1] != ' ' && text[hi-1] != '\n' {
			hi++
		}
		wg.Add(1)
		go func(m, lo, hi int) {
			defer wg.Done()
			rec.Enter("mapreduce.main", "mapreduce.tokenize")
			counts := make(map[string]int)
			fields := strings.Fields(text[lo:hi])
			for _, w := range fields {
				counts[w]++
			}
			rec.Work("mapreduce.tokenize", int64(len(fields)))
			partials[m] = counts
		}(m, lo, hi)
	}
	wg.Wait()

	// Shuffle: route words to reducers by hash.
	rec.Enter("mapreduce.main", "mapreduce.shuffle")
	buckets := make([]map[string]int, mrReducers)
	for r := range buckets {
		buckets[r] = make(map[string]int)
	}
	var shuffled int64
	for _, p := range partials {
		for w, c := range p {
			r := int(mix64(0, uint64(len(w))+uint64(w[0])<<8+uint64(w[len(w)-1])<<16) % mrReducers)
			buckets[r][w] += c
			shuffled++
		}
	}
	rec.Work("mapreduce.shuffle", shuffled)

	// Reduce in parallel.
	finals := make([]map[string]int, mrReducers)
	for r := 0; r < mrReducers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rec.Enter("mapreduce.main", "mapreduce.word_count")
			out := make(map[string]int, len(buckets[r]))
			var units int64
			for w, c := range buckets[r] {
				out[w] = c
				units += int64(c)
			}
			rec.Work("mapreduce.word_count", units/16+int64(len(out)))
			finals[r] = out
		}(r)
	}
	wg.Wait()

	merged := make(map[string]int)
	var total int
	for _, f := range finals {
		for w, c := range f {
			merged[w] += c
			total += c
		}
	}
	if total != nWords {
		return nil, fmt.Errorf("mapreduce: counted %d words, want %d", total, nWords)
	}
	rec.Enter("mapreduce.main", "mapreduce.emit_results")
	rec.Work("mapreduce.emit_results", int64(len(merged)))
	rec.Work("mapreduce.main", 100)

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: checksumStrings(merged),
		Output: fmt.Sprintf("mapreduce: %d words, %d distinct, %d mappers, %d reducers",
			total, len(merged), mrMappers, mrReducers),
	}, nil
}
