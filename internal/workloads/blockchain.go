package workloads

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// blockchainSpec is the libcatena-style blockchain workload: a distributed
// ledger storing data, the content hash, and the previous block's hash in
// each block (paper input: chain length 1000). Key functions: insert() and
// hash(). The whole workload fits in the EPC (both columns show 4 MB in
// Table 5), which is why its SecureLease-vs-Glamdring gap is the smallest
// (3.30%).
func blockchainSpec() *Spec {
	return &Spec{
		Name:         "blockchain",
		Description:  "A distributed ledger storing data, content hash, and previous block hash",
		PaperInput:   "Chain length: 1000 (scaled: 1000 × scale)",
		License:      "lic-blockchain",
		KeyFunctions: []string{"insert", "hash"},
		ChecksPerRun: 1000,
		Run:          runBlockchain,
	}
}

type block struct {
	index    int
	data     [64]byte
	prevHash [32]byte
	hash     [32]byte
}

func runBlockchain(scale int) (*Profile, error) {
	scale = clampScale(scale)
	chainLen := 1000 * scale

	rec := trace.NewRecorder()
	nodes := append(amNodes("blockchain"), []callgraph.Node{
		{Name: "blockchain.main", CodeBytes: 800, MemoryBytes: 16 << 10, Module: "init"},
		// Small workload: even the ledger store fits easily in the EPC,
		// and it is part of the chain core (the paper's blockchain migrates
		// essentially whole, 4 MB under both schemes).
		{Name: "blockchain.ledger_store", CodeBytes: 4_500, MemoryBytes: 2 << 20,
			Module: "core", TouchesSensitive: true},
		{Name: "blockchain.insert", CodeBytes: 2_800, MemoryBytes: 512 << 10,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "blockchain.hash", CodeBytes: 2_100, MemoryBytes: 256 << 10,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "blockchain.validate_chain", CodeBytes: 1_900, MemoryBytes: 256 << 10,
			Module: "core", TouchesSensitive: true},
		{Name: "blockchain.append_phase", CodeBytes: 1_100, MemoryBytes: 128 << 10,
			Module: "core", TouchesSensitive: true},
		{Name: "blockchain.genesis", CodeBytes: 600, MemoryBytes: 64 << 10, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "blockchain", "blockchain.main")

	hashBlock := func(b *block) [32]byte {
		var buf [8 + 64 + 32]byte
		binary.LittleEndian.PutUint64(buf[:8], uint64(b.index))
		copy(buf[8:], b.data[:])
		copy(buf[8+64:], b.prevHash[:])
		return sha256.Sum256(buf[:])
	}

	rec.Enter("blockchain.main", "blockchain.genesis")
	rec.Work("blockchain.genesis", 10)
	chain := make([]block, 0, chainLen)
	genesis := block{index: 0}
	copy(genesis.data[:], "genesis")
	genesis.hash = hashBlock(&genesis)
	chain = append(chain, genesis)

	// insert(): append blocks, each hashing its content + predecessor.
	for i := 1; i < chainLen; i++ {
		b := block{index: i, prevHash: chain[i-1].hash}
		binary.LittleEndian.PutUint64(b.data[:], uint64(i)*0xABCD)
		copy(b.data[8:], fmt.Sprintf("txn-%d", i))
		b.hash = hashBlock(&b)
		chain = append(chain, b)
	}
	rec.Enter("blockchain.main", "blockchain.append_phase")
	rec.EnterN("blockchain.append_phase", "blockchain.insert", int64(chainLen-1))
	rec.Work("blockchain.append_phase", int64(chainLen))
	rec.EnterN("blockchain.insert", "blockchain.hash", int64(chainLen-1))
	rec.EnterN("blockchain.insert", "blockchain.ledger_store", int64(chainLen-1))
	rec.Work("blockchain.insert", int64(chainLen)*4)
	rec.Work("blockchain.hash", int64(chainLen)*20)
	rec.Work("blockchain.ledger_store", int64(chainLen)*2)

	// validate_chain(): full integrity walk.
	for i := 1; i < len(chain); i++ {
		if chain[i].prevHash != chain[i-1].hash {
			return nil, fmt.Errorf("blockchain: broken link at block %d", i)
		}
		if hashBlock(&chain[i]) != chain[i].hash {
			return nil, fmt.Errorf("blockchain: corrupt block %d", i)
		}
	}
	rec.Enter("blockchain.main", "blockchain.validate_chain")
	rec.EnterN("blockchain.validate_chain", "blockchain.hash", int64(chainLen-1))
	rec.Work("blockchain.validate_chain", int64(chainLen)*3)
	rec.Work("blockchain.hash", int64(chainLen)*20)
	rec.Work("blockchain.main", 100)

	tip := chain[len(chain)-1].hash
	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: binary.LittleEndian.Uint64(tip[:8]),
		Output:   fmt.Sprintf("blockchain: %d blocks, chain valid, tip %x", chainLen, tip[:6]),
	}, nil
}
