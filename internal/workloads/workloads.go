// Package workloads re-implements, in Go, the eleven applications the
// paper evaluates SecureLease on (Table 4): BFS, B-Tree, HashJoin, an
// OpenSSL-style encryption pipeline, PageRank, a blockchain, SVM, and four
// FaaS workloads (MapReduce word count, a key-value store, a JSON parser,
// and matrix multiplication).
//
// Every workload is a real, runnable implementation of its algorithm,
// instrumented with a trace.Recorder: it declares its functions (with the
// static code size and runtime memory footprint attributes partitioning
// consumes), records dynamic call edges, and charges dynamic work units as
// it computes. One run yields both the call graph and the dynamic profile
// — exactly the two artifacts the paper's partitioning pipeline needs —
// plus a checksum over the computed output so tests can verify the
// algorithms themselves.
//
// Inputs are scaled down from the paper's sizes (which reach GBs) by a
// configurable factor, preserving each workload's structural shape: the
// module clustering, which modules touch sensitive data (and therefore
// how big a bite the Glamdring baseline takes), and where the
// developer-annotated key functions live.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// Profile is the result of one instrumented workload run.
type Profile struct {
	// Graph is the application call graph with partitioning attributes.
	Graph *callgraph.Graph
	// Trace is the dynamic execution profile of the run.
	Trace *trace.Trace
	// Checksum witnesses the computed output for correctness tests.
	Checksum uint64
	// Output is a one-line human summary of what was computed.
	Output string
}

// Spec describes one workload.
type Spec struct {
	// Name is the workload's registry key (lowercase).
	Name string
	// Description matches Table 4's description column.
	Description string
	// PaperInput is the input scale the paper used.
	PaperInput string
	// License is the license ID the workload's add-on checks against.
	License string
	// KeyFunctions are the developer-annotated key functions migrated by
	// SecureLease (Table 5's "Functions Migrated" column).
	KeyFunctions []string
	// FaaS marks the four FaaS workloads (they issue many license checks).
	FaaS bool
	// ChecksPerRun approximates the number of license checks one run
	// performs at scale 1 (the FaaS workloads run to 10K-500K in the
	// paper).
	ChecksPerRun int
	// Run executes the workload at the given scale (1 = unit-test size;
	// larger values grow the input roughly linearly).
	Run func(scale int) (*Profile, error)
}

// All returns every workload spec in the paper's Table 4/5 order.
func All() []*Spec {
	return []*Spec{
		bfsSpec(),
		btreeSpec(),
		hashjoinSpec(),
		opensslSpec(),
		pagerankSpec(),
		blockchainSpec(),
		svmSpec(),
		mapreduceSpec(),
		keyvalueSpec(),
		jsonparserSpec(),
		matmultSpec(),
	}
}

// Get returns the named workload spec.
func Get(name string) (*Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns all registry keys in order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// clampScale normalizes a scale parameter.
func clampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	if scale > 1000 {
		return 1000
	}
	return scale
}

// declareAll registers a batch of functions with the recorder.
func declareAll(rec *trace.Recorder, nodes []callgraph.Node) error {
	for _, n := range nodes {
		if err := rec.Declare(n); err != nil {
			return err
		}
	}
	return nil
}

// amNodes returns the standard two-function authentication module every
// workload carries (Table 4's applications each have an AM; its shape is
// the MySQL-style check of Figure 2).
func amNodes(prefix string) []callgraph.Node {
	return []callgraph.Node{
		{Name: prefix + ".am.authenticate", CodeBytes: 1800, MemoryBytes: 48 << 10,
			Module: "am", AuthModule: true, TouchesSensitive: true},
		{Name: prefix + ".am.verify_license", CodeBytes: 1200, MemoryBytes: 32 << 10,
			Module: "am", AuthModule: true, TouchesSensitive: true},
	}
}

// recordAMCheck records the standard license-check call pattern at startup.
func recordAMCheck(rec *trace.Recorder, prefix, caller string) {
	rec.Enter(caller, prefix+".am.authenticate")
	rec.EnterN(prefix+".am.authenticate", prefix+".am.verify_license", 3)
	rec.Work(prefix+".am.authenticate", 200)
	rec.Work(prefix+".am.verify_license", 400)
}

// mix64 folds a value into a running checksum (splitmix64 finalizer).
func mix64(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	z := h
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// checksumStrings folds a deterministic hash over sorted strings.
func checksumStrings(items map[string]int) uint64 {
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		for _, b := range []byte(k) {
			h = mix64(h, uint64(b))
		}
		h = mix64(h, uint64(items[k]))
	}
	return h
}
