package workloads

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/sgx"
)

func TestRegistry(t *testing.T) {
	specs := All()
	if len(specs) != 11 {
		t.Fatalf("registry has %d workloads, want 11 (Table 4)", len(specs))
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if s.Name == "" || s.Run == nil || s.License == "" {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.KeyFunctions) == 0 {
			t.Fatalf("%s has no key functions", s.Name)
		}
	}
	if _, err := Get("bfs"); err != nil {
		t.Fatalf("Get(bfs): %v", err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if len(Names()) != 11 {
		t.Fatal("Names() incomplete")
	}
	// Exactly four FaaS workloads (Table 4).
	faas := 0
	for _, s := range specs {
		if s.FaaS {
			faas++
		}
	}
	if faas != 4 {
		t.Fatalf("FaaS workloads = %d, want 4", faas)
	}
}

func TestAllWorkloadsRunAndAreWellFormed(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			p, err := s.Run(1)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if p.Graph.Len() < 6 {
				t.Fatalf("graph has only %d functions", p.Graph.Len())
			}
			if p.Checksum == 0 {
				t.Fatal("zero checksum")
			}
			if p.Output == "" {
				t.Fatal("empty output summary")
			}
			// Must carry an AM and the declared key functions.
			if len(p.Graph.AuthFunctions()) < 2 {
				t.Fatalf("auth functions: %v", p.Graph.AuthFunctions())
			}
			keyFns := p.Graph.KeyFunctions()
			if len(keyFns) != len(s.KeyFunctions) {
				t.Fatalf("key functions %v, want %d of them", keyFns, len(s.KeyFunctions))
			}
			for _, kf := range s.KeyFunctions {
				found := false
				for _, got := range keyFns {
					if strings.HasSuffix(got, "."+kf) {
						found = true
					}
				}
				if !found {
					t.Fatalf("declared key function %q not in graph (%v)", kf, keyFns)
				}
			}
			// Dynamic trace must be non-trivial.
			if p.Trace.TotalWork() <= 0 {
				t.Fatal("no dynamic work recorded")
			}
			if len(p.Trace.Calls) < 5 {
				t.Fatalf("only %d dynamic call edges", len(p.Trace.Calls))
			}
			// Every graph function should be connected (no orphans).
			for _, name := range p.Graph.Names() {
				if len(p.Graph.Neighbors(name)) == 0 {
					t.Fatalf("orphan function %q", name)
				}
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			a, err := s.Run(1)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := s.Run(1)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.Checksum != b.Checksum {
				t.Fatalf("nondeterministic checksum: %x vs %x", a.Checksum, b.Checksum)
			}
			if a.Output != b.Output {
				t.Fatalf("nondeterministic output: %q vs %q", a.Output, b.Output)
			}
		})
	}
}

func TestWorkloadsScaleChangesWork(t *testing.T) {
	// Scale 2 must strictly increase dynamic work for linear workloads.
	for _, name := range []string{"bfs", "keyvalue", "jsonparser", "blockchain"} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := s.Run(1)
		if err != nil {
			t.Fatalf("%s scale 1: %v", name, err)
		}
		p2, err := s.Run(2)
		if err != nil {
			t.Fatalf("%s scale 2: %v", name, err)
		}
		if p2.Trace.TotalWork() <= p1.Trace.TotalWork() {
			t.Fatalf("%s: scale 2 work %d not greater than scale 1 work %d",
				name, p2.Trace.TotalWork(), p1.Trace.TotalWork())
		}
	}
}

func TestTable5ShapeHolds(t *testing.T) {
	// For every workload: SecureLease migrates no more static code than
	// Glamdring, stays within the EPC (zero faults), and keeps at least
	// one key function inside.
	est := partition.NewEstimator(sgx.DefaultCostModel())
	glamdringFaultSomewhere := false
	for _, s := range All() {
		p, err := s.Run(1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		sl, err := partition.SecureLease(p.Graph, p.Trace, partition.Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s SecureLease: %v", s.Name, err)
		}
		gl, err := partition.Glamdring(p.Graph, 1)
		if err != nil {
			t.Fatalf("%s Glamdring: %v", s.Name, err)
		}
		slCost := est.Evaluate(p.Graph, p.Trace, sl.Migrated)
		glCost := est.Evaluate(p.Graph, p.Trace, gl.Migrated)
		if slCost.EPCFaults != 0 {
			t.Errorf("%s: SecureLease has %d EPC faults, want 0", s.Name, slCost.EPCFaults)
		}
		// SecureLease migrates less code than Glamdring on every workload
		// in Table 5, with MapReduce at near-parity (98.86%); allow 10%
		// slack for the near-parity cases.
		if float64(slCost.StaticBytes) > 1.10*float64(glCost.StaticBytes) {
			t.Errorf("%s: SecureLease static %d > 1.1 × Glamdring %d",
				s.Name, slCost.StaticBytes, glCost.StaticBytes)
		}
		if glCost.EPCFaults > 0 {
			glamdringFaultSomewhere = true
		}
		if slCost.DynamicCoverage <= 0 {
			t.Errorf("%s: zero dynamic coverage", s.Name)
		}
	}
	if !glamdringFaultSomewhere {
		t.Error("Glamdring never faults on any workload — memory shapes are off")
	}
}

func TestJSONParserRejectsMalformed(t *testing.T) {
	bad := []string{
		``, `{`, `[1,`, `{"a":}`, `"unterminated`, `tru`, `{"a" 1}`,
		`[1 2]`, `{"a":1,}x`, `nul`, `"bad \q escape"`, `"short \u12"`,
	}
	for _, s := range bad {
		if v, consumed, err := parseJSON(s); err == nil && consumed == len(s) {
			t.Errorf("malformed %q parsed to %v", s, v)
		}
	}
}

func TestJSONParserValues(t *testing.T) {
	doc := ` {"a": [1, -2.5e2, "x\n", true, null], "b": {"c": "A"}} `
	v, n, err := parseJSON(doc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if n != len(doc) {
		t.Fatalf("consumed %d of %d", n, len(doc))
	}
	obj := v.(map[string]any)
	arr := obj["a"].([]any)
	if arr[0].(float64) != 1 || arr[1].(float64) != -250 {
		t.Fatalf("numbers = %v", arr)
	}
	if arr[2].(string) != "x\n" || arr[3].(bool) != true || arr[4] != nil {
		t.Fatalf("values = %v", arr)
	}
	if obj["b"].(map[string]any)["c"].(string) != "A" {
		t.Fatal("\\u escape wrong")
	}
	// obj + array + 5 elements + nested obj + its value = 9.
	if got := countValues(v); got != 9 {
		t.Fatalf("countValues = %d, want 9", got)
	}
}

func TestBTreeHelpers(t *testing.T) {
	root := &btNode{leaf: true}
	if treeDepth(root) != 1 {
		t.Fatal("leaf depth != 1")
	}
}

func BenchmarkWorkloadRuns(b *testing.B) {
	for _, s := range All() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
