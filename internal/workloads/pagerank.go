package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// pagerankSpec is the Ligra-style PageRank workload (paper input: 10K
// nodes, 50M edges — an extremely dense graph, hence the 1.36 GB Glamdring
// footprint). Key functions: map(), reduce(), set_rank().
func pagerankSpec() *Spec {
	return &Spec{
		Name:         "pagerank",
		Description:  "Assign ranks to pages based on popularity (search engines)",
		PaperInput:   "Nodes: 10K, Edges: 50M (scaled: 2K nodes, ~200K edges × scale)",
		License:      "lic-pagerank",
		KeyFunctions: []string{"map", "reduce", "set_rank"},
		ChecksPerRun: 1000,
		Run:          runPageRank,
	}
}

func runPageRank(scale int) (*Profile, error) {
	scale = clampScale(scale)
	nNodes := 2000
	nEdges := 200_000 * scale

	rec := trace.NewRecorder()
	nodes := append(amNodes("pagerank"), []callgraph.Node{
		{Name: "pagerank.main", CodeBytes: 950, MemoryBytes: 16 << 10, Module: "init"},
		// The dense edge list dominates memory (paper: 1.36 GB Glamdring).
		{Name: "pagerank.load_edges", CodeBytes: 11_000, MemoryBytes: 1200 << 20,
			Module: "data", TouchesSensitive: true},
		{Name: "pagerank.degree_index", CodeBytes: 5_500, MemoryBytes: 100 << 20,
			Module: "data", TouchesSensitive: true},
		// The rank iteration core (SecureLease: 4 MB).
		{Name: "pagerank.map", CodeBytes: 2_900, MemoryBytes: 1 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "pagerank.reduce", CodeBytes: 2_400, MemoryBytes: 1 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "pagerank.set_rank", CodeBytes: 1_700, MemoryBytes: 512 << 10,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "pagerank.converged", CodeBytes: 1_000, MemoryBytes: 64 << 10, Module: "core", TouchesSensitive: true},
		{Name: "pagerank.top_k", CodeBytes: 1_300, MemoryBytes: 128 << 10, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "pagerank", "pagerank.main")

	rng := rand.New(rand.NewSource(0x9A6E))
	src := make([]int32, nEdges)
	dst := make([]int32, nEdges)
	outDeg := make([]int32, nNodes)
	for i := 0; i < nEdges; i++ {
		s := rng.Intn(nNodes)
		src[i], dst[i] = int32(s), int32(rng.Intn(nNodes))
		outDeg[s]++
	}
	rec.Enter("pagerank.main", "pagerank.load_edges")
	rec.Enter("pagerank.load_edges", "pagerank.degree_index")
	rec.Work("pagerank.load_edges", int64(nEdges/8))
	rec.Work("pagerank.degree_index", int64(nNodes))

	const damping = 0.85
	rank := make([]float64, nNodes)
	next := make([]float64, nNodes)
	for i := range rank {
		rank[i] = 1.0 / float64(nNodes)
	}

	iters := 0
	for ; iters < 50; iters++ {
		base := (1 - damping) / float64(nNodes)
		for i := range next {
			next[i] = base
		}
		// map(): scatter contributions along edges.
		for e := 0; e < nEdges; e++ {
			s := src[e]
			if outDeg[s] > 0 {
				next[dst[e]] += damping * rank[s] / float64(outDeg[s])
			}
		}
		// Dangling mass redistribution (reduce()).
		var dangling float64
		for i, d := range outDeg {
			if d == 0 {
				dangling += rank[i]
			}
		}
		share := damping * dangling / float64(nNodes)
		var delta float64
		for i := range next {
			next[i] += share
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank

		rec.Enter("pagerank.main", "pagerank.map")
		rec.EnterN("pagerank.map", "pagerank.reduce", int64(nNodes))
		rec.EnterN("pagerank.reduce", "pagerank.set_rank", int64(nNodes))
		rec.Enter("pagerank.main", "pagerank.converged")
		rec.Work("pagerank.map", int64(nEdges))
		rec.Work("pagerank.reduce", int64(nNodes))
		rec.Work("pagerank.set_rank", int64(nNodes))
		rec.Work("pagerank.converged", int64(nNodes))
		if delta < 1e-8 {
			iters++
			break
		}
	}

	// Ranks must sum to ~1 (a stochastic distribution).
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("pagerank: rank mass = %v, want 1", sum)
	}

	// Checksum over the top-ranked node and quantized ranks.
	best := 0
	var h uint64 = 13
	for i, r := range rank {
		if r > rank[best] {
			best = i
		}
		h = mix64(h, uint64(r*1e12))
	}
	rec.Enter("pagerank.main", "pagerank.top_k")
	rec.Work("pagerank.top_k", int64(nNodes))
	rec.Work("pagerank.main", 100)

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: h,
		Output: fmt.Sprintf("pagerank: %d iterations over %d edges; top node %d (%.5f)",
			iters, nEdges, best, rank[best]),
	}, nil
}
