package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/callgraph"
	"repro/internal/trace"
)

// matmultSpec is the Clemmys-style FaaS matrix-multiplication workload
// (paper input: 2000×2000 matrices). The key function is multiply(). The
// matrices are large enough that Glamdring's taint pulls 320 MB into the
// enclave while SecureLease keeps the multiply kernel's 81 MB tiled
// working set.
func matmultSpec() *Spec {
	return &Spec{
		Name:         "matmult",
		Description:  "Matrix multiplication (FaaS)",
		PaperInput:   "Dimension: 2000×2000 (scaled: 160×160 × scale^(1/1))",
		License:      "lic-matmult",
		KeyFunctions: []string{"multiply"},
		FaaS:         true,
		ChecksPerRun: 2000,
		Run:          runMatMult,
	}
}

func runMatMult(scale int) (*Profile, error) {
	scale = clampScale(scale)
	dim := 160
	if scale > 1 {
		// Grow sub-linearly: work is O(n³).
		dim = 160 + 40*(scale-1)
		if dim > 640 {
			dim = 640
		}
	}

	rec := trace.NewRecorder()
	nodes := append(amNodes("matmult"), []callgraph.Node{
		{Name: "matmult.main", CodeBytes: 850, MemoryBytes: 16 << 10, Module: "init"},
		{Name: "matmult.load_matrices", CodeBytes: 5_200, MemoryBytes: 230 << 20,
			Module: "data", TouchesSensitive: true},
		{Name: "matmult.transpose", CodeBytes: 2_100, MemoryBytes: 60 << 20,
			Module: "data", TouchesSensitive: true},
		// The tiled kernel: the key function. 81 MB working set in the
		// paper — under the EPC, so SecureLease runs fault-free.
		{Name: "matmult.multiply", CodeBytes: 4_600, MemoryBytes: 78 << 20,
			Module: "core", KeyFunction: true, TouchesSensitive: true},
		{Name: "matmult.tile_kernel", CodeBytes: 2_800, MemoryBytes: 2 << 20, Module: "core", TouchesSensitive: true},
		{Name: "matmult.checksum", CodeBytes: 900, MemoryBytes: 64 << 10, Module: "util"},
	}...)
	if err := declareAll(rec, nodes); err != nil {
		return nil, err
	}

	recordAMCheck(rec, "matmult", "matmult.main")

	rng := rand.New(rand.NewSource(0x3A7))
	a := make([]float64, dim*dim)
	b := make([]float64, dim*dim)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
		b[i] = rng.Float64()*2 - 1
	}
	rec.Enter("matmult.main", "matmult.load_matrices")
	rec.Work("matmult.load_matrices", int64(2*dim*dim/16))

	// Transpose B for cache-friendly access.
	bt := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			bt[j*dim+i] = b[i*dim+j]
		}
	}
	rec.Enter("matmult.load_matrices", "matmult.transpose")
	rec.Work("matmult.transpose", int64(dim*dim/16))

	// multiply(): tiled multiplication.
	const tile = 32
	c := make([]float64, dim*dim)
	var tiles int64
	for ii := 0; ii < dim; ii += tile {
		for jj := 0; jj < dim; jj += tile {
			tiles++
			iMax := min(ii+tile, dim)
			jMax := min(jj+tile, dim)
			for i := ii; i < iMax; i++ {
				for j := jj; j < jMax; j++ {
					var sum float64
					arow := a[i*dim : i*dim+dim]
					bcol := bt[j*dim : j*dim+dim]
					for k := 0; k < dim; k++ {
						sum += arow[k] * bcol[k]
					}
					c[i*dim+j] = sum
				}
			}
		}
	}
	rec.Enter("matmult.main", "matmult.multiply")
	rec.EnterN("matmult.multiply", "matmult.tile_kernel", tiles)
	rec.Work("matmult.multiply", int64(dim)*int64(dim)*int64(dim)/64)
	rec.Work("matmult.tile_kernel", tiles*tile*tile/8)

	// Verify a few entries against a direct computation.
	probeRng := rand.New(rand.NewSource(0xC4EC))
	for probe := 0; probe < 8; probe++ {
		i, j := probeRng.Intn(dim), probeRng.Intn(dim)
		var want float64
		for k := 0; k < dim; k++ {
			want += a[i*dim+k] * b[k*dim+j]
		}
		if math.Abs(want-c[i*dim+j]) > 1e-9*float64(dim) {
			return nil, fmt.Errorf("matmult: c[%d,%d] = %v, want %v", i, j, c[i*dim+j], want)
		}
	}

	var h uint64 = 29
	for i := 0; i < dim*dim; i += dim/4 + 1 {
		h = mix64(h, uint64(int64(c[i]*1e9)))
	}
	rec.Enter("matmult.main", "matmult.checksum")
	rec.Work("matmult.checksum", int64(dim))
	rec.Work("matmult.main", 100)

	g, err := rec.Graph()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Graph:    g,
		Trace:    rec.Trace(),
		Checksum: h,
		Output:   fmt.Sprintf("matmult: %d×%d multiply verified on 8 probes", dim, dim),
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
