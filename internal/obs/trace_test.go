package obs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Start("rpc.renew")
	root.Annotate("remote", "127.0.0.1:1")
	child := root.Child("policy")
	child.End(nil)
	root.End(errors.New("boom"))

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// Child ended first, so it is the older event.
	if events[0].Name != "policy" || events[1].Name != "rpc.renew" {
		t.Fatalf("order = %q, %q", events[0].Name, events[1].Name)
	}
	if events[0].Parent != events[1].Span {
		t.Fatalf("child parent = %d, want root span %d", events[0].Parent, events[1].Span)
	}
	if events[1].Err != "boom" {
		t.Fatalf("root err = %q", events[1].Err)
	}
	if events[1].Attrs["remote"] != "127.0.0.1:1" {
		t.Fatalf("attrs = %v", events[1].Attrs)
	}
	if events[0].Span == events[1].Span || events[0].Span == 0 {
		t.Fatalf("span IDs not distinct/nonzero: %d %d", events[0].Span, events[1].Span)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Start(fmt.Sprintf("op-%d", i)).End(nil)
	}
	events := tr.Events()
	if len(events) != 16 {
		t.Fatalf("len = %d, want ring capacity 16", len(events))
	}
	if tr.Len() != 16 {
		t.Fatalf("Len = %d, want 16", tr.Len())
	}
	// Oldest-first: the surviving events are ops 24..39.
	if events[0].Name != "op-24" || events[15].Name != "op-39" {
		t.Fatalf("window = %q..%q, want op-24..op-39", events[0].Name, events[15].Name)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.Annotate("k", "v")
	sp.Child("y").End(nil)
	sp.End(nil)
	if tr.Events() != nil || tr.Len() != 0 || sp.ID() != 0 {
		t.Fatal("nil tracer produced state")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Start("op").End(nil)
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Fatalf("Len = %d, want full ring 128", tr.Len())
	}
	seen := make(map[uint64]bool)
	for _, ev := range tr.Events() {
		if seen[ev.Span] {
			t.Fatalf("duplicate span id %d", ev.Span)
		}
		seen[ev.Span] = true
	}
}
