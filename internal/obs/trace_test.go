package obs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Start("rpc.renew")
	root.Annotate("remote", "127.0.0.1:1")
	child := root.Child("policy")
	child.End(nil)
	root.End(errors.New("boom"))

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// Child ended first, so it is the older event.
	if events[0].Name != "policy" || events[1].Name != "rpc.renew" {
		t.Fatalf("order = %q, %q", events[0].Name, events[1].Name)
	}
	if events[0].Parent != events[1].Span {
		t.Fatalf("child parent = %d, want root span %d", events[0].Parent, events[1].Span)
	}
	if events[1].Err != "boom" {
		t.Fatalf("root err = %q", events[1].Err)
	}
	if events[1].Attrs["remote"] != "127.0.0.1:1" {
		t.Fatalf("attrs = %v", events[1].Attrs)
	}
	if events[0].Span == events[1].Span || events[0].Span == 0 {
		t.Fatalf("span IDs not distinct/nonzero: %d %d", events[0].Span, events[1].Span)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Start(fmt.Sprintf("op-%d", i)).End(nil)
	}
	events := tr.Events()
	if len(events) != 16 {
		t.Fatalf("len = %d, want ring capacity 16", len(events))
	}
	if tr.Len() != 16 {
		t.Fatalf("Len = %d, want 16", tr.Len())
	}
	// Oldest-first: the surviving events are ops 24..39.
	if events[0].Name != "op-24" || events[15].Name != "op-39" {
		t.Fatalf("window = %q..%q, want op-24..op-39", events[0].Name, events[15].Name)
	}
}

// TestTracerOverflowVisible pins the overflow contract: a wrapped ring is
// never silent — the dump carries the truncated marker and drop count, and
// the obs_trace_dropped_spans_total counter exposes the same number.
func TestTracerOverflowVisible(t *testing.T) {
	tr := NewTracer(16)
	reg := NewRegistry()
	tr.ExposeMetrics(reg)

	for i := 0; i < 20; i++ {
		tr.Start(fmt.Sprintf("op-%d", i)).End(nil)
	}
	if got := tr.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	if !tr.Truncated() {
		t.Fatal("wrapped tracer not marked truncated")
	}
	dump := tr.Dump("")
	if !dump.Truncated || dump.Dropped != 4 {
		t.Fatalf("dump = truncated %v dropped %d, want true/4", dump.Truncated, dump.Dropped)
	}
	if got := reg.Snapshot().Get("obs_trace_dropped_spans_total", nil); got != 4 {
		t.Fatalf("obs_trace_dropped_spans_total = %v, want 4", got)
	}

	// A filtered dump keeps the marker: the dropped spans might have
	// belonged to the requested trace.
	if filtered := tr.Dump("00000000000000000000000000000abc"); !filtered.Truncated {
		t.Fatal("filtered dump lost the truncation marker")
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.Annotate("k", "v")
	sp.Child("y").End(nil)
	sp.End(nil)
	if tr.Events() != nil || tr.Len() != 0 || sp.ID() != 0 {
		t.Fatal("nil tracer produced state")
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip: %v != %v", back, id)
	}
	for _, bad := range []string{"", "abc", s + "00", "zz" + s[2:]} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

// TestStartLinkedJoinsRemoteTrace is the cross-process linkage contract:
// a span started from a SpanContext that arrived over the wire shares the
// originating trace ID and records the remote span as its parent, while
// its own ID still comes from the local tracer's sequence.
func TestStartLinkedJoinsRemoteTrace(t *testing.T) {
	client := NewTracer(16)
	server := NewTracer(16)

	root := client.Start("rpc.renew")
	sc := root.Context()
	if sc.Trace.IsZero() || sc.Span == 0 {
		t.Fatalf("root context = %+v, want non-zero trace and span", sc)
	}

	handler := server.StartLinked("rpc.renew", sc)
	inner := handler.Child("slremote.renew")
	inner.End(nil)
	handler.End(nil)
	root.End(nil)

	sEv := server.Events()
	cEv := client.Events()
	if len(sEv) != 2 || len(cEv) != 1 {
		t.Fatalf("events: server %d, client %d", len(sEv), len(cEv))
	}
	want := sc.Trace.String()
	if cEv[0].Trace != want || sEv[0].Trace != want || sEv[1].Trace != want {
		t.Fatalf("trace IDs diverged: client %q, server %q/%q, want %q",
			cEv[0].Trace, sEv[0].Trace, sEv[1].Trace, want)
	}
	// sEv[0] is the child (ended first), sEv[1] the handler.
	if sEv[1].Parent != sc.Span {
		t.Fatalf("handler parent = %d, want the client span %d", sEv[1].Parent, sc.Span)
	}
	if sEv[0].Parent != sEv[1].Span {
		t.Fatalf("child parent = %d, want the handler span %d", sEv[0].Parent, sEv[1].Span)
	}

	// A zero context degrades to a fresh root trace.
	fresh := server.StartLinked("rpc.renew", SpanContext{})
	if got := fresh.Context(); got.Trace.IsZero() || got.Trace == sc.Trace {
		t.Fatalf("zero-context StartLinked trace = %v", got.Trace)
	}
	fresh.End(nil)

	// Nil tracer and nil span stay inert.
	var nt *Tracer
	if nt.StartLinked("x", sc) != nil {
		t.Fatal("nil tracer StartLinked returned a span")
	}
	var ns *Span
	if got := ns.Context(); got != (SpanContext{}) {
		t.Fatalf("nil span context = %+v", got)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Start("op").End(nil)
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Fatalf("Len = %d, want full ring 128", tr.Len())
	}
	seen := make(map[uint64]bool)
	for _, ev := range tr.Events() {
		if seen[ev.Span] {
			t.Fatalf("duplicate span id %d", ev.Span)
		}
		seen[ev.Span] = true
	}
}
