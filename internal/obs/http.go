package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler serving the observability endpoints:
//
//	/metrics          Prometheus text exposition (?format=json for JSON)
//	/healthz          200 "ok" liveness probe
//	/trace            JSON dump of the tracer's ring buffer (newest last)
//
// tr may be nil, in which case /trace serves an empty list.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.Snapshot().WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		events := tr.Events()
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	return mux
}

// HTTPServer is a running observability endpoint (see StartHTTP).
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartHTTP listens on addr and serves Handler(reg, tr) in a background
// goroutine. Use Addr for the bound address (useful with ":0") and Close
// to shut down.
func StartHTTP(addr string, reg *Registry, tr *Tracer) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, tr), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &HTTPServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *HTTPServer) Close() error { return s.srv.Close() }
