package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HandlerOptions configures the optional endpoints of Handler beyond the
// always-present /metrics, /healthz, /readyz, and /trace.
type HandlerOptions struct {
	// Ready gates /readyz: nil means "ready as soon as serving", otherwise
	// /readyz answers 503 until Ready returns true. /healthz stays a pure
	// liveness probe (200 once the listener is up) either way.
	Ready func() bool
	// Audit, when non-nil, is mounted at /audit (the audit.Log handler).
	Audit http.Handler
	// Events, when non-nil, is mounted at /events (the flight-recorder
	// handler: flight.Recorder.HTTPHandler).
	Events http.Handler
	// PProf mounts net/http/pprof under /debug/pprof/.
	PProf bool
}

// Handler returns an http.Handler serving the observability endpoints:
//
//	/metrics          Prometheus text exposition (?format=json for the flat
//	                  JSON snapshot, ?format=export for the full-fidelity
//	                  form the fleet aggregator merges)
//	/healthz          200 "ok" liveness probe
//	/readyz           200 "ready" / 503 "not ready" readiness probe
//	/trace            TraceDump JSON of the tracer's ring buffer (newest
//	                  last, with a truncated marker); ?trace=<hex TraceID>
//	                  filters to one trace
//
// tr may be nil, in which case /trace serves an empty dump.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return HandlerOpts(reg, tr, HandlerOptions{})
}

// HandlerOpts is Handler with optional readiness, audit, and pprof
// endpoints (see HandlerOptions).
func HandlerOpts(reg *Registry, tr *Tracer, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = reg.Snapshot().WriteJSON(w)
		case "export":
			// Full-fidelity form (raw histogram buckets, positional
			// labels): what the fleet aggregator scrapes and merges.
			w.Header().Set("Content-Type", "application/json")
			_ = WriteExport(w, reg.Export())
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Ready != nil && !opts.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr.Dump(req.URL.Query().Get("trace")))
	})
	if opts.Audit != nil {
		mux.Handle("/audit", opts.Audit)
	}
	if opts.Events != nil {
		mux.Handle("/events", opts.Events)
	}
	if opts.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// HTTPServer is a running observability endpoint (see StartHTTP).
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartHTTP listens on addr and serves Handler(reg, tr) in a background
// goroutine. Use Addr for the bound address (useful with ":0") and Close
// to shut down.
func StartHTTP(addr string, reg *Registry, tr *Tracer) (*HTTPServer, error) {
	return StartHTTPOpts(addr, reg, tr, HandlerOptions{})
}

// StartHTTPOpts is StartHTTP with HandlerOptions.
func StartHTTPOpts(addr string, reg *Registry, tr *Tracer, opts HandlerOptions) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerOpts(reg, tr, opts), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &HTTPServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *HTTPServer) Close() error { return s.srv.Close() }
