// Package obs is the repo's unified observability layer: a stdlib-only
// metrics registry (counters, gauges, histograms, labeled families), a
// ring-buffer request tracer, and an embeddable HTTP endpoint serving
// Prometheus-text and JSON expositions.
//
// The paper's entire evaluation is counter-driven — SGX transitions, EPC
// faults, renewals, attestations (Tables 1/5/6, Figures 8/9) — and this
// package makes the same quantities visible on *running* daemons instead
// of only through offline harness drivers. Hot paths record into lock-free
// atomics; scrape-time work (sorting, formatting) happens only when an
// exposition is requested.
//
// All metric types are nil-receiver safe: un-instrumented components carry
// nil metric pointers and the record calls are no-ops, so instrumentation
// is strictly opt-in and costs nothing when off.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family for exposition.
type Kind uint8

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored; counters only go up). Safe on a nil
// receiver.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// funcMetric is a scrape-time metric backed by a callback: existing atomic
// counters (sgx.Stats, sllocal.Stats, ...) register one instead of double
// counting on their hot paths.
type funcMetric struct {
	fn func() float64
}

// Histogram observes float values into fixed buckets. Buckets are
// cumulative at exposition time but stored per-bucket so Observe is one
// atomic add (plus sum/count).
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	sum    Gauge
	count  atomic.Int64
}

// DefLatencyBuckets covers sub-millisecond local operations through the
// paper's multi-second remote attestations (seconds).
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets covers grant sizes and byte counts (powers of four).
var DefSizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation inside the covering bucket, the same scheme
// Prometheus' histogram_quantile uses. Values landing in the +Inf
// overflow bucket clamp to the highest finite bound, and an empty
// histogram reports 0. Safe on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	return BucketQuantile(h.bounds, h.bucketCounts(), q)
}

// family is one named metric with a label schema and one child per label
// combination ("" key for the unlabeled singleton).
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram families only
	owner      *Registry // for the label-cardinality cap; nil exempts

	mu       sync.RWMutex
	children map[string]any // *Counter | *Gauge | *Histogram | funcMetric
	keys     []string       // insertion-ordered child keys
}

// child returns the metric for the label key, creating it with mk if absent.
// New label combinations past the registry's per-family cap collapse into
// the OverflowLabel child instead of growing the family without bound.
func (f *family) child(key string, mk func() any) any {
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	if m, ok := f.children[key]; ok {
		f.mu.Unlock()
		return m
	}
	if f.overCapLocked(key) {
		m = f.newChildLocked(f.overflowKey(), mk)
		f.mu.Unlock()
		// Count the drop outside f.mu: the dropped-values vec lives in a
		// different (exempt) family, so no lock cycle is possible.
		f.owner.dropped.With(f.name).Inc()
		return m
	}
	m = f.newChildLocked(key, mk)
	f.mu.Unlock()
	return m
}

func (f *family) newChildLocked(key string, mk func() any) any {
	if m, ok := f.children[key]; ok {
		return m
	}
	m := mk()
	f.children[key] = m
	f.keys = append(f.keys, key)
	return m
}

// overCapLocked reports whether creating a child for key would exceed the
// owning registry's per-family label cap. The unlabeled singleton, the
// overflow child itself, and the registry's own drop counter are exempt.
func (f *family) overCapLocked(key string) bool {
	if key == "" || len(f.labelNames) == 0 || f.owner == nil || f.name == droppedLabelValuesName {
		return false
	}
	limit := int(f.owner.labelLimit.Load())
	if limit <= 0 || key == f.overflowKey() {
		return false
	}
	return len(f.children) >= limit
}

// overflowKey is the child key every over-cap label combination collapses
// into: OverflowLabel in each label position.
func (f *family) overflowKey() string {
	values := make([]string, len(f.labelNames))
	for i := range values {
		values[i] = OverflowLabel
	}
	return labelKey(values)
}

// setChild unconditionally installs a metric (func metrics re-register on
// component re-instrumentation; last registration wins). New keys honor the
// same cardinality cap as child.
func (f *family) setChild(key string, m any) {
	f.mu.Lock()
	dropped := false
	if _, ok := f.children[key]; !ok && f.overCapLocked(key) {
		key = f.overflowKey()
		dropped = true
	}
	if _, ok := f.children[key]; !ok {
		f.keys = append(f.keys, key)
	}
	f.children[key] = m
	f.mu.Unlock()
	if dropped {
		f.owner.dropped.With(f.name).Inc()
	}
}

// DefaultLabelLimit is the per-family cap on distinct label combinations a
// registry accepts before collapsing new ones into OverflowLabel. Generous
// on purpose: the cap exists to bound memory against unbounded identifier
// spaces (per-client gauges at 1M clients), not to trim healthy cardinality.
const DefaultLabelLimit = 4096

// OverflowLabel is the label value over-cap series collapse into.
const OverflowLabel = "__other__"

// droppedLabelValuesName is the registry's own drop counter; exempt from
// the cap so accounting can't recurse into itself.
const droppedLabelValuesName = "obs_dropped_label_values_total"

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A Registry is safe for concurrent use.
type Registry struct {
	labelLimit atomic.Int64
	dropped    *CounterVec // obs_dropped_label_values_total{family}

	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.labelLimit.Store(DefaultLabelLimit)
	r.dropped = r.CounterVec(droppedLabelValuesName,
		"Label combinations collapsed into __other__ by the per-family cardinality cap.", "family")
	return r
}

// SetLabelLimit sets the per-family cap on distinct label combinations
// (DefaultLabelLimit initially). n <= 0 removes the cap. Existing children
// are never evicted; the cap only gates new combinations.
func (r *Registry) SetLabelLimit(n int) {
	r.labelLimit.Store(int64(n))
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the daemons expose.
func Default() *Registry { return defaultRegistry }

// familyFor returns the named family, creating it on first use. Kind and
// label schema are fixed by the first registration; later registrations
// with a different schema get the existing family (the caller's labels are
// reconciled by labelKey, which drops unknown names).
func (r *Registry) familyFor(name, help string, kind Kind, labelNames []string, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f = &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		owner:      r,
		children:   make(map[string]any),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// labelKey joins label values into the family's child key. Values must be
// positional, matching the family's label names.
func labelKey(values []string) string {
	return strings.Join(values, "\x1f")
}

// Counter returns the unlabeled counter of the named family.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, KindCounter, nil, nil)
	return f.child("", func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the unlabeled gauge of the named family.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, KindGauge, nil, nil)
	return f.child("", func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the unlabeled histogram of the named family. A nil
// buckets slice uses DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.familyFor(name, help, KindHistogram, nil, buckets)
	return f.child("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterFunc registers a scrape-time counter backed by fn, labeled by the
// given map. Re-registering the same name+labels replaces the callback.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	r.registerFunc(name, help, KindCounter, labels, fn)
}

// GaugeFunc registers a scrape-time gauge backed by fn, labeled by the
// given map. Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	r.registerFunc(name, help, KindGauge, labels, fn)
}

func (r *Registry) registerFunc(name, help string, kind Kind, labels map[string]string, fn func() float64) {
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	values := make([]string, len(names))
	for i, k := range names {
		values[i] = labels[k]
	}
	f := r.familyFor(name, help, kind, names, nil)
	f.setChild(labelKey(values), funcMetric{fn: fn})
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.familyFor(name, help, KindCounter, labelNames, nil)}
}

// With returns the counter for the given label values (positional). Safe
// on a nil receiver (returns nil, whose methods are no-ops).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(labelKey(labelValues), func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.familyFor(name, help, KindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values. Safe on a nil
// receiver.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(labelKey(labelValues), func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family. A nil buckets slice
// uses DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.familyFor(name, help, KindHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values. Safe on a nil
// receiver.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(labelKey(labelValues), func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// sortedFamilies returns families in registration order (stable output).
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// Key builds the Snapshot key for a metric: `name` when labels is empty,
// otherwise `name{k="v",...}` with label names sorted.
func Key(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
