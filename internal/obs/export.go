package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ExportChild is one sample of an exported family. Labels are positional,
// matching the family's LabelNames. Counters and gauges carry Value;
// histograms carry per-bucket (non-cumulative) counts plus Sum/Count so a
// downstream aggregator can merge buckets and recompute quantiles — the
// Prometheus text format and the flat JSON snapshot both lose that detail.
type ExportChild struct {
	Labels  []string `json:"labels,omitempty"`
	Value   float64  `json:"value,omitempty"`
	Buckets []int64  `json:"buckets,omitempty"` // len(Bounds)+1; +Inf overflow last
	Sum     float64  `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
}

// ExportFamily is the full-fidelity form of one metric family, the unit the
// fleet aggregator scrapes (/metrics?format=export) and merges.
type ExportFamily struct {
	Name       string        `json:"name"`
	Help       string        `json:"help,omitempty"`
	Kind       string        `json:"kind"`
	LabelNames []string      `json:"label_names,omitempty"`
	Bounds     []float64     `json:"bounds,omitempty"` // histogram families only
	Children   []ExportChild `json:"children"`
}

// Export captures every family with at least one child, in registration
// order, evaluating func metrics at call time.
func (r *Registry) Export() []ExportFamily {
	var out []ExportFamily
	for _, f := range r.sortedFamilies() {
		if ef, ok := f.export(); ok {
			out = append(out, ef)
		}
	}
	return out
}

func (f *family) export() (ExportFamily, bool) {
	f.mu.RLock()
	keys := append([]string(nil), f.keys...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(keys) == 0 {
		return ExportFamily{}, false
	}
	ef := ExportFamily{
		Name:       f.name,
		Help:       f.help,
		Kind:       f.kind.String(),
		LabelNames: f.labelNames,
		Children:   make([]ExportChild, 0, len(keys)),
	}
	for i, key := range keys {
		c := ExportChild{Labels: splitKey(key)}
		switch m := children[i].(type) {
		case *Counter:
			c.Value = float64(m.Value())
		case *Gauge:
			c.Value = m.Value()
		case funcMetric:
			c.Value = m.fn()
		case *Histogram:
			if ef.Bounds == nil {
				ef.Bounds = m.bounds
			}
			c.Buckets = m.bucketCounts()
			c.Sum = m.Sum()
			c.Count = m.Count()
		}
		ef.Children = append(ef.Children, c)
	}
	return ef, true
}

// bucketCounts loads the per-bucket counts (overflow bucket last).
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// WriteExport renders families as indented JSON (the ?format=export
// exposition).
func WriteExport(w io.Writer, fams []ExportFamily) error {
	if fams == nil {
		fams = []ExportFamily{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fams)
}

// ReadExport parses a WriteExport document.
func ReadExport(r io.Reader) ([]ExportFamily, error) {
	var fams []ExportFamily
	if err := json.NewDecoder(r).Decode(&fams); err != nil {
		return nil, fmt.Errorf("obs: parsing export: %w", err)
	}
	return fams, nil
}

// WriteFamiliesPrometheus renders exported families in the Prometheus text
// format, identically to Registry.WritePrometheus (including the derived
// _p50/_p95/_p99 gauges recomputed from the exported buckets). The fleet
// aggregator uses it to expose merged snapshots.
func WriteFamiliesPrometheus(w io.Writer, fams []ExportFamily) error {
	for _, ef := range fams {
		if err := ef.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (ef ExportFamily) writePrometheus(w io.Writer) error {
	if len(ef.Children) == 0 {
		return nil
	}
	if ef.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", ef.Name, ef.Help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ef.Name, ef.Kind); err != nil {
		return err
	}
	for _, c := range ef.Children {
		labels := promLabels(ef.LabelNames, labelKey(c.Labels))
		if ef.Kind == KindHistogram.String() {
			if err := writeBucketsPrometheus(w, ef, c); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", ef.Name, labels, formatFloat(c.Value)); err != nil {
			return err
		}
	}
	if ef.Kind == KindHistogram.String() {
		return ef.writeQuantiles(w)
	}
	return nil
}

func writeBucketsPrometheus(w io.Writer, ef ExportFamily, c ExportChild) error {
	key := labelKey(c.Labels)
	var cum int64
	for i, bound := range ef.Bounds {
		if i < len(c.Buckets) {
			cum += c.Buckets[i]
		}
		labels := promLabelsWith(ef.LabelNames, key, "le", formatFloat(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", ef.Name, labels, cum); err != nil {
			return err
		}
	}
	if len(c.Buckets) == len(ef.Bounds)+1 {
		cum += c.Buckets[len(ef.Bounds)]
	}
	infLabels := promLabelsWith(ef.LabelNames, key, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", ef.Name, infLabels, cum); err != nil {
		return err
	}
	base := promLabels(ef.LabelNames, key)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", ef.Name, base, formatFloat(c.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", ef.Name, base, c.Count)
	return err
}

func (ef ExportFamily) writeQuantiles(w io.Writer) error {
	for _, qg := range quantileGauges {
		name := ef.Name + "_" + qg.suffix
		if _, err := fmt.Fprintf(w, "# HELP %s Scrape-time %s estimate from %s buckets.\n", name, qg.suffix, ef.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for _, c := range ef.Children {
			labels := promLabels(ef.LabelNames, labelKey(c.Labels))
			q := BucketQuantile(ef.Bounds, c.Buckets, qg.q)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(q)); err != nil {
				return err
			}
		}
	}
	return nil
}

// BucketQuantile estimates the q-quantile from explicit per-bucket counts
// (overflow bucket last, as exported), the same linear-interpolation scheme
// Histogram.Quantile uses. It is what lets a fleet aggregator recompute
// p50/p99 from bucket-wise merged histograms instead of averaging per-node
// quantiles (which is meaningless).
func BucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	if len(bounds) == 0 || len(counts) != len(bounds)+1 {
		return 0
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range counts {
		n := float64(counts[i])
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if i == len(bounds) {
			// Overflow bucket: clamp to the highest finite bound.
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		return lower + (bounds[i]-lower)*((rank-cum)/n)
	}
	return bounds[len(bounds)-1]
}
