package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per sample,
// histogram children expanded to cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writePrometheus(w io.Writer) error {
	f.mu.RLock()
	keys := append([]string(nil), f.keys...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(keys) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for i, key := range keys {
		labels := promLabels(f.labelNames, key)
		switch m := children[i].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(m.Value())); err != nil {
				return err
			}
		case funcMetric:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(m.fn())); err != nil {
				return err
			}
		case *Histogram:
			if err := m.writePrometheus(w, f.name, f.labelNames, key); err != nil {
				return err
			}
		}
	}
	if f.kind == KindHistogram {
		return f.writeQuantiles(w, keys, children)
	}
	return nil
}

// quantileGauges are the scrape-time percentile estimates derived from each
// histogram family's buckets (linear interpolation, see Histogram.Quantile).
var quantileGauges = []struct {
	suffix string
	q      float64
}{
	{"p50", 0.50},
	{"p95", 0.95},
	{"p99", 0.99},
}

// writeQuantiles emits one derived gauge family per quantile
// (<name>_p50/_p95/_p99) for every child of a histogram family.
func (f *family) writeQuantiles(w io.Writer, keys []string, children []any) error {
	for _, qg := range quantileGauges {
		name := f.name + "_" + qg.suffix
		if _, err := fmt.Fprintf(w, "# HELP %s Scrape-time %s estimate from %s buckets.\n", name, qg.suffix, f.name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for i, key := range keys {
			h, ok := children[i].(*Histogram)
			if !ok {
				continue
			}
			labels := promLabels(f.labelNames, key)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(h.Quantile(qg.q))); err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *Histogram) writePrometheus(w io.Writer, name string, labelNames []string, key string) error {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		labels := promLabelsWith(labelNames, key, "le", formatFloat(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	infLabels := promLabelsWith(labelNames, key, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, infLabels, cum); err != nil {
		return err
	}
	base := promLabels(labelNames, key)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, base, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, base, h.Count())
	return err
}

// promLabels renders `{k="v",...}` for a child key, or "" when unlabeled.
func promLabels(names []string, key string) string {
	return promLabelsWith(names, key, "", "")
}

func promLabelsWith(names []string, key, extraName, extraValue string) string {
	values := splitKey(key)
	var pairs []string
	for i, n := range names {
		if i < len(values) {
			pairs = append(pairs, fmt.Sprintf("%s=%q", n, values[i]))
		}
	}
	if extraName != "" {
		pairs = append(pairs, fmt.Sprintf("%s=%q", extraName, extraValue))
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func splitKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x1f")
}

// formatFloat renders floats compactly, with integral values kept short.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is a flattened view of a registry: one entry per sample, keyed
// by Key(name, labels). Histograms flatten to <name>_count and <name>_sum.
type Snapshot map[string]float64

// Snapshot captures the registry's current values (func metrics are
// evaluated).
func (r *Registry) Snapshot() Snapshot {
	snap := make(Snapshot)
	for _, f := range r.sortedFamilies() {
		f.mu.RLock()
		keys := append([]string(nil), f.keys...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		names := f.labelNames
		f.mu.RUnlock()
		for i, key := range keys {
			labels := labelMap(names, key)
			switch m := children[i].(type) {
			case *Counter:
				snap[Key(f.name, labels)] = float64(m.Value())
			case *Gauge:
				snap[Key(f.name, labels)] = m.Value()
			case funcMetric:
				snap[Key(f.name, labels)] = m.fn()
			case *Histogram:
				snap[Key(f.name+"_count", labels)] = float64(m.Count())
				snap[Key(f.name+"_sum", labels)] = m.Sum()
			}
		}
	}
	return snap
}

func labelMap(names []string, key string) map[string]string {
	values := splitKey(key)
	if len(names) == 0 || len(values) == 0 {
		return nil
	}
	m := make(map[string]string, len(names))
	for i, n := range names {
		if i < len(values) {
			m[n] = values[i]
		}
	}
	return m
}

// Delta returns s - prev per key, dropping zero deltas. Keys absent from
// prev count from zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot)
	for k, v := range s {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Get returns the sample for Key(name, labels), or 0 when absent.
func (s Snapshot) Get(name string, labels map[string]string) float64 {
	return s[Key(name, labels)]
}

// WriteJSON renders the snapshot as sorted-key JSON (the /metrics?format=json
// exposition).
func (s Snapshot) WriteJSON(w io.Writer) error {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}, len(keys))
	for i, k := range keys {
		ordered[i].Name = k
		ordered[i].Value = s[k]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ordered)
}
