package obs

import (
	"strings"
	"testing"
)

// The CI benchmark-smoke step runs these with -benchtime 1x to catch
// regressions that only surface under the bench harness (build breaks,
// panics in hot paths); the numbers themselves land in BENCH_obs.json.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "Bench.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("bench_total", "Bench.", "kind")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("read").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "Bench.", DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "Bench.", DefLatencyBuckets)
	for i := 0; i < 10_000; i++ {
		h.Observe(float64(i%100) / 1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func BenchmarkTracerSpan(b *testing.B) {
	tr := NewTracer(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start("bench.op").End(nil)
	}
}

func BenchmarkTracerLinkedSpan(b *testing.B) {
	tr := NewTracer(4096)
	sc := SpanContext{Trace: NewTraceID(), Span: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartLinked("bench.op", sc).End(nil)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	for _, name := range []string{"a_total", "b_total", "c_total"} {
		reg.CounterVec(name, "Bench.", "kind").With("x").Add(3)
	}
	h := reg.Histogram("lat_seconds", "Bench.", DefLatencyBuckets)
	h.Observe(0.01)
	b.ReportAllocs()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		_ = reg.WritePrometheus(&sb)
	}
}
