package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// Counters never go down or accept negatives.
	c.Add(-5)
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter after Add(-5) = %d, want unchanged", got)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge after balanced adds = %v, want 2.5", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency", "help", []float64{0.1, 1, 10})
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(0.05) // below first bound
				h.Observe(5)    // third bucket
				h.Observe(100)  // overflow (+Inf)
			}
		}(i)
	}
	wg.Wait()
	if got, want := h.Count(), int64(goroutines*perG*3); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	wantSum := float64(goroutines*perG) * (0.05 + 5 + 100)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want ~%v", got, wantSum)
	}
	per := int64(goroutines * perG)
	for i, want := range []int64{per, 0, per, per} {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestVecChildrenAndNilSafety(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("rpcs_total", "help", "type")
	v.With("renew").Add(3)
	v.With("init").Inc()
	if got := v.With("renew").Value(); got != 3 {
		t.Fatalf("renew = %d, want 3", got)
	}
	if got := v.With("init").Value(); got != 1 {
		t.Fatalf("init = %d, want 1", got)
	}

	// Nil receivers are inert everywhere.
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	var nilCV *CounterVec
	var nilGV *GaugeVec
	var nilHV *HistogramVec
	nilC.Inc()
	nilG.Set(1)
	nilH.Observe(1)
	nilCV.With("x").Inc()
	nilGV.With("x").Add(1)
	nilHV.With("x").Observe(1)
	if nilC.Value() != 0 || nilG.Value() != 0 || nilH.Count() != 0 {
		t.Fatal("nil metrics reported values")
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "help", []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for _, v := range []float64{0.5, 1.5, 3, 9} {
		h.Observe(v)
	}
	// rank 2 of 4 lands at the top of the (1,2] bucket.
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	// rank 3 exhausts the (2,4] bucket.
	if got := h.Quantile(0.75); got != 4 {
		t.Errorf("p75 = %v, want 4", got)
	}
	// The +Inf observation clamps to the highest finite bound.
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("p99 = %v, want clamp to 4", got)
	}
	// Interpolation inside the first bucket (lower edge 0).
	if got := h.Quantile(0.25); got != 1 {
		t.Errorf("p25 = %v, want 1", got)
	}
	// Out-of-range q clamps rather than panicking.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Error("out-of-range q not clamped")
	}
	var nh *Histogram
	if nh.Quantile(0.9) != 0 {
		t.Error("nil histogram quantile != 0")
	}
}

func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("renewals_total", "Renewals granted.").Add(7)
	reg.GaugeVec("pool_units", "Pool state.", "license").With("demo").Set(93)
	h := reg.Histogram("latency_seconds", "Latency.", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(9)
	reg.CounterFunc("cycles_total", "Clock.", map[string]string{"machine": "m1"},
		func() float64 { return 1234 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP renewals_total Renewals granted.
# TYPE renewals_total counter
renewals_total 7
# HELP pool_units Pool state.
# TYPE pool_units gauge
pool_units{license="demo"} 93
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.5"} 1
latency_seconds_bucket{le="2"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 10.1
latency_seconds_count 3
# HELP latency_seconds_p50 Scrape-time p50 estimate from latency_seconds buckets.
# TYPE latency_seconds_p50 gauge
latency_seconds_p50 1.25
# HELP latency_seconds_p95 Scrape-time p95 estimate from latency_seconds buckets.
# TYPE latency_seconds_p95 gauge
latency_seconds_p95 2
# HELP latency_seconds_p99 Scrape-time p99 estimate from latency_seconds buckets.
# TYPE latency_seconds_p99 gauge
latency_seconds_p99 2
# HELP cycles_total Clock.
# TYPE cycles_total counter
cycles_total{machine="m1"} 1234
`
	if b.String() != want {
		t.Fatalf("exposition mismatch\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSnapshotDeltaAndKey(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterVec("ops_total", "help", "kind")
	c.With("read").Add(10)
	h := reg.Histogram("lat", "help", nil)
	h.Observe(0.25)

	before := reg.Snapshot()
	c.With("read").Add(5)
	c.With("write").Inc()
	h.Observe(0.75)
	delta := reg.Snapshot().Delta(before)

	if got := delta.Get("ops_total", map[string]string{"kind": "read"}); got != 5 {
		t.Fatalf("read delta = %v, want 5", got)
	}
	if got := delta.Get("ops_total", map[string]string{"kind": "write"}); got != 1 {
		t.Fatalf("write delta = %v, want 1", got)
	}
	if got := delta.Get("lat_count", nil); got != 1 {
		t.Fatalf("lat_count delta = %v, want 1", got)
	}
	if got := delta.Get("lat_sum", nil); got != 0.75 {
		t.Fatalf("lat_sum delta = %v, want 0.75", got)
	}
	if k := Key("a", map[string]string{"z": "1", "a": "2"}); k != `a{a="2",z="1"}` {
		t.Fatalf("Key = %q", k)
	}

	var js strings.Builder
	if err := delta.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(js.String(), `"ops_total{kind=\"read\"}"`) {
		t.Fatalf("JSON missing labeled key: %s", js.String())
	}
}

func TestFuncMetricReRegisterReplaces(t *testing.T) {
	reg := NewRegistry()
	lbl := map[string]string{"machine": "m"}
	reg.GaugeFunc("v", "help", lbl, func() float64 { return 1 })
	reg.GaugeFunc("v", "help", lbl, func() float64 { return 2 })
	if got := reg.Snapshot().Get("v", lbl); got != 2 {
		t.Fatalf("func metric = %v, want the replacement's 2", got)
	}
}
