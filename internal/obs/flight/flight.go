// Package flight is the always-on black-box flight recorder: a fixed-size,
// allocation-bounded ring of structured operational events (failovers,
// epoch bumps, redirects, handshake failures, WAL compactions, denials,
// shutdowns) that survives to be read *after* something went wrong.
//
// Metrics answer "how much"; traces answer "where did this request go";
// the flight recorder answers "what did the process do around the time it
// died". It is cheap enough to leave on everywhere: one Emit is a mutex,
// a copy into a pre-allocated slot, and no heap allocation on the hot
// path beyond the caller's attribute strings.
//
// The ring is dumpable over HTTP (/events via HTTPHandler), on SIGQUIT
// (DumpText), and persisted through store.AppendFile on graceful shutdown
// (Persist/ReadDump) so post-mortems survive the process.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// maxAttrs bounds the per-event attribute count so an Event is a fixed-size
// value and the ring's memory is fully determined by its capacity.
const maxAttrs = 4

// DefaultCapacity is the ring size daemons use when not configured.
const DefaultCapacity = 4096

// KV is one event attribute.
type KV struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Event is one flight-recorder entry. Seq is a per-recorder monotonic
// sequence number: two events with equal timestamps still have a total
// order, which is what lets a merged fleet timeline stay honest about
// ordering within one node.
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Kind  string    `json:"kind"`
	Node  string    `json:"node,omitempty"` // stamped by mergers, not by Emit
	attrs [maxAttrs]KV
	nattr int
}

// Attrs returns the event's attributes in emission order.
func (e Event) Attrs() []KV {
	return append([]KV(nil), e.attrs[:e.nattr]...)
}

// Attr returns the value of the named attribute ("" when absent).
func (e Event) Attr(key string) string {
	for _, kv := range e.attrs[:e.nattr] {
		if kv.K == key {
			return kv.V
		}
	}
	return ""
}

// eventJSON is the wire form of an Event (attrs must be exported).
type eventJSON struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Kind  string    `json:"kind"`
	Node  string    `json:"node,omitempty"`
	Attrs []KV      `json:"attrs,omitempty"`
}

// MarshalJSON renders the event with its attributes.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{Seq: e.Seq, Time: e.Time, Kind: e.Kind, Node: e.Node}
	if e.nattr > 0 {
		j.Attrs = e.attrs[:e.nattr]
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the MarshalJSON form, dropping attributes past the
// fixed capacity.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = Event{Seq: j.Seq, Time: j.Time, Kind: j.Kind, Node: j.Node}
	for _, kv := range j.Attrs {
		if e.nattr == maxAttrs {
			break
		}
		e.attrs[e.nattr] = kv
		e.nattr++
	}
	return nil
}

// String renders the event as one human-readable line.
func (e Event) String() string {
	var b []byte
	b = e.Time.UTC().AppendFormat(b, "2006-01-02T15:04:05.000Z")
	b = append(b, ' ')
	if e.Node != "" {
		b = append(b, '[')
		b = append(b, e.Node...)
		b = append(b, ']', ' ')
	}
	b = append(b, e.Kind...)
	for _, kv := range e.attrs[:e.nattr] {
		b = append(b, ' ')
		b = append(b, kv.K...)
		b = append(b, '=')
		b = append(b, kv.V...)
	}
	return string(b)
}

// Recorder is the fixed-size event ring. All methods are safe on a nil
// receiver (no-ops), so un-instrumented components carry nil recorders for
// free, and safe for concurrent use otherwise.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	seq     uint64
	dropped int64 // events evicted by ring wrap
}

// NewRecorder returns a recorder holding the last capacity events
// (minimum 64).
func NewRecorder(capacity int) *Recorder {
	if capacity < 64 {
		capacity = 64
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Emit records one event. Attributes past the per-event capacity (4) are
// dropped. Safe on a nil receiver.
func (r *Recorder) Emit(kind string, kvs ...KV) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	ev := &r.buf[r.next]
	r.seq++
	*ev = Event{Seq: r.seq, Time: time.Now(), Kind: kind}
	for _, kv := range kvs {
		if ev.nattr == maxAttrs {
			break
		}
		ev.attrs[ev.nattr] = kv
		ev.nattr++
	}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the buffered events, oldest first. Safe on a nil receiver.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns how many events are buffered.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many events the ring has evicted (0 on nil).
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ExposeMetrics registers the recorder's self-metrics:
//
//	flight_events_total          events emitted since start
//	flight_dropped_events_total  events evicted by ring wrap
func (r *Recorder) ExposeMetrics(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.CounterFunc("flight_events_total", "Flight-recorder events emitted.", nil, func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(r.seq)
	})
	reg.CounterFunc("flight_dropped_events_total", "Flight-recorder events evicted by ring wrap.", nil,
		func() float64 { return float64(r.Dropped()) })
}

// Dump is the /events response and persisted-dump shape.
type Dump struct {
	Truncated bool    `json:"truncated"`
	Dropped   int64   `json:"dropped"`
	Events    []Event `json:"events"`
}

// Dump captures the ring's current contents.
func (r *Recorder) Dump() Dump {
	events := r.Events()
	if events == nil {
		events = []Event{}
	}
	d := r.Dropped()
	return Dump{Truncated: d > 0, Dropped: d, Events: events}
}

// WriteJSON renders the dump as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump())
}

// DumpText writes the ring as human-readable lines (the SIGQUIT dump).
func (r *Recorder) DumpText(w io.Writer) {
	events := r.Events()
	fmt.Fprintf(w, "flight recorder: %d events (%d dropped)\n", len(events), r.Dropped())
	for _, ev := range events {
		fmt.Fprintln(w, ev.String())
	}
}

// HTTPHandler serves the dump as JSON; mount it at /events via
// obs.HandlerOptions.Events.
func (r *Recorder) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// Persist writes the ring to path through store.AppendFile — one CRC-framed
// JSON record per event — so a graceful shutdown leaves a durable black box
// next to the WAL. Safe on a nil receiver (no-op).
func (r *Recorder) Persist(path string) error {
	if r == nil {
		return nil
	}
	f, _, err := store.OpenAppendFile(path)
	if err != nil {
		return fmt.Errorf("flight: opening dump %s: %w", path, err)
	}
	for _, ev := range r.Events() {
		rec, err := json.Marshal(ev)
		if err != nil {
			f.Close()
			return fmt.Errorf("flight: encoding event: %w", err)
		}
		if err := f.Append(rec); err != nil {
			f.Close()
			return fmt.Errorf("flight: appending to %s: %w", path, err)
		}
	}
	return f.Close()
}

// ReadDump loads a Persist file back into events (oldest first).
func ReadDump(path string) ([]Event, error) {
	payloads, err := store.ReadAppendFile(path)
	if err != nil {
		return nil, fmt.Errorf("flight: reading dump %s: %w", path, err)
	}
	events := make([]Event, 0, len(payloads))
	for _, p := range payloads {
		var ev Event
		if err := json.Unmarshal(p, &ev); err != nil {
			return nil, fmt.Errorf("flight: decoding dump record: %w", err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// ParseDump parses an HTTPHandler/WriteJSON document.
func ParseDump(r io.Reader) (Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return Dump{}, fmt.Errorf("flight: parsing dump: %w", err)
	}
	return d, nil
}

// Merge combines per-node dumps into one fleet timeline ordered by time
// (sequence number breaking ties within a node), stamping each event with
// its node name.
func Merge(nodes map[string]Dump) []Event {
	var out []Event
	for name, d := range nodes {
		for _, ev := range d.Events {
			ev.Node = name
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
