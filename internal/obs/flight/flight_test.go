package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestEmitAndDumpOrder(t *testing.T) {
	r := NewRecorder(64)
	r.Emit("a.first", KV{K: "k", V: "1"})
	r.Emit("a.second")
	r.Emit("a.third", KV{K: "x", V: "y"}, KV{K: "z", V: "w"})

	d := r.Dump()
	if d.Truncated || d.Dropped != 0 {
		t.Fatalf("fresh ring reports truncation: %+v", d)
	}
	if len(d.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(d.Events))
	}
	for i, want := range []string{"a.first", "a.second", "a.third"} {
		if d.Events[i].Kind != want {
			t.Errorf("event %d kind = %q, want %q", i, d.Events[i].Kind, want)
		}
		if got := d.Events[i].Seq; got != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, got, i+1)
		}
	}
	if got := d.Events[0].Attr("k"); got != "1" {
		t.Errorf("Attr(k) = %q, want 1", got)
	}
	if got := d.Events[0].Attr("missing"); got != "" {
		t.Errorf("Attr(missing) = %q, want empty", got)
	}
	if got := d.Events[2].Attrs(); len(got) != 2 || got[0].K != "x" || got[1].K != "z" {
		t.Errorf("Attrs = %+v", got)
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	r := NewRecorder(0) // clamps to the 64 minimum
	for i := 0; i < 100; i++ {
		r.Emit("wrap.tick", KV{K: "i", V: fmt.Sprint(i)})
	}
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
	d := r.Dump()
	if !d.Truncated || d.Dropped != 36 {
		t.Fatalf("dump truncation: %+v, want 36 dropped", d)
	}
	if got := d.Events[0].Attr("i"); got != "36" {
		t.Errorf("oldest surviving event i = %q, want 36 (oldest evicted first)", got)
	}
	if got := d.Events[len(d.Events)-1].Attr("i"); got != "99" {
		t.Errorf("newest event i = %q, want 99", got)
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	r := NewRecorder(64)
	kvs := make([]KV, maxAttrs+3)
	for i := range kvs {
		kvs[i] = KV{K: fmt.Sprintf("k%d", i), V: "v"}
	}
	r.Emit("attr.storm", kvs...)
	ev := r.Events()[0]
	if got := len(ev.Attrs()); got != maxAttrs {
		t.Fatalf("kept %d attrs, want %d", got, maxAttrs)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Emit("nil.event")
	if r.Events() != nil || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
	d := r.Dump()
	if d.Truncated || len(d.Events) != 0 {
		t.Fatalf("nil dump: %+v", d)
	}
	r.ExposeMetrics(obs.NewRegistry())
	if err := r.Persist(filepath.Join(t.TempDir(), "f.log")); err != nil {
		t.Fatalf("nil Persist: %v", err)
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit("conc.event")
			}
		}()
	}
	wg.Wait()
	if got := r.Len() + int(r.Dropped()); got != 800 {
		t.Fatalf("kept+dropped = %d, want 800", got)
	}
}

func TestExposeMetrics(t *testing.T) {
	r := NewRecorder(0)
	reg := obs.NewRegistry()
	r.ExposeMetrics(reg)
	for i := 0; i < 70; i++ {
		r.Emit("metric.tick")
	}
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "flight_events_total 70") {
		t.Errorf("missing emitted counter:\n%s", out)
	}
	if !strings.Contains(out, "flight_dropped_events_total 6") {
		t.Errorf("missing dropped counter:\n%s", out)
	}
}

func TestJSONRoundTripAndHTTPHandler(t *testing.T) {
	r := NewRecorder(64)
	r.Emit("http.event", KV{K: "who", V: "test"})

	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	d, err := ParseDump(resp.Body)
	if err != nil {
		t.Fatalf("ParseDump: %v", err)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != "http.event" || d.Events[0].Attr("who") != "test" {
		t.Fatalf("round-tripped dump: %+v", d)
	}
}

func TestEventJSONDropsOverflowAttrs(t *testing.T) {
	raw := []byte(`{"seq":1,"kind":"k","attrs":[{"k":"a","v":"1"},{"k":"b","v":"2"},{"k":"c","v":"3"},{"k":"d","v":"4"},{"k":"e","v":"5"}]}`)
	var ev Event
	if err := json.Unmarshal(raw, &ev); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got := len(ev.Attrs()); got != maxAttrs {
		t.Fatalf("kept %d attrs, want %d", got, maxAttrs)
	}
}

func TestPersistReadDumpRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	r.Emit("persist.one", KV{K: "n", V: "1"})
	r.Emit("persist.two")
	path := filepath.Join(t.TempDir(), "flight.log")
	if err := r.Persist(path); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	events, err := ReadDump(path)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if len(events) != 2 || events[0].Kind != "persist.one" || events[1].Kind != "persist.two" {
		t.Fatalf("read back: %+v", events)
	}
	if got := events[0].Attr("n"); got != "1" {
		t.Errorf("attr lost across persist: %q", got)
	}
}

func TestMergeOrdersAcrossNodes(t *testing.T) {
	a, b := NewRecorder(64), NewRecorder(64)
	a.Emit("m.a1")
	b.Emit("m.b1")
	a.Emit("m.a2")

	merged := Merge(map[string]Dump{"alpha": a.Dump(), "beta": b.Dump()})
	if len(merged) != 3 {
		t.Fatalf("merged %d events, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time.Before(merged[i-1].Time) {
			t.Fatalf("merged timeline out of order at %d: %v", i, merged)
		}
	}
	nodes := map[string]bool{}
	for _, ev := range merged {
		if ev.Node == "" {
			t.Fatalf("merged event missing node stamp: %+v", ev)
		}
		nodes[ev.Node] = true
	}
	if !nodes["alpha"] || !nodes["beta"] {
		t.Fatalf("node stamps: %v", nodes)
	}
}

func TestDumpTextAndString(t *testing.T) {
	r := NewRecorder(64)
	r.Emit("text.event", KV{K: "k", V: "v"})
	var b bytes.Buffer
	r.DumpText(&b)
	out := b.String()
	if !strings.Contains(out, "1 events (0 dropped)") {
		t.Errorf("DumpText header:\n%s", out)
	}
	if !strings.Contains(out, "text.event k=v") {
		t.Errorf("DumpText line:\n%s", out)
	}
	ev := r.Events()[0]
	ev.Node = "n1"
	if s := ev.String(); !strings.Contains(s, "[n1] text.event k=v") {
		t.Errorf("String() = %q", s)
	}
}
