package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ratls"
	"repro/internal/wire"
)

// Target is one node the aggregator scrapes. Exactly one transport is
// used: URL (plain HTTP against the node's obs endpoint) when set,
// otherwise Addr + Channel (the obs_pull RPC over the node's attested
// wire listener — metrics leave the enclave boundary only through
// RA-TLS, the same guarantee client traffic gets).
type Target struct {
	// Name identifies the node in merged output and self-metrics.
	Name string
	// URL is the node's HTTP obs base URL (e.g. "http://127.0.0.1:9101").
	URL string
	// Addr is the node's wire listen address, for obs_pull scraping.
	Addr string
	// Channel is the wire channel config used with Addr (nil: insecure).
	Channel *ratls.Config
}

// DefaultInterval paces Start's background scrape loop.
const DefaultInterval = time.Second

// DefaultTimeout bounds one target scrape.
const DefaultTimeout = 5 * time.Second

// Options configures an Aggregator.
type Options struct {
	// Targets are the nodes to scrape.
	Targets []Target
	// Interval paces the Start loop (0: DefaultInterval).
	Interval time.Duration
	// Timeout bounds each per-target scrape (0: DefaultTimeout).
	Timeout time.Duration
	// Merge tunes the family merge (gauge rule table, re-key labels).
	Merge MergeOptions
	// Now is the clock (nil: time.Now). Tests inject a fixed clock to
	// make staleness gauges deterministic.
	Now func() time.Time
	// Logf receives scrape errors (nil: silent).
	Logf func(string, ...any)
}

// nodeState is the aggregator's memory of one target: the last good
// snapshot (kept through scrape failures, so staleness is measurable),
// when it was taken, and the error tally.
type nodeState struct {
	fams    []obs.ExportFamily
	at      time.Time
	up      bool
	lastErr string
	errs    int64
}

// Aggregator scrapes a fleet of nodes and re-exposes their merged
// observability plane: one /metrics (counters summed, gauges ruled,
// histogram buckets merged so fleet quantiles are real), one /trace
// that stitches a TraceID across every node, one /events flight
// timeline, plus fleet self-metrics (scrape errors, staleness, node
// liveness) so the aggregator's own blind spots are visible.
type Aggregator struct {
	opts  Options
	httpc *http.Client

	mu    sync.Mutex
	nodes map[string]*nodeState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an aggregator over targets; call ScrapeOnce for a one-shot
// snapshot or Start for continuous polling.
func New(opts Options) *Aggregator {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	a := &Aggregator{
		opts:  opts,
		httpc: &http.Client{Timeout: opts.Timeout},
		nodes: make(map[string]*nodeState),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, t := range opts.Targets {
		a.nodes[t.Name] = &nodeState{}
	}
	return a
}

func (a *Aggregator) logf(format string, args ...any) {
	if a.opts.Logf != nil {
		a.opts.Logf(format, args...)
	}
}

// ScrapeOnce polls every target concurrently and folds the results into
// the aggregator's state. A failing target keeps its previous snapshot
// (its staleness gauge grows) and bumps its error counter; the first
// error is returned for one-shot callers that want a verdict.
func (a *Aggregator) ScrapeOnce() error {
	var wg sync.WaitGroup
	errs := make([]error, len(a.opts.Targets))
	for i, t := range a.opts.Targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			fams, err := a.scrapeMetrics(t)
			a.mu.Lock()
			st := a.nodes[t.Name]
			if err != nil {
				st.errs++
				st.up = false
				st.lastErr = err.Error()
				errs[i] = fmt.Errorf("fleet: scraping %s: %w", t.Name, err)
			} else {
				st.fams, st.at, st.up, st.lastErr = fams, a.opts.Now(), true, ""
			}
			a.mu.Unlock()
			if err != nil {
				a.logf("fleet: scrape %s: %v", t.Name, err)
			}
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Start launches the background scrape loop (one immediate scrape, then
// every Interval). Stop ends it.
func (a *Aggregator) Start() {
	go func() {
		defer close(a.done)
		_ = a.ScrapeOnce()
		tick := time.NewTicker(a.opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-tick.C:
				_ = a.ScrapeOnce()
			}
		}
	}()
}

// Stop ends the Start loop. Safe to call without Start (the background
// done channel is only waited on after a Start).
func (a *Aggregator) Stop() {
	a.stopOnce.Do(func() {
		close(a.stop)
		select {
		case <-a.done:
		case <-time.After(a.opts.Timeout + a.opts.Interval):
		}
	})
}

// scrapeMetrics fetches one target's full-fidelity export snapshot.
func (a *Aggregator) scrapeMetrics(t Target) ([]obs.ExportFamily, error) {
	if t.URL != "" {
		body, err := a.httpGet(t.URL + "/metrics?format=export")
		if err != nil {
			return nil, err
		}
		return obs.ReadExport(bytes.NewReader(body))
	}
	resp, err := a.obsPull(t, "")
	if err != nil {
		return nil, err
	}
	return obs.ReadExport(bytes.NewReader(resp.Metrics))
}

// scrapeTrace fetches one target's (optionally filtered) trace dump.
func (a *Aggregator) scrapeTrace(t Target, traceID string) (obs.TraceDump, error) {
	if t.URL != "" {
		body, err := a.httpGet(t.URL + "/trace?trace=" + traceID)
		if err != nil {
			return obs.TraceDump{}, err
		}
		var dump obs.TraceDump
		if err := json.Unmarshal(body, &dump); err != nil {
			return obs.TraceDump{}, fmt.Errorf("parsing trace dump: %w", err)
		}
		return dump, nil
	}
	resp, err := a.obsPull(t, traceID)
	if err != nil {
		return obs.TraceDump{}, err
	}
	var dump obs.TraceDump
	if err := json.Unmarshal(resp.Trace, &dump); err != nil {
		return obs.TraceDump{}, fmt.Errorf("parsing trace dump: %w", err)
	}
	return dump, nil
}

// scrapeEvents fetches one target's flight-recorder dump.
func (a *Aggregator) scrapeEvents(t Target) (flight.Dump, error) {
	if t.URL != "" {
		body, err := a.httpGet(t.URL + "/events")
		if err != nil {
			return flight.Dump{}, err
		}
		return flight.ParseDump(bytes.NewReader(body))
	}
	resp, err := a.obsPull(t, "")
	if err != nil {
		return flight.Dump{}, err
	}
	return flight.ParseDump(bytes.NewReader(resp.Events))
}

func (a *Aggregator) httpGet(url string) ([]byte, error) {
	resp, err := a.httpc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

func (a *Aggregator) obsPull(t Target, traceFilter string) (wire.ObsPullResponse, error) {
	rc := t.Channel
	if rc == nil {
		rc = ratls.Insecure()
	}
	c, err := wire.DialTimeout(t.Addr, a.opts.Timeout, rc)
	if err != nil {
		return wire.ObsPullResponse{}, err
	}
	defer c.Close()
	return c.ObsPull(traceFilter)
}

// Merged merges the last-scraped snapshots under the merge rules and
// appends the aggregator's self-metric families. The fleet view is as
// fresh as the last ScrapeOnce — dead nodes contribute their last good
// snapshot, visibly stale via fleet_scrape_age_seconds.
func (a *Aggregator) Merged() []obs.ExportFamily {
	a.mu.Lock()
	snaps := make(map[string][]obs.ExportFamily, len(a.nodes))
	for name, st := range a.nodes {
		if st.fams != nil {
			snaps[name] = st.fams
		}
	}
	a.mu.Unlock()
	res := MergeSnapshots(snaps, a.opts.Merge)
	return append(res.Families, a.selfFamilies(res.Conflicts)...)
}

// selfFamilies synthesizes the aggregator's own exposition: scrape
// errors, per-node staleness and liveness, and merge conflicts.
func (a *Aggregator) selfFamilies(conflicts map[string]int64) []obs.ExportFamily {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.opts.Now()

	names := make([]string, 0, len(a.opts.Targets))
	for _, t := range a.opts.Targets {
		names = append(names, t.Name)
	}
	sort.Strings(names)

	errsFam := obs.ExportFamily{
		Name: "fleet_scrape_errors_total", Kind: "counter",
		Help:       "Failed scrapes per node since the aggregator started.",
		LabelNames: []string{"node"},
	}
	ageFam := obs.ExportFamily{
		Name: "fleet_scrape_age_seconds", Kind: "gauge",
		Help:       "Seconds since each node's last successful scrape (its staleness).",
		LabelNames: []string{"node"},
	}
	upFam := obs.ExportFamily{
		Name: "fleet_node_up", Kind: "gauge",
		Help:       "Whether the last scrape of each node succeeded.",
		LabelNames: []string{"node"},
	}
	for _, name := range names {
		st := a.nodes[name]
		errsFam.Children = append(errsFam.Children,
			obs.ExportChild{Labels: []string{name}, Value: float64(st.errs)})
		up := 0.0
		if st.up {
			up = 1
		}
		upFam.Children = append(upFam.Children,
			obs.ExportChild{Labels: []string{name}, Value: up})
		if !st.at.IsZero() {
			ageFam.Children = append(ageFam.Children,
				obs.ExportChild{Labels: []string{name}, Value: now.Sub(st.at).Seconds()})
		}
	}
	out := []obs.ExportFamily{errsFam}
	if len(ageFam.Children) > 0 {
		out = append(out, ageFam)
	}
	out = append(out, upFam)
	if len(conflicts) > 0 {
		conflictFam := obs.ExportFamily{
			Name: "fleet_merge_conflicts_total", Kind: "counter",
			Help:       "Node snapshots dropped from the merge for structural mismatch (kind, labels, or bucket bounds).",
			LabelNames: []string{"family"},
		}
		fams := make([]string, 0, len(conflicts))
		for f := range conflicts {
			fams = append(fams, f)
		}
		sort.Strings(fams)
		for _, f := range fams {
			conflictFam.Children = append(conflictFam.Children,
				obs.ExportChild{Labels: []string{f}, Value: float64(conflicts[f])})
		}
		out = append(out, conflictFam)
	}
	return out
}

// WritePrometheus renders the merged fleet view in the Prometheus text
// format (with _p50/_p95/_p99 recomputed from merged buckets).
func (a *Aggregator) WritePrometheus(w io.Writer) error {
	return obs.WriteFamiliesPrometheus(w, a.Merged())
}

// WriteExport renders the merged fleet view as export JSON — the same
// shape the nodes expose, so aggregators compose.
func (a *Aggregator) WriteExport(w io.Writer) error {
	return obs.WriteExport(w, a.Merged())
}

// StitchTrace fans /trace?trace=id out to every target live and joins
// the spans into one cross-node tree. Unreachable nodes are skipped
// (their absence surfaces as orphaned subtrees) and counted as scrape
// errors.
func (a *Aggregator) StitchTrace(traceID string) *Trace {
	dumps := make(map[string]obs.TraceDump)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, t := range a.opts.Targets {
		wg.Add(1)
		go func(t Target) {
			defer wg.Done()
			dump, err := a.scrapeTrace(t, traceID)
			if err != nil {
				a.countErr(t.Name, err)
				return
			}
			mu.Lock()
			dumps[t.Name] = dump
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	return Stitch(traceID, dumps)
}

// Events fans /events out to every target live and merges the flight
// timelines into one fleet black box, ordered by time. Unreachable
// nodes are skipped and counted as scrape errors.
func (a *Aggregator) Events() []flight.Event {
	dumps := make(map[string]flight.Dump)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, t := range a.opts.Targets {
		wg.Add(1)
		go func(t Target) {
			defer wg.Done()
			dump, err := a.scrapeEvents(t)
			if err != nil {
				a.countErr(t.Name, err)
				return
			}
			mu.Lock()
			dumps[t.Name] = dump
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	return flight.Merge(dumps)
}

func (a *Aggregator) countErr(node string, err error) {
	a.mu.Lock()
	if st, ok := a.nodes[node]; ok {
		st.errs++
		st.lastErr = err.Error()
	}
	a.mu.Unlock()
	a.logf("fleet: scrape %s: %v", node, err)
}

// NodeStatus is one target's scrape health, served at /nodes.
type NodeStatus struct {
	Name       string  `json:"name"`
	Endpoint   string  `json:"endpoint"`
	Up         bool    `json:"up"`
	AgeSeconds float64 `json:"age_seconds"`
	Errors     int64   `json:"errors"`
	LastError  string  `json:"last_error,omitempty"`
}

// Nodes reports every target's scrape health, sorted by name.
func (a *Aggregator) Nodes() []NodeStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.opts.Now()
	out := make([]NodeStatus, 0, len(a.opts.Targets))
	for _, t := range a.opts.Targets {
		st := a.nodes[t.Name]
		ep := t.URL
		if ep == "" {
			ep = "wire://" + t.Addr
		}
		ns := NodeStatus{Name: t.Name, Endpoint: ep, Up: st.up, Errors: st.errs, LastError: st.lastErr}
		if !st.at.IsZero() {
			ns.AgeSeconds = now.Sub(st.at).Seconds()
		} else {
			ns.AgeSeconds = -1
		}
		out = append(out, ns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Handler serves the fleet view:
//
//	/metrics   merged Prometheus text (?format=export for export JSON)
//	/trace     stitched cross-node trace for ?trace=<hex id>
//	           (?render=text for the human timeline)
//	/events    merged flight-recorder timeline, newest last
//	/nodes     per-node scrape health JSON
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "export" {
			w.Header().Set("Content-Type", "application/json")
			_ = a.WriteExport(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = a.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("trace")
		if id == "" {
			http.Error(w, "missing ?trace=<hex trace id>", http.StatusBadRequest)
			return
		}
		tr := a.StitchTrace(id)
		if req.URL.Query().Get("render") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, tr.Render())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		events := a.Events()
		if events == nil {
			events = []flight.Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	mux.HandleFunc("/nodes", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Nodes())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Server is a running fleet endpoint (see Aggregator.Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for Handler on addr (use ":0" for an
// ephemeral port); the returned server reports its bound address.
func (a *Aggregator) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
