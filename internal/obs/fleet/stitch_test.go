package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// syntheticTrace builds the per-node dumps of one redirect-shaped trace:
// a client root span with two RPC children; each RPC parents a handler
// span on a different server node. Span IDs deliberately collide across
// nodes (every tracer numbers from 1) to exercise (node, span) keying.
func syntheticTrace(base time.Time) map[string]obs.TraceDump {
	const trace = "00000000000000000000000000000abc"
	ev := func(span, parent uint64, name string, start time.Time, d time.Duration) obs.Event {
		return obs.Event{Trace: trace, Span: span, Parent: parent, Name: name, Start: start, Duration: d}
	}
	return map[string]obs.TraceDump{
		"client": {Events: []obs.Event{
			ev(1, 0, "client.renew", base, 10*time.Millisecond),
			ev(2, 1, "rpc.renew", base.Add(time.Millisecond), 3*time.Millisecond),
			ev(3, 1, "rpc.renew", base.Add(5*time.Millisecond), 4*time.Millisecond),
		}},
		"shard0": {Events: []obs.Event{
			// Handler for the first hop: parent is client span 2. This
			// node's own span 1 belongs to an unrelated trace and must be
			// filtered out.
			ev(1, 2, "rpc.renew", base.Add(2*time.Millisecond), time.Millisecond),
			{Trace: "ffffffffffffffffffffffffffffffff", Span: 9, Name: "other.trace", Start: base},
		}},
		"shard1": {Events: []obs.Event{
			ev(1, 3, "rpc.renew", base.Add(6*time.Millisecond), 2*time.Millisecond),
		}},
	}
}

func TestStitchCrossNodeTree(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	const trace = "00000000000000000000000000000abc"
	tr := Stitch(trace, syntheticTrace(base))

	if tr.Spans != 5 {
		t.Fatalf("stitched %d spans, want 5 (other-trace span must be filtered)", tr.Spans)
	}
	if len(tr.Nodes) != 3 {
		t.Fatalf("nodes = %v, want 3", tr.Nodes)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "client.renew" {
		t.Fatalf("roots = %+v, want the client span", tr.Roots)
	}
	if len(tr.Orphans) != 0 {
		t.Fatalf("orphans = %+v, want none", tr.Orphans)
	}

	root := tr.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want the two RPC hops", len(root.Children))
	}
	// Children sorted by start: hop 1 (span 2) then hop 2 (span 3); each
	// parents exactly one handler span on the right server node.
	hop1, hop2 := root.Children[0], root.Children[1]
	if hop1.Span != 2 || hop2.Span != 3 {
		t.Fatalf("hop order: %d then %d, want 2 then 3", hop1.Span, hop2.Span)
	}
	if len(hop1.Children) != 1 || hop1.Children[0].Node != "shard0" {
		t.Fatalf("hop1 handler = %+v, want shard0", hop1.Children)
	}
	if len(hop2.Children) != 1 || hop2.Children[0].Node != "shard1" {
		t.Fatalf("hop2 handler = %+v, want shard1", hop2.Children)
	}
}

func TestStitchOrphanOnDeadNode(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	const trace = "00000000000000000000000000000abc"
	dumps := syntheticTrace(base)
	delete(dumps, "client") // the parent node died and was never scraped

	tr := Stitch(trace, dumps)
	if tr.Spans != 2 {
		t.Fatalf("spans = %d, want the two handler spans", tr.Spans)
	}
	if len(tr.Orphans) != 2 {
		t.Fatalf("orphans = %d, want 2 (parents lived on the dead node)", len(tr.Orphans))
	}
	for _, o := range tr.Orphans {
		if !o.Orphan {
			t.Errorf("orphan span not marked: %+v", o)
		}
	}
	out := tr.Render()
	if !strings.Contains(out, "orphaned subtrees") {
		t.Errorf("Render lacks orphan section:\n%s", out)
	}
}

func TestStitchAmbiguousIDResolvedByTime(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	const trace = "00000000000000000000000000000abc"
	ev := func(span, parent uint64, start time.Time, d time.Duration) obs.Event {
		return obs.Event{Trace: trace, Span: span, Parent: parent, Name: "s", Start: start, Duration: d}
	}
	// Two nodes both own span ID 7; only one's interval contains the
	// child's start, so time containment breaks the tie.
	dumps := map[string]obs.TraceDump{
		"a": {Events: []obs.Event{ev(7, 0, base, time.Millisecond)}},
		"b": {Events: []obs.Event{ev(7, 0, base.Add(10*time.Millisecond), 5*time.Millisecond)}},
		"c": {Events: []obs.Event{ev(2, 7, base.Add(12*time.Millisecond), time.Millisecond)}},
	}
	tr := Stitch(trace, dumps)
	if len(tr.Orphans) != 0 {
		t.Fatalf("orphans = %+v, want tie broken by containment", tr.Orphans)
	}
	var parent *Span
	for _, r := range tr.Roots {
		if r.Node == "b" {
			parent = r
		}
	}
	if parent == nil || len(parent.Children) != 1 || parent.Children[0].Node != "c" {
		t.Fatalf("child not attached to containing parent: roots=%+v", tr.Roots)
	}
}

func TestStitchTruncationPropagates(t *testing.T) {
	const trace = "00000000000000000000000000000abc"
	dumps := map[string]obs.TraceDump{
		"a": {Truncated: true, Dropped: 3, Events: []obs.Event{
			{Trace: trace, Span: 1, Name: "s", Start: time.Now()},
		}},
	}
	tr := Stitch(trace, dumps)
	if !tr.Truncated {
		t.Fatal("tracer truncation not propagated to stitched trace")
	}
	if !strings.Contains(tr.Render(), "TRUNCATED") {
		t.Fatal("Render lacks truncation marker")
	}
}

func TestRenderTimeline(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr := Stitch("00000000000000000000000000000abc", syntheticTrace(base))
	out := tr.Render()
	for _, want := range []string{"5 spans across 3 nodes", "[client] client.renew", "[shard0] rpc.renew", "[shard1] rpc.renew"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// The shard1 handler starts 6ms after the root: its offset is rendered
	// relative to the trace start.
	if !strings.Contains(out, "+6ms") {
		t.Errorf("Render lacks relative offsets:\n%s", out)
	}
}
