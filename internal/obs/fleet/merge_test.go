package fleet

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// snapshots for the golden merge: two shard leaders with overlapping
// counter/gauge/histogram families plus a per-license family that must be
// re-keyed, and one structurally incompatible family.
func goldenNodes() map[string][]obs.ExportFamily {
	return map[string][]obs.ExportFamily{
		"shard0-n0": {
			{
				Name: "slremote_renewals_total", Help: "Granted renewals.", Kind: "counter",
				Children: []obs.ExportChild{{Value: 100}},
			},
			{
				Name: "cluster_shard_epoch", Kind: "gauge",
				LabelNames: []string{"shard"},
				Children:   []obs.ExportChild{{Labels: []string{"0"}, Value: 1}},
			},
			{
				Name: "cluster_repl_lag_bytes", Kind: "gauge",
				LabelNames: []string{"shard"},
				Children:   []obs.ExportChild{{Labels: []string{"0"}, Value: 10}},
			},
			{
				Name: "wire_rpc_latency_seconds", Kind: "histogram",
				Bounds: []float64{0.01, 0.1, 1},
				Children: []obs.ExportChild{
					{Buckets: []int64{90, 10, 0, 0}, Sum: 1.45, Count: 100},
				},
			},
			{
				Name: "slremote_license_units", Kind: "gauge",
				LabelNames: []string{"license"},
				Children:   []obs.ExportChild{{Labels: []string{"lic-a"}, Value: 500}},
			},
			{
				Name: "mismatched_family", Kind: "counter",
				Children: []obs.ExportChild{{Value: 1}},
			},
		},
		"shard1-n0": {
			{
				Name: "slremote_renewals_total", Help: "Granted renewals.", Kind: "counter",
				Children: []obs.ExportChild{{Value: 40}},
			},
			{
				Name: "cluster_shard_epoch", Kind: "gauge",
				LabelNames: []string{"shard"},
				// The same shard at a newer epoch (this node heard about the
				// failover): Max must win, not 1+3.
				Children: []obs.ExportChild{
					{Labels: []string{"0"}, Value: 3},
					{Labels: []string{"1"}, Value: 1},
				},
			},
			{
				Name: "cluster_repl_lag_bytes", Kind: "gauge",
				LabelNames: []string{"shard"},
				Children:   []obs.ExportChild{{Labels: []string{"1"}, Value: 7}},
			},
			{
				Name: "wire_rpc_latency_seconds", Kind: "histogram",
				Bounds: []float64{0.01, 0.1, 1},
				Children: []obs.ExportChild{
					{Buckets: []int64{0, 0, 95, 5}, Sum: 60, Count: 100},
				},
			},
			{
				Name: "slremote_license_units", Kind: "gauge",
				LabelNames: []string{"license"},
				// Same license as shard0-n0: after a failover both nodes can
				// report lic-a, so the series must be re-keyed, not summed.
				Children: []obs.ExportChild{{Labels: []string{"lic-a"}, Value: 450}},
			},
			{
				Name: "mismatched_family", Kind: "gauge", // kind conflict: dropped
				Children: []obs.ExportChild{{Value: 9}},
			},
		},
	}
}

func findFamily(t *testing.T, fams []obs.ExportFamily, name string) obs.ExportFamily {
	t.Helper()
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("family %q missing from merge (have %d families)", name, len(fams))
	return obs.ExportFamily{}
}

func TestMergeSnapshotsRules(t *testing.T) {
	res := MergeSnapshots(goldenNodes(), MergeOptions{})

	// Counters sum across nodes.
	if got := findFamily(t, res.Families, "slremote_renewals_total").Children[0].Value; got != 140 {
		t.Errorf("counter sum = %v, want 140", got)
	}

	// Epoch gauge follows the Max rule per shard label.
	epoch := findFamily(t, res.Families, "cluster_shard_epoch")
	byShard := map[string]float64{}
	for _, c := range epoch.Children {
		byShard[c.Labels[0]] = c.Value
	}
	if byShard["0"] != 3 || byShard["1"] != 1 {
		t.Errorf("epoch merge = %v, want shard0=3 (max, not sum) shard1=1", byShard)
	}

	// Default gauges sum; disjoint label sets just union.
	lag := findFamily(t, res.Families, "cluster_repl_lag_bytes")
	if len(lag.Children) != 2 {
		t.Errorf("lag children = %+v, want one per shard", lag.Children)
	}

	// Histograms merge bucket-wise so fleet quantiles come from real
	// counts: 200 observations, rank(p99)=198 falls in the third bucket
	// (90+10+95=195 < 198 ≤ 200 at bound 1.0 via the overflow clamp path).
	hist := findFamily(t, res.Families, "wire_rpc_latency_seconds")
	c := hist.Children[0]
	wantBuckets := []int64{90, 10, 95, 5}
	for i, b := range wantBuckets {
		if c.Buckets[i] != b {
			t.Fatalf("merged buckets = %v, want %v", c.Buckets, wantBuckets)
		}
	}
	if c.Count != 200 || c.Sum != 61.45 {
		t.Errorf("merged sum/count = %v/%v, want 61.45/200", c.Sum, c.Count)
	}
	p99 := obs.BucketQuantile(hist.Bounds, c.Buckets, 0.99)
	if p99 < 0.1 || p99 > 1 {
		t.Errorf("fleet p99 = %v, want within (0.1, 1] from merged buckets", p99)
	}
	// Averaging the per-node p99s instead would sit near 0.55; the real
	// fleet p99 from merged counts is pinned by the third bucket.
	if want := obs.BucketQuantile(hist.Bounds, []int64{90, 10, 95, 5}, 0.99); p99 != want {
		t.Errorf("p99 = %v, want recomputed %v", p99, want)
	}

	// Per-license series are re-keyed by node, never summed.
	lic := findFamily(t, res.Families, "slremote_license_units")
	if want := []string{"license", "node"}; len(lic.LabelNames) != 2 || lic.LabelNames[1] != want[1] {
		t.Fatalf("re-keyed label names = %v, want %v", lic.LabelNames, want)
	}
	if len(lic.Children) != 2 {
		t.Fatalf("re-keyed children = %+v, want 2 (one per node)", lic.Children)
	}
	byNode := map[string]float64{}
	for _, c := range lic.Children {
		if c.Labels[0] != "lic-a" {
			t.Fatalf("re-keyed labels = %v", c.Labels)
		}
		byNode[c.Labels[1]] = c.Value
	}
	if byNode["shard0-n0"] != 500 || byNode["shard1-n0"] != 450 {
		t.Errorf("re-keyed values = %v", byNode)
	}

	// The kind-conflicting family keeps the first node's shape and counts
	// the other's contribution as a conflict.
	if got := res.Conflicts["mismatched_family"]; got != 1 {
		t.Errorf("conflicts = %v, want mismatched_family:1", res.Conflicts)
	}
	if got := findFamily(t, res.Families, "mismatched_family"); got.Kind != "counter" || got.Children[0].Value != 1 {
		t.Errorf("conflicting family merged anyway: %+v", got)
	}
}

func TestMergeOptionsOverrides(t *testing.T) {
	nodes := map[string][]obs.ExportFamily{
		"a": {{Name: "custom_gauge", Kind: "gauge", Children: []obs.ExportChild{{Value: 5}}}},
		"b": {{Name: "custom_gauge", Kind: "gauge", Children: []obs.ExportChild{{Value: 3}}}},
	}
	res := MergeSnapshots(nodes, MergeOptions{GaugeRules: map[string]GaugeRule{"custom_gauge": RuleMin}})
	if got := res.Families[0].Children[0].Value; got != 3 {
		t.Errorf("RuleMin override: got %v, want 3", got)
	}

	// An explicit empty RekeyLabels disables re-keying: the license series
	// now merge under the gauge rule.
	lic := map[string][]obs.ExportFamily{
		"a": {{Name: "slremote_license_units", Kind: "gauge", LabelNames: []string{"license"},
			Children: []obs.ExportChild{{Labels: []string{"l"}, Value: 2}}}},
		"b": {{Name: "slremote_license_units", Kind: "gauge", LabelNames: []string{"license"},
			Children: []obs.ExportChild{{Labels: []string{"l"}, Value: 3}}}},
	}
	res = MergeSnapshots(lic, MergeOptions{RekeyLabels: []string{}})
	f := res.Families[0]
	if len(f.LabelNames) != 1 || len(f.Children) != 1 || f.Children[0].Value != 5 {
		t.Errorf("re-keying not disabled: %+v", f)
	}
}

// TestMergeGoldenExposition pins the merged Prometheus rendering end to
// end: rules applied, quantiles recomputed from merged buckets, stable
// ordering.
func TestMergeGoldenExposition(t *testing.T) {
	nodes := map[string][]obs.ExportFamily{
		"n1": {
			{Name: "demo_total", Help: "Demo counter.", Kind: "counter",
				Children: []obs.ExportChild{{Value: 2}}},
			{Name: "demo_seconds", Kind: "histogram", Bounds: []float64{1, 2},
				Children: []obs.ExportChild{{Buckets: []int64{4, 0, 0}, Sum: 2, Count: 4}}},
		},
		"n2": {
			{Name: "demo_total", Help: "Demo counter.", Kind: "counter",
				Children: []obs.ExportChild{{Value: 3}}},
			{Name: "demo_seconds", Kind: "histogram", Bounds: []float64{1, 2},
				Children: []obs.ExportChild{{Buckets: []int64{0, 4, 0}, Sum: 6, Count: 4}}},
		},
	}
	res := MergeSnapshots(nodes, MergeOptions{})
	var b bytes.Buffer
	if err := obs.WriteFamiliesPrometheus(&b, res.Families); err != nil {
		t.Fatalf("WriteFamiliesPrometheus: %v", err)
	}
	want := `# TYPE demo_seconds histogram
demo_seconds_bucket{le="1"} 4
demo_seconds_bucket{le="2"} 8
demo_seconds_bucket{le="+Inf"} 8
demo_seconds_sum 8
demo_seconds_count 8
# HELP demo_seconds_p50 Scrape-time p50 estimate from demo_seconds buckets.
# TYPE demo_seconds_p50 gauge
demo_seconds_p50 1
# HELP demo_seconds_p95 Scrape-time p95 estimate from demo_seconds buckets.
# TYPE demo_seconds_p95 gauge
demo_seconds_p95 1.9
# HELP demo_seconds_p99 Scrape-time p99 estimate from demo_seconds buckets.
# TYPE demo_seconds_p99 gauge
demo_seconds_p99 1.98
# HELP demo_total Demo counter.
# TYPE demo_total counter
demo_total 5
`
	if got := b.String(); got != want {
		t.Errorf("merged exposition:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
