package fleet

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ratls"
	"repro/internal/slremote"
	"repro/internal/wire"
)

// obsNode is one synthetic fleet member: a registry, tracer, and flight
// recorder behind a real obs HTTP endpoint.
type obsNode struct {
	reg *obs.Registry
	tr  *obs.Tracer
	rec *flight.Recorder
	ep  *obs.HTTPServer
}

func startObsNode(t *testing.T) *obsNode {
	t.Helper()
	n := &obsNode{reg: obs.NewRegistry(), tr: obs.NewTracer(64), rec: flight.NewRecorder(64)}
	ep, err := obs.StartHTTPOpts("127.0.0.1:0", n.reg, n.tr,
		obs.HandlerOptions{Events: n.rec.HTTPHandler()})
	if err != nil {
		t.Fatalf("StartHTTPOpts: %v", err)
	}
	t.Cleanup(func() { ep.Close() })
	n.ep = ep
	return n
}

func (n *obsNode) url() string { return "http://" + n.ep.Addr() }

// startWireObsNode serves the same bundle through a wire server's
// obs_pull RPC instead of HTTP — the attested-channel scrape path.
func startWireObsNode(t *testing.T, n *obsNode) string {
	t.Helper()
	remote, err := slremote.NewServer(slremote.DefaultConfig(), attest.NewService())
	if err != nil {
		t.Fatalf("slremote.NewServer: %v", err)
	}
	srv, err := wire.NewServer(remote, t.Logf, ratls.Insecure())
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	srv.SetObsSource(func(traceFilter string) wire.ObsPullResponse {
		var resp wire.ObsPullResponse
		resp.Metrics, _ = json.Marshal(n.reg.Export())
		resp.Trace, _ = json.Marshal(n.tr.Dump(traceFilter))
		resp.Events, _ = json.Marshal(n.rec.Dump())
		return resp
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String()
}

func deadTargetURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

func TestAggregatorScrapeMergeAndSelfMetrics(t *testing.T) {
	a := startObsNode(t)
	a.reg.Counter("fleet_demo_total", "demo").Add(2)
	b := startObsNode(t)
	b.reg.Counter("fleet_demo_total", "demo").Add(3)
	wireAddr := startWireObsNode(t, b)

	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	agg := New(Options{
		Targets: []Target{
			{Name: "node-a", URL: a.url()},
			{Name: "node-b", Addr: wireAddr},
			{Name: "node-dead", URL: deadTargetURL(t)},
		},
		Timeout: 2 * time.Second,
		Now:     func() time.Time { return now },
		Logf:    t.Logf,
	})

	// The dead node makes the one-shot verdict an error, but the live
	// nodes' snapshots are folded in regardless.
	if err := agg.ScrapeOnce(); err == nil {
		t.Fatal("ScrapeOnce with a dead target returned nil")
	}

	merged := agg.Merged()
	get := func(name string, labels ...string) (obs.ExportChild, bool) {
		for _, f := range merged {
			if f.Name != name {
				continue
			}
			for _, c := range f.Children {
				if len(labels) == 0 || (len(c.Labels) > 0 && c.Labels[0] == labels[0]) {
					return c, true
				}
			}
		}
		return obs.ExportChild{}, false
	}

	if c, ok := get("fleet_demo_total"); !ok || c.Value != 5 {
		t.Errorf("merged counter = %+v (ok=%v), want 5 across HTTP and wire scrapes", c, ok)
	}
	for name, want := range map[string]float64{"node-a": 1, "node-b": 1, "node-dead": 0} {
		if c, ok := get("fleet_node_up", name); !ok || c.Value != want {
			t.Errorf("fleet_node_up{%s} = %+v (ok=%v), want %v", name, c, ok, want)
		}
	}
	if c, ok := get("fleet_scrape_errors_total", "node-dead"); !ok || c.Value != 1 {
		t.Errorf("fleet_scrape_errors_total{node-dead} = %+v (ok=%v), want 1", c, ok)
	}
	if c, ok := get("fleet_scrape_age_seconds", "node-a"); !ok || c.Value != 0 {
		t.Errorf("fleet_scrape_age_seconds{node-a} = %+v (ok=%v), want 0 under the fixed clock", c, ok)
	}
	if _, ok := get("fleet_scrape_age_seconds", "node-dead"); ok {
		t.Error("never-scraped node has an age series; staleness must be unmeasurable, not 0")
	}

	// Node health: the dead node reports age -1 (never scraped) and its
	// last error.
	var dead NodeStatus
	for _, ns := range agg.Nodes() {
		if ns.Name == "node-dead" {
			dead = ns
		}
	}
	if dead.Up || dead.AgeSeconds != -1 || dead.Errors != 1 || dead.LastError == "" {
		t.Errorf("dead node status = %+v", dead)
	}
}

func TestAggregatorStaleSnapshotSurvivesNodeDeath(t *testing.T) {
	a := startObsNode(t)
	a.reg.Counter("stale_demo_total", "demo").Add(7)

	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := t0
	agg := New(Options{
		Targets: []Target{{Name: "node-a", URL: a.url()}},
		Timeout: 2 * time.Second,
		Now:     func() time.Time { return now },
	})
	if err := agg.ScrapeOnce(); err != nil {
		t.Fatalf("ScrapeOnce: %v", err)
	}

	// The node dies; the next scrape fails but the last good snapshot
	// stays, visibly stale.
	a.ep.Close()
	now = t0.Add(30 * time.Second)
	if err := agg.ScrapeOnce(); err == nil {
		t.Fatal("scrape of a closed endpoint succeeded")
	}
	merged := agg.Merged()
	var gotCounter, gotAge, gotUp float64
	for _, f := range merged {
		for _, c := range f.Children {
			switch f.Name {
			case "stale_demo_total":
				gotCounter = c.Value
			case "fleet_scrape_age_seconds":
				gotAge = c.Value
			case "fleet_node_up":
				gotUp = c.Value
			}
		}
	}
	if gotCounter != 7 {
		t.Errorf("stale snapshot lost: counter = %v, want 7", gotCounter)
	}
	if gotAge != 30 {
		t.Errorf("staleness = %v, want 30s", gotAge)
	}
	if gotUp != 0 {
		t.Errorf("fleet_node_up = %v for dead node, want 0", gotUp)
	}
}

func TestAggregatorStitchTraceAndEvents(t *testing.T) {
	client := startObsNode(t)
	server := startObsNode(t)

	// One cross-node trace: the client's RPC span context is carried to
	// the server, whose handler span links into the same trace — exactly
	// what the wire layer does on a real request.
	root := client.tr.Start("client.request")
	rpc := root.Child("rpc.renew")
	handler := server.tr.StartLinked("rpc.renew", rpc.Context())
	handler.End(nil)
	rpc.End(nil)
	root.End(nil)
	traceID := root.Context().Trace.String()

	client.rec.Emit("test.request_sent")
	server.rec.Emit("test.request_handled")

	agg := New(Options{
		Targets: []Target{
			{Name: "client", URL: client.url()},
			{Name: "server", URL: server.url()},
		},
		Timeout: 2 * time.Second,
	})

	tr := agg.StitchTrace(traceID)
	if tr.Spans != 3 || len(tr.Nodes) != 2 {
		t.Fatalf("stitched trace: %d spans on %v, want 3 spans on 2 nodes", tr.Spans, tr.Nodes)
	}
	if len(tr.Roots) != 1 || len(tr.Orphans) != 0 {
		t.Fatalf("roots=%d orphans=%d, want 1/0", len(tr.Roots), len(tr.Orphans))
	}
	hop := tr.Roots[0].Children[0]
	if len(hop.Children) != 1 || hop.Children[0].Node != "server" {
		t.Fatalf("handler span not attached under the client RPC: %+v", hop.Children)
	}

	events := agg.Events()
	if len(events) != 2 {
		t.Fatalf("merged events = %d, want 2", len(events))
	}
	if events[0].Node == "" || events[1].Node == "" {
		t.Fatalf("merged events missing node stamps: %+v", events)
	}
}

func TestAggregatorHTTPEndpoint(t *testing.T) {
	a := startObsNode(t)
	a.reg.Counter("endpoint_demo_total", "demo").Add(1)
	agg := New(Options{
		Targets: []Target{{Name: "node-a", URL: a.url()}},
		Timeout: 2 * time.Second,
	})
	if err := agg.ScrapeOnce(); err != nil {
		t.Fatalf("ScrapeOnce: %v", err)
	}
	srv, err := agg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "endpoint_demo_total 1") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/metrics?format=export"); code != 200 || !strings.Contains(body, `"endpoint_demo_total"`) {
		t.Errorf("/metrics?format=export: %d\n%s", code, body)
	}
	if code, body := get("/nodes"); code != 200 || !strings.Contains(body, `"node-a"`) {
		t.Errorf("/nodes: %d\n%s", code, body)
	}
	if code, _ := get("/trace"); code != http.StatusBadRequest {
		t.Errorf("/trace without id: %d, want 400", code)
	}
	if code, body := get("/events"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Errorf("/events: %d\n%s", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz: %d", code)
	}
}
