// Package fleet aggregates many nodes' observability planes into one:
// it scrapes every node's full-fidelity metric exposition (over HTTP or
// the attested wire channel), merges the families under per-kind rules
// — counters sum, gauges follow a sum/max/min rule table, histograms
// merge bucket-wise so fleet quantiles are recomputed from real counts
// — stitches cross-node traces by TraceID, and merges flight-recorder
// timelines. One aggregator endpoint then answers for the whole fleet.
package fleet

import (
	"sort"

	"repro/internal/obs"
)

// GaugeRule says how one gauge family combines across nodes.
type GaugeRule int

const (
	// RuleSum adds the nodes' values — right for sizes and backlogs
	// (bytes of lag, snapshot bytes) where the fleet total is the sum of
	// parts. The default.
	RuleSum GaugeRule = iota
	// RuleMax keeps the highest value — right for high-water marks and
	// versions (a shard's epoch is whatever the newest leader says).
	RuleMax
	// RuleMin keeps the lowest value — right for "weakest link" gauges.
	RuleMin
)

// DefaultGaugeRules is the built-in rule table; families not listed
// follow RuleSum. Callers may override per family via MergeOptions.
func DefaultGaugeRules() map[string]GaugeRule {
	return map[string]GaugeRule{
		"cluster_shard_epoch":    RuleMax, // an epoch is a version, not a quantity
		"store_recovery_seconds": RuleMax, // slowest recovery bounds the fleet
	}
}

// DefaultRekeyLabels are the label names that mark a family as carrying
// per-entity series (one child per license, client, or session). Such
// series must not be summed across nodes blindly — after a failover two
// nodes may both report license L — so the merger re-keys them by
// appending a "node" label instead.
func DefaultRekeyLabels() []string { return []string{"license", "client", "slid"} }

// MergeOptions tunes MergeSnapshots.
type MergeOptions struct {
	// GaugeRules overrides (or extends) DefaultGaugeRules per family.
	GaugeRules map[string]GaugeRule
	// RekeyLabels overrides DefaultRekeyLabels (nil: the default; an
	// explicit empty slice disables re-keying).
	RekeyLabels []string
}

func (o MergeOptions) gaugeRule(family string) GaugeRule {
	if r, ok := o.GaugeRules[family]; ok {
		return r
	}
	if r, ok := DefaultGaugeRules()[family]; ok {
		return r
	}
	return RuleSum
}

// MergeResult is MergeSnapshots' output: the merged families (sorted by
// name) and, per family, how many node contributions had to be dropped
// because they disagreed structurally with the rest of the fleet.
type MergeResult struct {
	Families  []obs.ExportFamily
	Conflicts map[string]int64
}

// mergedFamily accumulates one family across nodes.
type mergedFamily struct {
	ef       obs.ExportFamily
	rekeyed  bool
	children map[string]int // label key -> index into ef.Children
}

// MergeSnapshots merges per-node export snapshots into one fleet-wide
// family set. Counters sum; gauges follow the rule table; histograms
// with identical bounds merge bucket-wise (so quantiles derived from the
// result reflect real fleet-wide counts, not averaged per-node
// quantiles); per-entity families (see RekeyLabels) gain a "node" label
// instead of merging. Structural disagreements — kind or label-name or
// bucket-bound mismatches between nodes — drop the offending node's
// contribution and are counted in Conflicts. Node names are processed in
// sorted order, so the output is deterministic.
func MergeSnapshots(nodes map[string][]obs.ExportFamily, opts MergeOptions) MergeResult {
	rekeySet := make(map[string]bool)
	rekeyLabels := opts.RekeyLabels
	if rekeyLabels == nil {
		rekeyLabels = DefaultRekeyLabels()
	}
	for _, l := range rekeyLabels {
		rekeySet[l] = true
	}

	names := make([]string, 0, len(nodes))
	for name := range nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	merged := make(map[string]*mergedFamily)
	var order []string
	conflicts := make(map[string]int64)

	for _, node := range names {
		for _, ef := range nodes[node] {
			mf, ok := merged[ef.Name]
			if !ok {
				mf = newMergedFamily(ef, rekeySet)
				merged[ef.Name] = mf
				order = append(order, ef.Name)
			} else if !compatible(mf.ef, ef) {
				conflicts[ef.Name]++
				continue
			}
			mergeChildren(mf, ef, node, opts)
		}
	}

	sort.Strings(order)
	out := make([]obs.ExportFamily, 0, len(order))
	for _, name := range order {
		out = append(out, merged[name].ef)
	}
	return MergeResult{Families: out, Conflicts: conflicts}
}

func newMergedFamily(ef obs.ExportFamily, rekeySet map[string]bool) *mergedFamily {
	mf := &mergedFamily{
		ef: obs.ExportFamily{
			Name:       ef.Name,
			Help:       ef.Help,
			Kind:       ef.Kind,
			LabelNames: append([]string(nil), ef.LabelNames...),
			Bounds:     append([]float64(nil), ef.Bounds...),
		},
		children: make(map[string]int),
	}
	for _, l := range ef.LabelNames {
		if rekeySet[l] {
			mf.rekeyed = true
			mf.ef.LabelNames = append(mf.ef.LabelNames, "node")
			break
		}
	}
	return mf
}

// compatible reports whether a node's copy of a family is structurally
// mergeable with the fleet's: same kind, same label names, and (for
// histograms) identical bucket bounds — merging buckets with different
// bounds would fabricate counts.
func compatible(have obs.ExportFamily, ef obs.ExportFamily) bool {
	if have.Kind != ef.Kind {
		return false
	}
	want := have.LabelNames
	if len(want) > 0 && want[len(want)-1] == "node" && len(want) == len(ef.LabelNames)+1 {
		want = want[:len(want)-1] // re-keyed family: compare pre-rekey names
	}
	if len(want) != len(ef.LabelNames) {
		return false
	}
	for i := range want {
		if want[i] != ef.LabelNames[i] {
			return false
		}
	}
	if len(have.Bounds) != len(ef.Bounds) {
		return false
	}
	for i := range have.Bounds {
		if have.Bounds[i] != ef.Bounds[i] {
			return false
		}
	}
	return true
}

func mergeChildren(mf *mergedFamily, ef obs.ExportFamily, node string, opts MergeOptions) {
	for _, c := range ef.Children {
		labels := append([]string(nil), c.Labels...)
		if mf.rekeyed {
			labels = append(labels, node)
		}
		key := labelKey(labels)
		idx, ok := mf.children[key]
		if !ok {
			nc := c
			nc.Labels = labels
			nc.Buckets = append([]int64(nil), c.Buckets...)
			mf.children[key] = len(mf.ef.Children)
			mf.ef.Children = append(mf.ef.Children, nc)
			continue
		}
		dst := &mf.ef.Children[idx]
		switch mf.ef.Kind {
		case "counter":
			dst.Value += c.Value
		case "gauge":
			switch opts.gaugeRule(mf.ef.Name) {
			case RuleMax:
				if c.Value > dst.Value {
					dst.Value = c.Value
				}
			case RuleMin:
				if c.Value < dst.Value {
					dst.Value = c.Value
				}
			default:
				dst.Value += c.Value
			}
		case "histogram":
			if len(dst.Buckets) == len(c.Buckets) {
				for i := range c.Buckets {
					dst.Buckets[i] += c.Buckets[i]
				}
				dst.Sum += c.Sum
				dst.Count += c.Count
			}
		}
	}
}

// labelKey mirrors the obs registry's child keying (positional values
// joined on an unprintable separator) for the merger's own maps.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\x1f')
		}
		b = append(b, v...)
	}
	return string(b)
}
