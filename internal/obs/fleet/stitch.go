package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Span is one node's span placed in a fleet-wide trace tree.
type Span struct {
	// Node names the node whose tracer recorded the span.
	Node string `json:"node"`
	obs.Event
	// Children are spans whose parent resolved to this span, sorted by
	// start time.
	Children []*Span `json:"children,omitempty"`
	// Orphan marks a span whose parent ID resolved to no span on any
	// node — the parent ran on a node that died, was never scraped, or
	// whose tracer ring already evicted it.
	Orphan bool `json:"orphan,omitempty"`
}

// Trace is a stitched cross-node trace: every span any node recorded
// for one TraceID, joined into trees by parent links that may cross
// node boundaries (a client's RPC span on node A parents the handler
// span on node B).
type Trace struct {
	// Trace is the hex 128-bit trace ID.
	Trace string `json:"trace"`
	// Nodes lists the nodes that contributed at least one span.
	Nodes []string `json:"nodes"`
	// Spans is the total span count.
	Spans int `json:"spans"`
	// Truncated is set when any contributing tracer reported dropped
	// spans: the tree may be missing interior nodes.
	Truncated bool `json:"truncated"`
	// Roots are spans with no parent (Parent == 0), sorted by start.
	Roots []*Span `json:"roots"`
	// Orphans are spans whose parent could not be found on any node;
	// each is the root of its own recovered subtree. A failover trace
	// typically strands the dead leader's children here.
	Orphans []*Span `json:"orphans,omitempty"`
}

type nodeSpanKey struct {
	node string
	span uint64
}

// Stitch joins per-node trace dumps into one fleet-wide trace. Span IDs
// are only unique per tracer, so spans are keyed by (node, span ID):
// a parent reference first resolves on the child's own node, then
// cross-node — preferring a unique ID match, breaking ties by time
// containment (the parent's interval must cover the child's start).
// Spans whose parent resolves nowhere are kept as orphans rather than
// dropped: a dead node's missing spans should be visible, not silent.
// When traceID is non-empty, spans of other traces are ignored.
func Stitch(traceID string, nodes map[string]obs.TraceDump) *Trace {
	t := &Trace{Trace: traceID}

	names := make([]string, 0, len(nodes))
	for name := range nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	var all []*Span
	byNodeSpan := make(map[nodeSpanKey]*Span)
	byID := make(map[uint64][]*Span)
	for _, node := range names {
		dump := nodes[node]
		contributed := false
		for _, ev := range dump.Events {
			if traceID != "" && ev.Trace != traceID {
				continue
			}
			s := &Span{Node: node, Event: ev}
			all = append(all, s)
			byNodeSpan[nodeSpanKey{node, ev.Span}] = s
			byID[ev.Span] = append(byID[ev.Span], s)
			contributed = true
		}
		if contributed {
			t.Nodes = append(t.Nodes, node)
			if dump.Truncated {
				t.Truncated = true
			}
		}
	}
	t.Spans = len(all)

	for _, s := range all {
		if s.Parent == 0 {
			t.Roots = append(t.Roots, s)
			continue
		}
		p := resolveParent(s, byNodeSpan, byID)
		if p == nil {
			s.Orphan = true
			t.Orphans = append(t.Orphans, s)
			continue
		}
		p.Children = append(p.Children, s)
	}

	byStart := func(spans []*Span) {
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	}
	byStart(t.Roots)
	byStart(t.Orphans)
	for _, s := range all {
		byStart(s.Children)
	}
	return t
}

// resolveParent finds s's parent span: same-node first (span IDs are
// per-tracer sequences, so a local match is authoritative), then
// cross-node by ID — unique match wins, ambiguity falls back to the
// candidate whose interval contains the child's start.
func resolveParent(s *Span, byNodeSpan map[nodeSpanKey]*Span, byID map[uint64][]*Span) *Span {
	if p, ok := byNodeSpan[nodeSpanKey{s.Node, s.Parent}]; ok && p != s {
		return p
	}
	var candidates []*Span
	for _, p := range byID[s.Parent] {
		if p != s && p.Node != s.Node {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 1 {
		return candidates[0]
	}
	var contained []*Span
	for _, p := range candidates {
		if !s.Start.Before(p.Start) && !s.Start.After(p.Start.Add(p.Duration)) {
			contained = append(contained, p)
		}
	}
	if len(contained) == 1 {
		return contained[0]
	}
	return nil
}

// Render draws the stitched trace as an indented timeline: offsets are
// relative to the earliest span, one line per span with its node, name,
// duration, and error, orphaned subtrees flagged at the bottom.
func (t *Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d spans across %d nodes", t.Trace, t.Spans, len(t.Nodes))
	if t.Truncated {
		b.WriteString(" (TRUNCATED: some tracer rings dropped spans)")
	}
	b.WriteByte('\n')
	t0 := t.earliest()
	for _, s := range t.Roots {
		renderSpan(&b, s, t0, 1)
	}
	if len(t.Orphans) > 0 {
		b.WriteString("  orphaned subtrees (parent span missing — dead or unscraped node):\n")
		for _, s := range t.Orphans {
			renderSpan(&b, s, t0, 2)
		}
	}
	return b.String()
}

func (t *Trace) earliest() time.Time {
	var t0 time.Time
	walk := func(spans []*Span) {
		for _, s := range spans {
			if t0.IsZero() || s.Start.Before(t0) {
				t0 = s.Start
			}
		}
	}
	walk(t.Roots)
	walk(t.Orphans)
	return t0
}

func renderSpan(b *strings.Builder, s *Span, t0 time.Time, depth int) {
	fmt.Fprintf(b, "%10s %s[%s] %s (%s)",
		"+"+s.Start.Sub(t0).Round(time.Microsecond).String(),
		strings.Repeat("  ", depth), s.Node, s.Name,
		s.Duration.Round(time.Microsecond))
	if s.Err != "" {
		fmt.Fprintf(b, " err=%q", s.Err)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(b, c, t0, depth+1)
	}
}
