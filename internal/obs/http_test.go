package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("renewals_total", "Renewals.").Add(3)
	tr := NewTracer(16)
	tr.Start("rpc.renew").End(nil)

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "renewals_total 3") {
		t.Fatalf("/metrics missing sample:\n%s", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}

	body, ct = get("/metrics?format=json")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json content type = %q", ct)
	}
	var samples []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(body), &samples); err != nil {
		t.Fatalf("json decode: %v\n%s", err, body)
	}
	if len(samples) != 1 || samples[0].Name != "renewals_total" || samples[0].Value != 3 {
		t.Fatalf("json samples = %+v", samples)
	}

	body, _ = get("/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	body, _ = get("/trace")
	var dump TraceDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("trace decode: %v\n%s", err, body)
	}
	if len(dump.Events) != 1 || dump.Events[0].Name != "rpc.renew" {
		t.Fatalf("trace events = %+v", dump.Events)
	}
	if dump.Truncated || dump.Dropped != 0 {
		t.Fatalf("fresh tracer dump marked truncated: %+v", dump)
	}
}

// TestHandlerOptsEndpoints covers the optional surface: the liveness /
// readiness split, the trace filter, the audit mount, and pprof.
func TestHandlerOptsEndpoints(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	alpha := tr.Start("alpha")
	alphaTrace := alpha.Context().Trace.String()
	alpha.End(nil)
	tr.Start("beta").End(nil)

	var ready atomic.Bool
	srv := httptest.NewServer(HandlerOpts(reg, tr, HandlerOptions{
		Ready: ready.Load,
		Audit: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			io.WriteString(w, "audit-dump")
		}),
		PProf: true,
	}))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Liveness is unconditional; readiness flips with the gate.
	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || strings.TrimSpace(body) != "not ready" {
		t.Errorf("/readyz before ready = %d %q", code, body)
	}
	ready.Store(true)
	if code, body := get("/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ready" {
		t.Errorf("/readyz after ready = %d %q", code, body)
	}

	// ?trace= filters the dump to one trace.
	_, body := get("/trace?trace=" + alphaTrace)
	var dump TraceDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("trace decode: %v\n%s", err, body)
	}
	if len(dump.Events) != 1 || dump.Events[0].Name != "alpha" {
		t.Errorf("filtered trace = %+v, want only alpha", dump.Events)
	}
	var empty TraceDump
	_, body = get("/trace?trace=" + strings.Repeat("f", 32))
	if err := json.Unmarshal([]byte(body), &empty); err != nil {
		t.Fatalf("trace decode: %v\n%s", err, body)
	}
	if len(empty.Events) != 0 {
		t.Errorf("unknown trace filter = %+v, want no events", empty.Events)
	}

	if code, body := get("/audit"); code != http.StatusOK || body != "audit-dump" {
		t.Errorf("/audit = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	// Without the options the extra endpoints 404 and /readyz is always 200.
	bare := httptest.NewServer(Handler(reg, tr))
	defer bare.Close()
	for path, want := range map[string]int{
		"/readyz":              http.StatusOK,
		"/audit":               http.StatusNotFound,
		"/debug/pprof/cmdline": http.StatusNotFound,
	} {
		resp, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("bare %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestStartHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up", "Up.").Set(1)
	srv, err := StartHTTP("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatalf("StartHTTP: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("metrics = %s", body)
	}
	// /trace with a nil tracer serves an empty dump, not a panic.
	resp2, err := http.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	defer resp2.Body.Close()
	var dump TraceDump
	if err := json.NewDecoder(resp2.Body).Decode(&dump); err != nil {
		t.Fatalf("/trace with nil tracer: decode: %v", err)
	}
	if len(dump.Events) != 0 || dump.Truncated {
		t.Fatalf("/trace with nil tracer = %+v", dump)
	}
}
