package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("renewals_total", "Renewals.").Add(3)
	tr := NewTracer(16)
	tr.Start("rpc.renew").End(nil)

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "renewals_total 3") {
		t.Fatalf("/metrics missing sample:\n%s", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}

	body, ct = get("/metrics?format=json")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json content type = %q", ct)
	}
	var samples []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(body), &samples); err != nil {
		t.Fatalf("json decode: %v\n%s", err, body)
	}
	if len(samples) != 1 || samples[0].Name != "renewals_total" || samples[0].Value != 3 {
		t.Fatalf("json samples = %+v", samples)
	}

	body, _ = get("/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	body, _ = get("/trace")
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("trace decode: %v\n%s", err, body)
	}
	if len(events) != 1 || events[0].Name != "rpc.renew" {
		t.Fatalf("trace events = %+v", events)
	}
}

func TestStartHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up", "Up.").Set(1)
	srv, err := StartHTTP("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatalf("StartHTTP: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("metrics = %s", body)
	}
	// /trace with a nil tracer serves an empty list, not a panic.
	resp2, err := http.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	defer resp2.Body.Close()
	b2, _ := io.ReadAll(resp2.Body)
	if strings.TrimSpace(string(b2)) != "[]" {
		t.Fatalf("/trace with nil tracer = %q", b2)
	}
}
