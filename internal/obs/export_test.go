package obs

import (
	"bytes"
	"strings"
	"testing"
)

func exportTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("exp_checks_total", "Checks.").Add(42)
	reg.GaugeVec("exp_lag_bytes", "Lag.", "shard").With("0").Set(10)
	h := reg.Histogram("exp_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // overflow bucket
	return reg
}

func TestExportRoundTrip(t *testing.T) {
	reg := exportTestRegistry()
	fams := reg.Export()

	var b bytes.Buffer
	if err := WriteExport(&b, fams); err != nil {
		t.Fatalf("WriteExport: %v", err)
	}
	got, err := ReadExport(&b)
	if err != nil {
		t.Fatalf("ReadExport: %v", err)
	}
	if len(got) != len(fams) {
		t.Fatalf("round trip lost families: %d vs %d", len(got), len(fams))
	}
	byName := map[string]ExportFamily{}
	for _, f := range got {
		byName[f.Name] = f
	}
	if c := byName["exp_checks_total"].Children[0]; c.Value != 42 {
		t.Errorf("counter value = %v, want 42", c.Value)
	}
	lag := byName["exp_lag_bytes"]
	if len(lag.LabelNames) != 1 || lag.LabelNames[0] != "shard" || lag.Children[0].Labels[0] != "0" {
		t.Errorf("gauge labels lost: %+v", lag)
	}
	hist := byName["exp_latency_seconds"]
	if len(hist.Bounds) != 2 || len(hist.Children[0].Buckets) != 3 {
		t.Fatalf("histogram shape: bounds=%v buckets=%v", hist.Bounds, hist.Children[0].Buckets)
	}
	wantBuckets := []int64{1, 1, 1}
	for i, n := range wantBuckets {
		if hist.Children[0].Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d (non-cumulative, overflow last)", i, hist.Children[0].Buckets[i], n)
		}
	}
	if hist.Children[0].Count != 3 {
		t.Errorf("count = %d, want 3", hist.Children[0].Count)
	}
}

// TestWriteFamiliesPrometheusMatchesRegistry pins the fleet aggregator's
// contract: rendering exported families produces the identical text the
// node itself would serve, including the derived quantile gauges.
func TestWriteFamiliesPrometheusMatchesRegistry(t *testing.T) {
	reg := exportTestRegistry()
	var direct, viaExport bytes.Buffer
	if err := reg.WritePrometheus(&direct); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := WriteFamiliesPrometheus(&viaExport, reg.Export()); err != nil {
		t.Fatalf("WriteFamiliesPrometheus: %v", err)
	}
	if direct.String() != viaExport.String() {
		t.Errorf("export rendering diverged from the registry's:\n--- direct ---\n%s--- via export ---\n%s",
			direct.String(), viaExport.String())
	}
}

func TestBucketQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		name   string
		counts []int64
		q      float64
		want   float64
	}{
		{"median interpolates", []int64{10, 10, 0, 0}, 0.5, 1},
		{"upper bucket", []int64{0, 0, 10, 0}, 0.5, 3},
		{"overflow clamps to highest finite bound", []int64{0, 0, 0, 10}, 0.99, 4},
		{"empty", []int64{0, 0, 0, 0}, 0.5, 0},
		{"q over 1 clamps", []int64{10, 0, 0, 0}, 2, 1},
	}
	for _, tc := range cases {
		if got := BucketQuantile(bounds, tc.counts, tc.q); got != tc.want {
			t.Errorf("%s: BucketQuantile(%v, %v) = %v, want %v", tc.name, tc.counts, tc.q, got, tc.want)
		}
	}
	// A length mismatch (wrong exposition) yields 0, never a panic.
	if got := BucketQuantile(bounds, []int64{1, 2}, 0.5); got != 0 {
		t.Errorf("mismatched counts: got %v, want 0", got)
	}
	if got := BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("empty bounds: got %v, want 0", got)
	}
}

func TestCardinalityGuard(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabelLimit(2)
	vec := reg.CounterVec("guard_total", "Guarded.", "client")
	vec.With("a").Inc()
	vec.With("b").Inc()
	vec.With("c").Inc() // over the cap: collapses into __other__
	vec.With("d").Inc() // joins the same overflow series
	vec.With("a").Inc() // existing series stay addressable

	snap := reg.Snapshot()
	if got := snap.Get("guard_total", map[string]string{"client": "a"}); got != 2 {
		t.Errorf(`guard_total{client="a"} = %v, want 2`, got)
	}
	if got := snap.Get("guard_total", map[string]string{"client": OverflowLabel}); got != 2 {
		t.Errorf(`guard_total{client=%q} = %v, want 2 (c and d collapsed)`, OverflowLabel, got)
	}
	if got := snap.Get("guard_total", map[string]string{"client": "c"}); got != 0 {
		t.Errorf(`guard_total{client="c"} = %v, want 0 (dropped)`, got)
	}
	if got := snap.Get("obs_dropped_label_values_total", map[string]string{"family": "guard_total"}); got != 2 {
		t.Errorf("obs_dropped_label_values_total = %v, want 2", got)
	}

	// Removing the cap admits new series again.
	reg.SetLabelLimit(0)
	vec.With("e").Inc()
	if got := reg.Snapshot().Get("guard_total", map[string]string{"client": "e"}); got != 1 {
		t.Errorf(`after uncapping, guard_total{client="e"} = %v, want 1`, got)
	}
}

func TestCardinalityGuardExposition(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabelLimit(1)
	vec := reg.GaugeVec("guard_gauge", "Guarded.", "slid")
	vec.With("one").Set(1)
	vec.With("two").Set(2)

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `guard_gauge{slid="__other__"} 2`) {
		t.Errorf("overflow series missing:\n%s", out)
	}
	if !strings.Contains(out, `obs_dropped_label_values_total{family="guard_gauge"} 1`) {
		t.Errorf("drop counter missing:\n%s", out)
	}
}
