package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span in the tracer's ring buffer.
type Event struct {
	// Span is the per-request span ID (monotonic across the tracer).
	Span uint64 `json:"span"`
	// Parent is the enclosing span's ID, 0 for a root span.
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the operation (e.g. "rpc.renew").
	Name string `json:"name"`
	// Start is the span's wall-clock start time.
	Start time.Time `json:"start"`
	// Duration is how long the span ran.
	Duration time.Duration `json:"duration_ns"`
	// Err is the failure message, empty on success.
	Err string `json:"err,omitempty"`
	// Attrs carries optional key=value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a fixed-size ring buffer: always on, bounded
// memory, newest events overwrite the oldest. The /trace endpoint dumps
// the buffer. A nil *Tracer is safe to use everywhere (all ops no-op).
type Tracer struct {
	seq atomic.Uint64

	mu   sync.Mutex
	buf  []Event
	next int  // ring write cursor
	full bool // buffer has wrapped
}

// NewTracer returns a tracer holding the last capacity events (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

var defaultTracer = NewTracer(4096)

// DefaultTracer returns the process-wide tracer the daemons expose.
func DefaultTracer() *Tracer { return defaultTracer }

// Span is one in-flight operation. Create with Tracer.Start, finish with
// End. A nil *Span is safe (all ops no-op).
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  map[string]string
}

// Start begins a root span. Safe on a nil receiver (returns nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, id: t.seq.Add(1), name: name, start: time.Now()}
}

// ID returns the span's request ID (0 on a nil receiver).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child begins a sub-span sharing this span's tracer. Safe on a nil
// receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	child := s.tr.Start(name)
	child.parent = s.id
	return child
}

// Annotate attaches a key=value attribute. Safe on a nil receiver.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End completes the span, recording it (with err's message, if any) into
// the tracer's ring. Safe on a nil receiver.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	ev := Event{
		Span:     s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.tr.record(ev)
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the buffered events, oldest first. Safe on a nil receiver
// (returns nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len returns how many events are buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}
