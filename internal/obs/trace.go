package obs

import (
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit identifier shared by every span of one logical
// request, including spans recorded by other processes. It is what lets
// a renewal be followed across the wire: the client's RPC span and the
// server's handler span carry the same TraceID even though their span
// IDs come from independent tracers.
type TraceID [16]byte

// NewTraceID returns a random, non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

// IsZero reports whether the trace ID is the all-zero (absent) value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, fmt.Errorf("obs: trace ID %q: want %d hex digits", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace ID %q: %w", s, err)
	}
	return id, nil
}

// SpanContext is the portable identity of a span: enough to link a span
// recorded in another process (or another tracer) back to its parent.
type SpanContext struct {
	Trace TraceID
	Span  uint64
}

// Event is one completed span in the tracer's ring buffer.
type Event struct {
	// Trace is the hex 128-bit trace ID shared across processes.
	Trace string `json:"trace,omitempty"`
	// Span is the per-request span ID (monotonic across the tracer).
	Span uint64 `json:"span"`
	// Parent is the enclosing span's ID, 0 for a root span.
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the operation (e.g. "rpc.renew").
	Name string `json:"name"`
	// Start is the span's wall-clock start time.
	Start time.Time `json:"start"`
	// Duration is how long the span ran.
	Duration time.Duration `json:"duration_ns"`
	// Err is the failure message, empty on success.
	Err string `json:"err,omitempty"`
	// Attrs carries optional key=value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a fixed-size ring buffer: always on, bounded
// memory, newest events overwrite the oldest. The /trace endpoint dumps
// the buffer. A nil *Tracer is safe to use everywhere (all ops no-op).
type Tracer struct {
	seq     atomic.Uint64
	dropped atomic.Int64 // spans evicted by ring wrap before export

	mu   sync.Mutex
	buf  []Event
	next int  // ring write cursor
	full bool // buffer has wrapped
}

// NewTracer returns a tracer holding the last capacity events (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

var defaultTracer = NewTracer(4096)

// DefaultTracer returns the process-wide tracer the daemons expose.
func DefaultTracer() *Tracer { return defaultTracer }

// Span is one in-flight operation. Create with Tracer.Start, finish with
// End. A nil *Span is safe (all ops no-op).
type Span struct {
	tr     *Tracer
	trace  TraceID
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  map[string]string
}

// Start begins a root span under a fresh TraceID. Safe on a nil receiver
// (returns nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, trace: NewTraceID(), id: t.seq.Add(1), name: name, start: time.Now()}
}

// StartLinked begins a span that continues a trace started elsewhere —
// typically a remote caller whose SpanContext arrived over the wire. The
// new span keeps this tracer's local span-ID sequence but adopts the
// caller's TraceID and records the caller's span as its parent. A zero
// SpanContext degrades to Start. Safe on a nil receiver.
func (t *Tracer) StartLinked(name string, sc SpanContext) *Span {
	if t == nil {
		return nil
	}
	if sc.Trace.IsZero() {
		return t.Start(name)
	}
	return &Span{
		tr:     t,
		trace:  sc.Trace,
		id:     t.seq.Add(1),
		parent: sc.Span,
		name:   name,
		start:  time.Now(),
	}
}

// ID returns the span's request ID (0 on a nil receiver).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Context returns the span's portable identity for propagation to other
// processes. Zero on a nil receiver.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// Child begins a sub-span sharing this span's tracer and TraceID. Safe on
// a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	child := s.tr.Start(name)
	child.trace = s.trace
	child.parent = s.id
	return child
}

// Annotate attaches a key=value attribute. Safe on a nil receiver.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End completes the span, recording it (with err's message, if any) into
// the tracer's ring. Safe on a nil receiver.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	ev := Event{
		Trace:    s.trace.String(),
		Span:     s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.tr.record(ev)
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if t.full {
		// The slot being overwritten still holds the oldest event: that
		// span is gone before any exporter saw it.
		t.dropped.Add(1)
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Dropped returns how many spans the ring has evicted since creation (0 on
// a nil receiver). A non-zero value means Events is missing spans.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Truncated reports whether any span has been evicted, i.e. whether the
// buffer's view of past traces is partial.
func (t *Tracer) Truncated() bool { return t.Dropped() > 0 }

// ExposeMetrics registers the tracer's self-metrics with an obs registry:
//
//	obs_trace_dropped_spans_total   spans evicted by ring wrap before export
func (t *Tracer) ExposeMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.CounterFunc("obs_trace_dropped_spans_total",
		"Spans evicted from the tracer ring before export.", nil,
		func() float64 { return float64(t.Dropped()) })
}

// Events returns the buffered events, oldest first. Safe on a nil receiver
// (returns nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// TraceDump is the /trace response: the buffered (optionally filtered)
// events plus an explicit marker for whether this tracer's view is partial,
// so a fleet stitcher can report "this node's spans are truncated" instead
// of silently missing them.
type TraceDump struct {
	Truncated bool    `json:"truncated"`
	Dropped   int64   `json:"dropped"`
	Events    []Event `json:"events"`
}

// Dump captures the buffered events (oldest first), filtered to one trace
// when traceFilter is a non-empty hex TraceID. Safe on a nil receiver.
func (t *Tracer) Dump(traceFilter string) TraceDump {
	events := t.Events()
	if traceFilter != "" {
		filtered := events[:0:0]
		for _, ev := range events {
			if ev.Trace == traceFilter {
				filtered = append(filtered, ev)
			}
		}
		events = filtered
	}
	if events == nil {
		events = []Event{}
	}
	return TraceDump{Truncated: t.Truncated(), Dropped: t.Dropped(), Events: events}
}

// Len returns how many events are buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}
