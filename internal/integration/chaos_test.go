package integration

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/audit"
	"repro/internal/chaos"
	"repro/internal/lease"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
	"repro/internal/store"
	"repro/internal/wire"
)

// chaosSeed selects the swarm schedule. A failing run prints its seed;
// rerunning with -chaos.seed=N replays the exact operation and fault
// sequence.
var chaosSeed = flag.Int64("chaos.seed", 1, "seed for TestChaosSwarm's deterministic fault schedule")

const (
	swarmClients   = 4
	swarmSteps     = 220
	swarmRPCWait   = 500 * time.Millisecond // per-roundtrip deadline; bounds Drop stalls
	swarmSnapEvery = 16
)

// chaosDialer is a reconnecting sllocal.RemoteAPI over the chaos-wrapped
// listener: a transport-level failure (dropped reply, cut frame, reset)
// closes the connection so the next call redials — the real SL-Local
// daemon's retry posture, minus retries, which the deterministic schedule
// cannot afford (an op either lands or is charged as a denial). It is safe
// for concurrent use: the pipelined swarm shares the admin dialer across
// client goroutines, so many calls ride one wire connection at once.
type chaosDialer struct {
	h  *swarmHarness
	rc *ratls.Config
	mu sync.Mutex
	c  *wire.Client // guardedby: mu
}

func (d *chaosDialer) client() (*wire.Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.c == nil {
		c, err := wire.DialTimeout(d.h.addr, swarmRPCWait, d.rc)
		if err != nil {
			return nil, err
		}
		d.c = c
	}
	return d.c, nil
}

// reset drops the connection; the next call redials the current server.
func (d *chaosDialer) reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.c != nil {
		_ = d.c.Close()
		d.c = nil
	}
}

// after inspects a call's error: a transport failure poisons the stream
// (desync, half frames), so the connection the call used is discarded —
// unless a concurrent caller already replaced it, in which case the new
// connection is left alone. Server-side denials (ErrRemote) leave the
// connection usable.
func (d *chaosDialer) after(c *wire.Client, err error) {
	if err == nil || errors.Is(err, wire.ErrRemote) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.c == c {
		_ = d.c.Close()
		d.c = nil
	}
}

func (d *chaosDialer) InitClient(slid string, quote attest.Quote, m *sgx.Machine) (slremote.InitResult, error) {
	c, err := d.client()
	if err != nil {
		return slremote.InitResult{}, err
	}
	res, err := c.InitClient(slid, quote, m)
	d.after(c, err)
	return res, err
}

func (d *chaosDialer) RenewLease(slid, licenseID string) (slremote.Grant, error) {
	c, err := d.client()
	if err != nil {
		return slremote.Grant{}, err
	}
	g, err := c.RenewLease(slid, licenseID)
	d.after(c, err)
	return g, err
}

func (d *chaosDialer) EscrowRootKey(slid string, key seccrypto.Key) error {
	c, err := d.client()
	if err != nil {
		return err
	}
	err = c.EscrowRootKey(slid, key)
	d.after(c, err)
	return err
}

func (d *chaosDialer) ConsumeReport(slid, licenseID string, units int64) error {
	c, err := d.client()
	if err != nil {
		return err
	}
	err = c.ConsumeReport(slid, licenseID, units)
	d.after(c, err)
	return err
}

func (d *chaosDialer) ReportCrash(slid string) error {
	c, err := d.client()
	if err != nil {
		return err
	}
	err = c.ReportCrash(slid)
	d.after(c, err)
	return err
}

func (d *chaosDialer) SetProfile(slid string, health, reliability, weight float64) error {
	c, err := d.client()
	if err != nil {
		return err
	}
	err = c.SetProfile(slid, health, reliability, weight)
	d.after(c, err)
	return err
}

var _ sllocal.RemoteAPI = (*chaosDialer)(nil)

// swarmClient is one SL-Local machine in the swarm: its untrusted state
// and app enclave persist across service incarnations (restarts and
// crashes), like a real machine's disk does.
type swarmClient struct {
	idx   int
	m     *sgx.Machine
	plat  *attest.Platform
	app   *sgx.Enclave
	state *sllocal.UntrustedState
	conn  *chaosDialer
	svc   *sllocal.Service // nil while the client is down
	slid  string
}

// swarmHarness runs one seeded swarm: a durable SL-Remote behind a chaos
// filesystem and a chaos listener, and a set of SL-Local clients driven
// sequentially through the schedule.
type swarmHarness struct {
	t        *testing.T
	seed     int64
	licenses []string

	fsys     *chaos.FS
	net      *chaos.NetDirector
	stateDir string
	sealKey  seccrypto.Key
	service  *attest.Service

	// srvRC is the server's channel config. It survives restarts on
	// purpose: the session-ticket keys live in it, so clients resume
	// their attested sessions against the recovered incarnation.
	srvRC *ratls.Config

	aud    *audit.Log
	st     *store.Store
	remote *slremote.Server
	srv    *wire.Server
	addr   string
	done   chan struct{}

	admin   *chaosDialer
	clients []*swarmClient

	crashes atomic.Int64
	denials atomic.Int64
}

func (h *swarmHarness) fatalf(format string, args ...any) {
	h.t.Helper()
	h.t.Fatalf("chaos swarm seed %d (replay: go test -run TestChaosSwarm ./internal/integration -chaos.seed=%d): %s",
		h.seed, h.seed, fmt.Sprintf(format, args...))
}

// boot opens (or re-opens) the durable SL-Remote: audit log on the real
// filesystem, WAL through the chaos filesystem, wire server behind the
// chaos listener. SyncAlways keeps the fault positions deterministic — a
// group-commit timer would race the op sequence.
func (h *swarmHarness) boot() {
	h.t.Helper()
	aud, err := audit.Open(filepath.Join(h.stateDir, "audit.log"), h.sealKey)
	if err != nil {
		h.fatalf("audit.Open: %v", err)
	}
	st, rec, err := store.Open(store.Options{Dir: h.stateDir, Mode: store.SyncAlways, FS: h.fsys})
	if err != nil {
		h.fatalf("store.Open: %v", err)
	}
	remote, err := slremote.RecoverServer(slremote.DefaultConfig(), h.service, rec, slremote.PersistConfig{
		Log: st, Snap: st, SealKey: h.sealKey, SnapshotEvery: swarmSnapEvery,
	})
	if err != nil {
		h.fatalf("RecoverServer: %v", err)
	}
	remote.AttachAudit(aud)
	srv, err := wire.NewServer(remote, nil, h.srvRC)
	if err != nil {
		h.fatalf("wire.NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.fatalf("Listen: %v", err)
	}
	h.aud, h.st, h.remote, h.srv = aud, st, remote, srv
	h.addr = ln.Addr().String()
	h.done = make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		_ = srv.Serve(chaos.WrapListener(ln, h.net))
	}(h.done)
}

// kill stops the server incarnation without a final snapshot, tolerating a
// wedged store (that is the point: recovery has to clean up after it).
func (h *swarmHarness) kill() {
	h.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		h.fatalf("wire Shutdown: %v", err)
	}
	<-h.done
	_ = h.st.Close() // may fail on a crashed chaos FS; recovery handles it
	_ = h.aud.Close()
}

// restartServer kills and recovers the server, asserting the recovered
// ledger is bit-identical to the pre-kill state. Stats are excluded: denial
// counters are observability, not ledger state, and are not WAL-logged.
func (h *swarmHarness) restartServer(step int) {
	h.t.Helper()
	want := h.remote.ExportState()
	want.Stats = slremote.ServerStats{}
	h.kill()
	h.fsys.Revive()
	h.boot()
	got := h.remote.ExportState()
	got.Stats = slremote.ServerStats{}
	if !reflect.DeepEqual(got, want) {
		h.fatalf("step %d: recovered state differs from pre-kill state\n got: %+v\nwant: %+v", step, got, want)
	}
	// Every open connection points at the dead listener; drop them so the
	// next call redials, in a fixed order to keep conn naming stable.
	h.admin.reset()
	for _, c := range h.clients {
		c.conn.reset()
	}
}

// ensureClient brings a down client up (fresh init, or re-init after a
// crash or restart) and asserts the single-use escrow rule: after any
// successful init the server must no longer hold a key for this SLID.
func (h *swarmHarness) ensureClient(c *swarmClient) error {
	h.t.Helper()
	if c.svc != nil {
		return nil
	}
	svc, err := sllocal.New(sllocal.Config{TokenBatch: 8}, sllocal.Deps{
		Machine: c.m, Platform: c.plat, Remote: c.conn, State: c.state,
	})
	if err != nil {
		h.fatalf("sllocal.New(client %d): %v", c.idx, err)
	}
	if err := svc.Init(); err != nil {
		return err
	}
	c.svc = svc
	c.slid = svc.SLID()
	if st := h.remote.ExportState(); st.Clients[c.slid].HasEscrow {
		h.fatalf("client %d (%s): escrowed key not released on init (single-use violated)", c.idx, c.slid)
	}
	return nil
}

// crashClient destroys the client's enclave with nothing escrowed and
// reports the crash (best effort: the report itself can be eaten by a net
// fault, in which case the next init applies the pessimistic forfeit).
func (h *swarmHarness) crashClient(c *swarmClient) {
	if c.svc != nil {
		c.svc.Crash()
		c.svc = nil
	}
	c.conn.reset()
	if c.slid != "" {
		_ = h.admin.ReportCrash(c.slid)
	}
	h.crashes.Add(1)
}

func (h *swarmHarness) quiesce(step int) {
	h.t.Helper()
	if err := chaos.CheckConservation(h.remote.ExportState()); err != nil {
		h.fatalf("step %d: %v", step, err)
	}
	if err := h.aud.Verify(); err != nil {
		h.fatalf("step %d: audit chain broken: %v", step, err)
	}
}

func (h *swarmHarness) runStep(i int, st chaos.Step) {
	h.t.Helper()
	for _, f := range st.FSFaults {
		h.fsys.Arm(f)
	}
	for _, f := range st.NetFaults {
		h.net.Arm(f)
	}
	lic := h.licenses[i%len(h.licenses)]
	switch st.Op {
	case chaos.OpToken:
		c := h.clients[st.Client]
		if err := h.ensureClient(c); err != nil {
			h.denials.Add(1)
			return
		}
		tok, err := c.svc.RequestToken(c.app, lic)
		if err != nil {
			h.denials.Add(1)
			return
		}
		for tok.Use() {
		}
	case chaos.OpConsume:
		c := h.clients[st.Client]
		if err := h.ensureClient(c); err != nil {
			h.denials.Add(1)
			return
		}
		if err := h.admin.ConsumeReport(c.slid, lic, st.Units); err != nil {
			h.denials.Add(1)
		}
	case chaos.OpProfile:
		c := h.clients[st.Client]
		if err := h.ensureClient(c); err != nil {
			h.denials.Add(1)
			return
		}
		_ = h.admin.SetProfile(c.slid, st.Health, st.Reliability, st.Weight)
	case chaos.OpClientRestart:
		c := h.clients[st.Client]
		if c.svc != nil {
			if err := c.svc.Shutdown(); err != nil {
				// Escrow unreachable mid-shutdown: the machine is now in an
				// undefined state, which in this model is a crash.
				h.crashClient(c)
				return
			}
			c.svc = nil
		}
		if err := h.ensureClient(c); err != nil {
			h.denials.Add(1)
		}
	case chaos.OpClientCrash:
		h.crashClient(h.clients[st.Client])
	case chaos.OpServerRestart:
		h.restartServer(i)
	case chaos.OpQuiesce:
		h.quiesce(i)
	default:
		h.fatalf("step %d: unknown op %q", i, st.Op)
	}
}

// swarmChanCode is the channel enclave's code identity, shared by every
// swarm endpoint; one trusted measurement covers them all.
var swarmChanCode = []byte("swarm-chan")

// channelOn mints an attested channel config for an existing platform: a
// channel enclave on m whose measurement the harness service trusts. The
// handshake deadline matches the RPC deadline so a dropped TLS flight
// costs one bounded wait, not DefaultHandshakeTimeout.
func (h *swarmHarness) channelOn(m *sgx.Machine, plat *attest.Platform, name string) *ratls.Config {
	h.t.Helper()
	e, err := m.CreateEnclave(name+"-chan", swarmChanCode, 0)
	if err != nil {
		h.fatalf("channel enclave %s: %v", name, err)
	}
	h.service.TrustMeasurement(e.Measurement())
	cfg, err := ratls.New(ratls.Options{
		Platform: plat, Enclave: e, Verifier: h.service,
		HandshakeTimeout: swarmRPCWait,
	})
	if err != nil {
		h.fatalf("ratls.New(%s): %v", name, err)
	}
	return cfg
}

// newChannel is channelOn plus a fresh machine and registered platform,
// for endpoints (server, admin) that have no swarm machine of their own.
func (h *swarmHarness) newChannel(name string) *ratls.Config {
	h.t.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: name, EPCBytes: 1 << 20})
	if err != nil {
		h.fatalf("NewMachine %s: %v", name, err)
	}
	plat, err := attest.NewPlatform(name, m)
	if err != nil {
		h.fatalf("NewPlatform %s: %v", name, err)
	}
	h.service.RegisterPlatform(plat)
	return h.channelOn(m, plat, name)
}

// newSwarm builds a fully booted swarm: durable SL-Remote behind the chaos
// listener, licenses registered, every client machine attested and wired
// through its own chaosDialer. With attested set, every connection is an
// ratls channel (and the mid-handshake fault probes run before return).
func newSwarm(t *testing.T, seed int64, attested bool) *swarmHarness {
	t.Helper()
	h := &swarmHarness{
		t:        t,
		seed:     seed,
		licenses: []string{"lic-a", "lic-b"},
		fsys:     chaos.NewFS(nil),
		net:      chaos.NewNetDirector(),
		stateDir: t.TempDir(),
		service:  attest.NewService(),
	}
	var err error
	if h.sealKey, err = seccrypto.NewKey(nil); err != nil {
		t.Fatal(err)
	}
	if attested {
		h.srvRC = h.newChannel("swarm-server")
	} else {
		h.srvRC = ratls.Insecure()
	}
	h.boot()
	if err := h.remote.RegisterLicense("lic-a", lease.CountBased, 6000); err != nil {
		h.fatalf("RegisterLicense: %v", err)
	}
	if err := h.remote.RegisterLicense("lic-b", lease.CountBased, 3000); err != nil {
		h.fatalf("RegisterLicense: %v", err)
	}
	h.admin = &chaosDialer{h: h, rc: ratls.Insecure()}
	if attested {
		h.admin.rc = h.newChannel("swarm-admin")
	}

	for i := 0; i < swarmClients; i++ {
		m, err := sgx.NewMachine(sgx.MachineConfig{Name: fmt.Sprintf("swarm-%d", i), EPCBytes: 8 << 20})
		if err != nil {
			h.fatalf("NewMachine %d: %v", i, err)
		}
		plat, err := attest.NewPlatform(fmt.Sprintf("swarm-%d", i), m)
		if err != nil {
			h.fatalf("NewPlatform %d: %v", i, err)
		}
		h.service.RegisterPlatform(plat)
		probe, err := m.CreateEnclave("probe", sllocal.EnclaveCodeIdentity, 0)
		if err != nil {
			h.fatalf("probe %d: %v", i, err)
		}
		h.service.TrustMeasurement(probe.Measurement())
		probe.Destroy()
		app, err := m.CreateEnclave(fmt.Sprintf("app-%d", i), []byte("swarm-app"), 0)
		if err != nil {
			h.fatalf("app %d: %v", i, err)
		}
		cliRC := ratls.Insecure()
		if attested {
			cliRC = h.channelOn(m, plat, fmt.Sprintf("swarm-%d", i))
		}
		h.clients = append(h.clients, &swarmClient{
			idx: i, m: m, plat: plat, app: app,
			state: &sllocal.UntrustedState{},
			conn:  &chaosDialer{h: h, rc: cliRC},
		})
	}

	if attested {
		// Mid-handshake fault: the server's first TLS flight to client 0
		// dies on an armed reset. The dial layer must count the failure
		// and absorb it with its one bounded-backoff retry — init still
		// succeeds.
		h.net.Arm(chaos.ConnFault{Kind: chaos.Reset})
		if err := h.ensureClient(h.clients[0]); err != nil {
			h.fatalf("init through a mid-handshake reset was not retried: %v", err)
		}
		if st := h.clients[0].conn.rc.Stats(); st.HandshakeFailures == 0 || st.ColdHandshakes == 0 {
			h.fatalf("mid-handshake reset not reflected in channel stats: %+v", st)
		}
		// Mid-record fault: one TLS record to the admin is corrupted, so
		// its MAC fails. The error must surface as a transport failure
		// (poisoning only that connection), never a panic or a decoded
		// phantom reply.
		if err := h.admin.SetProfile(h.clients[0].slid, 0.9, 0.9, 1.0); err != nil {
			h.fatalf("admin warm-up SetProfile: %v", err)
		}
		h.net.Arm(chaos.ConnFault{Kind: chaos.Corrupt})
		err := h.admin.SetProfile(h.clients[0].slid, 0.9, 0.9, 1.0)
		if err == nil {
			h.fatalf("corrupted TLS record decoded as a valid reply")
		}
		if errors.Is(err, wire.ErrRemote) {
			h.fatalf("corrupted TLS record surfaced as a server denial: %v", err)
		}
	}
	return h
}

// runSwarm executes one full seeded swarm sequentially and returns the
// combined fault trace (filesystem events, then network events).
func runSwarm(t *testing.T, seed int64, attested bool) []chaos.Event {
	t.Helper()
	h := newSwarm(t, seed, attested)
	sched := chaos.NewSchedule(seed, swarmClients, swarmSteps)
	for i, st := range sched.Steps {
		h.runStep(i, st)
	}
	return h.finish(len(sched.Steps), attested)
}

// finish runs the end-of-swarm accounting — invariants hold, the required
// faults fired, the swarm really was a swarm — then kills the server and
// returns the fault trace.
func (h *swarmHarness) finish(steps int, attested bool) []chaos.Event {
	h.t.Helper()
	t := h.t
	h.quiesce(steps)
	trace := append(h.fsys.Trace(), h.net.Trace()...)
	var torn, cut int
	for _, ev := range trace {
		switch ev.Kind {
		case chaos.TornWrite:
			torn++
		case chaos.Cut:
			cut++
		}
	}
	if torn == 0 {
		h.fatalf("no torn WAL write fired (trace: %v)", trace)
	}
	if cut == 0 {
		h.fatalf("no mid-envelope connection cut fired (trace: %v)", trace)
	}
	if h.crashes.Load() == 0 {
		h.fatalf("no client crash executed")
	}
	if h.aud.Len() == 0 {
		h.fatalf("empty audit chain after %d steps", steps)
	}
	if attested {
		st := h.srvRC.Stats()
		if st.ColdHandshakes == 0 || st.QuoteVerifications == 0 {
			h.fatalf("attested swarm performed no quote-verified handshakes: %+v", st)
		}
		// The structural server restart resets every connection, and the
		// ticket keys survive in srvRC — so at least one reconnect must
		// have resumed, and resumption must have skipped re-attestation.
		if st.ResumedHandshakes == 0 {
			h.fatalf("no resumed handshake across reconnects: %+v", st)
		}
		if st.QuoteVerifications >= st.ColdHandshakes+st.ResumedHandshakes {
			h.fatalf("resumed handshakes did not skip quote verification: %+v", st)
		}
		if st.HandshakeFailures == 0 {
			h.fatalf("chaos faults produced no counted handshake failure: %+v", st)
		}
		t.Logf("attested channel: %+v", st)
	}
	t.Logf("chaos swarm seed %d: %d steps, %d denials, %d client crashes, %d fault events",
		h.seed, steps, h.denials.Load(), h.crashes.Load(), len(trace))

	h.kill()
	return trace
}

// TestChaosSwarm drives a swarm of SL-Local clients through a seeded
// schedule of renewals, consume reports, profile changes, crashes, and
// server restarts while injected faults tear WAL frames, cut connections
// mid-envelope, and fail fsyncs — asserting at every quiesce point that
// license units are conserved, the audit chain verifies, and recovery
// reproduces the exact pre-kill ledger. The same seed must produce the
// identical fault trace: the second run replays the first.
func TestChaosSwarm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos swarm takes seconds of injected stalls")
	}
	seed := *chaosSeed
	tr1 := runSwarm(t, seed, false)
	tr2 := runSwarm(t, seed, false)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("seed %d is not reproducible: fault traces differ\nrun 1: %v\nrun 2: %v", seed, tr1, tr2)
	}
}

// TestChaosSwarmPipelined runs the seeded swarm with the schedule's
// clients driven concurrently: between global barriers (server restarts
// and quiesce points) every client executes its own steps in order on its
// own goroutine, while admin traffic (consume reports, profile changes,
// crash reports) from all of them shares ONE dialer — so many requests
// pipeline on a single wire connection under live chaos faults. The same
// conservation, audit, and fault-coverage assertions as the sequential
// swarm must hold; trace identity is not asserted (completion order is
// concurrent by design). Run under -race in CI.
func TestChaosSwarmPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos swarm takes seconds of injected stalls")
	}
	seed := *chaosSeed
	h := newSwarm(t, seed, false)
	sched := chaos.NewSchedule(seed, swarmClients, swarmSteps)

	// peak tracks the most steps ever in flight at once: if it never
	// reaches 2, the "pipelined" swarm silently degenerated to lock-step
	// and the test is not testing what it claims.
	var inFlight, peak atomic.Int64
	runWindow := func(lo, hi int) {
		if lo >= hi {
			return
		}
		// Partition the window by client, preserving each client's own step
		// order: a client's crash must not overtake its token request.
		lanes := make(map[int][]int)
		var order []int
		for i := lo; i < hi; i++ {
			cl := sched.Steps[i].Client
			if _, ok := lanes[cl]; !ok {
				order = append(order, cl)
			}
			lanes[cl] = append(lanes[cl], i)
		}
		var wg sync.WaitGroup
		for _, cl := range order {
			idxs := lanes[cl]
			wg.Add(1)
			go func(idxs []int) {
				defer wg.Done()
				for _, i := range idxs {
					cur := inFlight.Add(1)
					for {
						p := peak.Load()
						if cur <= p || peak.CompareAndSwap(p, cur) {
							break
						}
					}
					h.runStep(i, sched.Steps[i])
					inFlight.Add(-1)
				}
			}(idxs)
		}
		wg.Wait()
	}

	start := 0
	for i, st := range sched.Steps {
		if st.Op == chaos.OpServerRestart || st.Op == chaos.OpQuiesce {
			runWindow(start, i)
			h.runStep(i, st) // global barrier op, on the test goroutine
			start = i + 1
		}
	}
	runWindow(start, len(sched.Steps))

	if got := peak.Load(); got < 2 {
		t.Fatalf("peak in-flight steps = %d, want >= 2 (swarm ran lock-step)", got)
	}
	h.finish(len(sched.Steps), false)
}

// TestChaosSwarmAttested runs the same seeded swarm with every connection
// upgraded to the attested ratls channel. The chaos faults now land on TLS
// records and handshake flights instead of plaintext envelopes; the run
// must still conserve license units and keep the audit chain intact, with
// handshake failures counted and absorbed by the dial retry — never a
// panic. Trace identity is not asserted: TLS adds timing-dependent writes
// (session tickets, alerts) that shift fault positions between runs.
func TestChaosSwarmAttested(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos swarm takes seconds of injected stalls")
	}
	runSwarm(t, *chaosSeed, true)
}
