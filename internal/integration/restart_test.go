package integration

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/audit"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
	"repro/internal/store"
	"repro/internal/wire"
)

// durableRemote is one incarnation of a persistent SL-Remote deployment:
// the store, the recovered server, a wire listener, and the obs registry
// its store metrics land in.
type durableRemote struct {
	st     *store.Store
	remote *slremote.Server
	srv    *wire.Server
	addr   string
	reg    *obs.Registry
	aud    *audit.Log
	done   chan struct{}
}

func bootDurableRemote(t *testing.T, dir string, sealKey seccrypto.Key, service *attest.Service) *durableRemote {
	t.Helper()
	reg := obs.NewRegistry()
	aud, err := audit.Open(filepath.Join(dir, "audit.log"), sealKey)
	if err != nil {
		t.Fatalf("audit.Open: %v", err)
	}
	st, rec, err := store.Open(store.Options{
		Dir:     dir,
		Mode:    store.SyncBatched,
		Metrics: store.ExposeMetrics(reg),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	remote, err := slremote.RecoverServer(slremote.DefaultConfig(), service, rec, slremote.PersistConfig{
		Log: st, Snap: st, SealKey: sealKey, SnapshotEvery: 8,
	})
	if err != nil {
		t.Fatalf("RecoverServer: %v", err)
	}
	// After recovery, like the daemon does: WAL replay must not re-append
	// audit records.
	remote.AttachAudit(aud)
	srv, err := wire.NewServer(remote, nil, ratls.Insecure())
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	d := &durableRemote{st: st, remote: remote, srv: srv, addr: ln.Addr().String(), reg: reg, aud: aud, done: make(chan struct{})}
	go func() {
		defer close(d.done)
		_ = srv.Serve(ln)
	}()
	return d
}

// drain gracefully drains the wire server; the store stays open.
func (d *durableRemote) drain(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		t.Fatalf("wire Shutdown: %v", err)
	}
	<-d.done
}

// TestRestartCycleRecoversLedgerAndEscrow is the paper's durability story
// end to end: a client burns more than half of a count-based license over
// TCP and escrows its root key at graceful shutdown; the server is then
// killed without a final snapshot (so recovery must replay the WAL tail)
// and restarted from the state directory. The restarted server must hold
// bit-identical state, release the escrowed root key on re-init, and never
// have written the plaintext root key to disk.
func TestRestartCycleRecoversLedgerAndEscrow(t *testing.T) {
	dir := t.TempDir()
	sealKey, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	service := attest.NewService()

	// --- Incarnation 1: fresh state, real workload over TCP. ---
	d1 := bootDurableRemote(t, dir, sealKey, service)
	const pool = 1000
	if err := d1.remote.RegisterLicense("lic", lease.CountBased, pool); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	if err := d1.remote.RegisterLicense("doomed", lease.CountBased, 5); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	if err := d1.remote.Revoke("doomed"); err != nil {
		t.Fatalf("Revoke: %v", err)
	}

	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "restart-client", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("restart-client", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	service.RegisterPlatform(plat)
	probe, err := m.CreateEnclave("probe", sllocal.EnclaveCodeIdentity, 0)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	service.TrustMeasurement(probe.Measurement())
	probe.Destroy()

	state := &sllocal.UntrustedState{} // survives the client "restart" below
	cl1, err := wire.Dial(d1.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	svc1, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: cl1, State: state,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc1.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	slid := svc1.SLID()
	app, err := m.CreateEnclave("app", []byte("app"), 0)
	if err != nil {
		t.Fatalf("app: %v", err)
	}
	served := 0
	for served < pool*6/10 { // burn >50% of the budget
		tok, err := svc1.RequestToken(app, "lic")
		if err != nil {
			t.Fatalf("RequestToken after %d checks: %v", served, err)
		}
		for tok.Use() && served < pool*6/10 {
			served++
		}
	}
	// Graceful client shutdown: lease tree committed, root key escrowed.
	if err := svc1.Shutdown(); err != nil {
		t.Fatalf("client Shutdown: %v", err)
	}
	if err := cl1.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}

	d1.drain(t)
	// Make sure the kill below leaves a WAL tail to replay: if the
	// workload's last mutation landed exactly on a compaction boundary,
	// append profile updates until the current generation's log is
	// non-empty (one suffices right after a compaction).
	for i := 0; i < 10; i++ {
		rec, err := store.Recover(dir)
		if err != nil {
			t.Fatalf("peek WAL: %v", err)
		}
		if len(rec.Records) > 0 {
			break
		}
		if err := d1.remote.SetClientProfile(slid, 0.99, 0.99, 1); err != nil {
			t.Fatalf("SetClientProfile: %v", err)
		}
	}
	want := d1.remote.ExportState()
	if want.Licenses["lic"].Remaining > pool/2 {
		t.Fatalf("burned only %d of %d units; test wants >50%%", pool-want.Licenses["lic"].Remaining, pool)
	}
	rootKey := want.Clients[slid].Escrow
	if len(rootKey) == 0 {
		t.Fatal("no root key escrowed at graceful shutdown")
	}
	snap1 := d1.reg.Snapshot()
	for _, name := range []string{"store_wal_appends_total", "store_wal_bytes_total", "store_snapshots_total", "store_snapshot_bytes"} {
		if v := snap1[obs.Key(name, nil)]; v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// The audit trail covered the whole first incarnation and verifies
	// before the kill.
	if err := d1.aud.Verify(); err != nil {
		t.Fatalf("audit Verify before restart: %v", err)
	}
	auditLen := d1.aud.Len()
	auditHead := d1.aud.HeadHash()
	if auditLen == 0 {
		t.Fatal("no audit records after the first incarnation")
	}
	// Kill without a final snapshot: recovery must replay the WAL tail, not
	// just load the last compaction point.
	if err := d1.st.Close(); err != nil {
		t.Fatalf("store Close: %v", err)
	}
	if err := d1.aud.Close(); err != nil {
		t.Fatalf("audit Close: %v", err)
	}

	// The escrowed root key must never hit disk in plaintext.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("state directory is empty")
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, rootKey) {
			t.Errorf("plaintext root-key bytes on disk in %s", e.Name())
		}
	}

	// --- Incarnation 2: recover from the state directory. ---
	d2 := bootDurableRemote(t, dir, sealKey, service)
	defer func() {
		d2.drain(t)
		_ = d2.st.Close()
		_ = d2.aud.Close()
	}()

	// The audit chain survived the crash-restart: same length, same head,
	// and the reopened log still verifies end to end.
	if got := d2.aud.Len(); got != auditLen {
		t.Errorf("audit chain length after restart = %d, want %d", got, auditLen)
	}
	if got := d2.aud.HeadHash(); got != auditHead {
		t.Errorf("audit head hash changed across restart: %x != %x", got, auditHead)
	}
	if err := d2.aud.Verify(); err != nil {
		t.Errorf("audit Verify after restart: %v", err)
	}
	// WAL replay must not have re-emitted audit records for replayed
	// mutations — the chain only grows with NEW decisions (checked below).

	got := d2.remote.ExportState()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state differs from pre-restart state\n got: %+v\nwant: %+v", got, want)
	}
	snap2 := d2.reg.Snapshot()
	if v := snap2[obs.Key("store_replayed_records_total", nil)]; v <= 0 {
		t.Errorf("store_replayed_records_total = %v, want > 0 (server was killed with a WAL tail)", v)
	}
	if v := snap2[obs.Key("store_recovery_seconds", nil)]; v <= 0 {
		t.Errorf("store_recovery_seconds = %v, want > 0", v)
	}

	// Re-init the same client (same machine, same untrusted state): the
	// recovered server must confirm the SLID and release the escrowed key,
	// and the restored lease tree must keep serving from the same budget.
	cl2, err := wire.Dial(d2.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl2.Close()
	svc2, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: cl2, State: state,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc2.Init(); err != nil {
		t.Fatalf("re-Init after restart: %v", err)
	}
	if svc2.SLID() != slid {
		t.Fatalf("SLID changed across restart: %q → %q", slid, svc2.SLID())
	}
	if st := d2.remote.ExportState(); st.Clients[slid].HasEscrow {
		t.Error("escrow not released (single-use) after re-init")
	}
	app2, err := m.CreateEnclave("app2", []byte("app"), 0)
	if err != nil {
		t.Fatalf("app2: %v", err)
	}
	extra := 0
	for extra < 100 {
		tok, err := svc2.RequestToken(app2, "lic")
		if err != nil {
			t.Fatalf("post-restart RequestToken after %d: %v", extra, err)
		}
		for tok.Use() && extra < 100 {
			extra++
		}
	}
	lic, err := d2.remote.License("lic")
	if err != nil {
		t.Fatal(err)
	}
	if lic.Remaining < 0 || lic.Remaining > want.Licenses["lic"].Remaining {
		t.Errorf("post-restart remaining %d out of range (pre-restart %d)", lic.Remaining, want.Licenses["lic"].Remaining)
	}
	if got, err := d2.remote.License("doomed"); err != nil || !got.Revoked {
		t.Errorf("revocation lost across restart: %+v, %v", got, err)
	}
	if err := svc2.Shutdown(); err != nil {
		t.Fatalf("final client Shutdown: %v", err)
	}

	// The post-restart workload extended the recovered chain: new init,
	// renew, and escrow decisions link onto the pre-restart head.
	if got := d2.aud.Len(); got <= auditLen {
		t.Errorf("audit chain did not grow after restart: %d <= %d", got, auditLen)
	}
	if err := d2.aud.Verify(); err != nil {
		t.Errorf("audit Verify after post-restart workload: %v", err)
	}
	ops := make(map[string]int)
	for _, rec := range d2.aud.Tail(0) {
		ops[rec.Op]++
	}
	for _, op := range []string{audit.OpInit, audit.OpRenew, audit.OpEscrow} {
		if ops[op] == 0 {
			t.Errorf("no %q audit record after the restart cycle (ops: %v)", op, ops)
		}
	}
}
