// Package integration holds cross-component scenarios: the full
// SecureLease stack under failure injection — flaky networks, EPC
// pressure from co-tenant enclaves, crashes mid-traffic, server loss —
// plus an end-to-end "paper pipeline" test that goes from an instrumented
// workload run through partitioning to a CFB attack on the result.
package integration

import (
	"errors"
	"net"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/attest"
	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/ratls"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// TestFlakyNetworkRenewalsEventuallySucceed drives license checks over a
// 40%-loss link: individual renewals fail, retries and cached sub-GCLs
// keep the application running to completion.
func TestFlakyNetworkRenewalsEventuallySucceed(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		MachineName: "flaky",
		Network:     &netsim.LinkConfig{Reliability: 0.6, Seed: 99},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.RegisterLicense("lic", lease.CountBased, 50_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	app, err := sys.LaunchApp("app")
	if err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	app.Guard("f", "lic")
	served, transientFailures := 0, 0
	for served < 2000 {
		if err := app.Execute("f", func() error { return nil }); err != nil {
			transientFailures++
			if transientFailures > 200 {
				t.Fatalf("too many failures (%d served): %v", served, err)
			}
			continue
		}
		served++
	}
	t.Logf("served %d checks with %d transient failures over a 60%% link", served, transientFailures)
}

// TestEPCPressureFromCoTenants runs SL-Local while a co-tenant enclave
// floods the EPC: SL-Local's lease tree keeps functioning (its pages fault
// back transparently) and the token path stays correct.
func TestEPCPressureFromCoTenants(t *testing.T) {
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "pressured", EPCBytes: 2 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("pressured", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := remote.RegisterLicense("lic", lease.CountBased, 100_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	svc, err := sllocal.New(sllocal.Config{TokenBatch: 5, TreePages: 64}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: remote,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	// A co-tenant grabs and churns most of the EPC.
	hog, err := m.CreateEnclave("hog", []byte("hog"), 0)
	if err != nil {
		t.Fatalf("hog: %v", err)
	}
	hogPages, err := hog.AllocPages(480) // 480 of the 512 EPC pages
	if err != nil {
		t.Fatalf("hog alloc: %v", err)
	}
	app, err := m.CreateEnclave("app", []byte("app"), 0)
	if err != nil {
		t.Fatalf("app: %v", err)
	}
	for i := 0; i < 300; i++ {
		if _, err := svc.RequestToken(app, "lic"); err != nil {
			t.Fatalf("RequestToken %d under pressure: %v", i, err)
		}
		if _, err := hog.Touch(hogPages[i%len(hogPages)]); err != nil {
			t.Fatalf("hog touch: %v", err)
		}
	}
	if m.Stats().PageEvicts == 0 {
		t.Fatal("no EPC churn despite co-tenant pressure")
	}
}

// TestCrashDuringConcurrentTraffic crashes SL-Local while eight apps are
// mid-request: in-flight requests fail cleanly (no hangs, no panics), and
// the forfeiture accounting is consistent afterwards.
func TestCrashDuringConcurrentTraffic(t *testing.T) {
	sys, err := core.NewSystem(core.Config{MachineName: "crashbox"})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.RegisterLicense("lic", lease.CountBased, 1_000_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	apps := make([]*core.App, 8)
	for i := range apps {
		app, err := sys.LaunchApp(string(rune('a' + i)))
		if err != nil {
			t.Fatalf("LaunchApp: %v", err)
		}
		app.Guard("f", "lic")
		apps[i] = app
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, app := range apps {
		wg.Add(1)
		go func(app *core.App) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the crash lands; they must be
				// clean errors, not panics.
				_ = app.Execute("f", func() error { return nil })
			}
		}(app)
	}
	slid := sys.Local().SLID()
	sys.Crash()
	close(stop)
	wg.Wait()

	if err := sys.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	lic, err := sys.Remote().License("lic")
	if err != nil {
		t.Fatalf("License: %v", err)
	}
	if got := sys.Remote().Outstanding(slid, "lic"); got != 0 {
		t.Fatalf("outstanding after crash restart = %d", got)
	}
	granted := 1_000_000 - lic.Remaining
	if lic.Lost > granted {
		t.Fatalf("lost %d exceeds granted %d", lic.Lost, granted)
	}
}

// TestServerLossMidSession kills the TCP license server while a client is
// live: cached grants keep serving, renewals fail cleanly, and a fresh
// server (same escrow state lost) forces re-initialization semantics.
func TestServerLossMidSession(t *testing.T) {
	service := attest.NewService()
	remote, err := slremote.NewServer(slremote.DefaultConfig(), service)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := remote.RegisterLicense("lic", lease.CountBased, 100_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	srv, err := wire.NewServer(remote, nil, ratls.Insecure())
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()

	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "client", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("client", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	service.RegisterPlatform(plat)
	probe, err := m.CreateEnclave("probe", sllocal.EnclaveCodeIdentity, 0)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	service.TrustMeasurement(probe.Measurement())
	probe.Destroy()

	client, err := wire.Dial(ln.Addr().String(), ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	svc, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: client,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app, err := m.CreateEnclave("app", []byte("app"), 0)
	if err != nil {
		t.Fatalf("app: %v", err)
	}
	if _, err := svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("RequestToken: %v", err)
	}

	// Kill the server.
	srv.Close()
	<-done

	// Cached sub-GCL keeps serving.
	servedOffline := 0
	for i := 0; i < 100; i++ {
		if _, err := svc.RequestToken(app, "lic"); err != nil {
			break
		}
		servedOffline++
	}
	if servedOffline == 0 {
		t.Fatal("no offline service from cached grants after server loss")
	}
	// Exhausting the cache surfaces a clean denial (connection is dead).
	var lastErr error
	for i := 0; i < 100_000; i++ {
		if _, err := svc.RequestToken(app, "lic"); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		t.Fatal("service never failed despite a dead server")
	}
	if !errors.Is(lastErr, sllocal.ErrLeaseDenied) {
		t.Fatalf("denial error = %v", lastErr)
	}
}

// TestPaperPipelineEndToEnd runs the whole reproduction pipeline on one
// workload: instrumented run → SecureLease partition → deploy the
// partitioned app on a machine with SL-Local → verify a CFB attack fails
// while licensed use works.
func TestPaperPipelineEndToEnd(t *testing.T) {
	// 1. Profile the workload.
	spec, err := workloads.Get("hashjoin")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := spec.Run(1)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}

	// 2. Partition it.
	p, err := partition.SecureLease(prof.Graph, prof.Trace, partition.Options{Seed: 7})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if !p.Migrated["hashjoin.probe"] {
		t.Fatal("key function not migrated")
	}

	// 3. Deploy: the partitioned app's secure region is guarded by an
	// SL-Manager against a real license.
	sys, err := core.NewSystem(core.Config{MachineName: "deploy"})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.RegisterLicense(spec.License, lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	app, err := sys.LaunchApp("hashjoin")
	if err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	for _, fn := range p.MigratedList() {
		app.Guard(fn, spec.License)
	}

	// 4. Licensed use of the key function works.
	if err := app.Execute("hashjoin.probe", func() error { return nil }); err != nil {
		t.Fatalf("licensed execute: %v", err)
	}

	// 5. The CFB attacker (no license on their manager) is handicapped.
	pirateApp, err := sys.LaunchApp("pirate-hashjoin")
	if err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	pirateApp.Guard("hashjoin.probe", "lic-stolen-unregistered")
	gate := attack.GateFunc(func(fn string) error {
		return pirateApp.Authorize("lic-stolen-unregistered")
	})
	ref, err := attack.ReferenceOutput(attack.SecureLeaseSGX)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := attack.NewVCPU(attack.NewMySQLModel(attack.SecureLeaseSGX, false), gate,
		attack.Tamper{FlipBranches: map[string]bool{"auth_check": true}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FullyFunctional(ref) {
		t.Fatal("CFB attack succeeded against the deployed stack")
	}
	if res.EnclaveDenials == 0 {
		t.Fatal("no enclave denials recorded")
	}
}

// TestTwoClientsShareLicenseOverTCP runs two independent client machines
// against one wire server: Algorithm 1's concurrency split (C=2) applies,
// both serve checks, and the pool is never oversubscribed.
func TestTwoClientsShareLicenseOverTCP(t *testing.T) {
	service := attest.NewService()
	remote, err := slremote.NewServer(slremote.DefaultConfig(), service)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	const pool = 20_000
	if err := remote.RegisterLicense("lic", lease.CountBased, pool); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	srv, err := wire.NewServer(remote, nil, ratls.Insecure())
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})

	type clientNode struct {
		svc *sllocal.Service
		app *sgx.Enclave
	}
	mkClient := func(name string) *clientNode {
		m, err := sgx.NewMachine(sgx.MachineConfig{Name: name, EPCBytes: 8 << 20})
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}
		plat, err := attest.NewPlatform(name, m)
		if err != nil {
			t.Fatalf("NewPlatform: %v", err)
		}
		service.RegisterPlatform(plat)
		probe, err := m.CreateEnclave("probe", sllocal.EnclaveCodeIdentity, 0)
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		service.TrustMeasurement(probe.Measurement())
		probe.Destroy()
		cl, err := wire.Dial(ln.Addr().String(), ratls.Insecure())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		t.Cleanup(func() { _ = cl.Close() })
		svc, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
			Machine: m, Platform: plat, Remote: cl,
		})
		if err != nil {
			t.Fatalf("sllocal.New: %v", err)
		}
		if err := svc.Init(); err != nil {
			t.Fatalf("Init: %v", err)
		}
		app, err := m.CreateEnclave("app", []byte("app"), 0)
		if err != nil {
			t.Fatalf("app: %v", err)
		}
		return &clientNode{svc: svc, app: app}
	}

	a := mkClient("client-a")
	b := mkClient("client-b")
	if a.svc.SLID() == b.svc.SLID() {
		t.Fatal("both clients share an SLID")
	}

	var wg sync.WaitGroup
	served := make([]int, 2)
	for i, n := range []*clientNode{a, b} {
		wg.Add(1)
		go func(i int, n *clientNode) {
			defer wg.Done()
			for {
				tok, err := n.svc.RequestToken(n.app, "lic")
				if err != nil {
					return // pool drained
				}
				for tok.Use() {
					served[i]++
				}
				if served[i] >= pool {
					return
				}
			}
		}(i, n)
	}
	wg.Wait()

	total := served[0] + served[1]
	if total == 0 {
		t.Fatal("nothing served")
	}
	if int64(total) > pool {
		t.Fatalf("served %d from a %d pool", total, pool)
	}
	if served[0] == 0 || served[1] == 0 {
		t.Fatalf("one client starved: %v (Algorithm 1 should split the pool)", served)
	}
	lic, err := remote.License("lic")
	if err != nil {
		t.Fatalf("License: %v", err)
	}
	if lic.Remaining < 0 {
		t.Fatalf("negative remaining %d", lic.Remaining)
	}
}
