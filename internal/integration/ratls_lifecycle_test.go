package integration

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/ratls"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
	"repro/internal/wire"
)

// ratlsDaemon is one wire-server incarnation speaking a given channel
// config, the way cmd/sl-remote stands one up.
type ratlsDaemon struct {
	srv  *wire.Server
	addr string
	done chan struct{}
}

func startRatlsDaemon(t *testing.T, remote *slremote.Server, rc *ratls.Config) *ratlsDaemon {
	t.Helper()
	srv, err := wire.NewServer(remote, nil, rc)
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	d := &ratlsDaemon{srv: srv, addr: ln.Addr().String(), done: make(chan struct{})}
	go func() {
		defer close(d.done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() { d.stop(t) })
	return d
}

func (d *ratlsDaemon) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = d.srv.Shutdown(ctx)
	<-d.done
}

// TestRatlsDaemonLifecycle replays the two-daemon deployment over the
// attested channel, end to end: the SL-Local daemon initializes (cold
// quote-verified handshake), renews leases, escrows its root key at
// graceful shutdown, and re-initializes against a restarted SL-Remote —
// resuming its TLS session against the new incarnation because the
// server's channel config (and with it the ticket secret) survives the
// restart, exactly as cmd/sl-remote keeps one Config for its lifetime.
func TestRatlsDaemonLifecycle(t *testing.T) {
	secret := []byte("fleet-provisioning-secret")

	// Server daemon: a dedicated channel machine presenting SL-Remote's
	// code identity, as cmd/sl-remote builds it.
	srvMachine, err := sgx.NewMachine(sgx.MachineConfig{Name: "remote-daemon", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	srvRC, err := ratls.NewProvisioned("remote-daemon", srvMachine, secret,
		slremote.EnclaveCodeIdentity, sllocal.EnclaveCodeIdentity)
	if err != nil {
		t.Fatalf("NewProvisioned(server): %v", err)
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("slremote.NewServer: %v", err)
	}
	if err := remote.RegisterLicense("lic", lease.CountBased, 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	d1 := startRatlsDaemon(t, remote, srvRC)

	// Client daemon: its own machine, platform, and channel credential
	// derived from the same provisioning secret.
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "local-daemon", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("local-daemon", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	cliRC, err := ratls.NewProvisioned("local-daemon", m, secret,
		sllocal.EnclaveCodeIdentity, slremote.EnclaveCodeIdentity)
	if err != nil {
		t.Fatalf("NewProvisioned(client): %v", err)
	}

	client, err := wire.Dial(d1.addr, cliRC)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	state := &sllocal.UntrustedState{}
	svc, err := sllocal.New(sllocal.Config{TokenBatch: 8}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: client, State: state,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app, err := m.CreateEnclave("app", []byte("app"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	for i := 0; i < 30; i++ {
		tok, err := svc.RequestToken(app, "lic")
		if err != nil {
			t.Fatalf("RequestToken %d: %v", i, err)
		}
		for tok.Use() {
		}
	}
	if svc.Stats().Renewals == 0 {
		t.Fatal("workload performed no lease renewal")
	}
	// Graceful shutdown escrows the root key over the attested channel.
	if err := svc.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := cliRC.Stats(); st.ColdHandshakes != 1 || st.QuoteVerifications != 1 {
		t.Fatalf("first incarnation channel stats: %+v, want one quote-verified cold handshake", st)
	}

	// Restart the server daemon: new listener, new wire.Server, SAME
	// channel config — the deployment pattern of a daemon restart.
	d1.stop(t)
	_ = client.Close()
	d2 := startRatlsDaemon(t, remote, srvRC)

	client2, err := wire.Dial(d2.addr, cliRC)
	if err != nil {
		t.Fatalf("re-Dial: %v", err)
	}
	defer client2.Close()
	svc2, err := sllocal.New(sllocal.Config{TokenBatch: 8}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: client2, State: state,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc2.Init(); err != nil {
		t.Fatalf("re-Init: %v", err)
	}
	if _, err := svc2.RequestToken(app, "lic"); err != nil {
		t.Fatalf("post-restore RequestToken: %v", err)
	}
	if got := svc2.Stats().Renewals; got != 0 {
		t.Fatalf("renewals after escrow restore = %d, want 0 (lease tree restored, not renewed)", got)
	}

	// The reconnect resumed: the ticket outlived the server restart, and
	// resumption skipped re-attestation (still exactly one verification).
	st := cliRC.Stats()
	if st.ResumedHandshakes == 0 {
		t.Fatalf("reconnect after server restart did not resume: %+v", st)
	}
	if st.QuoteVerifications != 1 {
		t.Fatalf("resumed reconnect re-verified the quote: %+v", st)
	}

	// A daemon provisioned with the wrong secret cannot join the fleet:
	// its quote key derivation diverges, so the handshake dies on quote
	// verification even though it presents the right code identity.
	evilMachine, err := sgx.NewMachine(sgx.MachineConfig{Name: "impostor", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	evilRC, err := ratls.NewProvisioned("impostor", evilMachine, []byte("wrong-secret"),
		sllocal.EnclaveCodeIdentity, slremote.EnclaveCodeIdentity)
	if err != nil {
		t.Fatalf("NewProvisioned(impostor): %v", err)
	}
	if _, err := wire.Dial(d2.addr, evilRC); !errors.Is(err, ratls.ErrHandshake) {
		t.Fatalf("impostor dial: got %v, want ErrHandshake", err)
	}
}
