package cluster

import (
	"encoding/json"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/store"
	"repro/internal/wire"
)

// NodeObs bundles one node's observability identity: a private metric
// registry, trace ring, and flight recorder, optionally served over a
// loopback HTTP endpoint. The bundle follows the *process*, not the role:
// a follower's bundle rides along when it is promoted, so its counters
// and flight events stay continuous across the failover — exactly what a
// real daemon's in-process instruments would do. The fleet aggregator
// (internal/obs/fleet) scrapes bundles either over HTTP or through the
// wire obs_pull RPC via PullSource.
type NodeObs struct {
	// Name identifies the node in fleet output (e.g. "shard0-n0" for the
	// first leader incarnation of shard 0, "shard0-f1" for its second
	// follower).
	Name string
	// Registry receives every subsystem's metric families for this node.
	Registry *obs.Registry
	// Tracer is the node's span ring, stitched fleet-wide by TraceID.
	Tracer *obs.Tracer
	// Flight is the node's black-box event ring.
	Flight *flight.Recorder

	ep   *obs.HTTPServer
	addr string // last bound endpoint address; survives Close so dead nodes stay addressable
}

// NewNodeObs builds a bundle with a fresh registry, a tracer of
// traceBuffer spans (<=0: the obs default), and a flight recorder. The
// tracer's and recorder's own meta-metrics (dropped spans, event counts)
// are registered immediately.
func NewNodeObs(name string, traceBuffer int) *NodeObs {
	if traceBuffer <= 0 {
		traceBuffer = 4096
	}
	o := &NodeObs{
		Name:     name,
		Registry: obs.NewRegistry(),
		Tracer:   obs.NewTracer(traceBuffer),
		Flight:   flight.NewRecorder(flight.DefaultCapacity),
	}
	o.Tracer.ExposeMetrics(o.Registry)
	o.Flight.ExposeMetrics(o.Registry)
	return o
}

// Serve starts the bundle's HTTP exposition endpoint on an ephemeral
// loopback port (/metrics, /trace, /events). Idempotent.
func (o *NodeObs) Serve() error {
	if o == nil || o.ep != nil {
		return nil
	}
	ep, err := obs.StartHTTPOpts("127.0.0.1:0", o.Registry, o.Tracer,
		obs.HandlerOptions{Events: o.Flight.HTTPHandler()})
	if err != nil {
		return err
	}
	o.ep = ep
	o.addr = ep.Addr()
	return nil
}

// Addr is the bundle's HTTP endpoint address ("" until Serve). It keeps
// returning the last bound address after Close: a fleet aggregator keeps
// a dead node in its target list and watches the scrapes fail — that
// refused connection IS the failover signal.
func (o *NodeObs) Addr() string {
	if o == nil {
		return ""
	}
	return o.addr
}

// URL is the bundle's HTTP base URL ("" until Serve).
func (o *NodeObs) URL() string {
	if addr := o.Addr(); addr != "" {
		return "http://" + addr
	}
	return ""
}

// Close shuts the HTTP endpoint down (the registry, tracer, and recorder
// stay readable — a dead node's last state is still dumpable in-process).
func (o *NodeObs) Close() {
	if o == nil || o.ep == nil {
		return
	}
	_ = o.ep.Close()
	o.ep = nil
}

// PullSource adapts the bundle to the wire obs_pull RPC: the returned
// source marshals exactly the bytes the HTTP endpoint would serve, so a
// fleet aggregator scraping over the attested channel sees the same
// exposition as one scraping plain HTTP.
func (o *NodeObs) PullSource() wire.ObsSource {
	return func(traceFilter string) wire.ObsPullResponse {
		var resp wire.ObsPullResponse
		resp.Metrics, _ = json.Marshal(o.Registry.Export())
		resp.Trace, _ = json.Marshal(o.Tracer.Dump(traceFilter))
		resp.Events, _ = json.Marshal(o.Flight.Dump())
		return resp
	}
}

// StoreMetrics registers the store metric family with the bundle's
// registry and returns the handle for store.Options.Metrics. Nil-safe:
// an unobserved node opens its store uninstrumented.
func (o *NodeObs) StoreMetrics() *store.Metrics {
	if o == nil {
		return nil
	}
	return store.ExposeMetrics(o.Registry)
}

// flightRec returns the bundle's recorder, nil when unobserved (a nil
// *flight.Recorder swallows Emit calls for free).
func (o *NodeObs) flightRec() *flight.Recorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// EmitProbeTimeout records the flight event that opens every failover
// timeline: the leader went silent past the detection threshold. Both
// Cluster.FailOver (where the "probe" is the harness deciding to kill)
// and the sl-remote daemon's real liveness probe loop report through
// this one helper, keeping the event kind's emission site unique.
func EmitProbeTimeout(rec *flight.Recorder, shard int, leader string, silentFor time.Duration) {
	rec.Emit("failover.probe_timeout",
		flight.KV{K: "shard", V: strconv.Itoa(shard)},
		flight.KV{K: "leader", V: leader},
		flight.KV{K: "silent_for", V: silentFor.String()})
}
