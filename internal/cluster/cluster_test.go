package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/store"
	"repro/internal/wire"
)

func testKey(t *testing.T) seccrypto.Key {
	t.Helper()
	key, err := seccrypto.KeyFromBytes([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatalf("KeyFromBytes: %v", err)
	}
	return key
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1, err := NewRing(4, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	r2, err := NewRing(4, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("lic-%d", i)
		s := r1.Shard(id)
		if s2 := r2.Shard(id); s2 != s {
			t.Fatalf("ring not deterministic: %q → %d vs %d", id, s, s2)
		}
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		counts[s]++
	}
	for shard, n := range counts {
		// With 256 vnodes the split should be within a factor of two of
		// the 2500 mean; a collapsed ring (everything on one shard) is
		// the bug this guards against.
		if n < 1250 || n > 5000 {
			t.Fatalf("shard %d owns %d of 10000 licenses; distribution collapsed: %v", shard, n, counts)
		}
	}

	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("zero-shard ring accepted")
	}
}

func TestDirectoryEpochsAndGate(t *testing.T) {
	ring, err := NewRing(2, 8)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	d := NewDirectory(ring)
	if addr, epoch := d.Leader(0); addr != "" || epoch != 0 {
		t.Fatalf("fresh directory: leader %q epoch %d", addr, epoch)
	}
	if got := d.SetLeader(0, "a:1"); got != 1 {
		t.Fatalf("first epoch = %d, want 1", got)
	}
	if got := d.SetLeader(0, "a:2"); got != 2 {
		t.Fatalf("second epoch = %d, want 2", got)
	}
	d.SetLeader(1, "b:1")

	// Find a license on each shard.
	licOn := func(shard int) string {
		for i := 0; ; i++ {
			id := fmt.Sprintf("lic-%d", i)
			if ring.Shard(id) == shard {
				return id
			}
		}
	}
	gate0 := d.Gate(0, "a:2")
	if leader, epoch, owned := gate0(licOn(0)); !owned || leader != "a:2" || epoch != 2 {
		t.Fatalf("gate0 on own license: leader %q epoch %d owned %v", leader, epoch, owned)
	}
	if leader, _, owned := gate0(licOn(1)); owned || leader != "b:1" {
		t.Fatalf("gate0 on shard 1 license: leader %q owned %v", leader, owned)
	}
	// A deposed leader no longer owns anything, even on its own shard.
	deposed := d.Gate(0, "a:1")
	if leader, epoch, owned := deposed(licOn(0)); owned || leader != "a:2" || epoch != 2 {
		t.Fatalf("deposed gate: leader %q epoch %d owned %v", leader, epoch, owned)
	}
}

// waitReplicated polls until shard's follower state equals its leader's.
func waitReplicated(t *testing.T, c *Cluster, shard int) {
	t.Helper()
	want := c.Leader(shard).Remote().ExportState()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := c.Follower(shard).State(); reflect.DeepEqual(got, want) {
			return
		}
		if time.Now().After(deadline) {
			got := c.Follower(shard).State()
			t.Fatalf("shard %d follower never caught up:\n got %+v\nwant %+v", shard, got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// licenseOnShard returns a license ID the cluster places on shard.
func licenseOnShard(c *Cluster, shard int, prefix string) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if c.Route(id) == shard {
			return id
		}
	}
}

func startTestCluster(t *testing.T, shards int, audit bool) *Cluster {
	t.Helper()
	c, err := New(Options{
		Shards:       shards,
		Dir:          t.TempDir(),
		SealKey:      testKey(t),
		SyncMode:     store.SyncAlways,
		PullInterval: time.Millisecond,
		Audit:        audit,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return c
}

func TestClusterShardsAndReplicates(t *testing.T) {
	c := startTestCluster(t, 2, false)
	lic0 := licenseOnShard(c, 0, "lic")
	lic1 := licenseOnShard(c, 1, "lic")
	if err := c.RegisterLicense(lic0, lease.CountBased, 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLicense(lic1, lease.CountBased, 600); err != nil {
		t.Fatal(err)
	}

	// Each license lives only on its owning shard.
	if _, err := c.Leader(0).Remote().License(lic0); err != nil {
		t.Fatalf("shard 0 missing %s: %v", lic0, err)
	}
	if _, err := c.Leader(0).Remote().License(lic1); err == nil {
		t.Fatalf("shard 0 holds shard 1's license %s", lic1)
	}

	// Traffic on both shards, then both followers converge.
	for shard, lic := range []string{lic0, lic1} {
		remote := c.Leader(shard).Remote()
		init, err := remote.InitClient("", attest.Quote{}, nil)
		if err != nil {
			t.Fatalf("InitClient shard %d: %v", shard, err)
		}
		if _, err := remote.RenewLease(init.SLID, lic); err != nil {
			t.Fatalf("RenewLease shard %d: %v", shard, err)
		}
		if err := remote.ConsumeReport(init.SLID, lic, 5); err != nil {
			t.Fatalf("ConsumeReport shard %d: %v", shard, err)
		}
		waitReplicated(t, c, shard)
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}

	// A client dialed at the wrong shard is redirected transparently.
	client, err := wire.DialPolicy(c.Leader(0).Addr(), time.Second, ratls.Insecure(),
		wire.RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer client.Close()
	info, err := client.LicenseInfo(lic1)
	if err != nil {
		t.Fatalf("LicenseInfo across shards: %v", err)
	}
	if info.TotalGCL != 600 {
		t.Fatalf("TotalGCL = %d, want 600", info.TotalGCL)
	}
}

func TestClusterFailover(t *testing.T) {
	c := startTestCluster(t, 2, true)
	lic := licenseOnShard(c, 0, "lic")
	if err := c.RegisterLicense(lic, lease.CountBased, 2000); err != nil {
		t.Fatal(err)
	}
	remote := c.Leader(0).Remote()
	init, err := remote.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient: %v", err)
	}
	grant, err := remote.RenewLease(init.SLID, lic)
	if err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	if err := remote.ConsumeReport(init.SLID, lic, grant.Units/2); err != nil {
		t.Fatalf("ConsumeReport: %v", err)
	}
	oldAddr := c.Leader(0).Addr()
	wantState := remote.ExportState()

	// A client is mid-conversation with the doomed leader.
	client, err := wire.DialPolicy(oldAddr, time.Second, ratls.Insecure(),
		wire.RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer client.Close()

	if err := c.FailOver(0); err != nil {
		t.Fatalf("FailOver: %v", err)
	}

	// The promoted leader serves the exact state the dead one had.
	newLeader := c.Leader(0)
	if newLeader.Addr() == oldAddr {
		t.Fatal("failover kept the same address")
	}
	if got := newLeader.Remote().ExportState(); !reflect.DeepEqual(got, wantState) {
		t.Fatalf("promoted state diverged:\n got %+v\nwant %+v", got, wantState)
	}
	if addr, epoch := c.Directory().Leader(0); addr != newLeader.Addr() || epoch != 2 {
		t.Fatalf("directory: leader %q epoch %d, want %q epoch 2", addr, epoch, newLeader.Addr())
	}

	// Renewals keep flowing on the promoted leader, and the survivor
	// shard's gate redirects traffic for the failed-over shard there.
	if _, err := newLeader.Remote().RenewLease(init.SLID, lic); err != nil {
		t.Fatalf("RenewLease on promoted leader: %v", err)
	}
	viaSurvivor, err := wire.DialPolicy(c.Leader(1).Addr(), time.Second, ratls.Insecure(),
		wire.RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatalf("DialPolicy survivor: %v", err)
	}
	defer viaSurvivor.Close()
	if _, err := viaSurvivor.LicenseInfo(lic); err != nil {
		t.Fatalf("LicenseInfo via survivor after failover: %v", err)
	}

	// Zero lease-units created or destroyed across the takeover, and the
	// audit chain verifies across both leader incarnations.
	waitReplicated(t, c, 0)
	if err := c.CheckConservation(); err != nil {
		t.Fatalf("conservation after failover: %v", err)
	}
	if err := c.VerifyAudit(); err != nil {
		t.Fatalf("audit chain after failover: %v", err)
	}

	// A second failover of the same shard works (the new follower is live).
	if err := c.FailOver(0); err != nil {
		t.Fatalf("second FailOver: %v", err)
	}
	if _, epoch := c.Directory().Leader(0); epoch != 3 {
		t.Fatalf("epoch = %d after second failover, want 3", epoch)
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatalf("conservation after second failover: %v", err)
	}
}

func TestClusterAttestedReplication(t *testing.T) {
	// The replication stream rides RA-TLS: every endpoint derives channel
	// credentials from the shared provisioning secret, exactly like the
	// sl-remote/sl-local daemons.
	secret := []byte("cluster-swarm")
	code := []byte("cluster-node")
	newChannel := func(role string) (*ratls.Config, error) {
		m, err := sgx.NewMachine(sgx.MachineConfig{Name: role})
		if err != nil {
			return nil, err
		}
		return ratls.NewProvisioned(role, m, secret, code, code)
	}
	c, err := New(Options{
		Shards:       1,
		Dir:          t.TempDir(),
		SealKey:      testKey(t),
		SyncMode:     store.SyncAlways,
		PullInterval: time.Millisecond,
		NewChannel:   newChannel,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	lic := licenseOnShard(c, 0, "lic")
	if err := c.RegisterLicense(lic, lease.CountBased, 300); err != nil {
		t.Fatal(err)
	}
	init, err := c.Leader(0).Remote().InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient: %v", err)
	}
	if _, err := c.Leader(0).Remote().RenewLease(init.SLID, lic); err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	waitReplicated(t, c, 0)

	// An un-attested peer cannot join the replication stream.
	plain, err := wire.DialPolicy(c.Leader(0).Addr(), 500*time.Millisecond, ratls.Insecure(),
		wire.RetryPolicy{Attempts: 1, Seed: 1})
	if err == nil {
		defer plain.Close()
		if _, err := plain.ReplPull(0, 0, 0); err == nil {
			t.Fatal("plaintext peer pulled the attested replication stream")
		}
	}
}

func TestClusterRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Shards: 1, Dir: t.TempDir()}); err == nil {
		t.Fatal("cluster without a seal key accepted")
	}
	if _, err := New(Options{Shards: 1, SealKey: testKey(t)}); err == nil {
		t.Fatal("cluster without a state dir accepted")
	}
	if _, err := New(Options{Shards: 0, Dir: t.TempDir(), SealKey: testKey(t)}); err == nil {
		t.Fatal("zero-shard cluster accepted")
	}
}

func TestFollowerDrainSurvivesDeadLeader(t *testing.T) {
	c := startTestCluster(t, 1, false)
	lic := licenseOnShard(c, 0, "lic")
	if err := c.RegisterLicense(lic, lease.CountBased, 100); err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, c, 0)
	// Kill the leader without draining first: Drain must still terminate,
	// holding whatever prefix was shipped (here: everything).
	want := c.Leader(0).Remote().ExportState()
	c.Leader(0).Kill()
	f := c.Follower(0)
	if err := f.Drain(); err != nil {
		t.Fatalf("Drain after leader death: %v", err)
	}
	if got := f.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("drained state diverged:\n got %+v\nwant %+v", got, want)
	}
}
