package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/obs/flight"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/slremote"
	"repro/internal/store"
	"repro/internal/wire"
)

// DefaultPullInterval paces a caught-up follower's next replication pull.
const DefaultPullInterval = 25 * time.Millisecond

// FollowerOptions configures one shard's warm standby.
type FollowerOptions struct {
	// Shard is the hash range this follower stands by for.
	Shard int
	// LeaderAddr is the leader it tails.
	LeaderAddr string
	// SealKey must match the leader's (shipped snapshots unseal with it).
	SealKey seccrypto.Key
	// Config and Service are carried to the promoted server.
	Config  slremote.Config
	Service *attest.Service
	// Channel is the wire channel for the replication connection. The
	// stream rides the same attested transport as client traffic: shard
	// state never crosses the network outside RA-TLS unless the operator
	// explicitly chose plaintext.
	Channel *ratls.Config
	// PullInterval paces pulls once caught up (default
	// DefaultPullInterval).
	PullInterval time.Duration
	// Metrics records replication progress (nil: none).
	Metrics *Metrics
	// Obs is the follower's own observability bundle (nil: unobserved).
	// Replication progress is mirrored into its registry alongside the
	// cluster-wide Metrics, and failover flight events land in its
	// recorder. On Promote the bundle follows the process: the new
	// leader's counters continue where the follower's left off.
	Obs *NodeObs
}

// Follower tails a shard leader's WAL over the wire and folds every
// durable record into an slremote.Replica, keeping a promotable warm copy
// of the shard's state. The pull loop runs in the background until Drain.
type Follower struct {
	opts   FollowerOptions
	client *wire.Client
	obsm   *Metrics // per-node mirror of replication metrics (nil: none)

	mu      sync.Mutex
	replica *slremote.Replica
	gen     uint64
	off     int64

	stop chan struct{}
	done chan struct{}
}

// StartFollower dials the leader and starts the pull loop.
func StartFollower(opts FollowerOptions) (*Follower, error) {
	if opts.PullInterval <= 0 {
		opts.PullInterval = DefaultPullInterval
	}
	replica, err := slremote.NewReplica(opts.Config, opts.Service, opts.SealKey)
	if err != nil {
		return nil, err
	}
	client, err := wire.DialPolicy(opts.LeaderAddr, wire.DefaultTimeout, opts.Channel,
		wire.DefaultRetryPolicy(int64(opts.Shard)+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d follower dialing leader: %w", opts.Shard, err)
	}
	f := &Follower{
		opts:    opts,
		client:  client,
		replica: replica,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if opts.Obs != nil {
		f.obsm = NewMetrics(opts.Obs.Registry)
		client.ExposeMetrics(opts.Obs.Registry, opts.Obs.Tracer)
	}
	go f.loop()
	return f, nil
}

func (f *Follower) loop() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		caught, err := f.pullOnce()
		if err != nil || caught {
			// Errors here are transient from the loop's point of view
			// (the leader may be mid-death; Drain surfaces what matters).
			// Either way, pause before the next pull.
			select {
			case <-f.stop:
				return
			case <-time.After(f.opts.PullInterval):
			}
		}
	}
}

// pullOnce fetches and applies one replication batch, advancing the
// follower's WAL position.
func (f *Follower) pullOnce() (caught bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	resp, err := f.client.ReplPull(f.gen, f.off, 0)
	if err != nil {
		return false, err
	}
	f.opts.Metrics.pull()
	f.obsm.pull()
	batch := store.TailBatch{
		Gen:        resp.Gen,
		Rebase:     resp.Rebase,
		Snapshot:   resp.Snapshot,
		Records:    resp.Records,
		NextOffset: resp.NextOffset,
		Tip:        resp.Tip,
	}
	n, err := f.replica.ApplyBatch(batch)
	f.opts.Metrics.appliedRecords(f.opts.Shard, n)
	f.obsm.appliedRecords(f.opts.Shard, n)
	if err != nil {
		return false, fmt.Errorf("cluster: shard %d follower apply: %w", f.opts.Shard, err)
	}
	f.gen, f.off = resp.Gen, resp.NextOffset
	f.opts.Metrics.setLag(f.opts.Shard, resp.Tip-resp.NextOffset)
	f.obsm.setLag(f.opts.Shard, resp.Tip-resp.NextOffset)
	return batch.Caught(), nil
}

// Drain stops the background loop and pulls until the follower is caught
// up with the leader's durable tip. A leader that died mid-drain ends the
// catch-up early: the follower then holds exactly the prefix the leader
// managed to ship, which is still a legal (conservation-preserving) state.
func (f *Follower) Drain() error {
	f.stopLoop()
	f.opts.Obs.flightRec().Emit("failover.drain",
		flight.KV{K: "shard", V: shardLabel(f.opts.Shard)},
		flight.KV{K: "leader", V: f.opts.LeaderAddr})
	for {
		caught, err := f.pullOnce()
		if err != nil {
			if errors.Is(err, wire.ErrRemote) {
				return fmt.Errorf("cluster: shard %d drain: %w", f.opts.Shard, err)
			}
			// Connection-level failure: the leader is gone; whatever was
			// pulled so far is the final state.
			return nil
		}
		if caught {
			return nil
		}
	}
}

// Close stops the pull loop and closes the replication connection
// without promoting; the replica's state is discarded.
func (f *Follower) Close() error {
	f.stopLoop()
	return f.client.Close()
}

// stopLoop idempotently stops the background pull loop and waits for it.
func (f *Follower) stopLoop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	<-f.done
}

// Applied reports the records folded since the last rebase.
func (f *Follower) Applied() int64 { return f.replica.Applied() }

// Obs is the follower's observability bundle (nil when unobserved).
func (f *Follower) Obs() *NodeObs { return f.opts.Obs }

// State deep-copies the follower's current state.
func (f *Follower) State() slremote.State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replica.State()
}

// Promote turns the drained follower into the shard's serving leader: the
// replica attaches to a fresh store in opts.Dir (snapshotting the
// inherited state immediately), the node starts serving, and the
// directory is updated so every gate and client routes to it under the
// new epoch. The caller must Drain first.
func (f *Follower) Promote(opts NodeOptions) (*Node, error) {
	f.stopLoop()
	_ = f.client.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	if opts.Obs == nil {
		// The bundle follows the process: a promoted follower keeps its
		// registry, tracer, and flight recorder, so counters and the
		// event timeline stay continuous across the role change.
		opts.Obs = f.opts.Obs
	}
	st, rec, err := store.Open(store.Options{
		Dir: opts.Dir, Mode: opts.SyncMode, Metrics: opts.Obs.StoreMetrics(),
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d promote store: %w", opts.Shard, err)
	}
	if !rec.Empty() {
		st.Close()
		return nil, fmt.Errorf("cluster: shard %d promote: directory %s already holds state", opts.Shard, opts.Dir)
	}
	remote, err := f.replica.Promote(slremote.PersistConfig{
		Log: st, Snap: st, SealKey: opts.SealKey, SnapshotEvery: opts.SnapshotEvery,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	n, err := serveNode(opts, st, remote)
	if err != nil {
		st.Close()
		return nil, err
	}
	opts.Obs.flightRec().Emit("failover.promote",
		flight.KV{K: "shard", V: shardLabel(opts.Shard)},
		flight.KV{K: "addr", V: n.addr},
		flight.KV{K: "applied", V: strconv.FormatInt(f.replica.Applied(), 10)})
	epoch := opts.Directory.SetLeader(opts.Shard, n.addr)
	f.opts.Metrics.setEpoch(opts.Shard, epoch)
	f.opts.Metrics.failover()
	f.obsm.setEpoch(opts.Shard, epoch)
	f.obsm.failover()
	opts.Obs.flightRec().Emit("cluster.epoch_bump",
		flight.KV{K: "shard", V: shardLabel(opts.Shard)},
		flight.KV{K: "epoch", V: strconv.FormatUint(epoch, 10)})
	return n, nil
}
