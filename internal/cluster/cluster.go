package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/audit"
	"repro/internal/chaos"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/slremote"
	"repro/internal/store"
)

// Options configures a whole cluster.
type Options struct {
	// Shards is the number of hash ranges (and leader servers).
	Shards int
	// Vnodes per shard on the placement ring (0: DefaultVnodes).
	Vnodes int
	// Dir is the root state directory; each shard incarnation gets a
	// subdirectory.
	Dir string
	// SealKey seals snapshots, escrow, and audit chains cluster-wide.
	SealKey seccrypto.Key
	// Config is the Algorithm 1 parameter set (zero value: defaults).
	Config slremote.Config
	// Service gates client attestation (nil: open).
	Service *attest.Service
	// NewChannel mints a wire channel config per endpoint (each node and
	// follower connection needs its own). Nil defaults every channel to
	// ratls.Insecure(); production wiring passes ratls.NewProvisioned
	// closures.
	NewChannel func(role string) (*ratls.Config, error)
	// SyncMode is every store's WAL durability mode.
	SyncMode store.SyncMode
	// SnapshotEvery compacts each leader's WAL after this many records.
	SnapshotEvery int
	// PullInterval paces follower pulls (0: DefaultPullInterval).
	PullInterval time.Duration
	// Audit attaches a tamper-evident audit chain per shard.
	Audit bool
	// Registry receives the cluster_* metrics (nil: none).
	Registry *obs.Registry
	// Observe gives every node (leader incarnations and followers) its
	// own NodeObs bundle — a private registry, tracer, and flight
	// recorder served on a loopback HTTP endpoint — so a fleet
	// aggregator can scrape the cluster like a real multi-process
	// deployment. Dead nodes keep their (closed) endpoints listed in
	// ObsTargets: the aggregator's scrape errors and staleness metrics
	// are part of the failover story, not noise.
	Observe bool
	// TraceBuffer sizes each observed node's span ring (0: obs default).
	TraceBuffer int
	// Logf receives server logs (nil: silent).
	Logf func(string, ...any)
}

// shardState is one shard's moving parts: the serving leader, its warm
// follower, the shard-lifetime audit chain, and an incarnation counter
// naming each new leader's state directory.
type shardState struct {
	leader       *Node
	follower     *Follower
	audit        *audit.Log
	incarnation  int
	fIncarnation int // follower bundle naming counter
}

// Cluster is a sharded, WAL-replicated SL-Remote deployment: N leader
// servers splitting the license hash space, each shadowed by a follower
// tailing its WAL, routed by a shared directory.
type Cluster struct {
	opts    Options
	ring    *Ring
	dir     *Directory
	metrics *Metrics

	mu       sync.Mutex
	shards   []*shardState
	declared map[string]int64
	licCount []int // declared licenses per shard

	obsMu   sync.Mutex
	targets []*NodeObs // every bundle ever created, dead nodes included
}

// New stands the cluster up: a leader per shard (registered in the
// directory at epoch 1) and a follower tailing each.
func New(opts Options) (*Cluster, error) {
	if opts.SealKey.IsZero() {
		return nil, fmt.Errorf("cluster: a seal key is required (snapshots ship between nodes sealed)")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("cluster: a state directory is required")
	}
	if opts.Config == (slremote.Config{}) {
		opts.Config = slremote.DefaultConfig()
	}
	if opts.NewChannel == nil {
		opts.NewChannel = func(string) (*ratls.Config, error) { return ratls.Insecure(), nil }
	}
	ring, err := NewRing(opts.Shards, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:     opts,
		ring:     ring,
		dir:      NewDirectory(ring),
		metrics:  NewMetrics(opts.Registry),
		shards:   make([]*shardState, opts.Shards),
		declared: make(map[string]int64),
		licCount: make([]int, opts.Shards),
	}
	for shard := 0; shard < opts.Shards; shard++ {
		s := &shardState{}
		c.shards[shard] = s
		if opts.Audit {
			path := filepath.Join(opts.Dir, fmt.Sprintf("shard-%d-audit.log", shard))
			s.audit, err = audit.Open(path, opts.SealKey)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: shard %d audit: %w", shard, err)
			}
		}
		node, err := c.startLeader(s, shard)
		if err != nil {
			c.Close()
			return nil, err
		}
		s.leader = node
		epoch := c.dir.SetLeader(shard, node.Addr())
		c.metrics.setEpoch(shard, epoch)
		s.follower, err = c.startFollower(s, shard, node.Addr())
		if err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// newNodeObs mints and serves an observability bundle named name, or
// returns nil when Observe is off. Every bundle is remembered for
// ObsTargets — including ones whose node later dies.
func (c *Cluster) newNodeObs(name string) (*NodeObs, error) {
	if !c.opts.Observe {
		return nil, nil
	}
	o := NewNodeObs(name, c.opts.TraceBuffer)
	if err := o.Serve(); err != nil {
		return nil, fmt.Errorf("cluster: obs endpoint for %s: %w", name, err)
	}
	c.obsMu.Lock()
	c.targets = append(c.targets, o)
	c.obsMu.Unlock()
	return o, nil
}

// ObsTargets returns every observability bundle the cluster has created,
// in creation order: leader incarnations as shard<i>-n<k>, followers as
// shard<i>-f<k>. Dead nodes stay listed with closed endpoints — a fleet
// aggregator scraping the list sees their staleness climb, which is the
// observable shape of a failover.
func (c *Cluster) ObsTargets() []*NodeObs {
	c.obsMu.Lock()
	defer c.obsMu.Unlock()
	out := make([]*NodeObs, len(c.targets))
	copy(out, c.targets)
	return out
}

// startLeader starts shard's next leader incarnation in a fresh state
// directory.
func (c *Cluster) startLeader(s *shardState, shard int) (*Node, error) {
	dir := c.incarnationDir(shard, s.incarnation)
	s.incarnation++
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: shard %d state dir: %w", shard, err)
	}
	ch, err := c.opts.NewChannel(fmt.Sprintf("shard-%d-leader", shard))
	if err != nil {
		return nil, err
	}
	o, err := c.newNodeObs(fmt.Sprintf("shard%d-n%d", shard, s.incarnation-1))
	if err != nil {
		return nil, err
	}
	return StartNode(NodeOptions{
		Shard:         shard,
		Dir:           dir,
		SealKey:       c.opts.SealKey,
		Config:        c.opts.Config,
		Service:       c.opts.Service,
		Channel:       ch,
		Directory:     c.dir,
		Audit:         s.audit,
		SyncMode:      c.opts.SyncMode,
		SnapshotEvery: c.opts.SnapshotEvery,
		Obs:           o,
		Logf:          c.opts.Logf,
	})
}

func (c *Cluster) startFollower(s *shardState, shard int, leaderAddr string) (*Follower, error) {
	ch, err := c.opts.NewChannel(fmt.Sprintf("shard-%d-follower", shard))
	if err != nil {
		return nil, err
	}
	o, err := c.newNodeObs(fmt.Sprintf("shard%d-f%d", shard, s.fIncarnation))
	if err != nil {
		return nil, err
	}
	s.fIncarnation++
	return StartFollower(FollowerOptions{
		Shard:        shard,
		LeaderAddr:   leaderAddr,
		SealKey:      c.opts.SealKey,
		Config:       c.opts.Config,
		Service:      c.opts.Service,
		Channel:      ch,
		PullInterval: c.opts.PullInterval,
		Metrics:      c.metrics,
		Obs:          o,
	})
}

func (c *Cluster) incarnationDir(shard, incarnation int) string {
	return filepath.Join(c.opts.Dir, fmt.Sprintf("shard-%d-n%d", shard, incarnation))
}

// Ring returns the placement ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Directory returns the routing directory.
func (c *Cluster) Directory() *Directory { return c.dir }

// Route maps a license ID to its owning shard.
func (c *Cluster) Route(licenseID string) int { return c.ring.Shard(licenseID) }

// Leader returns shard's current serving node.
func (c *Cluster) Leader(shard int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[shard].leader
}

// LeaderFor returns the serving node owning licenseID.
func (c *Cluster) LeaderFor(licenseID string) *Node {
	return c.Leader(c.Route(licenseID))
}

// Follower returns shard's current warm standby.
func (c *Cluster) Follower(shard int) *Follower {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[shard].follower
}

// RegisterLicense registers the license on its owning shard and records
// the declared budget for cluster-wide conservation checks.
func (c *Cluster) RegisterLicense(id string, kind lease.Kind, totalGCL int64) error {
	if err := c.LeaderFor(id).Remote().RegisterLicense(id, kind, totalGCL); err != nil {
		return err
	}
	shard := c.ring.Shard(id)
	c.mu.Lock()
	if _, dup := c.declared[id]; !dup {
		c.licCount[shard]++
	}
	c.declared[id] = totalGCL
	c.metrics.setLicenses(shard, c.licCount[shard])
	c.mu.Unlock()
	return nil
}

// Declared returns a copy of the declared license budgets.
func (c *Cluster) Declared() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.declared))
	for id, total := range c.declared {
		out[id] = total
	}
	return out
}

// FailOver kills shard's leader and promotes its follower: the follower
// drains to the leader's durable tip, the leader dies, the replica
// attaches to a fresh store and starts serving under a bumped epoch, and
// a new follower starts tailing the new leader. Requests sent to the dead
// address fail; requests routed via any live server get a not_leader
// redirect to the new leader.
func (c *Cluster) FailOver(shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.shards[shard]
	// The failover timeline opens with the detection event; in-process
	// the "probe" is the harness deciding the leader is dead, so the
	// silence duration is zero.
	EmitProbeTimeout(s.follower.Obs().flightRec(), shard, s.leader.Addr(), 0)
	if err := s.follower.Drain(); err != nil {
		return err
	}
	s.leader.Kill()
	dir := c.incarnationDir(shard, s.incarnation)
	s.incarnation++
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: shard %d state dir: %w", shard, err)
	}
	ch, err := c.opts.NewChannel(fmt.Sprintf("shard-%d-leader", shard))
	if err != nil {
		return err
	}
	node, err := s.follower.Promote(NodeOptions{
		Shard:         shard,
		Dir:           dir,
		SealKey:       c.opts.SealKey,
		Config:        c.opts.Config,
		Service:       c.opts.Service,
		Channel:       ch,
		Directory:     c.dir,
		Audit:         s.audit,
		SyncMode:      c.opts.SyncMode,
		SnapshotEvery: c.opts.SnapshotEvery,
		Logf:          c.opts.Logf,
	})
	if err != nil {
		return fmt.Errorf("cluster: shard %d promote: %w", shard, err)
	}
	s.leader = node
	s.follower, err = c.startFollower(s, shard, node.Addr())
	if err != nil {
		return fmt.Errorf("cluster: shard %d new follower: %w", shard, err)
	}
	return nil
}

// States exports every live leader's state, indexed by shard.
func (c *Cluster) States() []slremote.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]slremote.State, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.leader.Remote().ExportState()
	}
	return out
}

// CheckConservation asserts the conservation law per shard and
// cluster-wide against the declared budgets.
func (c *Cluster) CheckConservation() error {
	return chaos.CheckConservationAll(c.Declared(), c.States()...)
}

// VerifyAudit re-walks every shard's audit chain, verifying the hash
// links across all leader incarnations that appended to it.
func (c *Cluster) VerifyAudit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for shard, s := range c.shards {
		if s.audit == nil {
			continue
		}
		if err := s.audit.Verify(); err != nil {
			return fmt.Errorf("cluster: shard %d audit chain: %w", shard, err)
		}
	}
	return nil
}

// Close tears the cluster down: followers stop, leaders shut down
// gracefully, audit chains close. Errors are collected but teardown
// always completes.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, s := range c.shards {
		if s == nil {
			continue
		}
		if s.follower != nil {
			keep(s.follower.Close())
		}
		if s.leader != nil {
			keep(s.leader.Shutdown(ctx))
		}
		if s.audit != nil {
			keep(s.audit.Close())
		}
	}
	return firstErr
}
