package cluster

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flight"
	"repro/internal/ratls"
	"repro/internal/store"
	"repro/internal/wire"
)

func startObservedCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := New(Options{
		Shards:       shards,
		Dir:          t.TempDir(),
		SealKey:      testKey(t),
		SyncMode:     store.SyncAlways,
		PullInterval: time.Millisecond,
		Observe:      true,
		TraceBuffer:  256,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return c
}

func TestObsTargetsAndBundleInheritance(t *testing.T) {
	c := startObservedCluster(t, 1)
	targets := c.ObsTargets()
	if len(targets) != 2 {
		t.Fatalf("ObsTargets = %d bundles, want leader + follower", len(targets))
	}
	if targets[0].Name != "shard0-n0" || targets[1].Name != "shard0-f0" {
		t.Fatalf("bundle names = %q, %q", targets[0].Name, targets[1].Name)
	}
	for _, o := range targets {
		if o.URL() == "" {
			t.Fatalf("bundle %s has no endpoint", o.Name)
		}
	}

	followerBundle := c.Follower(0).Obs()
	oldLeaderBundle := c.Leader(0).Obs()
	if err := c.FailOver(0); err != nil {
		t.Fatalf("FailOver: %v", err)
	}

	// The bundle follows the process: the promoted leader keeps the
	// follower's registry/tracer/recorder, so its counters are continuous
	// across the failover.
	if got := c.Leader(0).Obs(); got != followerBundle {
		t.Fatalf("promoted leader got a fresh bundle %q, want the follower's %q", got.Name, followerBundle.Name)
	}
	targets = c.ObsTargets()
	if len(targets) != 3 {
		t.Fatalf("ObsTargets after failover = %d, want 3 (dead leader stays listed)", len(targets))
	}
	if targets[2].Name != "shard0-f1" {
		t.Fatalf("new follower bundle = %q, want shard0-f1", targets[2].Name)
	}
	// The dead leader's address survives Close: a scraper keeps probing it
	// and the refused connection is the failover signal.
	if oldLeaderBundle.URL() == "" {
		t.Fatal("dead leader bundle lost its address")
	}
}

// fleetTargets adapts the cluster's bundles (plus extras) to scrape targets.
func fleetTargets(c *Cluster, extra ...*NodeObs) []fleet.Target {
	var out []fleet.Target
	for _, o := range append(c.ObsTargets(), extra...) {
		out = append(out, fleet.Target{Name: o.Name, URL: o.URL()})
	}
	return out
}

func mergedChild(fams []obs.ExportFamily, name string, label string) (obs.ExportFamily, obs.ExportChild, bool) {
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, ch := range f.Children {
			if label == "" || (len(ch.Labels) > 0 && ch.Labels[0] == label) {
				return f, ch, true
			}
		}
	}
	return obs.ExportFamily{}, obs.ExportChild{}, false
}

// TestClusterObserveFleetFailover is the acceptance run: a three-shard
// observed cluster takes wire traffic (including one renewal that crosses
// shards through a redirect), loses a leader, and a fleet aggregator
// reconstructs all of it — merged counters across live and dead nodes,
// quantiles from bucket-merged histograms, one trace stitched across
// three nodes, and a flight timeline spelling out the failover.
func TestClusterObserveFleetFailover(t *testing.T) {
	c := startObservedCluster(t, 3)
	lic0 := licenseOnShard(c, 0, "obs")
	lic1 := licenseOnShard(c, 1, "obs")
	for _, lic := range []string{lic0, lic1} {
		// A deep pool: repeated renewals without consumption must all be
		// granted so the merged counter has an exact ground truth.
		if err := c.RegisterLicense(lic, lease.CountBased, 1<<30); err != nil {
			t.Fatal(err)
		}
	}

	// The client is a fleet member too: its registry and span ring feed
	// the same aggregator, so the stitched trace includes the caller side.
	clientObs := NewNodeObs("client", 64)
	if err := clientObs.Serve(); err != nil {
		t.Fatalf("client obs: %v", err)
	}
	defer clientObs.Close()

	client, err := wire.DialPolicy(c.Leader(0).Addr(), time.Second, ratls.Insecure(),
		wire.RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 5})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer client.Close()
	client.ExposeMetrics(clientObs.Registry, clientObs.Tracer)

	init0, err := c.Leader(0).Remote().InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient shard 0: %v", err)
	}
	init1, err := c.Leader(1).Remote().InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient shard 1: %v", err)
	}

	// Algorithm 1 grants tg/D per renewal, so a fresh pool sustains at most
	// D=4 full renewals; stay under that so every attempt is granted and
	// the counters have an exact ground truth.
	granted := 0
	span0 := clientObs.Tracer.Start("bench.shard0")
	for i := 0; i < 3; i++ {
		if _, err := client.RenewLeaseSpan(span0, init0.SLID, lic0); err != nil {
			t.Fatalf("RenewLease shard 0: %v", err)
		}
		granted++
	}
	span0.End(nil)

	// One renewal for a shard-1 license while connected to shard 0: the
	// NotLeader redirect makes this single logical request touch two
	// server nodes under one TraceID.
	redirect := clientObs.Tracer.Start("bench.redirect")
	if _, err := client.RenewLeaseSpan(redirect, init1.SLID, lic1); err != nil {
		t.Fatalf("RenewLease across shards: %v", err)
	}
	redirect.End(nil)
	granted++
	traceID := redirect.Context().Trace.String()

	agg := fleet.New(fleet.Options{
		Targets: fleetTargets(c, clientObs),
		Timeout: 2 * time.Second,
		Logf:    t.Logf,
	})
	if err := agg.ScrapeOnce(); err != nil {
		t.Fatalf("ScrapeOnce with all nodes up: %v", err)
	}

	// Counter sums across every node equal the ground truth.
	if _, ch, ok := mergedChild(agg.Merged(), "slremote_renewals_total", ""); !ok || ch.Value != float64(granted) {
		t.Fatalf("merged slremote_renewals_total = %+v (ok=%v), want %d", ch, ok, granted)
	}

	// The redirect trace stitches across three nodes: client, the wrong
	// shard (which answered NotLeader), and the owning shard. Handler
	// spans land in the server tracers asynchronously, so poll briefly.
	// Six spans: the client root, two client-side RPC hops (the NotLeader
	// answer and the redirected retry), a handler span on each shard, and
	// the owning shard's slremote.renew child.
	var tr *fleet.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr = agg.StitchTrace(traceID)
		if tr.Spans >= 6 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tr.Spans != 6 || len(tr.Nodes) != 3 {
		t.Fatalf("stitched trace: %d spans across %v, want 6 spans on client + 2 shard nodes\n%s",
			tr.Spans, tr.Nodes, tr.Render())
	}
	if len(tr.Roots) != 1 || len(tr.Orphans) != 0 {
		t.Fatalf("roots=%d orphans=%d, want 1/0:\n%s", len(tr.Roots), len(tr.Orphans), tr.Render())
	}
	hopNodes := map[string]bool{}
	for _, hop := range tr.Roots[0].Children {
		for _, h := range hop.Children {
			hopNodes[h.Node] = true
		}
	}
	if !hopNodes["shard0-n0"] || !hopNodes["shard1-n0"] {
		t.Fatalf("handler spans on %v, want both shard0-n0 and shard1-n0:\n%s", hopNodes, tr.Render())
	}

	// Quantiles come from bucket-merged histograms: the merged renew
	// latency family must carry real counts and a computable p99.
	fam, ch, ok := mergedChild(agg.Merged(), "wire_server_rpc_latency_seconds", wire.TypeRenew)
	if !ok {
		t.Fatal("merged wire_server_rpc_latency_seconds missing a renew child")
	}
	if len(ch.Buckets) != len(fam.Bounds)+1 {
		t.Fatalf("merged buckets = %d for %d bounds", len(ch.Buckets), len(fam.Bounds))
	}
	if ch.Count < int64(granted) {
		t.Fatalf("merged renew latency count = %d, want >= %d", ch.Count, granted)
	}
	p99 := obs.BucketQuantile(fam.Bounds, ch.Buckets, 0.99)
	if p99 <= 0 || p99 > fam.Bounds[len(fam.Bounds)-1] {
		t.Fatalf("fleet p99 = %v from merged buckets, want within (0, %v]", p99, fam.Bounds[len(fam.Bounds)-1])
	}

	// Kill shard 0's leader. The aggregator keeps its last good snapshot
	// (its renewals stay in the fleet totals) and marks the node down.
	if err := c.FailOver(0); err != nil {
		t.Fatalf("FailOver: %v", err)
	}
	promoted := c.Leader(0)
	if _, err := promoted.Remote().RenewLease(init0.SLID, lic0); err != nil {
		t.Fatalf("RenewLease on promoted leader: %v", err)
	}
	granted++

	if err := agg.ScrapeOnce(); err == nil {
		t.Fatal("scrape after leader death reported no error")
	}
	// The fleet total now has three contributors: the dead leader's last
	// good snapshot (3 renewals, retained stale), shard 1's leader (1), and
	// the promoted node — whose replica replayed the dead leader's 3 WAL
	// renewals into its own counter before granting 1 more. The overlap is
	// real replicated state, not an aggregation bug, and it is exactly
	// predictable.
	wantSum := float64(granted + 3)
	merged := agg.Merged()
	if _, ch, ok := mergedChild(merged, "slremote_renewals_total", ""); !ok || ch.Value != wantSum {
		t.Fatalf("merged renewals after failover = %+v (ok=%v), want %v (stale snapshot + WAL-replayed copy)",
			ch, ok, wantSum)
	}
	if _, ch, ok := mergedChild(merged, "fleet_node_up", "shard0-n0"); !ok || ch.Value != 0 {
		t.Fatalf("fleet_node_up{shard0-n0} = %+v (ok=%v), want 0", ch, ok)
	}
	if _, ch, ok := mergedChild(merged, "fleet_node_up", "shard1-n0"); !ok || ch.Value != 1 {
		t.Fatalf("fleet_node_up{shard1-n0} = %+v (ok=%v), want 1", ch, ok)
	}
	// The epoch gauge merges under the Max rule: the promoted node knows
	// epoch 2 and no stale snapshot can pull it back down.
	if _, ch, ok := mergedChild(merged, "cluster_shard_epoch", "0"); !ok || ch.Value != 2 {
		t.Fatalf("merged cluster_shard_epoch{0} = %+v (ok=%v), want 2", ch, ok)
	}

	// The flight timeline reconstructs the failover: probe timeout, WAL
	// drain, promotion, epoch bump — in order, timestamped, all on the
	// surviving process's recorder.
	var seq []flight.Event
	for _, ev := range agg.Events() {
		if strings.HasPrefix(ev.Kind, "failover.") || ev.Kind == "cluster.epoch_bump" {
			seq = append(seq, ev)
		}
	}
	wantKinds := []string{"failover.probe_timeout", "failover.drain", "failover.promote", "cluster.epoch_bump"}
	if len(seq) != len(wantKinds) {
		t.Fatalf("failover timeline = %d events, want %v:\n%+v", len(seq), wantKinds, seq)
	}
	for i, ev := range seq {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("timeline[%d] = %s, want %s (full: %+v)", i, ev.Kind, wantKinds[i], seq)
		}
		if ev.Node != "shard0-f0" {
			t.Fatalf("timeline[%d] on node %q, want the promoted process shard0-f0", i, ev.Node)
		}
		if i > 0 && ev.Time.Before(seq[i-1].Time) {
			t.Fatalf("timeline timestamps regress at %d: %v before %v", i, ev.Time, seq[i-1].Time)
		}
	}
	if got := seq[3].Attr("epoch"); got != "2" {
		t.Fatalf("epoch bump attr = %q, want 2", got)
	}

	// The black box survives the process: persist the promoted node's ring
	// and read it back.
	path := filepath.Join(t.TempDir(), "flight.log")
	if err := promoted.Obs().Flight.Persist(path); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	events, err := flight.ReadDump(path)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, k := range wantKinds {
		if !kinds[k] {
			t.Fatalf("persisted dump missing %s (have %v)", k, kinds)
		}
	}
}
