package cluster

import (
	"context"
	"fmt"
	"net"

	"repro/internal/attest"
	"repro/internal/audit"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/slremote"
	"repro/internal/store"
	"repro/internal/wire"
)

// NodeOptions configures one shard server.
type NodeOptions struct {
	// Shard is the hash range this node serves.
	Shard int
	// Dir is the node's own state directory (WAL + snapshots). Every
	// incarnation of a shard gets a fresh directory: a promoted follower
	// never writes into its dead leader's files.
	Dir string
	// SealKey seals snapshots, escrow records, and the audit chain. One
	// key per cluster — shipped snapshots must unseal on the follower.
	SealKey seccrypto.Key
	// Config is the Algorithm 1 parameter set, shared by every shard.
	Config slremote.Config
	// Service gates InitClient attestation (nil: open attestation).
	Service *attest.Service
	// Channel is the wire channel config (attested or explicitly
	// insecure). Each node needs its own config instance.
	Channel *ratls.Config
	// Directory resolves shard ownership; the node's gate consults it on
	// every license-scoped request.
	Directory *Directory
	// Audit is the shard's tamper-evident lease audit chain (nil: none).
	// It outlives any one leader: a promoted follower appends to the same
	// chain, which is how the chain stays verifiable across failovers.
	Audit *audit.Log
	// SyncMode is the WAL durability mode (default SyncBatched).
	SyncMode store.SyncMode
	// SnapshotEvery compacts the WAL after this many records (0: only on
	// demand).
	SnapshotEvery int
	// Obs is the node's observability bundle (nil: unobserved). When set,
	// every subsystem the node touches — server, wire, channel, store,
	// audit — registers its metrics with the bundle's registry, traces
	// into its tracer, and emits flight events into its recorder, and the
	// wire server answers obs_pull scrapes from it.
	Obs *NodeObs
	// ListenAddr is the node's wire listen address (default 127.0.0.1:0,
	// an ephemeral loopback port — right for in-process clusters; the
	// sl-remote daemon passes its -addr).
	ListenAddr string
	// AdvertiseAddr is the address the node is known by in the directory
	// (default: the bound listener address). Daemons listening on a
	// wildcard address must advertise the address their -peer list uses,
	// or the gate would judge the node a stranger to its own shard.
	AdvertiseAddr string
	// Logf receives server logs (nil: silent).
	Logf func(string, ...any)
}

// Node is one running shard server: a durable slremote.Server behind a
// wire listener, gated by the cluster directory and exposing its WAL as a
// replication source.
type Node struct {
	shard  int
	dir    string
	addr   string
	store  *store.Store
	remote *slremote.Server
	wsrv   *wire.Server
	obs    *NodeObs
	done   chan struct{}
	killed bool
}

// StartNode opens (or recovers) the node's store, stands the server up on
// a loopback listener, and registers it as its shard's leader in the
// directory.
func StartNode(opts NodeOptions) (*Node, error) {
	st, rec, err := store.Open(store.Options{
		Dir: opts.Dir, Mode: opts.SyncMode, Metrics: opts.Obs.StoreMetrics(),
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d store: %w", opts.Shard, err)
	}
	remote, err := slremote.RecoverServer(opts.Config, opts.Service, rec, slremote.PersistConfig{
		Log: st, Snap: st, SealKey: opts.SealKey, SnapshotEvery: opts.SnapshotEvery,
	})
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("cluster: shard %d server: %w", opts.Shard, err)
	}
	n, err := serveNode(opts, st, remote)
	if err != nil {
		st.Close()
		return nil, err
	}
	return n, nil
}

// serveNode wraps an already-built server in the wire layer and starts
// serving; StartNode and Follower.Promote share it so a promoted follower
// is indistinguishable from a freshly started leader.
func serveNode(opts NodeOptions, st *store.Store, remote *slremote.Server) (*Node, error) {
	remote.AttachAudit(opts.Audit)
	wsrv, err := wire.NewServer(remote, opts.Logf, opts.Channel)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d wire server: %w", opts.Shard, err)
	}
	if o := opts.Obs; o != nil {
		remote.ExposeMetrics(o.Registry)
		remote.SetFlightRecorder(o.Flight)
		wsrv.ExposeMetrics(o.Registry, o.Tracer)
		wsrv.SetFlightRecorder(o.Flight)
		wsrv.SetObsSource(o.PullSource())
		if opts.Channel != nil {
			opts.Channel.ExposeMetrics(o.Registry, o.Tracer)
			opts.Channel.SetFlightRecorder(o.Flight)
		}
		if opts.Audit != nil {
			opts.Audit.ExposeMetrics(o.Registry)
		}
	}
	listenAddr := opts.ListenAddr
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d listen: %w", opts.Shard, err)
	}
	addr := opts.AdvertiseAddr
	if addr == "" {
		addr = ln.Addr().String()
	}
	n := &Node{
		shard:  opts.Shard,
		dir:    opts.Dir,
		addr:   addr,
		store:  st,
		remote: remote,
		wsrv:   wsrv,
		obs:    opts.Obs,
		done:   make(chan struct{}),
	}
	wsrv.SetShardGate(opts.Directory.Gate(opts.Shard, n.addr))
	wsrv.SetReplSource(st)
	go func() {
		defer close(n.done)
		_ = wsrv.Serve(ln)
	}()
	return n, nil
}

// Addr is the node's listen address.
func (n *Node) Addr() string { return n.addr }

// Shard is the hash range the node serves.
func (n *Node) Shard() int { return n.shard }

// Remote is the node's SL-Remote instance; harnesses drive it directly to
// skip the wire layer.
func (n *Node) Remote() *slremote.Server { return n.remote }

// Store is the node's WAL store — the replication source followers tail.
func (n *Node) Store() *store.Store { return n.store }

// Obs is the node's observability bundle (nil when unobserved).
func (n *Node) Obs() *NodeObs { return n.obs }

// Kill simulates the leader dying: the listener and every connection drop
// and the store is abandoned without a snapshot or a clean close. The
// state directory survives (a real crash leaves the files), but the
// failover path never reads it — the follower's shipped state takes over.
func (n *Node) Kill() {
	if n.killed {
		return
	}
	n.killed = true
	n.wsrv.Close()
	<-n.done
	// A SIGKILLed process takes its exposition endpoint with it; the
	// fleet aggregator sees scrape errors and rising staleness.
	n.obs.Close()
}

// Shutdown drains in-flight requests, snapshots, and closes the store —
// the graceful exit for end-of-run teardown.
func (n *Node) Shutdown(ctx context.Context) error {
	if n.killed {
		return nil
	}
	n.killed = true
	if err := n.wsrv.Shutdown(ctx); err != nil {
		n.wsrv.Close()
	}
	<-n.done
	n.obs.Close()
	if err := n.remote.SnapshotNow(); err != nil {
		return fmt.Errorf("cluster: shard %d final snapshot: %w", n.shard, err)
	}
	if err := n.store.Close(); err != nil {
		return fmt.Errorf("cluster: shard %d closing store: %w", n.shard, err)
	}
	return nil
}
