// Package cluster shards SL-Remote license state across several server
// instances and keeps each shard warm-replicated for failover.
//
// Placement is a consistent-hash ring over license IDs: every license
// lives on exactly one shard, so the single-server conservation law
// (TotalGCL == Remaining + Σoutstanding + Consumed + Lost) keeps holding
// per shard, and cluster-wide conservation reduces to "each license on
// exactly one shard, summing to its declared budget" — which
// chaos.CheckConservationAll asserts.
//
// Each shard is one durable slremote.Server (the leader) plus one
// slremote.Replica (the follower) that tails the leader's WAL over the
// wire protocol's repl_pull stream. Failover drains the follower to the
// leader's durable tip, kills the leader, and promotes the follower onto
// its own fresh store under a bumped directory epoch; requests routed by
// stale servers come back as not_leader redirects that wire.Client
// follows transparently.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the number of ring points per shard. More points
// smooth the hash distribution; 256 keeps every shard's share within
// roughly ±15% of the mean for realistic license counts.
const DefaultVnodes = 256

// Ring is a consistent-hash ring mapping license IDs to shard indices.
// It is immutable after construction: shard count is fixed for a cluster's
// lifetime (failover replaces a shard's server, never the shard map), so
// lookups need no locking.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring of `shards` shards with `vnodes` points each
// (DefaultVnodes when vnodes <= 0).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		shards: shards,
		points: make([]ringPoint, 0, shards*vnodes),
	}
	for shard := 0; shard < shards; shard++ {
		for v := 0; v < vnodes; v++ {
			h := hash64(fmt.Sprintf("shard-%d-vnode-%d", shard, v))
			r.points = append(r.points, ringPoint{hash: h, shard: shard})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties break on shard index so the ring is deterministic even if
		// two vnode labels ever collide.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a license ID to its owning shard: the first ring point at or
// after the ID's hash, wrapping at the top of the hash space.
func (r *Ring) Shard(licenseID string) int {
	h := hash64(licenseID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone leaves keys that share
// a long prefix (sequential license IDs like lic-0000041) in one narrow
// region of the hash space — a one-byte change only perturbs the value by
// under 2^48 — which collapses whole ID ranges onto one shard. The
// finalizer's shift-xor-multiply cascade spreads every input bit across
// all 64 output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
