package cluster

import (
	"fmt"
	"testing"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/store"
	"repro/internal/wire"
)

// renewalsPerBenchLicense bounds how many renewals each benchmark
// license absorbs before a fresh one is provisioned outside the timer:
// Algorithm 1's grants are proportional to the remaining pool, so a lone
// client drains any budget in a few renewals — that is the licensing
// model, not a benchmark artifact.
const renewalsPerBenchLicense = 4

// benchCluster stands a cluster up for benchmarking: SyncOff keeps the
// measured path free of fsync latency (the same floor the cluster
// experiment in the harness uses), so the numbers are stable enough for
// the CI regression gate.
func benchCluster(b *testing.B, shards int) *Cluster {
	b.Helper()
	key, err := seccrypto.KeyFromBytes([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatalf("KeyFromBytes: %v", err)
	}
	c, err := New(Options{
		Shards:   shards,
		Dir:      b.TempDir(),
		SealKey:  key,
		SyncMode: store.SyncOff,
	})
	if err != nil {
		b.Fatalf("cluster.New: %v", err)
	}
	b.Cleanup(func() {
		if err := c.Close(); err != nil {
			b.Errorf("Close: %v", err)
		}
	})
	return c
}

// provision registers a fresh license on the wanted shard and inits a
// client for it, returning both IDs.
func provision(b *testing.B, c *Cluster, shard, seq int) (lic, slid string) {
	b.Helper()
	lic = licenseOnShard(c, shard, fmt.Sprintf("bench-%d", seq))
	if err := c.RegisterLicense(lic, lease.CountBased, 1<<30); err != nil {
		b.Fatalf("RegisterLicense: %v", err)
	}
	init, err := c.Leader(shard).Remote().InitClient("", attest.Quote{}, nil)
	if err != nil {
		b.Fatalf("InitClient: %v", err)
	}
	return lic, init.SLID
}

// BenchmarkClusterRenew measures the routed renewal path: ring lookup,
// leader dispatch, Algorithm 1, WAL append — the per-request work the
// million-client experiment multiplies out.
func BenchmarkClusterRenew(b *testing.B) {
	c := benchCluster(b, 2)
	var lic, slid string
	seq := 0
	for i := 0; i < b.N; i++ {
		if i%renewalsPerBenchLicense == 0 {
			b.StopTimer()
			lic, slid = provision(b, c, c.Route(fmt.Sprintf("bench-%d-0", seq))%2, seq)
			seq++
			b.StartTimer()
		}
		if _, err := c.LeaderFor(lic).Remote().RenewLease(slid, lic); err != nil {
			b.Fatalf("RenewLease: %v", err)
		}
	}
}

// BenchmarkClusterRenewWire measures the same renewal through the full
// wire path — message framing, shard gate, dispatch — as an SL-Local
// client connected to the owning leader experiences it.
func BenchmarkClusterRenewWire(b *testing.B) {
	c := benchCluster(b, 2)
	client, err := wire.Dial(c.Leader(0).Addr(), ratls.Insecure())
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	var lic, slid string
	seq := 0
	for i := 0; i < b.N; i++ {
		if i%renewalsPerBenchLicense == 0 {
			b.StopTimer()
			lic, slid = provision(b, c, 0, seq)
			seq++
			b.StartTimer()
		}
		if _, err := client.RenewLease(slid, lic); err != nil {
			b.Fatalf("RenewLease: %v", err)
		}
	}
}

// BenchmarkReplicationBatch measures shipping and applying one WAL pull:
// the leader tails its own log over the wire — the unit of work behind
// the cluster_repl_lag_bytes metric.
func BenchmarkReplicationBatch(b *testing.B) {
	c := benchCluster(b, 1)
	for seq := 0; seq < 32; seq++ {
		lic, slid := provision(b, c, 0, seq)
		for r := 0; r < renewalsPerBenchLicense; r++ {
			if _, err := c.Leader(0).Remote().RenewLease(slid, lic); err != nil {
				b.Fatalf("RenewLease: %v", err)
			}
		}
	}
	client, err := wire.Dial(c.Leader(0).Addr(), ratls.Insecure())
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.ReplPull(0, 0, 0)
		if err != nil {
			b.Fatalf("ReplPull: %v", err)
		}
		if len(resp.Records) == 0 && len(resp.Snapshot) == 0 {
			b.Fatal("empty replication batch")
		}
	}
}
