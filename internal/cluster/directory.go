package cluster

import (
	"sync"
)

// Directory is the cluster's routing authority: for every shard it names
// the current leader address and the epoch that leadership belongs to.
// Epochs only move forward — each promotion bumps the shard's epoch — so
// any two answers for the same shard are ordered, and a client or server
// seeing a smaller epoch knows it is stale.
//
// In this reproduction the directory is a shared in-process structure
// (the coordination service a production deployment would put in etcd or
// the like); servers consult it through the gate closures it hands out.
type Directory struct {
	ring *Ring

	mu      sync.RWMutex
	leaders []string
	epochs  []uint64
}

// NewDirectory builds a directory over the ring with every shard
// leaderless at epoch 0; SetLeader installs the initial leaders.
func NewDirectory(ring *Ring) *Directory {
	return &Directory{
		ring:    ring,
		leaders: make([]string, ring.Shards()),
		epochs:  make([]uint64, ring.Shards()),
	}
}

// Ring returns the placement ring the directory routes over.
func (d *Directory) Ring() *Ring { return d.ring }

// SetLeader makes addr the leader of shard and bumps the shard's epoch,
// returning the new epoch.
func (d *Directory) SetLeader(shard int, addr string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.leaders[shard] = addr
	d.epochs[shard]++
	return d.epochs[shard]
}

// Leader returns shard's current leader address and epoch. The address is
// empty while the shard is leaderless (before the first SetLeader, or
// mid-failover if a caller marked it so).
func (d *Directory) Leader(shard int) (addr string, epoch uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.leaders[shard], d.epochs[shard]
}

// Locate maps a license to its owning shard and that shard's current
// leader.
func (d *Directory) Locate(licenseID string) (shard int, leader string, epoch uint64) {
	shard = d.ring.Shard(licenseID)
	leader, epoch = d.Leader(shard)
	return shard, leader, epoch
}

// Gate returns the wire.ShardGate for a server at self serving shard: a
// license is owned here exactly when the ring places it on this shard AND
// the directory still names self the shard's leader. Everything else is
// answered with the owning shard's current leader, so a request that
// lands on a stale or wrong server gets one redirect to the right place.
func (d *Directory) Gate(shard int, self string) func(licenseID string) (string, uint64, bool) {
	return func(licenseID string) (string, uint64, bool) {
		owner, leader, epoch := d.Locate(licenseID)
		owned := owner == shard && leader == self
		return leader, epoch, owned
	}
}
