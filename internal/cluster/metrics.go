package cluster

import (
	"strconv"

	"repro/internal/obs"
)

// Metrics is the cluster_* metric family: shard ownership and epochs,
// replication progress and lag, and failover counts. A nil *Metrics (no
// registry wired) makes every recording method a no-op, so the cluster
// code never branches on observability being enabled.
type Metrics struct {
	epoch     *obs.GaugeVec   // cluster_shard_epoch{shard}
	licenses  *obs.GaugeVec   // cluster_shard_licenses{shard}
	failovers *obs.Counter    // cluster_failovers_total
	pulls     *obs.Counter    // cluster_repl_pulls_total
	applied   *obs.CounterVec // cluster_repl_applied_records_total{shard}
	lag       *obs.GaugeVec   // cluster_repl_lag_bytes{shard}
}

// NewMetrics registers the cluster metric family with reg (nil reg
// returns nil, which is safe to record against).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		epoch:     reg.GaugeVec("cluster_shard_epoch", "Directory epoch of each shard's current leadership.", "shard"),
		licenses:  reg.GaugeVec("cluster_shard_licenses", "Licenses owned by each shard's leader.", "shard"),
		failovers: reg.Counter("cluster_failovers_total", "Follower promotions after a leader death."),
		pulls:     reg.Counter("cluster_repl_pulls_total", "Replication pull round trips across all followers."),
		applied:   reg.CounterVec("cluster_repl_applied_records_total", "WAL records folded into each shard's follower.", "shard"),
		lag:       reg.GaugeVec("cluster_repl_lag_bytes", "Bytes between each shard's follower position and its leader's durable WAL tip.", "shard"),
	}
}

func shardLabel(shard int) string { return strconv.Itoa(shard) }

func (m *Metrics) setEpoch(shard int, epoch uint64) {
	if m != nil {
		m.epoch.With(shardLabel(shard)).Set(float64(epoch))
	}
}

func (m *Metrics) setLicenses(shard, n int) {
	if m != nil {
		m.licenses.With(shardLabel(shard)).Set(float64(n))
	}
}

func (m *Metrics) failover() {
	if m != nil {
		m.failovers.Inc()
	}
}

func (m *Metrics) pull() {
	if m != nil {
		m.pulls.Inc()
	}
}

func (m *Metrics) appliedRecords(shard, n int) {
	if m != nil && n > 0 {
		m.applied.With(shardLabel(shard)).Add(int64(n))
	}
}

func (m *Metrics) setLag(shard int, bytes int64) {
	if m != nil {
		m.lag.With(shardLabel(shard)).Set(float64(bytes))
	}
}
