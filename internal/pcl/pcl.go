// Package pcl models Intel SGX's Protected Code Loader (Section 2.3.1 of
// the paper): an application ships with *encrypted* functions that are only
// decrypted inside a valid enclave, after a remote key server has verified
// the enclave's attestation quote and released the decryption key.
//
// The paper's observation is that plain PCL is one-shot — once code is
// decrypted, nothing stops continued use — so SecureLease embeds the lease
// logic *inside* the protected code: the decrypted function itself checks
// for a token of execution before doing anything. This package implements
// both pieces: the provisioning/loading protocol and the lease-gated
// execution wrapper.
package pcl

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"repro/internal/attest"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/slmanager"
)

// Errors returned by the loader and key server.
var (
	// ErrNotProvisioned reports a request for a function the key server
	// has never sealed.
	ErrNotProvisioned = errors.New("pcl: function not provisioned")
	// ErrAttestationRequired reports a key request without a verified
	// quote.
	ErrAttestationRequired = errors.New("pcl: attestation failed")
	// ErrNotLoaded reports execution of a function not yet decrypted.
	ErrNotLoaded = errors.New("pcl: function not loaded")
	// ErrCorruptPayload reports an encrypted function that failed
	// validation (tampered binary).
	ErrCorruptPayload = errors.New("pcl: encrypted payload corrupt")
)

// EncryptedFunction is a function as shipped in the binary: ciphertext of
// its body plus its name. The body in this simulation is an opaque byte
// description whose integrity witnesses "the code"; Loader pairs it with
// the actual Go implementation at load time.
type EncryptedFunction struct {
	Name       string
	Ciphertext []byte
}

// KeyServer is the vendor-side service that provisions function keys and
// releases them only to attested enclaves with the expected measurement.
// It is safe for concurrent use.
type KeyServer struct {
	service *attest.Service

	mu       sync.Mutex
	keys     map[string]seccrypto.Key // function name → decryption key
	expected map[string]sgx.Measurement
	released int64
}

// NewKeyServer builds a key server verifying quotes against the given
// attestation service.
func NewKeyServer(service *attest.Service) (*KeyServer, error) {
	if service == nil {
		return nil, errors.New("pcl: nil attestation service")
	}
	return &KeyServer{
		service:  service,
		keys:     make(map[string]seccrypto.Key),
		expected: make(map[string]sgx.Measurement),
	}, nil
}

// Provision encrypts a function body for distribution: the vendor runs
// this at build time. The returned EncryptedFunction ships in the binary;
// the key stays with the server, bound to the enclave measurement allowed
// to receive it.
func (ks *KeyServer) Provision(name string, body []byte, allowed sgx.Measurement) (EncryptedFunction, error) {
	if name == "" {
		return EncryptedFunction{}, errors.New("pcl: empty function name")
	}
	p, err := seccrypto.Protect(body, nil)
	if err != nil {
		return EncryptedFunction{}, fmt.Errorf("pcl: encrypting %q: %w", name, err)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.keys[name] = p.Key
	ks.expected[name] = allowed
	return EncryptedFunction{Name: name, Ciphertext: p.Ciphertext}, nil
}

// RequestKey releases a function's decryption key to an enclave that
// presents a valid quote with the provisioned measurement. The quote
// verification is a remote attestation (charged to the client machine).
func (ks *KeyServer) RequestKey(name string, quote attest.Quote, clientMachine *sgx.Machine) (seccrypto.Key, error) {
	ks.mu.Lock()
	key, ok := ks.keys[name]
	want, _ := ks.expected[name]
	ks.mu.Unlock()
	if !ok {
		return seccrypto.Key{}, fmt.Errorf("%w: %q", ErrNotProvisioned, name)
	}
	if err := ks.service.VerifyQuote(quote, clientMachine); err != nil {
		return seccrypto.Key{}, fmt.Errorf("%w: %v", ErrAttestationRequired, err)
	}
	if quote.Report.Source != want {
		return seccrypto.Key{}, fmt.Errorf("%w: measurement mismatch for %q", ErrAttestationRequired, name)
	}
	ks.mu.Lock()
	ks.released++
	ks.mu.Unlock()
	return key, nil
}

// KeysReleased reports how many keys the server has handed out.
func (ks *KeyServer) KeysReleased() int64 {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.released
}

// Loader runs inside an application enclave: it fetches keys for the
// binary's encrypted functions, decrypts them in-enclave, and exposes
// lease-gated execution. With a nil manager the loader reproduces plain
// PCL (the paper's "sad part": decrypt once, use forever); with an
// SL-Manager attached, every execution demands a lease token — the
// paper's fix.
type Loader struct {
	enclave  *sgx.Enclave
	platform *attest.Platform
	server   *KeyServer
	manager  *slmanager.Manager // nil = plain PCL

	mu     sync.Mutex
	loaded map[string]loadedFn
}

type loadedFn struct {
	bodyDigest [sha256.Size]byte
	impl       func() error
	license    string
}

// NewLoader builds a loader for the enclave. manager may be nil for plain
// PCL semantics.
func NewLoader(enclave *sgx.Enclave, platform *attest.Platform, server *KeyServer, manager *slmanager.Manager) (*Loader, error) {
	if enclave == nil || platform == nil || server == nil {
		return nil, errors.New("pcl: enclave, platform, and server are required")
	}
	return &Loader{
		enclave:  enclave,
		platform: platform,
		server:   server,
		manager:  manager,
		loaded:   make(map[string]loadedFn),
	}, nil
}

// Load performs the PCL chain of events for one encrypted function: quote
// the enclave, obtain the key from the server, decrypt and validate the
// body inside the enclave, and bind it to the given implementation and
// license. The decrypted body never leaves the enclave.
func (l *Loader) Load(ef EncryptedFunction, impl func() error, licenseID string) error {
	if impl == nil {
		return errors.New("pcl: nil implementation")
	}
	quote, err := l.platform.CreateQuote(l.enclave, []byte(ef.Name))
	if err != nil {
		return fmt.Errorf("pcl: quoting: %w", err)
	}
	key, err := l.server.RequestKey(ef.Name, quote, l.enclave.Machine())
	if err != nil {
		return err
	}
	var digest [sha256.Size]byte
	err = l.enclave.ECall(func() error {
		body, verr := seccrypto.Validate(ef.Ciphertext, key)
		if verr != nil {
			return fmt.Errorf("%w: %v", ErrCorruptPayload, verr)
		}
		digest = sha256.Sum256(body)
		return nil
	})
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.loaded[ef.Name] = loadedFn{bodyDigest: digest, impl: impl, license: licenseID}
	l.mu.Unlock()
	if l.manager != nil && licenseID != "" {
		l.manager.Guard(ef.Name, licenseID)
	}
	return nil
}

// Execute runs a loaded function. Under plain PCL (nil manager) it runs
// unconditionally — the one-shot weakness. With an SL-Manager, every call
// first obtains a lease token, making the protected code leasable.
func (l *Loader) Execute(name string) error {
	l.mu.Lock()
	fn, ok := l.loaded[name]
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotLoaded, name)
	}
	if l.manager != nil && fn.license != "" {
		return l.manager.Execute(name, fn.impl)
	}
	return l.enclave.ECall(fn.impl)
}

// Loaded reports whether a function has been decrypted.
func (l *Loader) Loaded(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.loaded[name]
	return ok
}

// BodyDigest returns the digest of the decrypted body (tests use it to
// confirm the decrypted code is the provisioned code).
func (l *Loader) BodyDigest(name string) ([sha256.Size]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fn, ok := l.loaded[name]
	return fn.bodyDigest, ok
}
