package pcl

import (
	"crypto/sha256"
	"errors"
	"testing"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slmanager"
	"repro/internal/slremote"
)

type env struct {
	machine  *sgx.Machine
	platform *attest.Platform
	service  *attest.Service
	server   *KeyServer
	enclave  *sgx.Enclave
	manager  *slmanager.Manager
	remote   *slremote.Server
}

func newEnv(t *testing.T, withManager bool, licenses map[string]int64) *env {
	t.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "pcl", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("pcl", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	service := attest.NewService()
	service.RegisterPlatform(plat)
	server, err := NewKeyServer(service)
	if err != nil {
		t.Fatalf("NewKeyServer: %v", err)
	}
	enclave, err := m.CreateEnclave("app-secure", []byte("app-secure-code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	service.TrustMeasurement(enclave.Measurement())

	e := &env{machine: m, platform: plat, service: service, server: server, enclave: enclave}
	if withManager {
		remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
		if err != nil {
			t.Fatalf("slremote.NewServer: %v", err)
		}
		for id, total := range licenses {
			if err := remote.RegisterLicense(id, lease.CountBased, total); err != nil {
				t.Fatalf("RegisterLicense: %v", err)
			}
		}
		local, err := sllocal.New(sllocal.DefaultConfig(), sllocal.Deps{
			Machine: m, Platform: plat, Remote: remote,
		})
		if err != nil {
			t.Fatalf("sllocal.New: %v", err)
		}
		if err := local.Init(); err != nil {
			t.Fatalf("Init: %v", err)
		}
		mgr, err := slmanager.New(enclave, local)
		if err != nil {
			t.Fatalf("slmanager.New: %v", err)
		}
		e.manager = mgr
		e.remote = remote
	}
	return e
}

func TestProvisionLoadExecute(t *testing.T) {
	e := newEnv(t, false, nil)
	body := []byte("secret decrypt kernel v1")
	ef, err := e.server.Provision("decrypt", body, e.enclave.Measurement())
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	loader, err := NewLoader(e.enclave, e.platform, e.server, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	ran := 0
	if err := loader.Load(ef, func() error { ran++; return nil }, ""); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !loader.Loaded("decrypt") {
		t.Fatal("function not loaded")
	}
	digest, ok := loader.BodyDigest("decrypt")
	if !ok || digest != sha256.Sum256(body) {
		t.Fatal("decrypted body is not the provisioned code")
	}
	if err := loader.Execute("decrypt"); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
	if e.server.KeysReleased() != 1 {
		t.Fatalf("keys released = %d", e.server.KeysReleased())
	}
	if err := loader.Execute("ghost"); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("unloaded execute: %v", err)
	}
}

func TestKeyDeniedToWrongEnclave(t *testing.T) {
	e := newEnv(t, false, nil)
	ef, err := e.server.Provision("decrypt", []byte("body"), e.enclave.Measurement())
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	// A different enclave (trusted for attestation, wrong measurement for
	// this function) must not receive the key.
	other, err := e.machine.CreateEnclave("impostor", []byte("impostor-code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	e.service.TrustMeasurement(other.Measurement())
	loader, err := NewLoader(other, e.platform, e.server, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if err := loader.Load(ef, func() error { return nil }, ""); !errors.Is(err, ErrAttestationRequired) {
		t.Fatalf("wrong-measurement load: %v", err)
	}
}

func TestKeyDeniedWithoutTrust(t *testing.T) {
	e := newEnv(t, false, nil)
	ef, err := e.server.Provision("f", []byte("body"), e.enclave.Measurement())
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	e.service.RevokeMeasurement(e.enclave.Measurement())
	loader, err := NewLoader(e.enclave, e.platform, e.server, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if err := loader.Load(ef, func() error { return nil }, ""); !errors.Is(err, ErrAttestationRequired) {
		t.Fatalf("untrusted load: %v", err)
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	e := newEnv(t, false, nil)
	ef, err := e.server.Provision("f", []byte("body"), e.enclave.Measurement())
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	ef.Ciphertext[len(ef.Ciphertext)/2] ^= 0xFF
	loader, err := NewLoader(e.enclave, e.platform, e.server, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if err := loader.Load(ef, func() error { return nil }, ""); !errors.Is(err, ErrCorruptPayload) {
		t.Fatalf("tampered load: %v", err)
	}
}

func TestUnprovisionedFunction(t *testing.T) {
	e := newEnv(t, false, nil)
	loader, err := NewLoader(e.enclave, e.platform, e.server, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	ef := EncryptedFunction{Name: "never", Ciphertext: []byte("junk")}
	if err := loader.Load(ef, func() error { return nil }, ""); !errors.Is(err, ErrNotProvisioned) {
		t.Fatalf("unprovisioned load: %v", err)
	}
}

// TestPlainPCLIsOneShot pins the paper's critique: once decrypted, plain
// PCL code runs forever with no further checks.
func TestPlainPCLIsOneShot(t *testing.T) {
	e := newEnv(t, false, nil)
	ef, err := e.server.Provision("f", []byte("body"), e.enclave.Measurement())
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	loader, err := NewLoader(e.enclave, e.platform, e.server, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if err := loader.Load(ef, func() error { return nil }, ""); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := 0; i < 10_000; i++ {
		if err := loader.Execute("f"); err != nil {
			t.Fatalf("plain PCL stopped at %d: %v", i, err)
		}
	}
	if e.server.KeysReleased() != 1 {
		t.Fatal("plain PCL contacted the server after load")
	}
}

// TestLeaseGatedPCL pins the paper's fix: with the lease logic embedded,
// the decrypted code only runs while a lease is valid.
func TestLeaseGatedPCL(t *testing.T) {
	e := newEnv(t, true, map[string]int64{"lic": 8})
	ef, err := e.server.Provision("f", []byte("body"), e.enclave.Measurement())
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	loader, err := NewLoader(e.enclave, e.platform, e.server, e.manager)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if err := loader.Load(ef, func() error { return nil }, "lic"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	runs := 0
	var lastErr error
	for i := 0; i < 100; i++ {
		if err := loader.Execute("f"); err != nil {
			lastErr = err
			break
		}
		runs++
	}
	if runs == 0 || runs > 8 {
		t.Fatalf("lease-gated PCL allowed %d runs from an 8-unit license", runs)
	}
	if !errors.Is(lastErr, slmanager.ErrNoLease) {
		t.Fatalf("denial error = %v", lastErr)
	}
}

func TestLoaderValidation(t *testing.T) {
	e := newEnv(t, false, nil)
	if _, err := NewLoader(nil, e.platform, e.server, nil); err == nil {
		t.Fatal("nil enclave accepted")
	}
	loader, err := NewLoader(e.enclave, e.platform, e.server, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if err := loader.Load(EncryptedFunction{Name: "f"}, nil, ""); err == nil {
		t.Fatal("nil implementation accepted")
	}
	if _, err := e.server.Provision("", []byte("b"), sgx.Measurement{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewKeyServer(nil); err == nil {
		t.Fatal("nil service accepted")
	}
}
