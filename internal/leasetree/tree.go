// Package leasetree implements SL-Local's lease storage (Section 5.2 of the
// paper): a 4-level, 256-way tree indexed by the bytes of a 32-bit lease ID,
// exactly like a page table. All nodes are 4 KB; entries are (key, pointer)
// pairs; leaf entries point to 312-byte lease records.
//
// The tree supports the paper's "commit" operation (Section 5.5): a lease —
// or a whole cold subtree — is hashed, encrypted under a fresh random key
// (Algorithm 2), and offloaded to untrusted memory; the key lives in the
// parent entry inside the EPC. Because the key changes at every commit,
// replaying an old ciphertext fails validation (Section 6.2). The root node
// is the root of trust and is only committed at graceful shutdown, when its
// key is escrowed with SL-Remote.
//
// The package also provides the alternative stores the paper evaluates
// against in Table 1 (MurmurHash and SHA-256 hash tables) and the
// array-backed store referenced in Section 5.2.3, all behind the Store
// interface.
package leasetree

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/lease"
	"repro/internal/seccrypto"
)

// Store is the interface shared by every lease-storage scheme compared in
// the paper (tree, hash tables, array).
type Store interface {
	// Put inserts or replaces the record.
	Put(rec lease.Record) error
	// Find returns a copy of the record with the given ID.
	Find(id lease.ID) (lease.Record, error)
	// Update applies fn to the record under the store's lock.
	Update(id lease.ID, fn func(*lease.Record) error) error
	// Delete removes the record.
	Delete(id lease.ID) error
	// Len returns the number of live records.
	Len() int
	// Footprint returns the trusted-memory bytes the store occupies.
	Footprint() int64
}

// NodeSize is the size of one tree node (one EPC page).
const NodeSize = 4096

// fanout is the number of entries per node (256, indexed by one ID byte).
const fanout = 256

// levels is the depth of the tree (4 internal levels, as in the paper).
const levels = 4

// Errors returned by tree operations.
var (
	// ErrNotFound reports a lease ID with no record.
	ErrNotFound = errors.New("leasetree: lease not found")
	// ErrShutdown reports an operation on a tree that has been shut down.
	ErrShutdown = errors.New("leasetree: tree is shut down")
	// ErrCorrupt reports untrusted-memory state that failed validation —
	// tampering or a replay of stale ciphertext.
	ErrCorrupt = errors.New("leasetree: untrusted state failed validation")
)

// entry is one 16-byte (key, pointer) slot of a node. Exactly one of
// {child, rec, ref} is meaningful:
//
//	child != nil          → resident internal node
//	rec != nil            → resident leaf record (level 3 only)
//	ref != 0              → offloaded child; key decrypts blob ref
//	all zero              → empty slot
//
// rec is an atomic pointer to an immutable snapshot: read-locked updates
// never mutate the pointee in place — they clone, apply, and publish a
// fresh snapshot under the record's stripe. That is what lets a
// read-locked Find copy the record without any per-record lock.
// Write-lock holders may still mutate the pointee in place (all readers
// are excluded then).
type entry struct {
	child *node
	rec   atomic.Pointer[lease.Record]
	key   seccrypto.Key
	ref   uint64
}

func (e *entry) clear() {
	e.child = nil
	e.rec.Store(nil)
	e.key = seccrypto.Key{}
	e.ref = 0
}

func (e *entry) empty() bool   { return e.child == nil && e.rec.Load() == nil && e.ref == 0 }
func (e *entry) evicted() bool { return e.child == nil && e.rec.Load() == nil && e.ref != 0 }

// node is one 4 KB tree node.
type node struct {
	level   int // 0 = root … 3 = leaf-parent
	entries [fanout]entry
	used    int // non-empty entries

	// lastUse is the tree op counter at the node's last traversal, for
	// cold detection. Atomic because read-locked walks stamp it
	// concurrently; it is only compared under the write lock (eviction),
	// where readers are excluded. Concurrent stamps may land slightly out
	// of order, which LRU cold detection tolerates.
	lastUse atomic.Uint64
}

// recStripes is the number of record-mutation stripes; a power of two so
// the stripe index is a mask of the lease ID.
const recStripes = 64

// Tree is the lease tree. It is safe for concurrent use under a
// reader–writer discipline: token validation (Find/Update along a fully
// resident path) runs under mu.RLock — Find lock-free past that (records
// are immutable snapshots), Update under the record's recMu stripe — so
// validations proceed in parallel and never block behind a commit or
// eviction. Every structural operation — insert, delete, restore of
// offloaded state, budget eviction, shutdown — holds the write lock, which
// excludes all readers. This refines the paper's per-lease sgx_spin_lock:
// the stripes play the per-lease locks, mu the tree structure lock.
//
// Lock order: mu (either strength) is acquired before a recMu stripe,
// never the reverse; stripes are never held across a mu acquisition.
type Tree struct {
	mu   sync.RWMutex
	root *node // pointer immutable after construction; node contents guarded by mu
	down bool  // guardedby: mu

	count    int // guardedby: mu — live records (resident + offloaded)
	resident int // guardedby: mu — resident records
	nodes    int // guardedby: mu — resident nodes (incl. root)

	// ops is the roughly monotonic operation counter that drives LRU cold
	// detection; atomic so read-locked walks charge ops without the write
	// lock. Read-locked walks bump it with a racy load+store — concurrent
	// walks may reuse a tick, which approximate LRU tolerates and which
	// keeps the validation fast path free of read-modify-write atomics.
	ops atomic.Uint64 // guardedby: none

	budget int64 // guardedby: mu — max trusted bytes (0 = unlimited)

	// recMu stripes record mutations by lease ID: a read-locked Update
	// holds the record's stripe while it clones the current snapshot,
	// applies fn, and publishes the result, so concurrent updaters of one
	// record serialize. Reads take no stripe — snapshots are immutable.
	// Structure never changes under a stripe alone.
	recMu [recStripes]sync.Mutex

	// entropy is a buffered CSPRNG stream for commit keys/nonces; the
	// buffering amortizes getrandom syscalls across the thousands of
	// per-record commits an eviction storm performs.
	entropy io.Reader // guardedby: mu

	untrusted *blobStore // guardedby: mu

	stats TreeStats // guardedby: mu
}

// stripe returns the record-mutation lock for a lease ID.
func (t *Tree) stripe(id lease.ID) *sync.Mutex {
	return &t.recMu[uint32(id)&(recStripes-1)]
}

// TreeStats counts tree maintenance events.
type TreeStats struct {
	Commits   int64 // records or nodes offloaded
	Restores  int64 // records or nodes brought back
	Evictions int64 // budget-driven record evictions
}

// NewTree returns an empty lease tree with no memory budget.
func NewTree() *Tree {
	return &Tree{
		root:      &node{level: 0},
		nodes:     1, // the root itself
		entropy:   bufio.NewReaderSize(rand.Reader, 1<<16),
		untrusted: newBlobStore(),
	}
}

// SetBudget caps the tree's trusted-memory footprint at maxBytes; cold
// records and empty subtrees are committed to untrusted memory to stay
// under it. A zero budget disables eviction ("No-Evict" in Table 6).
func (t *Tree) SetBudget(maxBytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.budget = maxBytes
	t.enforceBudgetLocked()
}

// Len returns the number of live records (resident or offloaded).
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// ResidentRecords returns how many records are currently in trusted memory.
func (t *Tree) ResidentRecords() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.resident
}

// ResidentNodes returns how many tree nodes are currently in trusted memory.
func (t *Tree) ResidentNodes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes
}

// Footprint returns the trusted-memory bytes occupied: resident nodes at
// 4 KB each (their EPC pages) plus resident records at 312 B each.
func (t *Tree) Footprint() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.footprintLocked()
}

func (t *Tree) footprintLocked() int64 {
	return int64(t.nodes)*NodeSize + int64(t.resident)*lease.RecordSize
}

// Stats returns a copy of the maintenance counters.
func (t *Tree) Stats() TreeStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats
}

// Put inserts or replaces a record, allocating interior nodes lazily.
func (t *Tree) Put(rec lease.Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down {
		return ErrShutdown
	}
	n := t.root
	op := t.ops.Add(1)
	for l := 0; l < levels-1; l++ {
		n.lastUse.Store(op)
		idx := rec.ID.Level(l)
		e := &n.entries[idx]
		if e.child == nil {
			if e.evicted() {
				child, err := t.restoreNodeLocked(e, l+1)
				if err != nil {
					return err
				}
				e.child = child
			} else {
				e.child = &node{level: l + 1}
				n.used++
				t.nodes++
			}
		}
		n = e.child
	}
	n.lastUse.Store(op)
	idx := rec.ID.Level(levels - 1)
	e := &n.entries[idx]
	replacing := !e.empty()
	switch {
	case e.evicted():
		// Replacing an offloaded record: drop the stale blob. The record
		// was live but not resident, so the resident count is untouched
		// until the new copy is installed below.
		t.untrusted.drop(e.ref)
		e.ref = 0
		e.key = seccrypto.Key{}
	case e.rec.Load() != nil:
		t.resident--
	default:
		n.used++
	}
	r := rec
	e.rec.Store(&r)
	e.child = nil
	t.resident++
	if !replacing {
		t.count++
	}
	t.enforceBudgetLocked()
	return nil
}

// Find returns a copy of the record, restoring any committed subtrees along
// the path (charging a restore per hop). A lookup whose whole path is
// resident — the token-validation shape — completes under the read lock
// and never blocks behind a commit or eviction; only a walk that must
// restore offloaded state takes the write lock.
func (t *Tree) Find(id lease.ID) (lease.Record, error) {
	if rec, done, err := t.findFast(id); done {
		return rec, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, err := t.findLocked(id)
	if err != nil {
		return lease.Record{}, err
	}
	out := *rec
	t.enforceBudgetLocked()
	return out, nil
}

// findFast is Find's read-locked path. done=false means an offloaded node
// or record sits on the path; restoring mutates structure, so the caller
// must retry under the write lock.
func (t *Tree) findFast(id lease.ID) (rec lease.Record, done bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.down {
		return lease.Record{}, true, ErrShutdown
	}
	e, resident := t.walkFast(id)
	if !resident {
		return lease.Record{}, false, nil
	}
	if e == nil {
		return lease.Record{}, true, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	// No per-record lock: the pointee is an immutable snapshot (fast
	// updates publish a fresh copy; in-place mutators hold the write
	// lock, which excludes this path), so the copy cannot tear.
	rec = *e.rec.Load()
	return rec, true, nil
}

// Update applies fn to the record in place. If fn returns an error the
// record is left as fn left it (fn owns atomicity of its own mutation),
// and the error is returned. Like Find, a fully resident path runs under
// the read lock plus the record's stripe, so concurrent validations of
// different leases never serialize on the tree.
func (t *Tree) Update(id lease.ID, fn func(*lease.Record) error) error {
	if fn == nil {
		return errors.New("leasetree: nil update function")
	}
	if done, err := t.updateFast(id, fn); done {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, err := t.findLocked(id)
	if err != nil {
		return err
	}
	if err := fn(rec); err != nil {
		return err
	}
	t.enforceBudgetLocked()
	return nil
}

// updateFast is Update's read-locked path: under the record's stripe it
// clones the current snapshot, applies fn to the clone, and publishes it
// (copy-on-write — concurrent Finds keep reading the old snapshot untorn).
// done=false means the path needs a write-locked restore.
func (t *Tree) updateFast(id lease.ID, fn func(*lease.Record) error) (done bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.down {
		return true, ErrShutdown
	}
	e, resident := t.walkFast(id)
	if !resident {
		return false, nil
	}
	if e == nil {
		return true, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	s := t.stripe(id)
	s.Lock()
	defer s.Unlock()
	// The reload under the stripe sees the latest published snapshot; it
	// cannot be nil — unpublishing (commit, delete) needs the write lock.
	cp := *e.rec.Load()
	err = fn(&cp)
	// Publish even on error: fn owns the atomicity of its own mutation
	// (same contract as the in-place write-locked path).
	e.rec.Store(&cp)
	return true, err
}

// walkFast descends to the leaf entry for id without mutating structure,
// stamping lastUse along the path. resident=false reports an offloaded
// node or record on the path (only the write-locked walk may restore it);
// e == nil with resident=true means definitively not found — structure
// cannot change while the read lock is held. Callers hold mu (either
// strength).
func (t *Tree) walkFast(id lease.ID) (e *entry, resident bool) {
	// Recency bookkeeping is deliberately minimal here: atomic stores are
	// full fences, and a validation-rate fast path cannot afford four of
	// them per lookup. Only the leaf-parent is stamped — the LRU
	// comparator (coldestNodeWithRecordLocked) never reads interior
	// stamps — the stamp is skipped when already current, and ops is not
	// advanced, so accesses between two structural operations tie in
	// recency. Approximate LRU tolerates all three.
	op := t.ops.Load()
	n := t.root
	for l := 0; l < levels-1; l++ {
		e := &n.entries[id.Level(l)]
		if e.child == nil {
			return nil, !e.evicted()
		}
		n = e.child
	}
	if n.lastUse.Load() != op {
		n.lastUse.Store(op)
	}
	e = &n.entries[id.Level(levels-1)]
	if e.rec.Load() == nil {
		return nil, !e.evicted()
	}
	return e, true
}

// Delete removes a record (resident or offloaded).
func (t *Tree) Delete(id lease.ID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down {
		return ErrShutdown
	}
	n := t.root
	t.ops.Add(1)
	for l := 0; l < levels-1; l++ {
		e := &n.entries[id.Level(l)]
		if e.child == nil {
			if e.evicted() {
				child, err := t.restoreNodeLocked(e, l+1)
				if err != nil {
					return err
				}
				e.child = child
			} else {
				return fmt.Errorf("%w: id %d", ErrNotFound, id)
			}
		}
		n = e.child
	}
	e := &n.entries[id.Level(levels-1)]
	switch {
	case e.rec.Load() != nil:
		t.resident--
	case e.evicted():
		t.untrusted.drop(e.ref)
	default:
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	e.clear()
	n.used--
	t.count--
	return nil
}

// CommitLease explicitly commits one lease to untrusted memory (the
// operation an application triggers when it quits, Section 5.5).
func (t *Tree) CommitLease(id lease.ID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down {
		return ErrShutdown
	}
	n := t.root
	for l := 0; l < levels-1; l++ {
		e := &n.entries[id.Level(l)]
		if e.child == nil {
			if e.evicted() {
				return nil // whole subtree already committed
			}
			return fmt.Errorf("%w: id %d", ErrNotFound, id)
		}
		n = e.child
	}
	e := &n.entries[id.Level(levels-1)]
	if e.evicted() {
		return nil
	}
	if e.rec.Load() == nil {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return t.commitRecordLocked(e)
}

// findLocked walks to the record, restoring offloaded subtrees on the path.
func (t *Tree) findLocked(id lease.ID) (*lease.Record, error) {
	if t.down {
		return nil, ErrShutdown
	}
	n := t.root
	op := t.ops.Add(1)
	for l := 0; l < levels-1; l++ {
		n.lastUse.Store(op)
		e := &n.entries[id.Level(l)]
		if e.child == nil {
			if e.evicted() {
				child, err := t.restoreNodeLocked(e, l+1)
				if err != nil {
					return nil, err
				}
				e.child = child
			} else {
				return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
			}
		}
		n = e.child
	}
	n.lastUse.Store(op)
	e := &n.entries[id.Level(levels-1)]
	if e.rec.Load() == nil {
		if !e.evicted() {
			return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
		}
		rec, err := t.restoreRecordLocked(e)
		if err != nil {
			return nil, err
		}
		e.rec.Store(rec)
		t.resident++
	}
	return e.rec.Load(), nil
}

// commitRecordLocked protects a resident record (Algorithm 2) and moves its
// ciphertext to untrusted memory; the fresh key stays in the parent entry.
func (t *Tree) commitRecordLocked(e *entry) error {
	buf, err := e.rec.Load().MarshalBinary()
	if err != nil {
		return err
	}
	p, err := seccrypto.Protect(buf, t.entropy)
	if err != nil {
		return err
	}
	if e.ref != 0 {
		t.untrusted.drop(e.ref)
	}
	e.ref = t.untrusted.put(p.Ciphertext)
	e.key = p.Key
	e.rec.Store(nil)
	t.resident--
	t.stats.Commits++
	return nil
}

// restoreRecordLocked validates and decrypts an offloaded record
// (Algorithm 3).
func (t *Tree) restoreRecordLocked(e *entry) (*lease.Record, error) {
	blob, ok := t.untrusted.get(e.ref)
	if !ok {
		return nil, fmt.Errorf("%w: missing blob %d", ErrCorrupt, e.ref)
	}
	buf, err := seccrypto.Validate(blob, e.key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var rec lease.Record
	if err := rec.UnmarshalBinary(buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	t.untrusted.drop(e.ref)
	e.ref = 0
	e.key = seccrypto.Key{}
	t.stats.Restores++
	return &rec, nil
}

// commitNodeLocked serializes a node whose children are all already
// offloaded (or empty), protects it, and returns the entry state for its
// parent. The caller decrements the node count.
func (t *Tree) commitNodeLocked(n *node) (seccrypto.Key, uint64, error) {
	buf := make([]byte, 0, fanout*(seccrypto.KeySize+8))
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(n.level))
	buf = append(buf, hdr[:]...)
	for i := range n.entries {
		e := &n.entries[i]
		if e.child != nil || e.rec.Load() != nil {
			return seccrypto.Key{}, 0, errors.New("leasetree: committing node with resident children")
		}
		var refBytes [8]byte
		binary.LittleEndian.PutUint64(refBytes[:], e.ref)
		buf = append(buf, e.key.Bytes()...)
		buf = append(buf, refBytes[:]...)
	}
	p, err := seccrypto.Protect(buf, t.entropy)
	if err != nil {
		return seccrypto.Key{}, 0, err
	}
	ref := t.untrusted.put(p.Ciphertext)
	t.stats.Commits++
	return p.Key, ref, nil
}

// restoreNodeLocked validates and rebuilds an offloaded interior node.
func (t *Tree) restoreNodeLocked(e *entry, level int) (*node, error) {
	blob, ok := t.untrusted.get(e.ref)
	if !ok {
		return nil, fmt.Errorf("%w: missing node blob %d", ErrCorrupt, e.ref)
	}
	buf, err := seccrypto.Validate(blob, e.key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n, err := decodeNode(buf)
	if err != nil {
		return nil, err
	}
	if n.level != level {
		return nil, fmt.Errorf("%w: node level %d, want %d", ErrCorrupt, n.level, level)
	}
	t.untrusted.drop(e.ref)
	e.ref = 0
	e.key = seccrypto.Key{}
	t.nodes++
	t.stats.Restores++
	return n, nil
}

func decodeNode(buf []byte) (*node, error) {
	const entrySize = seccrypto.KeySize + 8
	if len(buf) != 4+fanout*entrySize {
		return nil, fmt.Errorf("%w: node blob is %d bytes", ErrCorrupt, len(buf))
	}
	n := &node{level: int(binary.LittleEndian.Uint32(buf[:4]))}
	if n.level < 0 || n.level >= levels {
		return nil, fmt.Errorf("%w: node level %d", ErrCorrupt, n.level)
	}
	body := buf[4:]
	for i := 0; i < fanout; i++ {
		off := i * entrySize
		keyBytes := body[off : off+seccrypto.KeySize]
		ref := binary.LittleEndian.Uint64(body[off+seccrypto.KeySize : off+entrySize])
		if ref == 0 {
			continue
		}
		key, err := seccrypto.KeyFromBytes(keyBytes)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		n.entries[i].key = key
		n.entries[i].ref = ref
		n.used++
	}
	return n, nil
}

// enforceBudgetLocked commits cold records (then empty subtrees) until the
// footprint is within budget.
func (t *Tree) enforceBudgetLocked() {
	if t.budget <= 0 {
		return
	}
	guard := 0
	for t.footprintLocked() > t.budget && guard < 1<<20 {
		guard++
		if t.resident > 0 {
			if t.evictColdestRecordLocked() {
				continue
			}
		}
		if !t.evictEmptySubtreeLocked() {
			return // nothing further can be evicted
		}
	}
}

// evictColdestRecordLocked commits the resident records of the
// least-recently-used leaf-parent node — whole-node eviction, matching the
// paper's subtree-commit design (one application's cold leases leave
// together) — stopping early once the footprint is within budget.
// Returns false if no resident record exists.
func (t *Tree) evictColdestRecordLocked() bool {
	target, _ := t.coldestNodeWithRecordLocked(t.root)
	if target == nil {
		return false
	}
	evicted := false
	for i := range target.entries {
		e := &target.entries[i]
		if e.rec.Load() == nil {
			continue
		}
		if err := t.commitRecordLocked(e); err != nil {
			return evicted
		}
		t.stats.Evictions++
		evicted = true
		if t.footprintLocked() <= t.budget {
			break
		}
	}
	return evicted
}

// coldestNodeWithRecordLocked finds the level-3 node with the smallest
// lastUse that still holds a resident record.
func (t *Tree) coldestNodeWithRecordLocked(n *node) (*node, uint64) {
	if n.level == levels-1 {
		for i := range n.entries {
			if n.entries[i].rec.Load() != nil {
				return n, n.lastUse.Load()
			}
		}
		return nil, 0
	}
	var best *node
	var bestUse uint64
	for i := range n.entries {
		child := n.entries[i].child
		if child == nil {
			continue
		}
		c, use := t.coldestNodeWithRecordLocked(child)
		if c != nil && (best == nil || use < bestUse) {
			best, bestUse = c, use
		}
	}
	return best, bestUse
}

// evictEmptySubtreeLocked commits one deepest node all of whose children
// are already offloaded or empty (never the root). Returns false if none.
func (t *Tree) evictEmptySubtreeLocked() bool {
	var parentEntry *entry
	var victim *node
	var walk func(n *node)
	walk = func(n *node) {
		for i := range n.entries {
			child := n.entries[i].child
			if child == nil {
				continue
			}
			walk(child)
			if victim != nil {
				return
			}
			committable := true
			for j := range child.entries {
				if child.entries[j].child != nil || child.entries[j].rec.Load() != nil {
					committable = false
					break
				}
			}
			if committable && child.used > 0 {
				parentEntry = &n.entries[i]
				victim = child
				return
			}
		}
	}
	walk(t.root)
	if victim == nil {
		return false
	}
	key, ref, err := t.commitNodeLocked(victim)
	if err != nil {
		return false
	}
	parentEntry.child = nil
	parentEntry.key = key
	parentEntry.ref = ref
	t.nodes--
	return true
}

// Snapshot is the untrusted-memory image of a shut-down tree: the protected
// root node plus the blob store holding every committed descendant. The
// root key is escrowed separately (with SL-Remote) and is NOT part of the
// snapshot — that is precisely what defeats replay.
type Snapshot struct {
	RootCipher []byte
	Blobs      map[uint64][]byte
	NextRef    uint64
}

// Shutdown commits every record and node bottom-up, protects the root with
// a fresh key, and returns the untrusted snapshot plus the root key for
// escrow (Section 5.6). After Shutdown the tree rejects all operations.
func (t *Tree) Shutdown() (Snapshot, seccrypto.Key, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down {
		return Snapshot{}, seccrypto.Key{}, ErrShutdown
	}
	if err := t.commitSubtreeLocked(t.root); err != nil {
		return Snapshot{}, seccrypto.Key{}, err
	}
	key, ref, err := t.commitNodeLocked(t.root)
	if err != nil {
		return Snapshot{}, seccrypto.Key{}, err
	}
	rootCipher, ok := t.untrusted.get(ref)
	if !ok {
		return Snapshot{}, seccrypto.Key{}, errors.New("leasetree: root blob vanished")
	}
	t.untrusted.drop(ref)
	t.down = true
	t.nodes = 0
	snap := Snapshot{
		RootCipher: rootCipher,
		Blobs:      t.untrusted.export(),
		NextRef:    t.untrusted.next,
	}
	return snap, key, nil
}

// commitSubtreeLocked commits all records and all non-root nodes below n.
func (t *Tree) commitSubtreeLocked(n *node) error {
	for i := range n.entries {
		e := &n.entries[i]
		if e.rec.Load() != nil {
			if err := t.commitRecordLocked(e); err != nil {
				return err
			}
			continue
		}
		if e.child != nil {
			if err := t.commitSubtreeLocked(e.child); err != nil {
				return err
			}
			key, ref, err := t.commitNodeLocked(e.child)
			if err != nil {
				return err
			}
			e.child = nil
			e.key = key
			e.ref = ref
			t.nodes--
		}
	}
	return nil
}

// Restore rebuilds a tree from a snapshot and the escrowed root key (the
// OBK received from SL-Remote at re-initialization, Section 5.6). A wrong
// key — or a replayed stale snapshot — fails with ErrCorrupt.
func Restore(snap Snapshot, rootKey seccrypto.Key) (*Tree, error) {
	buf, err := seccrypto.Validate(snap.RootCipher, rootKey)
	if err != nil {
		return nil, fmt.Errorf("%w: root validation: %v", ErrCorrupt, err)
	}
	root, err := decodeNode(buf)
	if err != nil {
		return nil, err
	}
	if root.level != 0 {
		return nil, fmt.Errorf("%w: root has level %d", ErrCorrupt, root.level)
	}
	t := &Tree{
		root:      root,
		entropy:   bufio.NewReaderSize(rand.Reader, 1<<16),
		untrusted: newBlobStore(),
	}
	t.untrusted.load(snap.Blobs, snap.NextRef)
	t.nodes = 1
	// Count live records by walking the offloaded structure lazily would
	// decrypt everything; instead restore eagerly to recompute counts.
	// Restoration is a cold-start path (Section 5.6 repopulates levels on
	// demand); we restore counts by a full walk so Len() is exact.
	if err := t.walkRestoreCount(root); err != nil {
		return nil, err
	}
	return t, nil
}

// walkRestoreCount restores every node (but leaves records offloaded) to
// establish exact record counts after a restore.
func (t *Tree) walkRestoreCount(n *node) error {
	for i := range n.entries {
		e := &n.entries[i]
		if n.level == levels-1 {
			if e.evicted() {
				t.count++
			}
			continue
		}
		if e.evicted() {
			child, err := t.restoreNodeLocked(e, n.level+1)
			if err != nil {
				return err
			}
			e.child = child
			if err := t.walkRestoreCount(child); err != nil {
				return err
			}
		}
	}
	return nil
}

// blobStore is the simulated untrusted memory region holding committed
// ciphertexts. It deliberately lives outside the footprint accounting.
type blobStore struct {
	blobs map[uint64][]byte
	next  uint64
}

func newBlobStore() *blobStore {
	return &blobStore{blobs: make(map[uint64][]byte), next: 1}
}

func (b *blobStore) put(blob []byte) uint64 {
	ref := b.next
	b.next++
	b.blobs[ref] = blob
	return ref
}

func (b *blobStore) get(ref uint64) ([]byte, bool) {
	blob, ok := b.blobs[ref]
	return blob, ok
}

func (b *blobStore) drop(ref uint64) {
	delete(b.blobs, ref)
}

func (b *blobStore) export() map[uint64][]byte {
	out := make(map[uint64][]byte, len(b.blobs))
	for k, v := range b.blobs {
		out[k] = v
	}
	return out
}

func (b *blobStore) load(blobs map[uint64][]byte, next uint64) {
	for k, v := range blobs {
		b.blobs[k] = v
	}
	if next > b.next {
		b.next = next
	}
}

var _ Store = (*Tree)(nil)
