package leasetree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/lease"
)

// fuzzRecords derives a deterministic record population from a seed: the
// IDs spread across the 4-level radix structure, the kinds cover every
// lease criterion, and owners vary in length.
func fuzzRecords(seed uint64, n int) []lease.Record {
	rng := rand.New(rand.NewSource(int64(seed)))
	recs := make([]lease.Record, 0, n)
	seen := make(map[lease.ID]bool, n)
	for len(recs) < n {
		id := lease.ID(rng.Uint32())
		if seen[id] {
			continue
		}
		seen[id] = true
		kind := lease.Kind(rng.Intn(4) + 1)
		rec := lease.Record{
			ID:    id,
			Owner: "lic-" + string(rune('a'+rng.Intn(26))),
			GCL: lease.GCL{
				Kind:    kind,
				Counter: rng.Int63n(1 << 30),
			},
		}
		if kind == lease.TimeBased || kind == lease.ExecTimeBased {
			rec.GCL.Interval = time.Duration(rng.Int63n(int64(24*time.Hour)) + 1)
			rec.GCL.LastUpdate = rng.Int63()
		}
		if kind == lease.Perpetual {
			rec.GCL.Counter = 1
		}
		recs = append(recs, rec)
	}
	return recs
}

// FuzzLeaseTree drives the commit/escrow/restore cycle of Section 5.6:
// whatever population the inputs produce, Shutdown→Restore must hand back
// every record bit-identical, and flipping any byte of the untrusted
// snapshot must never yield silently different lease state — either the
// restore or the first touch of the damaged node/record fails.
func FuzzLeaseTree(f *testing.F) {
	f.Add(uint64(1), uint(8), uint64(0), byte(0x01))
	f.Add(uint64(42), uint(64), uint64(3), byte(0x80))
	f.Add(uint64(7), uint(1), uint64(1), byte(0xff))
	f.Add(uint64(99), uint(200), uint64(17), byte(0x10))
	f.Fuzz(func(t *testing.T, seed uint64, n uint, tamperPick uint64, tamperByte byte) {
		n = n%256 + 1
		recs := fuzzRecords(seed, int(n))

		tr := NewTree()
		for _, r := range recs {
			if err := tr.Put(r); err != nil {
				t.Fatalf("Put(%v): %v", r.ID, err)
			}
		}
		snap, key, err := tr.Shutdown()
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}

		// Clean round trip: bit-identical records.
		clean, err := Restore(cloneSnapshot(snap), key)
		if err != nil {
			t.Fatalf("Restore of untampered snapshot: %v", err)
		}
		if clean.Len() != len(recs) {
			t.Fatalf("restored Len = %d, want %d", clean.Len(), len(recs))
		}
		for _, want := range recs {
			got, err := clean.Find(want.ID)
			if err != nil {
				t.Fatalf("Find(%v) after restore: %v", want.ID, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("record %v changed across the round trip:\n got %+v\nwant %+v", want.ID, got, want)
			}
		}

		// Tampered root: restore must reject it outright (the root cipher
		// is the freshness anchor the escrowed key authenticates).
		evil := cloneSnapshot(snap)
		if len(evil.RootCipher) > 0 {
			evil.RootCipher[int(tamperPick)%len(evil.RootCipher)] ^= tamperByte | 1
			if _, err := Restore(evil, key); err == nil {
				t.Fatal("Restore accepted a tampered root cipher")
			}
		}

		// Tampered interior blob: the damage must surface as an error at
		// restore or on first access — never as silently altered state.
		evil = cloneSnapshot(snap)
		refs := make([]uint64, 0, len(evil.Blobs))
		for ref := range evil.Blobs {
			refs = append(refs, ref)
		}
		if len(refs) == 0 {
			return
		}
		// Map iteration order is random; sort for a deterministic pick.
		sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
		target := refs[tamperPick%uint64(len(refs))]
		blob := append([]byte(nil), evil.Blobs[target]...)
		if len(blob) == 0 {
			return
		}
		blob[int(tamperPick)%len(blob)] ^= tamperByte | 1
		evil.Blobs[target] = blob
		dirty, err := Restore(evil, key)
		if err != nil {
			return // caught at restore: the tampered blob was a node
		}
		detected := false
		for _, want := range recs {
			got, ferr := dirty.Find(want.ID)
			if ferr != nil {
				detected = true
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("tampering blob %d silently changed record %v:\n got %+v\nwant %+v",
					target, want.ID, got, want)
			}
		}
		if !detected {
			t.Fatalf("tampered blob %d went entirely undetected across restore and a full sweep", target)
		}
	})
}

// cloneSnapshot deep-copies a snapshot so tampering one copy cannot leak
// into another restore.
func cloneSnapshot(s Snapshot) Snapshot {
	out := Snapshot{
		RootCipher: append([]byte(nil), s.RootCipher...),
		Blobs:      make(map[uint64][]byte, len(s.Blobs)),
		NextRef:    s.NextRef,
	}
	for ref, b := range s.Blobs {
		out.Blobs[ref] = append([]byte(nil), b...)
	}
	return out
}
