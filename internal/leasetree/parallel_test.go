package leasetree

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lease"
)

// TestParallelValidationLinearizable is the lost-update check for the
// striped fast path: many workers concurrently decrement the same records
// — some through the read-locked stripe path, some through write-locked
// restores — while a churn goroutine commits leases and an eviction
// goroutine flips the budget to force offload/restore storms. Every
// decrement the tree accepted must be visible at the end, and every
// concurrent Find must observe an untorn record.
func TestParallelValidationLinearizable(t *testing.T) {
	const (
		records = 256
		workers = 8
		opsEach = 2500
		initial = int64(1) << 40
	)
	tr := NewTree()
	for i := 0; i < records; i++ {
		if err := tr.Put(mkRecord(lease.ID(i+1), initial)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}

	// applied[i] counts decrements of record i+1; incremented inside fn,
	// i.e. under whatever exclusion the tree granted the update, so the
	// expected counter per record is exact even under contention.
	applied := make([]atomic.Int64, records)
	stop := make(chan struct{})
	var churn sync.WaitGroup

	// Commit churn: keeps offloading random leases so validations keep
	// crossing the resident/offloaded boundary in both directions.
	churn.Add(1)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tr.CommitLease(lease.ID(rng.Intn(records) + 1)); err != nil {
				t.Errorf("CommitLease: %v", err)
				return
			}
		}
	}()
	// Budget churn: alternates a starvation budget (eviction storms) with
	// no budget, so enforceBudgetLocked runs against live validations.
	churn.Add(1)
	go func() {
		defer churn.Done()
		tight := int64(records/4)*lease.RecordSize + 64*NodeSize
		for i := 0; ; i++ {
			select {
			case <-stop:
				tr.SetBudget(0)
				return
			default:
			}
			if i%2 == 0 {
				tr.SetBudget(tight)
			} else {
				tr.SetBudget(0)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < opsEach; i++ {
				id := lease.ID(rng.Intn(records) + 1)
				if i%2 == 0 {
					rec, err := tr.Find(id)
					if err != nil {
						errs[w] = fmt.Errorf("Find(%d): %w", id, err)
						return
					}
					if rec.ID != id || rec.Owner != fmt.Sprintf("lic-%d", id) {
						errs[w] = fmt.Errorf("Find(%d) returned torn record %d/%q", id, rec.ID, rec.Owner)
						return
					}
					if rec.GCL.Counter < 0 || rec.GCL.Counter > initial {
						errs[w] = fmt.Errorf("Find(%d) counter %d out of range", id, rec.GCL.Counter)
						return
					}
					continue
				}
				err := tr.Update(id, func(r *lease.Record) error {
					r.GCL.Counter--
					applied[id-1].Add(1)
					return nil
				})
				if err != nil {
					errs[w] = fmt.Errorf("Update(%d): %w", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	if got := tr.Len(); got != records {
		t.Fatalf("Len = %d, want %d", got, records)
	}
	for i := 0; i < records; i++ {
		id := lease.ID(i + 1)
		rec, err := tr.Find(id)
		if err != nil {
			t.Fatalf("final Find(%d): %v", id, err)
		}
		want := initial - applied[i].Load()
		if rec.GCL.Counter != want {
			t.Fatalf("record %d lost updates: counter %d, want %d", id, rec.GCL.Counter, want)
		}
	}
}

// TestValidationSharesReadLock pins the locking discipline itself: with
// the tree's read lock held externally (standing in for any number of
// in-flight validations), further Finds and Updates on resident paths
// still complete — they need only the read lock plus a record stripe,
// never the write lock. Under the old single-mutex tree this deadlocks.
func TestValidationSharesReadLock(t *testing.T) {
	tr := NewTree()
	for i := 1; i <= 16; i++ {
		if err := tr.Put(mkRecord(lease.ID(i), 100)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	done := make(chan error, 1)
	go func() {
		for i := 1; i <= 16; i++ {
			id := lease.ID(i)
			if _, err := tr.Find(id); err != nil {
				done <- err
				return
			}
			if err := tr.Update(id, func(r *lease.Record) error {
				r.GCL.Counter--
				return nil
			}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("validation under shared read lock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resident-path validation blocked on the write lock")
	}
}

// BenchmarkLeaseTreeValidateParallel measures token-validation throughput
// on a fully resident tree across all cores: each iteration is one
// Find-then-Update pair (the validate-and-decrement shape SL-Local runs
// per token check). The read-locked striped fast path is what lets this
// scale with GOMAXPROCS instead of serializing on one tree mutex.
func BenchmarkLeaseTreeValidateParallel(b *testing.B) {
	const n = 4096
	tr := NewTree()
	for i := 0; i < n; i++ {
		if err := tr.Put(mkRecord(lease.ID(i+1), 1<<40)); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(next.Add(1)))
		for pb.Next() {
			id := lease.ID(rng.Intn(n) + 1)
			if _, err := tr.Find(id); err != nil {
				b.Error(err)
				return
			}
			err := tr.Update(id, func(r *lease.Record) error {
				r.GCL.Counter--
				return nil
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}
