package leasetree_test

import (
	"fmt"

	"repro/internal/lease"
	"repro/internal/leasetree"
)

// ExampleTree shows the lease tree's core cycle: insert, commit (offload
// to untrusted memory under a fresh key), and transparent restore on the
// next access.
func ExampleTree() {
	tr := leasetree.NewTree()
	_ = tr.Put(lease.Record{ID: 345, GCL: lease.NewCountGCL(10), Owner: "demo"})

	_ = tr.CommitLease(345)
	fmt.Println("resident after commit:", tr.ResidentRecords())

	rec, _ := tr.Find(345) // transparently validated and restored
	fmt.Println("restored counter:", rec.GCL.Remaining())
	fmt.Println("resident after find:", tr.ResidentRecords())
	// Output:
	// resident after commit: 0
	// restored counter: 10
	// resident after find: 1
}

// ExampleTree_Shutdown shows the graceful-exit protocol of Section 5.6:
// the whole tree is committed, and the root key — which alone can restore
// it — is escrowed separately (with SL-Remote in a deployment).
func ExampleTree_Shutdown() {
	tr := leasetree.NewTree()
	_ = tr.Put(lease.Record{ID: 1, GCL: lease.NewCountGCL(7), Owner: "demo"})

	snapshot, rootKey, _ := tr.Shutdown()

	restored, _ := leasetree.Restore(snapshot, rootKey)
	rec, _ := restored.Find(1)
	fmt.Println("restored counter:", rec.GCL.Remaining())
	// Output:
	// restored counter: 7
}

// ExampleTree_SetBudget shows Table 6's flat footprint: a memory budget
// evicts cold leases to untrusted storage while keeping them reachable.
func ExampleTree_SetBudget() {
	tr := leasetree.NewTree()
	tr.SetBudget(64 << 10) // 64 KB
	alloc := leasetree.NewIDAllocator()
	block := alloc.NextBlock()
	for i := 0; i < 500; i++ {
		if block.Remaining() == 0 {
			block = alloc.NextBlock()
		}
		id, _ := block.Next()
		_ = tr.Put(lease.Record{ID: id, GCL: lease.NewCountGCL(1), Owner: "demo"})
	}
	fmt.Println("live leases:", tr.Len())
	fmt.Println("under budget:", tr.Footprint() <= 64<<10)
	// Output:
	// live leases: 500
	// under budget: true
}
