package leasetree

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/lease"
	"repro/internal/seccrypto"
)

func mkRecord(id lease.ID, count int64) lease.Record {
	return lease.Record{ID: id, GCL: lease.NewCountGCL(count), Owner: fmt.Sprintf("lic-%d", id)}
}

func TestTreePutFindUpdateDelete(t *testing.T) {
	tr := NewTree()
	ids := []lease.ID{1, 255, 256, 345, 0x01020304, 0xFFFFFFFF}
	for _, id := range ids {
		if err := tr.Put(mkRecord(id, 10)); err != nil {
			t.Fatalf("Put(%d): %v", id, err)
		}
	}
	if tr.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ids))
	}
	for _, id := range ids {
		rec, err := tr.Find(id)
		if err != nil {
			t.Fatalf("Find(%d): %v", id, err)
		}
		if rec.ID != id || rec.GCL.Counter != 10 {
			t.Fatalf("Find(%d) = %+v", id, rec)
		}
	}
	if err := tr.Update(345, func(r *lease.Record) error {
		r.GCL.Counter = 5
		return nil
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	rec, err := tr.Find(345)
	if err != nil || rec.GCL.Counter != 5 {
		t.Fatalf("after update: rec=%+v err=%v", rec, err)
	}
	if err := tr.Delete(345); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := tr.Find(345); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Find deleted: got %v", err)
	}
	if tr.Len() != len(ids)-1 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
}

func TestTreeFindMissing(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Find(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty tree Find: got %v", err)
	}
	if err := tr.Put(mkRecord(42, 1)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Sibling in the same leaf node but different slot.
	if _, err := tr.Find(43); !errors.Is(err, ErrNotFound) {
		t.Fatalf("sibling Find: got %v", err)
	}
	// Entirely different subtree.
	if _, err := tr.Find(0xAABBCCDD); !errors.Is(err, ErrNotFound) {
		t.Fatalf("foreign Find: got %v", err)
	}
	if err := tr.Delete(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing: got %v", err)
	}
	if err := tr.Update(99, func(*lease.Record) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update missing: got %v", err)
	}
}

func TestTreePutReplaces(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(7, 1)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := tr.Put(mkRecord(7, 99)); err != nil {
		t.Fatalf("Put replace: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	rec, err := tr.Find(7)
	if err != nil || rec.GCL.Counter != 99 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
}

func TestTreePutRejectsInvalid(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(lease.Record{ID: 1}); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestTreeNodeCountSpatialLocality(t *testing.T) {
	// 256 leases allocated contiguously must share one leaf-parent node:
	// root + L1 + L2 + L3 = 4 nodes.
	tr := NewTree()
	alloc := NewIDAllocator()
	block := alloc.NextBlock()
	for {
		id, ok := block.Next()
		if !ok {
			break
		}
		if err := tr.Put(mkRecord(id, 1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if got := tr.ResidentNodes(); got != 4 {
		t.Fatalf("resident nodes = %d, want 4 (spatial locality)", got)
	}
	if tr.Len() != 256 {
		t.Fatalf("Len = %d, want 256", tr.Len())
	}
	// Footprint = 4 nodes + 256 records.
	want := int64(4*NodeSize + 256*lease.RecordSize)
	if got := tr.Footprint(); got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
}

func TestCommitLeaseAndTransparentRestore(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(345, 42)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := tr.CommitLease(345); err != nil {
		t.Fatalf("CommitLease: %v", err)
	}
	if got := tr.ResidentRecords(); got != 0 {
		t.Fatalf("resident after commit = %d, want 0", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after commit = %d, want 1 (still live)", tr.Len())
	}
	// Committing again is a no-op.
	if err := tr.CommitLease(345); err != nil {
		t.Fatalf("double CommitLease: %v", err)
	}
	// Find transparently restores.
	rec, err := tr.Find(345)
	if err != nil {
		t.Fatalf("Find after commit: %v", err)
	}
	if rec.GCL.Counter != 42 {
		t.Fatalf("restored counter = %d, want 42", rec.GCL.Counter)
	}
	if got := tr.ResidentRecords(); got != 1 {
		t.Fatalf("resident after restore = %d, want 1", got)
	}
	st := tr.Stats()
	if st.Commits != 1 || st.Restores != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := tr.CommitLease(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("CommitLease missing: got %v", err)
	}
}

func TestUpdateAfterCommitRestores(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(10, 5)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := tr.CommitLease(10); err != nil {
		t.Fatalf("CommitLease: %v", err)
	}
	if err := tr.Update(10, func(r *lease.Record) error {
		r.GCL.Counter--
		return nil
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	rec, err := tr.Find(10)
	if err != nil || rec.GCL.Counter != 4 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
}

func TestPutReplacesOffloadedRecord(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(20, 5)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := tr.CommitLease(20); err != nil {
		t.Fatalf("CommitLease: %v", err)
	}
	if err := tr.Put(mkRecord(20, 77)); err != nil {
		t.Fatalf("Put over offloaded: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	rec, err := tr.Find(20)
	if err != nil || rec.GCL.Counter != 77 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
}

func TestDeleteOffloadedRecord(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(30, 5)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := tr.CommitLease(30); err != nil {
		t.Fatalf("CommitLease: %v", err)
	}
	if err := tr.Delete(30); err != nil {
		t.Fatalf("Delete offloaded: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestBudgetEvictionFlattensFootprint(t *testing.T) {
	// Table 6: with eviction enabled SL-Local's footprint stays ~flat as
	// the lease count grows.
	const budget = 1600 << 10 // 1.6 MB
	tr := NewTree()
	tr.SetBudget(budget)
	alloc := NewIDAllocator()
	var block *Block
	for i := 0; i < 10_000; i++ {
		if block == nil || block.Remaining() == 0 {
			block = alloc.NextBlock()
		}
		id, _ := block.Next()
		if err := tr.Put(mkRecord(id, 100)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tr.Len() != 10_000 {
		t.Fatalf("Len = %d, want 10000", tr.Len())
	}
	if got := tr.Footprint(); got > budget {
		t.Fatalf("footprint %d exceeds budget %d", got, budget)
	}
	if tr.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded despite budget pressure")
	}
	// Every lease remains reachable.
	for _, probe := range []lease.ID{0x100, 0x1FF, 0x2700, 0x2704} {
		if _, err := tr.Find(probe); err != nil {
			t.Fatalf("Find(%#x) after eviction: %v", probe, err)
		}
	}
}

func TestBudgetUnlimitedNoEviction(t *testing.T) {
	tr := NewTree()
	alloc := NewIDAllocator()
	var block *Block
	for i := 0; i < 2000; i++ {
		if block == nil || block.Remaining() == 0 {
			block = alloc.NextBlock()
		}
		id, _ := block.Next()
		if err := tr.Put(mkRecord(id, 1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if tr.Stats().Evictions != 0 {
		t.Fatal("evictions happened without a budget")
	}
	if tr.ResidentRecords() != 2000 {
		t.Fatalf("resident = %d, want 2000", tr.ResidentRecords())
	}
}

func TestShutdownAndRestore(t *testing.T) {
	tr := NewTree()
	ids := []lease.ID{0x100, 0x101, 0x245, 0x01020304}
	for _, id := range ids {
		if err := tr.Put(mkRecord(id, int64(id%97)+1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	snap, rootKey, err := tr.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if rootKey.IsZero() {
		t.Fatal("zero root key")
	}
	// The shut-down tree rejects everything.
	if _, err := tr.Find(ids[0]); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Find after shutdown: got %v", err)
	}
	if err := tr.Put(mkRecord(1, 1)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Put after shutdown: got %v", err)
	}
	if _, _, err := tr.Shutdown(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("double Shutdown: got %v", err)
	}

	got, err := Restore(snap, rootKey)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got.Len() != len(ids) {
		t.Fatalf("restored Len = %d, want %d", got.Len(), len(ids))
	}
	for _, id := range ids {
		rec, err := got.Find(id)
		if err != nil {
			t.Fatalf("restored Find(%d): %v", id, err)
		}
		if rec.GCL.Counter != int64(id%97)+1 {
			t.Fatalf("restored counter for %d = %d", id, rec.GCL.Counter)
		}
	}
}

func TestRestoreRejectsWrongKey(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(1, 1)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	snap, _, err := tr.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wrong, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	if _, err := Restore(snap, wrong); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Restore with wrong key: got %v", err)
	}
}

func TestRestoreRejectsReplayedSnapshot(t *testing.T) {
	// The paper's replay scenario (Section 6.2): an attacker saves an old
	// snapshot, lets the tree shut down again (fresh root key escrowed),
	// then replays the old snapshot. Validation with the *new* escrowed
	// key must fail.
	tr := NewTree()
	if err := tr.Put(mkRecord(5, 100)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	oldSnap, oldKey, err := tr.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	tr2, err := Restore(oldSnap, oldKey)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := tr2.Update(5, func(r *lease.Record) error {
		r.GCL.Counter = 50 // consumed half the budget
		return nil
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	_, newKey, err := tr2.Shutdown()
	if err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	// Replay the old snapshot against the currently-escrowed key.
	if _, err := Restore(oldSnap, newKey); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replayed snapshot accepted: %v", err)
	}
}

func TestRestoreRejectsTamperedBlob(t *testing.T) {
	tr := NewTree()
	for i := lease.ID(1); i <= 10; i++ {
		if err := tr.Put(mkRecord(i, 10)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	snap, key, err := tr.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Corrupt one interior blob.
	for ref, blob := range snap.Blobs {
		mod := append([]byte(nil), blob...)
		mod[len(mod)/2] ^= 0xFF
		snap.Blobs[ref] = mod
		break
	}
	got, err := Restore(snap, key)
	if err == nil {
		// The tampered blob may be a record blob, only detected on access.
		for i := lease.ID(1); i <= 10; i++ {
			if _, ferr := got.Find(i); ferr != nil {
				err = ferr
				break
			}
		}
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered snapshot not detected: %v", err)
	}
}

func TestShutdownAfterBudgetEviction(t *testing.T) {
	tr := NewTree()
	tr.SetBudget(64 << 10)
	alloc := NewIDAllocator()
	block := alloc.NextBlock()
	ids := make([]lease.ID, 0, 200)
	for i := 0; i < 200; i++ {
		if block.Remaining() == 0 {
			block = alloc.NextBlock()
		}
		id, _ := block.Next()
		ids = append(ids, id)
		if err := tr.Put(mkRecord(id, int64(i)+1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	snap, key, err := tr.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got, err := Restore(snap, key)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i, id := range ids {
		rec, err := got.Find(id)
		if err != nil {
			t.Fatalf("Find(%d): %v", id, err)
		}
		if rec.GCL.Counter != int64(i)+1 {
			t.Fatalf("counter for %d = %d, want %d", id, rec.GCL.Counter, i+1)
		}
	}
}

func TestTreeConcurrentAccess(t *testing.T) {
	tr := NewTree()
	const n = 512
	for i := 0; i < n; i++ {
		if err := tr.Put(mkRecord(lease.ID(i+1), 1_000_000)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				id := lease.ID(rng.Intn(n) + 1)
				switch i % 3 {
				case 0:
					if _, err := tr.Find(id); err != nil {
						errs[w] = err
						return
					}
				case 1:
					if err := tr.Update(id, func(r *lease.Record) error {
						r.GCL.Counter--
						return nil
					}); err != nil {
						errs[w] = err
						return
					}
				case 2:
					if err := tr.CommitLease(id); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
}

func TestTreeRandomOpsProperty(t *testing.T) {
	// Property: the tree agrees with a plain map reference model under any
	// operation sequence, including interleaved commits.
	f := func(seed int64, opsRaw []uint16) bool {
		tr := NewTree()
		ref := make(map[lease.ID]int64)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range opsRaw {
			id := lease.ID(op%64 + 1)
			switch rng.Intn(4) {
			case 0:
				c := int64(op) + 1
				if tr.Put(mkRecord(id, c)) != nil {
					return false
				}
				ref[id] = c
			case 1:
				rec, err := tr.Find(id)
				want, ok := ref[id]
				if ok != (err == nil) {
					return false
				}
				if ok && rec.GCL.Counter != want {
					return false
				}
			case 2:
				err := tr.Delete(id)
				_, ok := ref[id]
				if ok != (err == nil) {
					return false
				}
				delete(ref, id)
			case 3:
				err := tr.CommitLease(id)
				_, ok := ref[id]
				if ok != (err == nil) {
					return false
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeFind(b *testing.B) {
	tr := NewTree()
	const n = 5000
	alloc := NewIDAllocator()
	block := alloc.NextBlock()
	ids := make([]lease.ID, 0, n)
	for i := 0; i < n; i++ {
		if block.Remaining() == 0 {
			block = alloc.NextBlock()
		}
		id, _ := block.Next()
		ids = append(ids, id)
		if err := tr.Put(mkRecord(id, 100)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Find(ids[i%n]); err != nil {
			b.Fatal(err)
		}
	}
}
