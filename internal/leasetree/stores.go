package leasetree

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/lease"
	"repro/internal/seccrypto"
)

// HashKind selects the hash function of a HashStore, matching the two
// hash-table contenders measured in Table 1 of the paper.
type HashKind uint8

// Hash table variants.
const (
	// HashMurmur uses the 64-bit MurmurHash3 (the hash behind common
	// C++ unordered_map implementations, per the paper).
	HashMurmur HashKind = iota + 1
	// HashSHA256 uses SHA-256 truncated to 64 bits.
	HashSHA256
)

// String returns the variant name.
func (k HashKind) String() string {
	switch k {
	case HashMurmur:
		return "murmur"
	case HashSHA256:
		return "sha-256"
	default:
		return fmt.Sprintf("hash(%d)", uint8(k))
	}
}

// hashKeySize is the serialized key the hash function digests per lookup.
// The paper hashes the lease's identifying information (ID plus license
// context); 32 bytes reproduces a realistic hashing cost per find().
const hashKeySize = 32

// HashStore is an open-addressing hash table of lease records, used as the
// baseline against the lease tree in Table 1. Every Find/Put hashes the
// serialized lease key — the hashing cost is exactly what the paper's
// measurements attribute the tree's win to.
type HashStore struct {
	kind HashKind

	mu    sync.Mutex
	slots []hashSlot
	used  int
	tomb  int
	seed  uint64
}

type hashSlot struct {
	state uint8 // 0 empty, 1 full, 2 tombstone
	id    lease.ID
	rec   lease.Record
}

// NewHashStore returns an empty hash store of the given kind.
func NewHashStore(kind HashKind) *HashStore {
	return &HashStore{
		kind:  kind,
		slots: make([]hashSlot, 64),
		seed:  0x5ec07e1ea5e, // fixed seed: deterministic layout
	}
}

func (h *HashStore) hash(id lease.ID) uint64 {
	var key [hashKeySize]byte
	binary.LittleEndian.PutUint32(key[0:], uint32(id))
	binary.LittleEndian.PutUint32(key[4:], ^uint32(id))
	binary.LittleEndian.PutUint64(key[8:], uint64(id)*0x9e3779b97f4a7c15)
	copy(key[16:], "secure-lease-key")
	switch h.kind {
	case HashSHA256:
		return seccrypto.SHA256Sum64(key[:])
	default:
		return seccrypto.Murmur64(key[:], h.seed)
	}
}

// Put inserts or replaces a record.
func (h *HashStore) Put(rec lease.Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if (h.used+h.tomb)*4 >= len(h.slots)*3 {
		h.growLocked()
	}
	h.putLocked(rec)
	return nil
}

func (h *HashStore) putLocked(rec lease.Record) {
	mask := uint64(len(h.slots) - 1)
	i := h.hash(rec.ID) & mask
	firstTomb := -1
	for {
		s := &h.slots[i]
		switch s.state {
		case 0:
			if firstTomb >= 0 {
				s = &h.slots[firstTomb]
				h.tomb--
			}
			s.state = 1
			s.id = rec.ID
			s.rec = rec
			h.used++
			return
		case 1:
			if s.id == rec.ID {
				s.rec = rec
				return
			}
		case 2:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		}
		i = (i + 1) & mask
	}
}

func (h *HashStore) growLocked() {
	old := h.slots
	h.slots = make([]hashSlot, len(old)*2)
	h.used = 0
	h.tomb = 0
	for i := range old {
		if old[i].state == 1 {
			h.putLocked(old[i].rec)
		}
	}
}

// Find returns a copy of the record with the given ID.
func (h *HashStore) Find(id lease.ID) (lease.Record, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.findSlotLocked(id)
	if s == nil {
		return lease.Record{}, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return s.rec, nil
}

// Update applies fn to the record under the store lock.
func (h *HashStore) Update(id lease.ID, fn func(*lease.Record) error) error {
	if fn == nil {
		return fmt.Errorf("leasetree: nil update function")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.findSlotLocked(id)
	if s == nil {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return fn(&s.rec)
}

// Delete removes the record.
func (h *HashStore) Delete(id lease.ID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.findSlotLocked(id)
	if s == nil {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	s.state = 2
	s.rec = lease.Record{}
	h.used--
	h.tomb++
	return nil
}

func (h *HashStore) findSlotLocked(id lease.ID) *hashSlot {
	mask := uint64(len(h.slots) - 1)
	i := h.hash(id) & mask
	for probes := 0; probes < len(h.slots); probes++ {
		s := &h.slots[i]
		switch s.state {
		case 0:
			return nil
		case 1:
			if s.id == id {
				return s
			}
		}
		i = (i + 1) & mask
	}
	return nil
}

// Len returns the number of live records.
func (h *HashStore) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.used
}

// Footprint returns the trusted bytes held: the whole slot array must stay
// in the EPC. Unlike the tree, a hash table cannot offload cold metadata
// without breaking probing — this is the ~94% memory argument of
// Section 5.2.3.
func (h *HashStore) Footprint() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	// A slot carries the record inline plus state and ID.
	const slotOverhead = 8
	return int64(len(h.slots)) * (lease.RecordSize + slotOverhead)
}

var _ Store = (*HashStore)(nil)

// ArrayStore keeps records in a flat array indexed by lease ID chunks. It
// is the simplest scheme the paper mentions and the most memory-hungry:
// the array must be sized for the ID space actually used and cannot
// offload anything.
type ArrayStore struct {
	mu   sync.Mutex
	recs []*lease.Record
	used int
}

// NewArrayStore returns an empty array store.
func NewArrayStore() *ArrayStore {
	return &ArrayStore{recs: make([]*lease.Record, 0, 1024)}
}

// Put inserts or replaces a record, growing the array to cover the ID.
func (a *ArrayStore) Put(rec lease.Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	idx := int(rec.ID)
	if idx >= len(a.recs) {
		// Grow geometrically so a run of inserts is amortized O(1).
		newCap := cap(a.recs)
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap <= idx {
			newCap *= 2
		}
		if newCap > cap(a.recs) {
			grown := make([]*lease.Record, idx+1, newCap)
			copy(grown, a.recs)
			a.recs = grown
		} else {
			a.recs = a.recs[:idx+1]
		}
	}
	if a.recs[idx] == nil {
		a.used++
	}
	r := rec
	a.recs[idx] = &r
	return nil
}

// Find returns a copy of the record.
func (a *ArrayStore) Find(id lease.ID) (lease.Record, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(id) >= len(a.recs) || a.recs[id] == nil {
		return lease.Record{}, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return *a.recs[id], nil
}

// Update applies fn to the record under the store lock.
func (a *ArrayStore) Update(id lease.ID, fn func(*lease.Record) error) error {
	if fn == nil {
		return fmt.Errorf("leasetree: nil update function")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(id) >= len(a.recs) || a.recs[id] == nil {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return fn(a.recs[id])
}

// Delete removes the record.
func (a *ArrayStore) Delete(id lease.ID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(id) >= len(a.recs) || a.recs[id] == nil {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	a.recs[id] = nil
	a.used--
	return nil
}

// Len returns the number of live records.
func (a *ArrayStore) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Footprint counts the pointer array plus every resident record; nothing
// can be offloaded.
func (a *ArrayStore) Footprint() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.recs))*8 + int64(a.used)*lease.RecordSize
}

var _ Store = (*ArrayStore)(nil)

// IDAllocator hands out lease IDs with the spatial locality the paper
// prescribes (Section 5.2.2): all leases of one application share the same
// level-4 node when the application needs at most 256 leases, so a whole
// application's leases can be committed or restored with one subtree
// operation.
type IDAllocator struct {
	mu        sync.Mutex
	nextBlock uint32
}

// NewIDAllocator returns an allocator whose first block starts at ID 256
// (block 0 is reserved so that lease ID 0 is never issued).
func NewIDAllocator() *IDAllocator {
	return &IDAllocator{nextBlock: 1}
}

// Block is a contiguous run of 256 lease IDs for one application.
type Block struct {
	base uint32
	mu   sync.Mutex
	next uint32
}

// NextBlock reserves the next aligned 256-ID block.
func (a *IDAllocator) NextBlock() *Block {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := &Block{base: a.nextBlock << 8}
	a.nextBlock++
	return b
}

// Base returns the first ID of the block.
func (b *Block) Base() lease.ID { return lease.ID(b.base) }

// Next issues the next ID in the block, or false when the block is full.
func (b *Block) Next() (lease.ID, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.next >= fanout {
		return 0, false
	}
	id := lease.ID(b.base | b.next)
	b.next++
	return id, true
}

// Remaining returns how many IDs the block can still issue.
func (b *Block) Remaining() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return fanout - int(b.next)
}
