package leasetree

import (
	"errors"
	"testing"

	"repro/internal/lease"
)

func TestUpdatePropagatesFnError(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(1, 5)); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("boom")
	if err := tr.Update(1, func(*lease.Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Update error = %v", err)
	}
	if err := tr.Update(1, nil); err == nil {
		t.Fatal("nil update fn accepted")
	}
}

func TestDeleteThroughCommittedSubtree(t *testing.T) {
	// Shutdown-style commit of everything, then restore and delete a
	// record that lives behind offloaded interior nodes.
	tr := NewTree()
	ids := []lease.ID{0x01020304, 0x01020305, 0xAABBCCDD}
	for _, id := range ids {
		if err := tr.Put(mkRecord(id, 3)); err != nil {
			t.Fatal(err)
		}
	}
	snap, key, err := tr.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Delete(0x01020304); err != nil {
		t.Fatalf("Delete through committed subtree: %v", err)
	}
	if restored.Len() != 2 {
		t.Fatalf("Len = %d", restored.Len())
	}
	if _, err := restored.Find(0x01020305); err != nil {
		t.Fatalf("sibling lost: %v", err)
	}
}

func TestCommitLeaseOnCommittedSubtreeIsNoop(t *testing.T) {
	tr := NewTree()
	tr.SetBudget(NodeSize) // force aggressive subtree eviction
	if err := tr.Put(mkRecord(0x01020304, 3)); err != nil {
		t.Fatal(err)
	}
	// The record (and possibly its whole subtree) is offloaded; committing
	// again must be a clean no-op regardless of which state it is in.
	if err := tr.CommitLease(0x01020304); err != nil {
		t.Fatalf("CommitLease: %v", err)
	}
	if _, err := tr.Find(0x01020304); err != nil {
		t.Fatalf("Find after commit: %v", err)
	}
}

func TestShutdownEmptyTree(t *testing.T) {
	tr := NewTree()
	snap, key, err := tr.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown empty: %v", err)
	}
	restored, err := Restore(snap, key)
	if err != nil {
		t.Fatalf("Restore empty: %v", err)
	}
	if restored.Len() != 0 {
		t.Fatalf("Len = %d", restored.Len())
	}
	if err := restored.Put(mkRecord(7, 1)); err != nil {
		t.Fatalf("Put into restored empty tree: %v", err)
	}
}

func TestRestoreRejectsTruncatedRoot(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	snap, key, err := tr.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	snap.RootCipher = snap.RootCipher[:len(snap.RootCipher)/2]
	if _, err := Restore(snap, key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated root: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	tr := NewTree()
	if err := tr.Put(mkRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.CommitLease(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Find(1); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Commits != 1 || st.Restores != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFootprintAfterDeleteShrinks(t *testing.T) {
	tr := NewTree()
	for i := lease.ID(1); i <= 100; i++ {
		if err := tr.Put(mkRecord(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Footprint()
	for i := lease.ID(1); i <= 100; i++ {
		if err := tr.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Footprint(); got >= before {
		t.Fatalf("footprint %d did not shrink from %d", got, before)
	}
	if tr.ResidentRecords() != 0 {
		t.Fatalf("resident = %d", tr.ResidentRecords())
	}
}

func TestHashStoreUpdateNil(t *testing.T) {
	s := NewHashStore(HashMurmur)
	if err := s.Update(1, nil); err == nil {
		t.Fatal("nil update fn accepted")
	}
	a := NewArrayStore()
	if err := a.Update(1, nil); err == nil {
		t.Fatal("nil update fn accepted")
	}
}

func TestHashStoreRejectsInvalidRecord(t *testing.T) {
	s := NewHashStore(HashSHA256)
	if err := s.Put(lease.Record{ID: 1}); err == nil {
		t.Fatal("invalid record accepted")
	}
	a := NewArrayStore()
	if err := a.Put(lease.Record{ID: 1}); err == nil {
		t.Fatal("invalid record accepted")
	}
}
