package leasetree

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lease"
)

func allStores() map[string]func() Store {
	return map[string]func() Store{
		"tree":    func() Store { return NewTree() },
		"murmur":  func() Store { return NewHashStore(HashMurmur) },
		"sha-256": func() Store { return NewHashStore(HashSHA256) },
		"array":   func() Store { return NewArrayStore() },
	}
}

func TestStoreContract(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const n = 300
			for i := 1; i <= n; i++ {
				if err := s.Put(mkRecord(lease.ID(i), int64(i))); err != nil {
					t.Fatalf("Put(%d): %v", i, err)
				}
			}
			if s.Len() != n {
				t.Fatalf("Len = %d, want %d", s.Len(), n)
			}
			for i := 1; i <= n; i++ {
				rec, err := s.Find(lease.ID(i))
				if err != nil {
					t.Fatalf("Find(%d): %v", i, err)
				}
				if rec.GCL.Counter != int64(i) {
					t.Fatalf("Find(%d).Counter = %d", i, rec.GCL.Counter)
				}
			}
			if _, err := s.Find(n + 1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing Find: %v", err)
			}
			if err := s.Update(5, func(r *lease.Record) error {
				r.GCL.Counter = 999
				return nil
			}); err != nil {
				t.Fatalf("Update: %v", err)
			}
			rec, err := s.Find(5)
			if err != nil || rec.GCL.Counter != 999 {
				t.Fatalf("after Update: %+v, %v", rec, err)
			}
			if err := s.Update(n+1, func(*lease.Record) error { return nil }); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Update missing: %v", err)
			}
			if err := s.Delete(5); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := s.Find(5); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Find deleted: %v", err)
			}
			if err := s.Delete(5); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double Delete: %v", err)
			}
			if s.Len() != n-1 {
				t.Fatalf("Len after delete = %d", s.Len())
			}
			if s.Footprint() <= 0 {
				t.Fatal("non-positive footprint")
			}
		})
	}
}

func TestStoresAgreeProperty(t *testing.T) {
	// Property: all four stores behave identically for any op sequence.
	f := func(seed int64, ops []uint16) bool {
		stores := []Store{
			NewTree(),
			NewHashStore(HashMurmur),
			NewHashStore(HashSHA256),
			NewArrayStore(),
		}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			id := lease.ID(op%128 + 1)
			kind := rng.Intn(3)
			var wantCounter int64
			var wantErr bool
			for i, s := range stores {
				switch kind {
				case 0:
					if err := s.Put(mkRecord(id, int64(op)+1)); err != nil {
						return false
					}
				case 1:
					rec, err := s.Find(id)
					if i == 0 {
						wantErr = err != nil
						wantCounter = rec.GCL.Counter
					} else if (err != nil) != wantErr || rec.GCL.Counter != wantCounter {
						return false
					}
				case 2:
					err := s.Delete(id)
					if i == 0 {
						wantErr = err != nil
					} else if (err != nil) != wantErr {
						return false
					}
				}
			}
			for _, s := range stores[1:] {
				if s.Len() != stores[0].Len() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHashStoreGrowth(t *testing.T) {
	s := NewHashStore(HashMurmur)
	const n = 10_000
	for i := 1; i <= n; i++ {
		if err := s.Put(mkRecord(lease.ID(i), 1)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for _, probe := range []lease.ID{1, n / 2, n} {
		if _, err := s.Find(probe); err != nil {
			t.Fatalf("Find(%d): %v", probe, err)
		}
	}
}

func TestHashStoreTombstoneReuse(t *testing.T) {
	s := NewHashStore(HashSHA256)
	for i := 1; i <= 100; i++ {
		if err := s.Put(mkRecord(lease.ID(i), 1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 1; i <= 50; i++ {
		if err := s.Delete(lease.ID(i)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	// Reinsert over the tombstones.
	for i := 1; i <= 50; i++ {
		if err := s.Put(mkRecord(lease.ID(i), 2)); err != nil {
			t.Fatalf("re-Put: %v", err)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	rec, err := s.Find(25)
	if err != nil || rec.GCL.Counter != 2 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
}

func TestHashKindString(t *testing.T) {
	if HashMurmur.String() != "murmur" || HashSHA256.String() != "sha-256" {
		t.Fatal("hash kind names wrong")
	}
	if HashKind(9).String() != "hash(9)" {
		t.Fatal("unknown hash kind name wrong")
	}
}

func TestFootprintComparison(t *testing.T) {
	// Section 5.2.3: the tree's evictable design wins on memory by a large
	// margin once a budget is set; array and hash tables cannot offload.
	tree := NewTree()
	tree.SetBudget(256 << 10)
	hash := NewHashStore(HashMurmur)
	array := NewArrayStore()
	alloc := NewIDAllocator()
	block := alloc.NextBlock()
	const n = 5000
	for i := 0; i < n; i++ {
		if block.Remaining() == 0 {
			block = alloc.NextBlock()
		}
		id, _ := block.Next()
		rec := mkRecord(id, 10)
		for _, s := range []Store{tree, hash, array} {
			if err := s.Put(rec); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}
	tf, hf, af := tree.Footprint(), hash.Footprint(), array.Footprint()
	if tf >= hf || tf >= af {
		t.Fatalf("tree footprint %d should undercut hash %d and array %d", tf, hf, af)
	}
	// The paper claims up to 94% savings; require at least 80% here.
	if float64(tf) > 0.2*float64(hf) {
		t.Fatalf("tree %d is not <20%% of hash %d", tf, hf)
	}
}

func TestIDAllocatorBlocks(t *testing.T) {
	alloc := NewIDAllocator()
	b1 := alloc.NextBlock()
	b2 := alloc.NextBlock()
	if b1.Base() == b2.Base() {
		t.Fatal("blocks overlap")
	}
	if b1.Base()&0xFF != 0 {
		t.Fatalf("block base %#x not 256-aligned", b1.Base())
	}
	seen := make(map[lease.ID]bool, 256)
	for i := 0; i < 256; i++ {
		id, ok := b1.Next()
		if !ok {
			t.Fatalf("block exhausted at %d", i)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if id>>8 != b1.Base()>>8 {
			t.Fatalf("id %#x escapes block %#x", id, b1.Base())
		}
	}
	if _, ok := b1.Next(); ok {
		t.Fatal("block issued a 257th id")
	}
	if b1.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", b1.Remaining())
	}
	if b2.Remaining() != 256 {
		t.Fatalf("fresh block Remaining = %d, want 256", b2.Remaining())
	}
}

func TestIDAllocatorNeverIssuesZero(t *testing.T) {
	alloc := NewIDAllocator()
	b := alloc.NextBlock()
	id, ok := b.Next()
	if !ok || id == 0 {
		t.Fatalf("first id = %d, want non-zero", id)
	}
}

func benchmarkStoreFind(b *testing.B, mk func() Store, n int) {
	s := mk()
	ids := make([]lease.ID, n)
	for i := 0; i < n; i++ {
		ids[i] = lease.ID(i + 1)
		if err := s.Put(mkRecord(ids[i], 100)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Find(ids[i%n]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreFind(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 5000} {
		for name, mk := range allStores() {
			b.Run(fmt.Sprintf("%s/%d", name, n), func(b *testing.B) {
				benchmarkStoreFind(b, mk, n)
			})
		}
	}
}
