package netsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPerfectLinkDeliversEverything(t *testing.T) {
	l := NewLink(LinkConfig{Reliability: 1, Latency: 5 * time.Millisecond, Seed: 1})
	for i := 0; i < 1000; i++ {
		d, err := l.Send()
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if d != 5*time.Millisecond {
			t.Fatalf("latency = %v, want 5ms", d)
		}
	}
	if got := l.ObservedReliability(); got != 1 {
		t.Fatalf("observed reliability = %v, want 1", got)
	}
}

func TestDeadLinkDropsEverything(t *testing.T) {
	l := NewLink(LinkConfig{Reliability: 0, Seed: 2})
	for i := 0; i < 100; i++ {
		if _, err := l.Send(); !errors.Is(err, ErrDropped) {
			t.Fatalf("send %d: got %v, want ErrDropped", i, err)
		}
	}
	if got := l.ObservedReliability(); got != 0 {
		t.Fatalf("observed reliability = %v, want 0", got)
	}
}

func TestObservedReliabilityConverges(t *testing.T) {
	l := NewLink(LinkConfig{Reliability: 0.7, Seed: 42})
	for i := 0; i < 20_000; i++ {
		_, _ = l.Send()
	}
	got := l.ObservedReliability()
	if math.Abs(got-0.7) > 0.02 {
		t.Fatalf("observed reliability = %v, want ≈0.7", got)
	}
	sent, delivered := l.Counters()
	if sent != 20_000 {
		t.Fatalf("sent = %d", sent)
	}
	if delivered <= 0 || delivered >= sent {
		t.Fatalf("delivered = %d out of %d", delivered, sent)
	}
}

func TestJitterBounds(t *testing.T) {
	l := NewLink(LinkConfig{Reliability: 1, Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 7})
	sawJitter := false
	for i := 0; i < 1000; i++ {
		d, err := l.Send()
		if err != nil {
			t.Fatalf("send: %v", err)
		}
		if d < 10*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("latency %v outside [10ms, 15ms]", d)
		}
		if d > 10*time.Millisecond {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("jitter never applied")
	}
}

func TestLinkDown(t *testing.T) {
	l := NewLink(LinkConfig{Reliability: 1, Seed: 3})
	l.SetDown(true)
	if _, err := l.Send(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("down link: got %v", err)
	}
	l.SetDown(false)
	if _, err := l.Send(); err != nil {
		t.Fatalf("healed link: %v", err)
	}
	// Down sends do not count against reliability.
	if got := l.ObservedReliability(); got != 1 {
		t.Fatalf("observed reliability = %v, want 1", got)
	}
}

func TestSetReliabilityClamps(t *testing.T) {
	l := NewLink(LinkConfig{Reliability: 5, Seed: 4}) // clamped to 1
	if _, err := l.Send(); err != nil {
		t.Fatalf("send: %v", err)
	}
	l.SetReliability(-3) // clamped to 0
	if _, err := l.Send(); !errors.Is(err, ErrDropped) {
		t.Fatalf("clamped-to-0 link delivered: %v", err)
	}
}

func TestFreshLinkReportsFullReliability(t *testing.T) {
	l := NewLink(LinkConfig{Reliability: 0.5, Seed: 5})
	if got := l.ObservedReliability(); got != 1 {
		t.Fatalf("fresh link reliability = %v, want 1 (optimistic prior)", got)
	}
}

func TestSendWithRetry(t *testing.T) {
	// A 50% link should almost always succeed within 20 attempts.
	l := NewLink(LinkConfig{Reliability: 0.5, Latency: time.Millisecond, Seed: 6})
	d, err := l.SendWithRetry(20, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("SendWithRetry: %v", err)
	}
	if d < time.Millisecond {
		t.Fatalf("latency %v too small", d)
	}

	dead := NewLink(LinkConfig{Reliability: 0, Seed: 7})
	d, err = dead.SendWithRetry(3, 10*time.Millisecond)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("dead retry: got %v", err)
	}
	if d != 30*time.Millisecond {
		t.Fatalf("drop penalty total = %v, want 30ms", d)
	}

	down := NewLink(LinkConfig{Reliability: 1, Seed: 8})
	down.SetDown(true)
	if _, err := down.SendWithRetry(5, time.Millisecond); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("down retry: got %v", err)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	mk := func() []bool {
		l := NewLink(LinkConfig{Reliability: 0.5, Seed: 99})
		out := make([]bool, 200)
		for i := range out {
			_, err := l.Send()
			out[i] = err == nil
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at message %d", i)
		}
	}
}

func TestReliabilityMonotoneProperty(t *testing.T) {
	// Property: with the same seed, a more reliable link delivers at least
	// as many messages.
	f := func(seed int64, r1, r2 float64) bool {
		lo, hi := math.Abs(math.Mod(r1, 1)), math.Abs(math.Mod(r2, 1))
		if lo > hi {
			lo, hi = hi, lo
		}
		count := func(r float64) int64 {
			l := NewLink(LinkConfig{Reliability: r, Seed: seed})
			for i := 0; i < 500; i++ {
				_, _ = l.Send()
			}
			_, d := l.Counters()
			return d
		}
		return count(lo) <= count(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
