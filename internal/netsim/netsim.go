// Package netsim models the network between client machines (SL-Local) and
// the license server (SL-Remote). Algorithm 1 of the paper takes a network
// reliability factor n ∈ [0,1] per client; this package turns that scalar
// into concrete behaviour — message drops and latency — and measures the
// observed reliability so experiments can feed honest values back into the
// lease-renewal policy.
//
// All randomness comes from an explicit seed, so simulations are
// reproducible. Latency is charged to a virtual clock by the caller (the
// wire layer), keeping netsim free of SGX dependencies.
package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrDropped reports a message lost by the link.
var ErrDropped = errors.New("netsim: message dropped")

// ErrLinkDown reports a send on a partitioned link.
var ErrLinkDown = errors.New("netsim: link is down")

// LinkConfig describes one simulated link.
type LinkConfig struct {
	// Reliability is the per-message delivery probability in [0,1]
	// (the paper's n: 0 = dead network, 1 = stable network).
	Reliability float64
	// Latency is the one-way base latency.
	Latency time.Duration
	// Jitter is the maximum extra latency added uniformly at random.
	Jitter time.Duration
	// Seed initializes the link's private RNG.
	Seed int64
}

// Link is a simulated unidirectional message path. It is safe for
// concurrent use.
type Link struct {
	mu          sync.Mutex
	rng         *rand.Rand
	reliability float64
	latency     time.Duration
	jitter      time.Duration
	down        bool

	sent      int64
	delivered int64

	metrics *linkMetrics // nil until ExposeMetrics; guarded by mu
}

// linkMetrics holds the link's active metrics (drops and simulated
// latency); counters that already exist are exported as scrape-time
// callbacks instead.
type linkMetrics struct {
	drops   *obs.Counter
	latency *obs.Histogram
}

// ExposeMetrics registers the link's counters with an obs registry,
// labeled {link=<name>}.
//
// Metric inventory: netsim_sent_total, netsim_delivered_total,
// netsim_drops_total, netsim_observed_reliability, and the
// netsim_latency_seconds histogram of simulated one-way latencies.
func (l *Link) ExposeMetrics(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	lbl := map[string]string{"link": name}
	reg.CounterFunc("netsim_sent_total", "Messages offered to the link.", lbl,
		func() float64 { sent, _ := l.Counters(); return float64(sent) })
	reg.CounterFunc("netsim_delivered_total", "Messages delivered by the link.", lbl,
		func() float64 { _, delivered := l.Counters(); return float64(delivered) })
	reg.GaugeFunc("netsim_observed_reliability", "Measured delivery ratio (Algorithm 1's n_i).", lbl,
		func() float64 { return l.ObservedReliability() })
	m := &linkMetrics{
		drops: reg.CounterVec("netsim_drops_total",
			"Messages lost by the link (drops and partitions).", "link").With(name),
		latency: reg.HistogramVec("netsim_latency_seconds",
			"Simulated one-way delivery latency.", nil, "link").With(name),
	}
	l.mu.Lock()
	l.metrics = m
	l.mu.Unlock()
}

// NewLink builds a link from the config. Reliability outside [0,1] is
// clamped.
func NewLink(cfg LinkConfig) *Link {
	r := cfg.Reliability
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	return &Link{
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		reliability: r,
		latency:     cfg.Latency,
		jitter:      cfg.Jitter,
	}
}

// Send attempts one message delivery. On success it returns the simulated
// one-way latency for the caller to charge; on failure it returns
// ErrDropped or ErrLinkDown.
func (l *Link) Send() (time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		if l.metrics != nil {
			l.metrics.drops.Inc()
		}
		return 0, ErrLinkDown
	}
	l.sent++
	if l.rng.Float64() >= l.reliability {
		if l.metrics != nil {
			l.metrics.drops.Inc()
		}
		return 0, ErrDropped
	}
	l.delivered++
	d := l.latency
	if l.jitter > 0 {
		d += time.Duration(l.rng.Int63n(int64(l.jitter) + 1))
	}
	if l.metrics != nil {
		l.metrics.latency.Observe(d.Seconds())
	}
	return d, nil
}

// SetDown partitions or heals the link.
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = down
}

// SetReliability updates the delivery probability (clamped to [0,1]).
func (l *Link) SetReliability(r float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	l.reliability = r
}

// ObservedReliability returns the measured delivery ratio so far, or 1 if
// nothing has been sent. SL-Remote feeds this into Algorithm 1 as n_i.
func (l *Link) ObservedReliability() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sent == 0 {
		return 1
	}
	return float64(l.delivered) / float64(l.sent)
}

// Counters returns messages sent and delivered.
func (l *Link) Counters() (sent, delivered int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent, l.delivered
}

// SendWithRetry retries Send up to attempts times, returning the total
// latency of all attempts that were made (drops still consume a timeout,
// which the caller supplies as dropPenalty).
func (l *Link) SendWithRetry(attempts int, dropPenalty time.Duration) (time.Duration, error) {
	var total time.Duration
	var lastErr error
	for i := 0; i < attempts; i++ {
		d, err := l.Send()
		if err == nil {
			return total + d, nil
		}
		lastErr = err
		if errors.Is(err, ErrLinkDown) {
			return total, err
		}
		total += dropPenalty
	}
	if lastErr == nil {
		lastErr = ErrDropped
	}
	return total, lastErr
}
