package slmanager

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
)

type env struct {
	machine *sgx.Machine
	local   *sllocal.Service
	remote  *slremote.Server
	app     *sgx.Enclave
	mgr     *Manager
}

func newEnv(t *testing.T, batch int, licenses map[string]int64) *env {
	t.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "client", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("client", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	for id, total := range licenses {
		if err := remote.RegisterLicense(id, lease.CountBased, total); err != nil {
			t.Fatalf("RegisterLicense: %v", err)
		}
	}
	svc, err := sllocal.New(sllocal.Config{TokenBatch: batch}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: remote,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app, err := m.CreateEnclave("app-secure", []byte("app-secure-code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	mgr, err := New(app, svc)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &env{machine: m, local: svc, remote: remote, app: app, mgr: mgr}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil enclave accepted")
	}
	e := newEnv(t, 1, nil)
	if _, err := New(e.app, nil); err == nil {
		t.Fatal("nil SL-Local accepted")
	}
}

func TestAuthorizeAndExecute(t *testing.T) {
	e := newEnv(t, 1, map[string]int64{"lic": 1000})
	e.mgr.Guard("parse_query", "lic")
	ran := false
	if err := e.mgr.Execute("parse_query", func() error {
		ran = true
		return nil
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !ran {
		t.Fatal("key function did not run")
	}
	st := e.mgr.Stats()
	if st.Authorizations != 1 || st.TokenRequests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExecuteUnguarded(t *testing.T) {
	e := newEnv(t, 1, map[string]int64{"lic": 10})
	if err := e.mgr.Execute("mystery", nil); !errors.Is(err, ErrNotGuarded) {
		t.Fatalf("unguarded execute: %v", err)
	}
}

func TestExecutePropagatesError(t *testing.T) {
	e := newEnv(t, 1, map[string]int64{"lic": 10})
	e.mgr.Guard("f", "lic")
	sentinel := errors.New("boom")
	if err := e.mgr.Execute("f", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Execute error = %v", err)
	}
}

func TestTokenCachingAmortizesRequests(t *testing.T) {
	e := newEnv(t, 10, map[string]int64{"lic": 100_000})
	e.mgr.Guard("f", "lic")
	for i := 0; i < 100; i++ {
		if err := e.mgr.Execute("f", nil); err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
	}
	st := e.mgr.Stats()
	if st.Authorizations != 100 {
		t.Fatalf("authorizations = %d", st.Authorizations)
	}
	if st.TokenRequests != 10 {
		t.Fatalf("token requests = %d, want 10 (batch of 10)", st.TokenRequests)
	}
}

func TestDenialWhenLicenseExhausted(t *testing.T) {
	e := newEnv(t, 1, map[string]int64{"lic": 4})
	e.mgr.Guard("f", "lic")
	granted := 0
	for i := 0; i < 20; i++ {
		if err := e.mgr.Execute("f", nil); err != nil {
			if !errors.Is(err, ErrNoLease) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		granted++
	}
	if granted == 0 || granted > 4 {
		t.Fatalf("granted %d executions from a 4-unit license", granted)
	}
	if e.mgr.Stats().Denials == 0 {
		t.Fatal("no denial recorded")
	}
}

func TestDenialForUnknownLicense(t *testing.T) {
	e := newEnv(t, 1, nil)
	if err := e.mgr.Authorize("ghost"); !errors.Is(err, ErrNoLease) {
		t.Fatalf("unknown license: %v", err)
	}
}

func TestGuardedFunctions(t *testing.T) {
	e := newEnv(t, 1, nil)
	e.mgr.Guard("a", "lic1")
	e.mgr.Guard("b", "lic2")
	fns := e.mgr.GuardedFunctions()
	if len(fns) != 2 {
		t.Fatalf("guarded = %v", fns)
	}
}

func TestCachedGrants(t *testing.T) {
	e := newEnv(t, 10, map[string]int64{"lic": 1000})
	if got := e.mgr.CachedGrants("lic"); got != 0 {
		t.Fatalf("fresh cache = %d", got)
	}
	if err := e.mgr.Authorize("lic"); err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if got := e.mgr.CachedGrants("lic"); got != 9 {
		t.Fatalf("cache after first use = %d, want 9", got)
	}
}

func TestConcurrentExecute(t *testing.T) {
	e := newEnv(t, 10, map[string]int64{"lic": 1_000_000})
	e.mgr.Guard("f", "lic")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := e.mgr.Execute("f", nil); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := e.mgr.Stats().Authorizations; got != 800 {
		t.Fatalf("authorizations = %d, want 800", got)
	}
}

func TestECallChargedPerExecute(t *testing.T) {
	e := newEnv(t, 1, map[string]int64{"lic": 100})
	e.mgr.Guard("f", "lic")
	before := e.app.Stats().ECalls
	if err := e.mgr.Execute("f", nil); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := e.app.Stats().ECalls - before; got != 1 {
		t.Fatalf("app enclave ECALLs per execute = %d, want 1", got)
	}
}
