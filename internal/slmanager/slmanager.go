// Package slmanager implements SL-Manager, the authentication module
// SecureLease embeds in the secure (in-enclave) region of every protected
// application (Sections 4.4 and 5.1 of the paper).
//
// An SL-Manager instance guards a set of key functions. Before a key
// function may execute, the manager must hold a valid token of execution
// for the corresponding license, obtained from SL-Local after mutual local
// attestation. Tokens carry a grant count, so one attestation round trip
// can authorize a batch of executions (the paper's 10-token optimization).
//
// Because SL-Manager and the key functions it guards run inside the same
// enclave, a control-flow-bending attack on the untrusted part of the
// application cannot reach the key functions without a token — that is the
// dependency the paper's partitioning creates.
package slmanager

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/lease"
	"repro/internal/sgx"
	"repro/internal/sllocal"
)

// Errors returned by SL-Manager.
var (
	// ErrNoLease reports that no token could be obtained for the license.
	ErrNoLease = errors.New("slmanager: no valid lease")
	// ErrNotGuarded reports execution of a function the manager knows
	// nothing about.
	ErrNotGuarded = errors.New("slmanager: function not guarded by this manager")
)

// Manager is the in-enclave authentication module of one application. It
// is safe for concurrent use.
type Manager struct {
	enclave *sgx.Enclave
	local   *sllocal.Service

	mu     sync.Mutex
	guards map[string]string      // key function name → license ID
	tokens map[string]lease.Token // license ID → cached token
	stats  Stats
}

// Stats counts manager-side events.
type Stats struct {
	Authorizations int64 // successful key-function authorizations
	TokenRequests  int64 // round trips to SL-Local
	Denials        int64
}

// New builds an SL-Manager running in the given application enclave and
// bound to the machine's SL-Local service.
func New(enclave *sgx.Enclave, local *sllocal.Service) (*Manager, error) {
	if enclave == nil {
		return nil, errors.New("slmanager: nil enclave")
	}
	if local == nil {
		return nil, errors.New("slmanager: nil SL-Local service")
	}
	return &Manager{
		enclave: enclave,
		local:   local,
		guards:  make(map[string]string),
		tokens:  make(map[string]lease.Token),
	}, nil
}

// Guard registers a key function as protected by the given license. The
// developer calls this for every function migrated into the enclave
// (Section 4.2.1: key functions are developer-annotated).
func (m *Manager) Guard(function, licenseID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.guards[function] = licenseID
}

// GuardedFunctions returns the names of all registered key functions.
func (m *Manager) GuardedFunctions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.guards))
	for f := range m.guards {
		out = append(out, f)
	}
	return out
}

// Authorize obtains (or reuses) an execution grant for the license,
// consuming one grant from the cached token and fetching a fresh batch
// from SL-Local when the cache is empty.
func (m *Manager) Authorize(licenseID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.authorizeLocked(licenseID)
}

func (m *Manager) authorizeLocked(licenseID string) error {
	tok, ok := m.tokens[licenseID]
	if ok && tok.Use() {
		m.tokens[licenseID] = tok
		m.stats.Authorizations++
		return nil
	}
	fresh, err := m.local.RequestToken(m.enclave, licenseID)
	m.stats.TokenRequests++
	if err != nil {
		m.stats.Denials++
		return fmt.Errorf("%w: %v", ErrNoLease, err)
	}
	if !fresh.Use() {
		m.stats.Denials++
		return fmt.Errorf("%w: empty token for %q", ErrNoLease, licenseID)
	}
	m.tokens[licenseID] = fresh
	m.stats.Authorizations++
	return nil
}

// Execute runs a guarded key function inside the enclave: it authorizes
// against the function's license, enters the enclave (one ECALL), and runs
// fn as trusted code. This is the only path to the key function — there is
// no unauthorized entry point, which is what defeats CFB attacks.
func (m *Manager) Execute(function string, fn func() error) error {
	m.mu.Lock()
	licenseID, ok := m.guards[function]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotGuarded, function)
	}
	if err := m.authorizeLocked(licenseID); err != nil {
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	return m.enclave.ECall(fn)
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// CachedGrants returns how many unused grants the manager holds for a
// license (for tests and monitoring).
func (m *Manager) CachedGrants(licenseID string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tokens[licenseID].Grants
}
