// Package cli holds the shared fatal-exit helper for the SecureLease
// command-line binaries.
//
// Fatalf is the single audited path through which flag-validation and
// startup errors reach stderr: the secretflow analyzer (internal/lint)
// whitelists this package once, so fatal messages do not need per-site
// clearance — and conversely, anything printed here is reviewed with the
// knowledge that it bypasses the taint check. Keep key material out of
// the errors handed to it.
package cli

import (
	"fmt"
	"io"
	"os"
)

// stderr and exit are swapped out by tests; Fatalf never returns in
// production use.
var (
	stderr io.Writer = os.Stderr
	exit             = os.Exit
)

// Fatalf writes one formatted line to stderr and exits with status 1.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(stderr, format+"\n", args...)
	exit(1)
}
