package cli

import (
	"strings"
	"testing"
)

func TestFatalf(t *testing.T) {
	var buf strings.Builder
	var code = -1
	origStderr, origExit := stderr, exit
	stderr, exit = &buf, func(c int) { code = c }
	defer func() { stderr, exit = origStderr, origExit }()

	Fatalf("daemon: %v", "bad -license flag")

	if got, want := buf.String(), "daemon: bad -license flag\n"; got != want {
		t.Errorf("stderr = %q, want %q", got, want)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}
