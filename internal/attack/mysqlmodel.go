package attack

// Protection selects how the demo application is hardened, mirroring the
// three configurations the paper walks through in Figure 6.
type Protection int

// Protection levels.
const (
	// NoSGX: software-only authentication module.
	NoSGX Protection = iota
	// AMOnlySGX: only the authentication module runs in the enclave; its
	// result is consumed by untrusted code (attack ② in Figure 6).
	AMOnlySGX
	// SecureLeaseSGX: the AM and the query-parsing key function run in
	// the enclave and are token-gated (the paper's partitioning).
	SecureLeaseSGX
)

// NewMySQLModel builds a program modeled on the MySQL flow of Figure 6:
// initialization → authentication (acl_authenticate) → the protected
// region (query parsing, execution, result writing). The "license" is
// valid iff the licenseOK argument is true (simulating what the AM's
// verification of the license file would conclude).
//
// The output encodes real data flow: parse produces a parse tree token,
// execute consumes it, write emits results derived from both. Skipping or
// losing any stage corrupts the output — exactly why migrating the parser
// handicaps a CFB attacker.
func NewMySQLModel(level Protection, licenseOK bool) *Program {
	amEnclave := level != NoSGX
	parseEnclave := level == SecureLeaseSGX

	return &Program{
		Entry: "main",
		Functions: map[string]*Function{
			"main": {
				Name: "main",
				Body: []Instr{
					Call{Fn: "init_server"},
					Call{Fn: "acl_authenticate"},
					// The decision branch of Figure 2: consumes the AM's
					// result ("res") in untrusted code.
					Branch{ID: "auth_check", Cond: func(s *State) bool {
						return s.Vars["auth_res"] == 1
					}},
					Call{Fn: "parse_query"},
					Call{Fn: "execute_query"},
					Call{Fn: "write_result"},
				},
			},
			"init_server": {
				Name: "init_server",
				Body: []Instr{
					Compute{Fn: func(s *State) {
						s.Vars["initialized"] = 1
						s.Vars["query"] = 0x51
					}},
				},
			},
			"acl_authenticate": {
				Name:    "acl_authenticate",
				Enclave: amEnclave,
				Body: []Instr{
					Compute{Fn: func(s *State) {
						if licenseOK {
							s.Vars["auth_res"] = 1
						} else {
							s.Vars["auth_res"] = 0
						}
					}},
				},
			},
			"parse_query": {
				Name:    "parse_query",
				Enclave: parseEnclave,
				Body: []Instr{
					Compute{Fn: func(s *State) {
						// The parse tree is derived state later stages need.
						s.Vars["parse_tree"] = s.Vars["query"]*31 + 7
					}},
				},
			},
			"execute_query": {
				Name: "execute_query",
				Body: []Instr{
					Compute{Fn: func(s *State) {
						s.Vars["result"] = s.Vars["parse_tree"] * 13
					}},
				},
			},
			"write_result": {
				Name: "write_result",
				Body: []Instr{
					Compute{Fn: func(s *State) {
						s.Output = append(s.Output, s.Vars["result"], s.Vars["parse_tree"])
					}},
				},
			},
		},
	}
}

// ReferenceOutput runs the program honestly with a valid license and no
// gate, yielding the output a legitimate user obtains.
func ReferenceOutput(level Protection) ([]int64, error) {
	p := NewMySQLModel(level, true)
	cpu, err := NewVCPU(p, nil, Tamper{})
	if err != nil {
		return nil, err
	}
	res, err := cpu.Run()
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}
