// Package attack implements control-flow-bending (CFB) attacks against
// license-protected applications, reproducing the threat model of the
// paper (Sections 2.1.1 and 6.1): the attacker runs the victim binary on a
// virtual CPU (an Intel Pin analogue) with full access to registers,
// memory, and branch outcomes of all *untrusted* code, and can
//
//   - flip branch decisions (force the jne of Figure 2 to fall through),
//   - skip function calls entirely,
//   - forge program state to make the binary believe a check passed.
//
// What the attacker cannot do is observe or tamper with code executing
// inside an SGX enclave — and, under SecureLease, cannot execute enclave
// key functions at all without a valid token of execution.
//
// The package provides a small program representation, the virtual CPU,
// and outcome evaluation: an attack fully succeeds only if the program
// runs to completion AND produces the same output a licensed run produces.
// Completing with wrong or missing output is the "handicapped" result the
// paper's partitioning aims for.
package attack

import (
	"errors"
	"fmt"
)

// Instr is one instruction of the program model.
type Instr interface{ isInstr() }

// Call invokes another function of the program.
type Call struct {
	// Fn is the callee.
	Fn string
}

// Branch evaluates a condition over the program state; if the condition is
// false the program aborts (the license-check pattern of Figure 2). Each
// branch has an ID the attacker can target.
type Branch struct {
	// ID names the branch for attacker targeting.
	ID string
	// Cond reads the state and decides whether execution proceeds.
	Cond func(s *State) bool
}

// Compute mutates the program state (real work).
type Compute struct {
	// Fn performs the computation.
	Fn func(s *State)
}

func (Call) isInstr()    {}
func (Branch) isInstr()  {}
func (Compute) isInstr() {}

// Function is a named body of instructions.
type Function struct {
	Name string
	// Enclave marks the function as migrated to SGX: the attacker cannot
	// flip its branches or forge state while it runs, and the function is
	// token-gated when a Gate is installed.
	Enclave bool
	Body    []Instr
}

// Program is a complete application model.
type Program struct {
	Entry     string
	Functions map[string]*Function
}

// Validate checks structural integrity: entry exists, calls resolve.
func (p *Program) Validate() error {
	if _, ok := p.Functions[p.Entry]; !ok {
		return fmt.Errorf("attack: entry %q not defined", p.Entry)
	}
	for name, fn := range p.Functions {
		if fn == nil {
			return fmt.Errorf("attack: nil function %q", name)
		}
		for _, in := range fn.Body {
			if c, ok := in.(Call); ok {
				if _, ok := p.Functions[c.Fn]; !ok {
					return fmt.Errorf("attack: %q calls undefined %q", name, c.Fn)
				}
			}
		}
	}
	return nil
}

// State is the program's memory: named variables plus the accumulated
// output. The output is how we judge whether an attack obtained the
// program's real functionality.
type State struct {
	Vars      map[string]int64
	Output    []int64
	aborted   bool
	inEnclave int // >0 while executing enclave code
}

// Abort reports whether the program aborted (failed a branch).
func (s *State) Aborted() bool { return s.aborted }

// Gate authorizes execution of enclave functions. In a full SecureLease
// deployment this is the SL-Manager; tests may use stubs.
type Gate interface {
	// Authorize returns nil if the named enclave function may execute.
	Authorize(function string) error
}

// GateFunc adapts a function to the Gate interface.
type GateFunc func(function string) error

// Authorize implements Gate.
func (f GateFunc) Authorize(function string) error { return f(function) }

// Tamper is the attacker's control plane on the virtual CPU.
type Tamper struct {
	// FlipBranches forces the targeted branch IDs to evaluate as true
	// (proceed) regardless of the real condition.
	FlipBranches map[string]bool
	// SkipCalls drops calls to the named functions entirely.
	SkipCalls map[string]bool
	// ForgeVars overwrites state variables before every branch in
	// untrusted code (the "fix some local state" attack of Section 6.1).
	ForgeVars map[string]int64
}

// Result of one virtual-CPU execution.
type Result struct {
	// Completed is true if the program ran to the end without aborting.
	Completed bool
	// Output is the produced output.
	Output []int64
	// EnclaveDenials counts enclave functions that refused to run for
	// lack of a valid lease.
	EnclaveDenials int
	// SkippedEnclave counts enclave calls the attacker skipped.
	SkippedEnclave int
}

// FullyFunctional reports whether the run produced exactly the reference
// output — the attacker got the complete, correct program functionality.
func (r Result) FullyFunctional(reference []int64) bool {
	if !r.Completed || len(r.Output) != len(reference) {
		return false
	}
	for i := range r.Output {
		if r.Output[i] != reference[i] {
			return false
		}
	}
	return true
}

// VCPU is the attacker-controlled virtual CPU.
type VCPU struct {
	program *Program
	gate    Gate
	tamper  Tamper

	maxSteps int
	steps    int
}

// ErrRunaway reports an execution exceeding the step budget.
var ErrRunaway = errors.New("attack: execution exceeded step budget")

// NewVCPU builds a virtual CPU for the program. gate may be nil (no
// SecureLease protection: enclave functions run untamperable but ungated).
// tamper may be the zero value for an honest run.
func NewVCPU(p *Program, gate Gate, tamper Tamper) (*VCPU, error) {
	if p == nil {
		return nil, errors.New("attack: nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &VCPU{program: p, gate: gate, tamper: tamper, maxSteps: 1_000_000}, nil
}

// Run executes the program from its entry point and returns the result.
func (v *VCPU) Run() (Result, error) {
	v.steps = 0
	s := &State{Vars: make(map[string]int64)}
	res := Result{}
	if err := v.exec(v.program.Entry, s, &res); err != nil {
		return res, err
	}
	res.Completed = !s.aborted
	res.Output = s.Output
	return res, nil
}

func (v *VCPU) exec(name string, s *State, res *Result) error {
	if s.aborted {
		return nil
	}
	fn := v.program.Functions[name]
	if fn.Enclave {
		if v.gate != nil {
			if err := v.gate.Authorize(name); err != nil {
				// No valid lease: the enclave refuses to run the key
				// function. Execution continues outside (the attacker can
				// bend around the failure) but the function's effects are
				// missing.
				res.EnclaveDenials++
				return nil
			}
		}
		s.inEnclave++
		defer func() { s.inEnclave-- }()
	}
	for _, in := range fn.Body {
		if s.aborted {
			return nil
		}
		v.steps++
		if v.steps > v.maxSteps {
			return fmt.Errorf("%w (in %q)", ErrRunaway, name)
		}
		switch instr := in.(type) {
		case Call:
			callee := v.program.Functions[instr.Fn]
			if s.inEnclave == 0 && v.tamper.SkipCalls[instr.Fn] {
				if callee.Enclave {
					res.SkippedEnclave++
				}
				continue
			}
			if err := v.exec(instr.Fn, s, res); err != nil {
				return err
			}
		case Branch:
			// Outside the enclave the attacker forges state and flips
			// branches at will; inside, the hardware prevents both.
			if s.inEnclave == 0 {
				for k, val := range v.tamper.ForgeVars {
					s.Vars[k] = val
				}
				if v.tamper.FlipBranches[instr.ID] {
					continue // forced fall-through: proceed regardless
				}
			}
			if !instr.Cond(s) {
				s.aborted = true
				return nil
			}
		case Compute:
			instr.Fn(s)
		default:
			return fmt.Errorf("attack: unknown instruction %T in %q", in, name)
		}
	}
	return nil
}
