package attack

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slmanager"
	"repro/internal/slremote"
)

// denyGate refuses everything — the state an attacker without a valid
// lease faces.
var denyGate = GateFunc(func(string) error { return errors.New("no lease") })

// allowGate authorizes everything — a licensed user.
var allowGate = GateFunc(func(string) error { return nil })

func run(t *testing.T, p *Program, gate Gate, tamper Tamper) Result {
	t.Helper()
	cpu, err := NewVCPU(p, gate, tamper)
	if err != nil {
		t.Fatalf("NewVCPU: %v", err)
	}
	res, err := cpu.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func reference(t *testing.T) []int64 {
	t.Helper()
	ref, err := ReferenceOutput(NoSGX)
	if err != nil {
		t.Fatalf("ReferenceOutput: %v", err)
	}
	return ref
}

func TestHonestRunWithValidLicense(t *testing.T) {
	ref := reference(t)
	if len(ref) == 0 {
		t.Fatal("empty reference output")
	}
	for _, level := range []Protection{NoSGX, AMOnlySGX, SecureLeaseSGX} {
		res := run(t, NewMySQLModel(level, true), allowGate, Tamper{})
		if !res.FullyFunctional(ref) {
			t.Fatalf("level %d: honest licensed run not functional: %+v", level, res)
		}
	}
}

func TestHonestRunWithInvalidLicenseAborts(t *testing.T) {
	for _, level := range []Protection{NoSGX, AMOnlySGX, SecureLeaseSGX} {
		res := run(t, NewMySQLModel(level, false), denyGate, Tamper{})
		if res.Completed {
			t.Fatalf("level %d: unlicensed run completed", level)
		}
		if len(res.Output) != 0 {
			t.Fatalf("level %d: unlicensed run produced output", level)
		}
	}
}

func TestCFBBranchFlipBreaksSoftwareAM(t *testing.T) {
	// Attack ① of Figure 6: no SGX, invalid license, flip the jne.
	ref := reference(t)
	tamper := Tamper{FlipBranches: map[string]bool{"auth_check": true}}
	res := run(t, NewMySQLModel(NoSGX, false), nil, tamper)
	if !res.FullyFunctional(ref) {
		t.Fatalf("CFB attack failed against software AM: %+v", res)
	}
}

func TestCFBStateForgeBreaksSoftwareAM(t *testing.T) {
	// Alternative: forge auth_res instead of flipping the branch.
	ref := reference(t)
	tamper := Tamper{ForgeVars: map[string]int64{"auth_res": 1}}
	res := run(t, NewMySQLModel(NoSGX, false), nil, tamper)
	if !res.FullyFunctional(ref) {
		t.Fatalf("state-forge attack failed against software AM: %+v", res)
	}
}

func TestCFBSkipAMBreaksSoftwareAM(t *testing.T) {
	// Skip the AM call entirely and forge its result.
	ref := reference(t)
	tamper := Tamper{
		SkipCalls: map[string]bool{"acl_authenticate": true},
		ForgeVars: map[string]int64{"auth_res": 1},
	}
	res := run(t, NewMySQLModel(NoSGX, false), nil, tamper)
	if !res.FullyFunctional(ref) {
		t.Fatalf("skip attack failed against software AM: %+v", res)
	}
}

func TestCFBBreaksAMOnlySGX(t *testing.T) {
	// Attack ② of Figure 6: the AM runs in SGX and honestly reports
	// failure, but its *result* is consumed outside — flip that branch.
	// AM-only SGX is insufficient, as Section 3 argues.
	ref := reference(t)
	tamper := Tamper{FlipBranches: map[string]bool{"auth_check": true}}
	res := run(t, NewMySQLModel(AMOnlySGX, false), denyGate, Tamper{})
	if res.Completed {
		t.Fatalf("control: unlicensed AM-only run completed without tampering")
	}
	// With only the AM gated, the attacker bends around the check. The AM
	// itself is denied (it is enclave+gated here), but nothing else needs
	// the enclave.
	res = run(t, NewMySQLModel(AMOnlySGX, false), denyGate, tamper)
	if !res.FullyFunctional(ref) {
		t.Fatalf("CFB attack failed against AM-only SGX: %+v", res)
	}
}

func TestSecureLeaseDefeatsCFB(t *testing.T) {
	// The paper's defense: parse_query is in the enclave and token-gated.
	// The attacker flips the auth branch, forges state, and skips at
	// will — but cannot obtain the parser's output without a lease.
	ref := reference(t)
	attacks := []Tamper{
		{FlipBranches: map[string]bool{"auth_check": true}},
		{ForgeVars: map[string]int64{"auth_res": 1}},
		{FlipBranches: map[string]bool{"auth_check": true},
			ForgeVars: map[string]int64{"auth_res": 1, "parse_tree": 0}},
		{SkipCalls: map[string]bool{"acl_authenticate": true, "parse_query": true},
			ForgeVars: map[string]int64{"auth_res": 1}},
	}
	for i, tamper := range attacks {
		res := run(t, NewMySQLModel(SecureLeaseSGX, false), denyGate, tamper)
		if res.FullyFunctional(ref) {
			t.Fatalf("attack %d obtained full functionality under SecureLease: %+v", i, res)
		}
		if res.EnclaveDenials == 0 && res.SkippedEnclave == 0 {
			t.Fatalf("attack %d: no enclave denial or skip recorded: %+v", i, res)
		}
	}
}

func TestAttackerCannotForgeParseTree(t *testing.T) {
	// Even forging a guessed parse_tree value does not match the real
	// pipeline output (the attacker does not know the enclave logic).
	ref := reference(t)
	tamper := Tamper{
		FlipBranches: map[string]bool{"auth_check": true},
		ForgeVars:    map[string]int64{"parse_tree": 12345},
	}
	res := run(t, NewMySQLModel(SecureLeaseSGX, false), denyGate, tamper)
	if res.FullyFunctional(ref) {
		t.Fatal("forged parse tree reproduced the protected output")
	}
}

func TestLicensedUserUnaffectedBySecureLease(t *testing.T) {
	// The defense must not break legitimate use.
	ref := reference(t)
	res := run(t, NewMySQLModel(SecureLeaseSGX, true), allowGate, Tamper{})
	if !res.FullyFunctional(ref) {
		t.Fatalf("licensed run under SecureLease broken: %+v", res)
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Entry: "missing", Functions: map[string]*Function{}}
	if _, err := NewVCPU(p, nil, Tamper{}); err == nil {
		t.Fatal("missing entry accepted")
	}
	p = &Program{
		Entry: "main",
		Functions: map[string]*Function{
			"main": {Name: "main", Body: []Instr{Call{Fn: "ghost"}}},
		},
	}
	if _, err := NewVCPU(p, nil, Tamper{}); err == nil {
		t.Fatal("dangling call accepted")
	}
	if _, err := NewVCPU(nil, nil, Tamper{}); err == nil {
		t.Fatal("nil program accepted")
	}
}

func TestRunawayGuard(t *testing.T) {
	p := &Program{
		Entry: "loop",
		Functions: map[string]*Function{
			"loop": {Name: "loop", Body: []Instr{Call{Fn: "loop"}}},
		},
	}
	cpu, err := NewVCPU(p, nil, Tamper{})
	if err != nil {
		t.Fatalf("NewVCPU: %v", err)
	}
	if _, err := cpu.Run(); !errors.Is(err, ErrRunaway) {
		t.Fatalf("infinite recursion: got %v", err)
	}
}

// TestEndToEndWithRealSLManager wires the attack model to the actual
// SecureLease stack: SL-Remote issues leases, SL-Local grants tokens, and
// the SL-Manager is the gate. The attacker without a license is
// handicapped; a licensed user runs fine.
func TestEndToEndWithRealSLManager(t *testing.T) {
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "victim", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("victim", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := remote.RegisterLicense("lic-mysql", lease.CountBased, 1000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	local, err := sllocal.New(sllocal.DefaultConfig(), sllocal.Deps{
		Machine: m, Platform: plat, Remote: remote,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := local.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	appEnclave, err := m.CreateEnclave("mysql-secure", []byte("mysql-secure"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	mgr, err := slmanager.New(appEnclave, local)
	if err != nil {
		t.Fatalf("slmanager.New: %v", err)
	}
	// The licensed deployment guards the enclave functions.
	mgr.Guard("acl_authenticate", "lic-mysql")
	mgr.Guard("parse_query", "lic-mysql")
	licensedGate := GateFunc(func(fn string) error { return mgr.Authorize("lic-mysql") })

	ref := reference(t)
	res := run(t, NewMySQLModel(SecureLeaseSGX, true), licensedGate, Tamper{})
	if !res.FullyFunctional(ref) {
		t.Fatalf("licensed end-to-end run broken: %+v", res)
	}

	// The attacker's machine has no license registered for them: model it
	// as a manager guarding an unknown license.
	mgr2, err := slmanager.New(appEnclave, local)
	if err != nil {
		t.Fatalf("slmanager.New: %v", err)
	}
	mgr2.Guard("parse_query", "lic-stolen")
	pirateGate := GateFunc(func(fn string) error { return mgr2.Authorize("lic-stolen") })
	tamper := Tamper{FlipBranches: map[string]bool{"auth_check": true}}
	res = run(t, NewMySQLModel(SecureLeaseSGX, false), pirateGate, tamper)
	if res.FullyFunctional(ref) {
		t.Fatal("pirate obtained full functionality against real SecureLease stack")
	}
	if res.EnclaveDenials == 0 {
		t.Fatalf("no enclave denials recorded: %+v", res)
	}
}

func TestAttackMatrixSummary(t *testing.T) {
	// The complete matrix the paper's security analysis implies. Software
	// AM and AM-only SGX fall to CFB; SecureLease does not.
	ref := reference(t)
	tamper := Tamper{
		FlipBranches: map[string]bool{"auth_check": true},
		ForgeVars:    map[string]int64{"auth_res": 1},
	}
	cases := []struct {
		level      Protection
		wantBroken bool
	}{
		{NoSGX, true},
		{AMOnlySGX, true},
		{SecureLeaseSGX, false},
	}
	for _, tc := range cases {
		res := run(t, NewMySQLModel(tc.level, false), denyGate, tamper)
		broken := res.FullyFunctional(ref)
		if broken != tc.wantBroken {
			t.Errorf("level %d: attack success = %v, want %v (result %+v)",
				tc.level, broken, tc.wantBroken, res)
		}
	}
}

func BenchmarkVCPURun(b *testing.B) {
	p := NewMySQLModel(SecureLeaseSGX, true)
	cpu, err := NewVCPU(p, allowGate, Tamper{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleNewMySQLModel() {
	ref, _ := ReferenceOutput(NoSGX)
	// A CFB attack against a software-only authentication module.
	cpu, _ := NewVCPU(NewMySQLModel(NoSGX, false), nil,
		Tamper{FlipBranches: map[string]bool{"auth_check": true}})
	res, _ := cpu.Run()
	fmt.Println("software AM broken:", res.FullyFunctional(ref))

	// The same attack against a SecureLease-partitioned binary.
	deny := GateFunc(func(string) error { return errors.New("no lease") })
	cpu, _ = NewVCPU(NewMySQLModel(SecureLeaseSGX, false), deny,
		Tamper{FlipBranches: map[string]bool{"auth_check": true}})
	res, _ = cpu.Run()
	fmt.Println("securelease broken:", res.FullyFunctional(ref))
	// Output:
	// software AM broken: true
	// securelease broken: false
}
