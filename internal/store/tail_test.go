package store

import (
	"bytes"
	"fmt"
	"testing"
)

func tailAppend(t *testing.T, s *Store, recs ...[]byte) {
	t.Helper()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestTailSinceFollowsAppends(t *testing.T) {
	s, rec, err := Open(Options{Dir: t.TempDir(), Mode: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if !rec.Empty() {
		t.Fatalf("fresh dir recovered state")
	}

	tailAppend(t, s, []byte("one"), []byte("two"))
	b, err := s.TailSince(0, 0, 0)
	if err != nil {
		t.Fatalf("TailSince: %v", err)
	}
	if b.Rebase || b.Gen != 0 {
		t.Fatalf("unexpected rebase: %+v", b)
	}
	if len(b.Records) != 2 || !bytes.Equal(b.Records[0], []byte("one")) || !bytes.Equal(b.Records[1], []byte("two")) {
		t.Fatalf("records = %q", b.Records)
	}

	// Caught up: same position returns nothing.
	b2, err := s.TailSince(b.Gen, b.NextOffset, 0)
	if err != nil {
		t.Fatalf("TailSince caught-up: %v", err)
	}
	if !b2.Caught() {
		t.Fatalf("expected caught-up batch, got %+v", b2)
	}

	// New appends show up from the saved position only.
	tailAppend(t, s, []byte("three"))
	b3, err := s.TailSince(b.Gen, b.NextOffset, 0)
	if err != nil {
		t.Fatalf("TailSince after append: %v", err)
	}
	if len(b3.Records) != 1 || !bytes.Equal(b3.Records[0], []byte("three")) {
		t.Fatalf("records = %q", b3.Records)
	}
}

func TestTailSinceRebasesAfterSnapshot(t *testing.T) {
	s, _, err := Open(Options{Dir: t.TempDir(), Mode: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	tailAppend(t, s, []byte("pre-snap"))
	if err := s.Snapshot([]byte("image-1")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	tailAppend(t, s, []byte("post-snap"))

	// A follower still at generation 0 must rebase onto the snapshot.
	b, err := s.TailSince(0, 11, 0)
	if err != nil {
		t.Fatalf("TailSince: %v", err)
	}
	if !b.Rebase || b.Gen != 1 {
		t.Fatalf("expected rebase to gen 1, got %+v", b)
	}
	if !bytes.Equal(b.Snapshot, []byte("image-1")) {
		t.Fatalf("snapshot = %q", b.Snapshot)
	}
	if len(b.Records) != 1 || !bytes.Equal(b.Records[0], []byte("post-snap")) {
		t.Fatalf("records = %q", b.Records)
	}

	// From the rebased position the follow continues incrementally.
	tailAppend(t, s, []byte("later"))
	b2, err := s.TailSince(b.Gen, b.NextOffset, 0)
	if err != nil {
		t.Fatalf("TailSince: %v", err)
	}
	if b2.Rebase || len(b2.Records) != 1 || !bytes.Equal(b2.Records[0], []byte("later")) {
		t.Fatalf("follow after rebase = %+v", b2)
	}
}

func TestTailSinceByteBound(t *testing.T) {
	s, _, err := Open(Options{Dir: t.TempDir(), Mode: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	var want [][]byte
	for i := 0; i < 8; i++ {
		r := bytes.Repeat([]byte{byte('a' + i)}, 100)
		want = append(want, r)
	}
	tailAppend(t, s, want...)

	// Pull with a bound smaller than one record: progress must still be
	// one whole record per batch, never zero.
	var got [][]byte
	gen, off := uint64(0), int64(0)
	for i := 0; i < 20 && len(got) < len(want); i++ {
		b, err := s.TailSince(gen, off, 64)
		if err != nil {
			t.Fatalf("TailSince: %v", err)
		}
		if len(b.Records) == 0 {
			t.Fatalf("bounded pull made no progress at offset %d", off)
		}
		got = append(got, b.Records...)
		gen, off = b.Gen, b.NextOffset
	}
	if len(got) != len(want) {
		t.Fatalf("pulled %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestTailSinceRejectsBadPositions(t *testing.T) {
	s, _, err := Open(Options{Dir: t.TempDir(), Mode: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	tailAppend(t, s, []byte("x"))

	if _, err := s.TailSince(7, 0, 0); err == nil {
		t.Fatalf("future generation accepted")
	}
	if _, err := s.TailSince(0, 1<<20, 0); err == nil {
		t.Fatalf("offset past durable tip accepted")
	}
}

func TestTailSinceServesOnlyDurableBytes(t *testing.T) {
	// Under SyncOff the durability floor is the buffered write, so the
	// tail serves everything; this test pins that the served extent always
	// equals the synced watermark rather than the file size.
	s, _, err := Open(Options{Dir: t.TempDir(), Mode: SyncOff})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		tailAppend(t, s, []byte(fmt.Sprintf("r%d", i)))
	}
	b, err := s.TailSince(0, 0, 0)
	if err != nil {
		t.Fatalf("TailSince: %v", err)
	}
	if len(b.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(b.Records))
	}
	s.mu.Lock()
	synced := s.synced
	s.mu.Unlock()
	if b.NextOffset != synced {
		t.Fatalf("NextOffset %d != synced %d", b.NextOffset, synced)
	}
}
