package store

import (
	"time"

	"repro/internal/obs"
)

// Metrics holds the store's active instruments. All methods are nil-safe:
// an un-instrumented store carries a nil *Metrics and pays nothing.
type Metrics struct {
	walAppends      *obs.Counter
	walBytes        *obs.Counter
	fsyncLatency    *obs.Histogram
	snapshots       *obs.Counter
	snapshotBytes   *obs.Gauge
	recoverySeconds *obs.Gauge
	replayedRecords *obs.Counter
}

// ExposeMetrics registers the store metric family with an obs registry and
// returns the handle to pass in Options.Metrics.
//
// Metric inventory:
//
//	store_wal_appends_total        WAL records appended
//	store_wal_bytes_total          framed bytes written to the WAL
//	store_fsync_latency_seconds    fsync latency (histogram)
//	store_snapshots_total          snapshots taken
//	store_snapshot_bytes           size of the newest snapshot frame
//	store_recovery_seconds         duration of the last Open-time recovery
//	store_replayed_records_total   WAL records replayed during recovery
func ExposeMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		walAppends: reg.Counter("store_wal_appends_total",
			"WAL records appended."),
		walBytes: reg.Counter("store_wal_bytes_total",
			"Framed bytes written to the WAL."),
		fsyncLatency: reg.Histogram("store_fsync_latency_seconds",
			"WAL fsync latency.", nil),
		snapshots: reg.Counter("store_snapshots_total",
			"State snapshots taken."),
		snapshotBytes: reg.Gauge("store_snapshot_bytes",
			"Size of the newest snapshot frame in bytes."),
		recoverySeconds: reg.Gauge("store_recovery_seconds",
			"Duration of the last recovery (snapshot load + WAL replay)."),
		replayedRecords: reg.Counter("store_replayed_records_total",
			"WAL records replayed during recovery."),
	}
}

func (m *Metrics) observeAppend(frameBytes int) {
	if m == nil {
		return
	}
	m.walAppends.Inc()
	m.walBytes.Add(int64(frameBytes))
}

func (m *Metrics) observeFsync(d time.Duration) {
	if m == nil {
		return
	}
	m.fsyncLatency.Observe(d.Seconds())
}

func (m *Metrics) observeSnapshot(frameBytes int) {
	if m == nil {
		return
	}
	m.snapshots.Inc()
	m.snapshotBytes.Set(float64(frameBytes))
}

func (m *Metrics) observeRecovery(d time.Duration, records int) {
	if m == nil {
		return
	}
	m.recoverySeconds.Set(d.Seconds())
	m.replayedRecords.Add(int64(records))
}
