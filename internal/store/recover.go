package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// File layout inside a state directory: one snapshot and one WAL per
// generation. Generation g's snapshot holds the full state at the moment
// it was taken; wal-g holds every record appended since. Generation 0 has
// no snapshot (empty initial state). Snapshots are published by atomic
// rename, so a *.tmp leftover is always garbage.
func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", gen))
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", gen))
}

// parseGenFile recognizes the store's file names, returning the generation
// and kind ("wal" or "snap").
func parseGenFile(name string) (gen uint64, kind string, ok bool) {
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		kind = "wal"
		name = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
		kind = "snap"
		name = strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	default:
		return 0, "", false
	}
	gen, err := strconv.ParseUint(name, 16, 64)
	if err != nil {
		return 0, "", false
	}
	return gen, kind, true
}

// Recovered is what Recover reads back from a state directory.
type Recovered struct {
	// Generation is the newest durable generation found.
	Generation uint64
	// Snapshot is generation's full state image, nil when the directory
	// has no snapshot yet (first boot, or nothing was ever compacted).
	Snapshot []byte
	// Records are the WAL records appended after the snapshot, oldest
	// first.
	Records [][]byte
	// TruncatedBytes counts torn-tail bytes dropped from the end of the
	// WAL (a crash mid-append); zero when the log ended cleanly.
	TruncatedBytes int64

	walSize int64 // WAL file size as read, for Open's physical truncation
}

// Empty reports whether nothing was recovered (fresh directory).
func (r *Recovered) Empty() bool {
	return r.Snapshot == nil && len(r.Records) == 0
}

// Recover reads a state directory without mutating it: it locates the
// newest snapshot generation, validates the snapshot's frame, and decodes
// the WAL appended after it. A torn final WAL record is dropped (reported
// in TruncatedBytes, physically removed later by Open); a corrupt interior
// record or a corrupt snapshot aborts with a diagnostic error so data loss
// is never silent. An absent or empty directory recovers to the empty
// state.
func Recover(dir string) (*Recovered, error) {
	return RecoverFS(OSFS(), dir)
}

// RecoverFS is Recover reading through an explicit filesystem, so a
// fault-injection harness can recover from the same (possibly torn) files
// it crashed.
func RecoverFS(fsys FS, dir string) (*Recovered, error) {
	entries, err := fsys.ReadDir(dir)
	if os.IsNotExist(err) {
		return &Recovered{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}

	var gen uint64
	var haveSnap bool
	for _, e := range entries {
		g, kind, ok := parseGenFile(e.Name())
		if !ok {
			continue
		}
		if kind == "snap" && (!haveSnap || g > gen) {
			gen, haveSnap = g, true
		}
	}
	rec := &Recovered{}
	if haveSnap {
		rec.Generation = gen
		raw, err := fsys.ReadFile(snapPath(dir, gen))
		if err != nil {
			return nil, fmt.Errorf("store: reading snapshot %d: %w", gen, err)
		}
		img, n, err := decodeRecord(raw)
		if err != nil || n != len(raw) {
			if err == nil {
				err = fmt.Errorf("%w: %d trailing bytes", ErrCorruptRecord, len(raw)-n)
			}
			return nil, fmt.Errorf("store: snapshot generation %d: %w", gen, err)
		}
		rec.Snapshot = append([]byte(nil), img...)
	}

	wal, err := fsys.ReadFile(walPath(dir, rec.Generation))
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading WAL %d: %w", rec.Generation, err)
	}
	rec.walSize = int64(len(wal))
	records, truncated, err := decodeAll(wal)
	if err != nil {
		return nil, fmt.Errorf("store: WAL generation %d: %w", rec.Generation, err)
	}
	rec.TruncatedBytes = int64(truncated)
	rec.Records = make([][]byte, len(records))
	for i, r := range records {
		rec.Records[i] = append([]byte(nil), r...)
	}
	return rec, nil
}
