package store

import (
	"errors"
	"fmt"
	"os"
)

// TailBatch is one chunk of a generation-aware WAL follow: the records a
// replica has not applied yet, plus — when the replica's position is from
// a generation that has since been compacted away — the snapshot image it
// must rebase onto first.
type TailBatch struct {
	// Gen is the generation Records belong to. When it differs from the
	// position the caller asked about, Rebase is set.
	Gen uint64
	// Rebase reports that the caller's generation is gone (a snapshot
	// superseded it). Snapshot then holds generation Gen's full state
	// image (nil only when Gen is 0, whose base state is empty), and
	// Records restart from the head of Gen's WAL.
	Rebase bool
	// Snapshot is the (caller-sealed) state image that bases Gen. Only
	// set alongside Rebase.
	Snapshot []byte
	// Records are decoded WAL records starting at the requested offset
	// (or the head of the WAL on a rebase), oldest first. Empty when the
	// caller is caught up.
	Records [][]byte
	// NextOffset is the byte offset in Gen's WAL just past the last
	// returned record — the position to ask for next.
	NextOffset int64
	// Tip is the durable extent of Gen's WAL at serve time; Tip−NextOffset
	// is the follower's replication lag in bytes.
	Tip int64
}

// Caught reports whether the batch carries nothing new: the follower is at
// the durable tip of the leader's log.
func (b *TailBatch) Caught() bool { return !b.Rebase && len(b.Records) == 0 }

// TailSince returns the durable WAL records after position (gen, offset),
// bounded to roughly maxBytes of payload (0 means no bound; at least one
// record is always returned when one is available). Only bytes covered by
// an fsync (or buffered, under SyncOff — that mode's durability floor) are
// served, so a follower can never apply a record the leader might lose in
// a crash, which would un-create lease units the leader still remembers.
//
// If gen has been compacted away by a snapshot the batch rebases: it
// carries the current generation's snapshot image and records from that
// WAL's head. Positions beyond the durable tip of the current generation
// are an error — the follower's book-keeping is broken, not just stale.
func (s *Store) TailSince(gen uint64, offset int64, maxBytes int) (TailBatch, error) {
	// A snapshot can retire the generation between the position check and
	// the file reads; retry the whole look-up instead of failing a pull
	// the follower would immediately repeat.
	for attempt := 0; ; attempt++ {
		b, retry, err := s.tailOnce(gen, offset, maxBytes)
		if retry && attempt < 3 {
			continue
		}
		return b, err
	}
}

func (s *Store) tailOnce(gen uint64, offset int64, maxBytes int) (TailBatch, bool, error) {
	s.mu.Lock()
	curGen, synced := s.gen, s.synced
	closed, wedged := s.closed, s.wedged
	s.mu.Unlock()
	if closed {
		return TailBatch{}, false, ErrClosed
	}
	if wedged != nil {
		return TailBatch{}, false, wedged
	}
	if gen > curGen {
		return TailBatch{}, false, fmt.Errorf("store: tail position at future generation %d (current %d)", gen, curGen)
	}

	batch := TailBatch{Gen: curGen, NextOffset: offset}
	if gen < curGen {
		// The follower's generation was compacted away; rebase it onto the
		// current generation's snapshot and restart from the WAL head.
		batch.Rebase = true
		batch.NextOffset = 0
		if curGen > 0 {
			raw, err := s.fsys.ReadFile(s.snapPath(curGen))
			if os.IsNotExist(err) {
				// Another snapshot just retired curGen too.
				return TailBatch{}, true, err
			}
			if err != nil {
				return TailBatch{}, false, fmt.Errorf("store: reading snapshot %d: %w", curGen, err)
			}
			img, n, err := decodeRecord(raw)
			if err != nil || n != len(raw) {
				if err == nil {
					err = fmt.Errorf("%w: %d trailing bytes", ErrCorruptRecord, len(raw)-n)
				}
				return TailBatch{}, false, fmt.Errorf("store: snapshot generation %d: %w", curGen, err)
			}
			batch.Snapshot = append([]byte(nil), img...)
		}
		// Records restart from the head; the synced extent read above may
		// belong to the old generation, so reread it for curGen.
		s.mu.Lock()
		if s.gen != curGen {
			s.mu.Unlock()
			return TailBatch{}, true, errors.New("store: generation moved during tail")
		}
		synced = s.synced
		s.mu.Unlock()
	} else if offset > synced {
		return TailBatch{}, false, fmt.Errorf("store: tail offset %d beyond durable tip %d of generation %d", offset, synced, gen)
	}
	batch.Tip = synced

	limit := synced - batch.NextOffset
	if limit <= 0 {
		return batch, false, nil
	}
	raw, err := s.fsys.ReadFileFrom(s.walPath(curGen), batch.NextOffset)
	if os.IsNotExist(err) {
		// The WAL was retired by a snapshot between the position check and
		// the read.
		return TailBatch{}, true, err
	}
	if err != nil {
		return TailBatch{}, false, fmt.Errorf("store: reading WAL %d: %w", curGen, err)
	}
	if int64(len(raw)) > limit {
		// Bytes past the durable extent may be a torn or in-flight append.
		raw = raw[:limit]
	}
	if maxBytes > 0 && len(raw) > maxBytes {
		raw = raw[:maxBytes]
	}
	records, dangling, err := decodeAll(raw)
	if err != nil {
		return TailBatch{}, false, fmt.Errorf("store: WAL generation %d at offset %d: %w", curGen, batch.NextOffset, err)
	}
	if len(records) == 0 && dangling > 0 && maxBytes > 0 && int64(len(raw)) < limit {
		// The byte bound cut inside the first record; grow past it so the
		// pull always makes progress.
		return s.tailWhole(batch, curGen, limit)
	}
	batch.Records = make([][]byte, len(records))
	for i, r := range records {
		batch.Records[i] = append([]byte(nil), r...)
	}
	batch.NextOffset += int64(len(raw) - dangling)
	return batch, false, nil
}

// tailWhole rereads with the byte bound lifted just far enough to cover at
// least the first record after the batch's position.
func (s *Store) tailWhole(batch TailBatch, gen uint64, limit int64) (TailBatch, bool, error) {
	raw, err := s.fsys.ReadFileFrom(s.walPath(gen), batch.NextOffset)
	if err != nil {
		return TailBatch{}, os.IsNotExist(err), fmt.Errorf("store: reading WAL %d: %w", gen, err)
	}
	if int64(len(raw)) > limit {
		raw = raw[:limit]
	}
	rec, n, err := decodeRecord(raw)
	if err != nil {
		return TailBatch{}, false, fmt.Errorf("store: WAL generation %d at offset %d: %w", gen, batch.NextOffset, err)
	}
	batch.Records = [][]byte{append([]byte(nil), rec...)}
	batch.NextOffset += int64(n)
	return batch, false, nil
}
