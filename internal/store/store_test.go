package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"
)

func openT(t testing.TB, dir string, mode SyncMode) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := Open(Options{Dir: dir, Mode: mode})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func appendAll(t testing.TB, s *Store, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := s.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
}

func recordsAsStrings(rec *Recovered) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r)
	}
	return out
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncBatched, SyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, rec := openT(t, dir, mode)
			if !rec.Empty() {
				t.Fatalf("fresh dir recovered non-empty state: %+v", rec)
			}
			appendAll(t, s, "one", "two", "three")
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			s2, rec2 := openT(t, dir, mode)
			defer s2.Close()
			if got, want := recordsAsStrings(rec2), []string{"one", "two", "three"}; !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered %v, want %v", got, want)
			}
			if rec2.Snapshot != nil {
				t.Fatalf("unexpected snapshot: %q", rec2.Snapshot)
			}
			// Appends keep working against the recovered log.
			appendAll(t, s2, "four")
		})
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, _ := openT(t, t.TempDir(), SyncOff)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestEmptyRecordRejected(t *testing.T) {
	s, _ := openT(t, t.TempDir(), SyncOff)
	defer s.Close()
	if err := s.Append(nil); err == nil {
		t.Fatal("empty append accepted")
	}
}

// TestBatchedGroupCommit drives concurrent appenders through the batched
// fsync path: every append must come back durable and recovery must see
// all of them exactly once.
func TestBatchedGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncBatched)
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Append(fmt.Appendf(nil, "w%d-%d", w, i)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openT(t, dir, SyncBatched)
	if got, want := len(rec.Records), writers*perWriter; got != want {
		t.Fatalf("recovered %d records, want %d", got, want)
	}
	seen := make(map[string]bool, len(rec.Records))
	for _, r := range rec.Records {
		if seen[string(r)] {
			t.Fatalf("duplicate record %q", r)
		}
		seen[string(r)] = true
	}
}

// TestTornTailTruncated simulates a kill mid-append: a partial frame at
// the end of the WAL is dropped on recovery (and physically truncated by
// Open), with every complete record preserved.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncAlways)
	appendAll(t, s, "alpha", "beta")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A torn write: the first 5 bytes of what would have been a full frame.
	full := appendRecord(nil, []byte("gamma-never-committed"))
	wal := walPath(dir, 0)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.Write(full[:5]); err != nil {
		t.Fatalf("torn write: %v", err)
	}
	f.Close()

	s2, rec := openT(t, dir, SyncAlways)
	if got, want := recordsAsStrings(rec), []string{"alpha", "beta"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if rec.TruncatedBytes != 5 {
		t.Fatalf("TruncatedBytes = %d, want 5", rec.TruncatedBytes)
	}
	// Open physically truncated the tail: appending and re-recovering
	// yields a clean log.
	appendAll(t, s2, "gamma")
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec2 := openT(t, dir, SyncAlways)
	if got, want := recordsAsStrings(rec2), []string{"alpha", "beta", "gamma"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after torn repair recovered %v, want %v", got, want)
	}
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("TruncatedBytes after repair = %d", rec2.TruncatedBytes)
	}
}

// TestZeroFilledTailTruncated covers the preallocation case: a run of NUL
// bytes after the last record is a torn tail, not an endless stream of
// empty records.
func TestZeroFilledTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncAlways)
	appendAll(t, s, "alpha")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := os.OpenFile(walPath(dir, 0), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatalf("zero fill: %v", err)
	}
	f.Close()
	_, rec := openT(t, dir, SyncAlways)
	if got, want := recordsAsStrings(rec), []string{"alpha"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if rec.TruncatedBytes != 64 {
		t.Fatalf("TruncatedBytes = %d, want 64", rec.TruncatedBytes)
	}
}

// TestMiddleCorruptionIsAnError flips one payload byte of an interior
// record: recovery must stop with a diagnostic error, never silently drop
// or skip committed data.
func TestMiddleCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncAlways)
	appendAll(t, s, "first", "second", "third")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wal := walPath(dir, 0)
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Corrupt a payload byte of the middle record ("second"): frame 1
	// starts after frame 0 (header + "first").
	off := frameHeaderSize + len("first") + frameHeaderSize
	raw[off] ^= 0xff
	if err := os.WriteFile(wal, raw, 0o600); err != nil {
		t.Fatalf("write wal: %v", err)
	}
	_, err = Recover(dir)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Recover on corrupt middle record = %v, want ErrCorruptRecord", err)
	}
	if _, _, oerr := Open(Options{Dir: dir}); !errors.Is(oerr, ErrCorruptRecord) {
		t.Fatalf("Open on corrupt middle record = %v, want ErrCorruptRecord", oerr)
	}
}

// TestSnapshotCompaction takes a snapshot mid-stream and verifies the
// recovered view is snapshot + tail only, with the previous generation's
// files gone.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncAlways)
	appendAll(t, s, "pre-1", "pre-2")
	if err := s.Snapshot([]byte("STATE@2")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendAll(t, s, "post-1")
	if got := s.Generation(); got != 1 {
		t.Fatalf("Generation = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec := openT(t, dir, SyncAlways)
	if string(rec.Snapshot) != "STATE@2" {
		t.Fatalf("Snapshot = %q", rec.Snapshot)
	}
	if got, want := recordsAsStrings(rec), []string{"post-1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("tail records %v, want %v", got, want)
	}
	if rec.Generation != 1 {
		t.Fatalf("Generation = %d, want 1", rec.Generation)
	}
	for _, stale := range []string{walPath(dir, 0), snapPath(dir, 0)} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Fatalf("stale file %s survived compaction (err=%v)", stale, err)
		}
	}
}

// TestStaleGenerationCleanedOnOpen plants leftovers from an interrupted
// compaction (old generation files plus a snapshot temp file) and checks
// recovery ignores them and Open sweeps the old generation.
func TestStaleGenerationCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncAlways)
	appendAll(t, s, "old")
	if err := s.Snapshot([]byte("IMG")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendAll(t, s, "new")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Resurrect generation-0 leftovers and a dangling temp file.
	if err := os.WriteFile(walPath(dir, 0), appendRecord(nil, []byte("zombie")), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath(dir, 2)+".tmp", []byte("partial"), 0o600); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir, SyncAlways)
	defer s2.Close()
	if string(rec.Snapshot) != "IMG" || len(rec.Records) != 1 || string(rec.Records[0]) != "new" {
		t.Fatalf("recovered snapshot=%q records=%v", rec.Snapshot, recordsAsStrings(rec))
	}
	if _, err := os.Stat(walPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("stale generation-0 WAL not swept (err=%v)", err)
	}
}

// TestSnapshotWALReplayEquivalence checks the core durability contract at
// the byte level: folding the recovered snapshot+records must equal
// folding the original append stream, whether or not snapshots intervene.
func TestSnapshotWALReplayEquivalence(t *testing.T) {
	fold := func(snapshot []byte, recs [][]byte) []byte {
		out := append([]byte(nil), snapshot...)
		for _, r := range recs {
			out = append(out, r...)
			out = append(out, '|')
		}
		return out
	}
	var want []byte
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncBatched)
	for i := 0; i < 40; i++ {
		rec := fmt.Appendf(nil, "event-%02d", i)
		if err := s.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
		want = append(want, rec...)
		want = append(want, '|')
		if i%17 == 16 {
			if err := s.Snapshot(want); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := fold(rec.Snapshot, rec.Records); !bytes.Equal(got, want) {
		t.Fatalf("folded recovery mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncAlways)
	appendAll(t, s, "x")
	if err := s.Snapshot([]byte("IMG")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := snapPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Recover with corrupt snapshot = %v, want ErrCorruptRecord", err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"always": SyncAlways, "batched": SyncBatched, "off": SyncOff} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestParseGenFile(t *testing.T) {
	cases := []struct {
		name string
		gen  uint64
		kind string
		ok   bool
	}{
		{"wal-0000000000000000.log", 0, "wal", true},
		{"snap-000000000000002a.snap", 42, "snap", true},
		{"snap-000000000000002a.snap.tmp", 0, "", false},
		{"notes.txt", 0, "", false},
		{"wal-xyz.log", 0, "", false},
	}
	for _, c := range cases {
		gen, kind, ok := parseGenFile(c.name)
		if gen != c.gen || kind != c.kind || ok != c.ok {
			t.Fatalf("parseGenFile(%q) = %d, %q, %v; want %d, %q, %v",
				c.name, gen, kind, ok, c.gen, c.kind, c.ok)
		}
	}
}

// FuzzWALRecord fuzzes the frame decoder: arbitrary bytes must never
// panic, every accepted frame must re-encode to the same bytes, and every
// encoded payload must decode back to itself.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, []byte("seed-record")))
	f.Add(appendRecord(appendRecord(nil, []byte("a")), []byte("b")))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := decodeRecord(data)
		if err == nil {
			if n < frameHeaderSize || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			if got := appendRecord(nil, payload); !bytes.Equal(got, data[:n]) {
				t.Fatalf("re-encode mismatch: %x vs %x", got, data[:n])
			}
		}
		// Round trip: any payload (including this fuzz input) survives
		// encode → decode.
		frame := appendRecord(nil, data)
		back, n2, err2 := decodeRecord(frame)
		if err2 != nil || n2 != len(frame) || !bytes.Equal(back, data) {
			t.Fatalf("round trip failed: err=%v n=%d", err2, n2)
		}
		// decodeAll must not lose committed data silently either.
		if recs, truncated, derr := decodeAll(data); derr == nil {
			consumed := truncated
			for _, r := range recs {
				consumed += frameHeaderSize + len(r)
			}
			if consumed != len(data) {
				t.Fatalf("decodeAll accounted for %d of %d bytes", consumed, len(data))
			}
		}
	})
}

// BenchmarkRecover measures cold recovery of a 10k-record WAL — the
// acceptance bar is well under a second per recovery.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(Options{Dir: dir, Mode: SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 120) // typical JSON event size
	for i := 0; i < 10_000; i++ {
		if err := s.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Records) != 10_000 {
			b.Fatalf("recovered %d records", len(rec.Records))
		}
	}
}

// BenchmarkAppend measures the WAL append hot path — the cost every
// SL-Remote mutation pays — without fsync so the framing and FS
// indirection dominate rather than the disk.
func BenchmarkAppend(b *testing.B) {
	s, _, err := Open(Options{Dir: b.TempDir(), Mode: SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := bytes.Repeat([]byte("x"), 120)
	b.SetBytes(int64(frameHeaderSize + len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRecoverTenThousandUnderASecond pins the acceptance criterion as a
// test (generously: the benchmark shows recovery is ~3 orders of magnitude
// faster than the bound).
func TestRecoverTenThousandUnderASecond(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, SyncOff)
	payload := bytes.Repeat([]byte("y"), 120)
	for i := 0; i < 10_000; i++ {
		if err := s.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("recovery of %d records took %v (> 1s)", len(rec.Records), elapsed)
	}
	if len(rec.Records) != 10_000 {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
}
