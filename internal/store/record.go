package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout: a 4-byte big-endian payload length, a 4-byte big-endian
// CRC32C of the payload, then the payload itself. The CRC is computed with
// the Castagnoli polynomial (the same framing discipline as etcd's WAL and
// RocksDB's log), which modern CPUs check in hardware.
const (
	frameHeaderSize = 8
	// MaxRecordSize bounds one WAL record (and one snapshot image). A
	// length field above this is treated as corruption, not an allocation
	// request — it is the store's defense against interpreting garbage
	// bytes as a multi-gigabyte record.
	MaxRecordSize = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Framing errors. errShortFrame means the buffer ends before the frame
// does — at the tail of a WAL that is a torn write and is truncated;
// anywhere else it is corruption. ErrCorruptRecord means the frame is
// structurally complete but lies (bad CRC or impossible length).
var (
	errShortFrame = errors.New("store: short frame")
	// ErrCorruptRecord reports a record whose CRC or length check failed.
	ErrCorruptRecord = errors.New("store: corrupt record")
)

// appendRecord appends the framed encoding of payload to dst.
func appendRecord(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeRecord decodes one frame from the front of b, returning the payload
// and the total bytes consumed. It returns errShortFrame when b holds only
// a prefix of a frame and ErrCorruptRecord when the frame is complete but
// fails its length or CRC check. The returned payload aliases b.
func decodeRecord(b []byte) (payload []byte, consumed int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, errShortFrame
	}
	size := binary.BigEndian.Uint32(b[0:4])
	if size > MaxRecordSize {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds %d", ErrCorruptRecord, size, MaxRecordSize)
	}
	total := frameHeaderSize + int(size)
	if len(b) < total {
		return nil, 0, errShortFrame
	}
	payload = b[frameHeaderSize:total]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(b[4:8]); got != want {
		return nil, 0, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorruptRecord, want, got)
	}
	return payload, total, nil
}

// decodeAll decodes every frame in b. A short frame — one whose announced
// extent runs past the end of the buffer — can only be the unfinished last
// append of a crashed writer, so decoding stops there and the dangling byte
// count is returned in truncated. A CRC or length failure on a complete
// frame is real corruption at any position and yields an error naming the
// byte offset, so data loss is never silent.
func decodeAll(b []byte) (records [][]byte, truncated int, err error) {
	off := 0
	for off < len(b) {
		payload, n, derr := decodeRecord(b[off:])
		if derr == nil {
			if len(payload) == 0 {
				// An all-zero header decodes as a zero-length frame with a
				// zero CRC (CRC32C of "" is 0). Writers never append empty
				// records, so this is a zero-filled tail — e.g. filesystem
				// preallocation surviving a crash — and is truncated like
				// any other torn write.
				return records, len(b) - off, nil
			}
			records = append(records, payload)
			off += n
			continue
		}
		if errors.Is(derr, errShortFrame) {
			return records, len(b) - off, nil
		}
		return records, 0, fmt.Errorf("store: record %d at byte offset %d: %w", len(records), off, derr)
	}
	return records, 0, nil
}
