package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendFileRoundTrip(t *testing.T) {
	// A nested path exercises parent-directory creation.
	path := filepath.Join(t.TempDir(), "sub", "log")
	f, recovered, err := OpenAppendFile(path)
	if err != nil {
		t.Fatalf("OpenAppendFile: %v", err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh file recovered %d records", len(recovered))
	}
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, r := range want {
		if err := f.Append(r); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
	if f.Path() != path {
		t.Fatalf("Path() = %q", f.Path())
	}

	// A read-only walk sees the records while the writer is still open.
	live, err := ReadAppendFile(path)
	if err != nil {
		t.Fatalf("ReadAppendFile: %v", err)
	}
	if len(live) != len(want) {
		t.Fatalf("live read = %d records, want %d", len(live), len(want))
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Append([]byte("late")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}

	f2, recovered, err := OpenAppendFile(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f2.Close()
	if len(recovered) != len(want) {
		t.Fatalf("reopen recovered %d records, want %d", len(recovered), len(want))
	}
	for i := range want {
		if !bytes.Equal(recovered[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, recovered[i], want[i])
		}
	}
}

func TestAppendFileRejectsEmptyRecord(t *testing.T) {
	f, _, err := OpenAppendFile(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}

func TestAppendFileTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	f, _, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a frame header promising more bytes
	// than were written.
	torn := append(append([]byte(nil), intact...), 0, 0, 0, 9, 0xAB, 0xCD)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	f2, recovered, err := OpenAppendFile(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if len(recovered) != 1 || string(recovered[0]) != "keep" {
		t.Fatalf("recovered %q, want just \"keep\"", recovered)
	}
	// The tail was physically removed, so appends resume on a clean edge.
	if err := f2.Append([]byte("next")); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recovered, err = OpenAppendFile(path)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	if len(recovered) != 2 || string(recovered[1]) != "next" {
		t.Fatalf("after torn-tail repair: %q", recovered)
	}
}

func TestAppendFileInteriorCorruptionFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	f, _, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"first", "second", "third"} {
		if err := f.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the first record: corruption before the
	// tail must be an error, not a silent truncation.
	raw[frameHeaderSize] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenAppendFile(path); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("open with interior corruption = %v, want ErrCorruptRecord", err)
	}
	if _, err := ReadAppendFile(path); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("read with interior corruption = %v, want ErrCorruptRecord", err)
	}
}
