package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// AppendFile is a standalone append-only record file using the store's
// frame discipline (4-byte length + CRC32C + payload) without the WAL's
// snapshot/generation machinery. It backs logs that must never be
// compacted — the audit package's hash chain is the client — where every
// append is fsynced and recovery applies the same torn-tail rule as the
// WAL: a short or zero-filled final frame is truncated, interior
// corruption fails loudly with ErrCorruptRecord.
type AppendFile struct {
	mu     sync.Mutex
	f      File
	path   string
	size   int64 // bytes known durable: every frame written and fsynced
	wedged error // sticky failure after an unrecoverable rollback
}

// OpenAppendFile opens (creating if absent) the record file at path and
// returns the intact records already in it, oldest first. A torn final
// frame is physically truncated away before appending resumes; corruption
// before the tail is returned as an error and the file is left untouched.
// The returned payload slices do not alias the file.
func OpenAppendFile(path string) (*AppendFile, [][]byte, error) {
	return OpenAppendFileFS(OSFS(), path)
}

// OpenAppendFileFS is OpenAppendFile through an explicit filesystem (see FS).
func OpenAppendFileFS(fsys FS, path string) (*AppendFile, [][]byte, error) {
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s parent: %w", path, err)
	}
	buf, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	records, truncated, err := decodeAll(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %s: %w", path, err)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	valid := int64(len(buf) - truncated)
	if truncated > 0 {
		if err := f.Truncate(valid); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: syncing %s after truncate: %w", path, err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("store: seeking %s: %w", path, err)
	}
	out := make([][]byte, len(records))
	for i, r := range records {
		out[i] = append([]byte(nil), r...)
	}
	return &AppendFile{f: f, path: path, size: valid}, out, nil
}

// Append frames, writes, and fsyncs one record. A failed write or fsync is
// rolled back to the last durable frame: clients of AppendFile (the audit
// chain) treat appends as best-effort and keep going, so a partial frame
// left in place would corrupt the interior of the file for every append
// after it.
func (a *AppendFile) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("store: empty record")
	}
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("store: record of %d bytes exceeds %d", len(payload), MaxRecordSize)
	}
	frame := appendRecord(nil, payload)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return fmt.Errorf("store: %s: append after close", a.path)
	}
	if a.wedged != nil {
		return a.wedged
	}
	if _, err := a.f.Write(frame); err != nil {
		a.rollbackLocked(err)
		return fmt.Errorf("store: appending to %s: %w", a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		a.rollbackLocked(err)
		return fmt.Errorf("store: syncing %s: %w", a.path, err)
	}
	a.size += int64(len(frame))
	return nil
}

// rollbackLocked cuts the file back to the last durable frame and
// repositions the offset; if that fails the file wedges rather than risk
// interleaving new frames after a partial one.
func (a *AppendFile) rollbackLocked(cause error) {
	if err := a.f.Truncate(a.size); err != nil {
		a.wedged = fmt.Errorf("store: %s: rollback after %v failed: %w", a.path, cause, err)
		return
	}
	if _, err := a.f.Seek(a.size, 0); err != nil {
		a.wedged = fmt.Errorf("store: %s: rollback after %v failed: %w", a.path, cause, err)
	}
}

// Path returns the file's path.
func (a *AppendFile) Path() string { return a.path }

// Close closes the file; further Appends fail.
func (a *AppendFile) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}

// ReadAppendFile reads every intact record currently in the file at path
// (a torn tail is tolerated but not truncated — the file is opened
// read-only, so a live writer is unaffected). Used by audit.Verify to
// re-walk a chain that is still being written.
func ReadAppendFile(path string) ([][]byte, error) {
	return ReadAppendFileFS(OSFS(), path)
}

// ReadAppendFileFS is ReadAppendFile through an explicit filesystem (see FS).
func ReadAppendFileFS(fsys FS, path string) ([][]byte, error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	records, _, err := decodeAll(buf)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	out := make([][]byte, len(records))
	for i, r := range records {
		out[i] = append([]byte(nil), r...)
	}
	return out, nil
}
