package store

import (
	"io"
	"io/fs"
	"os"
)

// FS is the slice of filesystem behavior the store depends on. The default
// implementation (OSFS) forwards straight to the os package; fault-injection
// harnesses (internal/chaos) substitute an implementation that can tear
// writes, fail fsyncs, or crash-stop at a chosen operation. The interface is
// deliberately minimal — exactly the calls the WAL, snapshot, and append-file
// machinery make, nothing speculative.
type FS interface {
	// MkdirAll creates a directory tree like os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// OpenFile opens a file like os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile reads a whole file like os.ReadFile. Absent files must
	// return an error satisfying os.IsNotExist.
	ReadFile(name string) ([]byte, error)
	// ReadFileFrom reads a file's contents starting at byte offset off.
	// Reading at or past the end returns an empty slice and no error; an
	// absent file returns an error satisfying os.IsNotExist. The WAL
	// tail-follower uses this so each replication pull reads only the
	// suffix it has not shipped yet instead of rereading the whole log.
	ReadFileFrom(name string, off int64) ([]byte, error)
	// ReadDir lists a directory like os.ReadDir. An absent directory must
	// return an error satisfying os.IsNotExist.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Rename atomically renames like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes one file like os.Remove.
	Remove(name string) error
	// SyncDir fsyncs a directory so a just-renamed file survives a crash.
	SyncDir(dir string) error
}

// File is the store's view of an open file: sequential appends plus the
// truncate/seek pair recovery and rollback need.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

var theOSFS FS = osFS{}

// OSFS returns the real-filesystem implementation of FS. It is stateless;
// the same value is returned every call.
func OSFS() FS { return theOSFS }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a typed nil-free interface value only on success so
		// `if f != nil` stays meaningful for callers.
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadFileFrom(name string, off int64) ([]byte, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
