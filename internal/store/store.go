// Package store is SL-Remote's durability subsystem: an append-only
// write-ahead log plus periodic snapshots, built on stdlib only.
//
// SL-Remote is the root of trust of the whole SecureLease scheme — it
// holds the per-license GCL budgets, the SLID registry, and the escrowed
// lease-tree root keys that defeat stale-tree replay (Sections 4.4, 5.1,
// 5.7 of the paper) — so its state must survive a server restart with the
// same integrity discipline the in-enclave lease tree gets from
// Protect/Validate. The store provides:
//
//   - a WAL of length-prefixed, CRC32C-framed records with three fsync
//     disciplines (per-append, group-commit batching with a small window,
//     or none);
//   - generation-numbered snapshot files holding a full (sealed, by the
//     caller) state image, after which the previous generation's WAL and
//     snapshot are compacted away;
//   - Recover, which replays snapshot + WAL tail, truncates a torn final
//     record (crash mid-append), and refuses CRC-corrupt interior records
//     with a diagnostic error instead of silent data loss.
//
// The store moves opaque bytes. What those bytes mean — and which of them
// are sealed with seccrypto before they get here — is the caller's
// business (internal/slremote seals escrowed root keys and whole snapshot
// images so plaintext key material never leaves the simulated enclave).
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Logger is the write-ahead half of the persistence pair: Append durably
// logs one state-mutation record before the caller applies it in memory.
type Logger interface {
	Append(rec []byte) error
}

// Snapshotter is the compaction half: Snapshot atomically replaces the
// log-so-far with one full state image.
type Snapshotter interface {
	Snapshot(state []byte) error
}

// SyncMode selects the WAL's fsync discipline.
type SyncMode int

const (
	// SyncBatched groups appends that land within BatchWindow into one
	// fsync (group commit): every Append still blocks until the fsync
	// covering it completes, so durability is preserved while the fsync
	// cost is amortized across concurrent writers.
	SyncBatched SyncMode = iota
	// SyncAlways fsyncs on every append.
	SyncAlways
	// SyncOff never fsyncs (the OS flushes when it pleases). Crash
	// durability is whatever the kernel left on disk; recovery still
	// handles the resulting torn tail.
	SyncOff
)

func (m SyncMode) String() string {
	switch m {
	case SyncBatched:
		return "batched"
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode parses the -fsync flag grammar: "always", "batched", "off".
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batched":
		return SyncBatched, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync mode %q (want always, batched, or off)", s)
	}
}

// DefaultBatchWindow is the group-commit window used when Options leaves
// BatchWindow zero: long enough to coalesce a burst of renewals, short
// enough to stay invisible next to the paper's multi-second RA latency.
const DefaultBatchWindow = 2 * time.Millisecond

// Options configures Open.
type Options struct {
	// Dir is the state directory; created (0700) if absent.
	Dir string
	// Mode is the fsync discipline (zero value: SyncBatched).
	Mode SyncMode
	// BatchWindow is the group-commit window for SyncBatched (zero value:
	// DefaultBatchWindow).
	BatchWindow time.Duration
	// Metrics, when non-nil, receives WAL/snapshot/recovery observations
	// (see ExposeMetrics). Nil disables instrumentation at zero cost.
	Metrics *Metrics
	// FS substitutes a filesystem implementation (nil: the real one).
	// Fault-injection harnesses use this; production code leaves it nil.
	FS FS
}

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("store: closed")

// walBatch is one group commit in flight: appenders whose writes are in
// the OS buffer park on done until the covering fsync lands.
type walBatch struct {
	timer *time.Timer
	done  chan struct{}
	err   error
}

// Store is a durable WAL + snapshot pair rooted at one directory. It is
// safe for concurrent use. Store implements Logger and Snapshotter.
type Store struct {
	mode    SyncMode
	window  time.Duration
	dir     string
	metrics *Metrics
	fsys    FS

	mu       sync.Mutex
	f        File // current generation's WAL, opened for append
	gen      uint64
	size     int64     // bytes written to the current WAL (valid frames only)
	synced   int64     // bytes known durable (≤ size)
	batch    *walBatch // pending group commit, SyncBatched only
	closed   bool
	wedged   error // sticky failure after an unrecoverable rollback
	finalErr error // result of Close's final fsync, for late flushers
}

// Open recovers the directory's persisted state and returns a store ready
// to append to the current generation's WAL, plus what it recovered: the
// newest valid snapshot image (nil on first boot) and every WAL record
// appended after it. A torn final record is physically truncated from the
// WAL file; interior corruption aborts with an error.
func Open(opts Options) (*Store, *Recovered, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("store: empty directory")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS()
	}
	if err := fsys.MkdirAll(opts.Dir, 0o700); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s: %w", opts.Dir, err)
	}
	start := time.Now()
	rec, err := RecoverFS(fsys, opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	opts.Metrics.observeRecovery(time.Since(start), len(rec.Records))

	s := &Store{
		mode:    opts.Mode,
		window:  opts.BatchWindow,
		dir:     opts.Dir,
		metrics: opts.Metrics,
		fsys:    fsys,
		gen:     rec.Generation,
	}
	if s.window <= 0 {
		s.window = DefaultBatchWindow
	}
	walPath := s.walPath(s.gen)
	f, err := fsys.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	valid := rec.walSize - rec.TruncatedBytes
	if rec.TruncatedBytes > 0 {
		// Drop the torn tail on disk too, so the next append starts at a
		// record boundary instead of extending a half-written frame.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seeking WAL end: %w", err)
	}
	s.f = f
	s.size = valid
	s.synced = valid
	// Earlier generations are garbage once a newer snapshot validated; a
	// crash between snapshot rename and cleanup can leave them behind.
	s.removeStaleGenerations(rec.Generation)
	return s, rec, nil
}

// Append durably logs one record. With SyncAlways it returns after its own
// fsync; with SyncBatched it returns once the group commit covering it has
// synced; with SyncOff it returns after the buffered write.
func (s *Store) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("store: empty record")
	}
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("store: record of %d bytes exceeds %d", len(rec), MaxRecordSize)
	}
	frame := appendRecord(nil, rec)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.wedged != nil {
		err := s.wedged
		s.mu.Unlock()
		return err
	}
	if _, err := s.f.Write(frame); err != nil {
		// A short or failed write may have left a partial frame on disk.
		// Cut the file back to the last full frame so the record boundary
		// discipline survives and later appends stay decodable.
		s.truncateToLocked(s.size, err)
		s.mu.Unlock()
		return fmt.Errorf("store: WAL append: %w", err)
	}
	s.size += int64(len(frame))
	s.metrics.observeAppend(len(frame))

	switch s.mode {
	case SyncOff:
		// Nothing stronger to roll back to: treat the buffered write as
		// the durability floor, like the mode's contract says.
		s.synced = s.size
		s.mu.Unlock()
		return nil
	case SyncAlways:
		err := s.syncLocked()
		if err != nil {
			// The frame is written but not durable, and the caller will
			// abort its mutation — drop the frame so a recovery never
			// replays an event that was never applied.
			s.truncateToLocked(s.synced, err)
		}
		s.mu.Unlock()
		return err
	}
	// SyncBatched: join (or open) the current group commit and wait for
	// its fsync outside the lock.
	b := s.batch
	if b == nil {
		b = &walBatch{done: make(chan struct{})}
		b.timer = time.AfterFunc(s.window, func() { s.flushBatch(b) })
		s.batch = b
	}
	s.mu.Unlock()
	<-b.done
	return b.err
}

// flushBatch completes one group commit: fsync once, release every waiter.
// If Close won the race, its final fsync already covered every buffered
// write, so the batch inherits that result instead of syncing a closed
// file.
func (s *Store) flushBatch(b *walBatch) {
	s.mu.Lock()
	if s.batch == b {
		s.batch = nil
	}
	var err error
	if s.closed {
		err = s.finalErr
	} else {
		err = s.syncLocked()
		if err != nil {
			// Every unsynced byte belongs to this batch, and every waiter
			// on it receives the error — so dropping those bytes keeps the
			// file consistent with what the callers were told.
			s.truncateToLocked(s.synced, err)
		}
	}
	s.mu.Unlock()
	b.err = err
	close(b.done)
}

// syncLocked fsyncs the WAL and records the latency. On success everything
// written so far is durable.
func (s *Store) syncLocked() error {
	start := time.Now()
	err := s.f.Sync()
	s.metrics.observeFsync(time.Since(start))
	if err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.synced = s.size
	return nil
}

// truncateToLocked cuts the WAL back to off after a failed write or fsync,
// repositioning the file offset (Truncate alone leaves it past the cut, and
// a later write would punch a zero-filled hole that recovery reads as a
// silently-truncating tail). If the cut itself fails the store wedges:
// every later Append reports the combined error instead of risking an
// interior-corrupt log.
func (s *Store) truncateToLocked(off int64, cause error) {
	if err := s.f.Truncate(off); err != nil {
		s.wedged = fmt.Errorf("store: WAL rollback after %v failed: %w", cause, err)
		return
	}
	if _, err := s.f.Seek(off, 0); err != nil {
		s.wedged = fmt.Errorf("store: WAL rollback after %v failed: %w", cause, err)
		return
	}
	s.size = off
	if s.synced > off {
		s.synced = off
	}
}

// Snapshot writes a full state image as generation gen+1 and switches
// appends to a fresh WAL, then removes the previous generation's files.
// The image is written to a temporary file, fsynced, and renamed, so a
// crash at any point leaves either the old generation or the new one fully
// intact — never a half-written snapshot that recovery could mistake for
// state.
func (s *Store) Snapshot(state []byte) error {
	if len(state) == 0 {
		return errors.New("store: empty snapshot")
	}
	if len(state) > MaxRecordSize {
		return fmt.Errorf("store: snapshot of %d bytes exceeds %d", len(state), MaxRecordSize)
	}
	frame := appendRecord(nil, state)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wedged != nil {
		return s.wedged
	}
	// Anything already in the WAL buffer must be on disk before the
	// snapshot that supersedes it claims to cover it. On failure the
	// unsynced bytes are a pending batch's, and its flush will report the
	// error (and roll back) to the appenders that own them.
	if s.mode != SyncOff {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	next := s.gen + 1
	snapPath := s.snapPath(next)
	tmp := snapPath + ".tmp"
	if err := writeFileSync(s.fsys, tmp, frame); err != nil {
		return err
	}
	if err := s.fsys.Rename(tmp, snapPath); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	// Past the rename, a failure must retract the published file before
	// returning: recovery prefers the newest generation, so a snap-(gen+1)
	// left behind while appends continue into wal-gen would shadow every
	// later append at the next recovery.
	if err := s.fsys.SyncDir(s.dir); err != nil {
		s.retractSnapshotLocked(snapPath, err)
		return fmt.Errorf("store: syncing dir: %w", err)
	}
	// The snapshot is durable: open the new generation's WAL and retire
	// the old files.
	f, err := s.fsys.OpenFile(s.walPath(next), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o600)
	if err != nil {
		s.retractSnapshotLocked(snapPath, err)
		return fmt.Errorf("store: opening WAL generation %d: %w", next, err)
	}
	old := s.f
	oldGen := s.gen
	s.f = f
	s.gen = next
	s.size = 0
	s.synced = 0
	old.Close()
	s.fsys.Remove(s.walPath(oldGen))
	s.fsys.Remove(s.snapPath(oldGen))
	s.metrics.observeSnapshot(len(frame))
	return nil
}

// retractSnapshotLocked removes a published next-generation snapshot after
// a later step of the generation switch failed, so the store's view (still
// on the old generation) and the disk agree. If the removal itself fails
// the store wedges: continuing to append into a generation shadowed by a
// newer on-disk snapshot would lose those appends at the next recovery.
func (s *Store) retractSnapshotLocked(snapPath string, cause error) {
	if err := s.fsys.Remove(snapPath); err != nil {
		s.wedged = fmt.Errorf("store: retracting snapshot after %v failed: %w", cause, err)
	}
}

// Generation returns the current snapshot/WAL generation number.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Close flushes any pending group commit and closes the WAL. Appends after
// Close fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	// Claim the pending batch only if its timer has not fired yet; if it
	// has, flushBatch owns the batch and will pick up finalErr below.
	var claimed *walBatch
	if b := s.batch; b != nil && b.timer.Stop() {
		claimed = b
		s.batch = nil
	}
	var err error
	if s.mode != SyncOff {
		err = s.syncLocked()
		if err != nil {
			// Best effort: drop unsynced bytes so the file on disk matches
			// what callers were promised. The owning batch (claimed below,
			// or flushing concurrently) receives the sync error either way.
			s.truncateToLocked(s.synced, err)
		}
	}
	s.finalErr = err
	s.closed = true
	cerr := s.f.Close()
	s.mu.Unlock()
	if claimed != nil {
		claimed.err = err
		close(claimed.done)
	}
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("store: closing WAL: %w", cerr)
	}
	return nil
}

func (s *Store) walPath(gen uint64) string  { return walPath(s.dir, gen) }
func (s *Store) snapPath(gen uint64) string { return snapPath(s.dir, gen) }

// removeStaleGenerations deletes WAL and snapshot files older than the
// live generation (best-effort; leftovers are ignored by recovery anyway).
func (s *Store) removeStaleGenerations(live uint64) {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		gen, kind, ok := parseGenFile(e.Name())
		if !ok || gen >= live {
			continue
		}
		_ = kind
		s.fsys.Remove(filepath.Join(s.dir, e.Name()))
	}
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(fsys FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	return nil
}
