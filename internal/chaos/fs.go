package chaos

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"

	"repro/internal/store"
)

// Filesystem fault kinds. TornWrite and ShortWrite match file writes,
// SyncFail matches fsyncs, CrashStop matches any operation.
const (
	// TornWrite writes a strict prefix of the buffer and then crash-stops
	// the filesystem — the classic power-cut mid-append. Because the store
	// writes one whole frame per Write call, the prefix is always an
	// incomplete frame, which recovery must truncate.
	TornWrite = "torn-write"
	// ShortWrite writes a strict prefix and returns an error, without
	// crashing: an I/O error the process survives and must roll back.
	ShortWrite = "short-write"
	// SyncFail makes one fsync return an error.
	SyncFail = "sync-fail"
	// CrashStop fails the matched operation and every operation after it
	// with ErrCrashed until Revive.
	CrashStop = "crash-stop"
)

// Injected-fault errors. ErrCrashed additionally poisons the filesystem
// until Revive.
var (
	ErrCrashed       = errors.New("chaos: simulated crash-stop")
	ErrInjectedWrite = errors.New("chaos: injected short write")
	ErrInjectedSync  = errors.New("chaos: injected fsync failure")
)

// FSFault is one armed filesystem fault.
type FSFault struct {
	// Kind is TornWrite, ShortWrite, SyncFail, or CrashStop.
	Kind string
	// After skips this many matching operations before firing (0 fires on
	// the next match).
	After int
}

func (f FSFault) matches(op string) bool {
	switch f.Kind {
	case TornWrite, ShortWrite:
		return op == fsOpWrite
	case SyncFail:
		return op == fsOpSync
	case CrashStop:
		return true
	}
	return false
}

const (
	fsOpWrite = "write"
	fsOpSync  = "sync"
	fsOpOther = "other"
)

// FS is a store.FS that forwards to an underlying filesystem until an
// armed fault matches. Faults are one-shot and fire in arming order. All
// state is keyed to the operation counter, so a fixed operation sequence
// yields a fixed fault trace.
type FS struct {
	under store.FS

	mu      sync.Mutex
	ops     int64
	armed   []*armedFS
	crashed bool
	trace   []Event
}

type armedFS struct {
	fault     FSFault
	remaining int
}

// NewFS wraps under (nil: the real filesystem) with no faults armed.
func NewFS(under store.FS) *FS {
	if under == nil {
		under = store.OSFS()
	}
	return &FS{under: under}
}

// Arm schedules one fault. Multiple armed faults fire independently, each
// consuming its own matching-operation countdown.
func (c *FS) Arm(f FSFault) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = append(c.armed, &armedFS{fault: f, remaining: f.After})
}

// Crashed reports whether a TornWrite or CrashStop fault has fired.
func (c *FS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Revive clears the crash-stop state and disarms any pending faults — the
// moral equivalent of restarting the process over the same disk.
func (c *FS) Revive() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = false
	c.armed = nil
}

// Ops returns the operation counter.
func (c *FS) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Trace returns the faults fired so far, in order.
func (c *FS) Trace() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.trace...)
}

// next counts one operation and decides its fate: "" for pass-through, or
// the fault kind to inject. A crashed filesystem fails everything.
func (c *FS) next(op, path string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	if c.crashed {
		return "", ErrCrashed
	}
	for i, a := range c.armed {
		if !a.fault.matches(op) {
			continue
		}
		if a.remaining > 0 {
			a.remaining--
			continue
		}
		c.armed = append(c.armed[:i], c.armed[i+1:]...)
		c.trace = append(c.trace, Event{Domain: "fs", Op: c.ops, Kind: a.fault.Kind, Detail: filepath.Base(path)})
		if a.fault.Kind == TornWrite || a.fault.Kind == CrashStop {
			c.crashed = true
		}
		return a.fault.Kind, nil
	}
	return "", nil
}

// FS interface. Non-file operations only ever take the pass-through or
// crash-stop path.

func (c *FS) MkdirAll(path string, perm fs.FileMode) error {
	if _, err := c.next(fsOpOther, path); err != nil {
		return err
	}
	return c.under.MkdirAll(path, perm)
}

func (c *FS) OpenFile(name string, flag int, perm fs.FileMode) (store.File, error) {
	kind, err := c.next(fsOpOther, name)
	if err != nil {
		return nil, err
	}
	if kind == CrashStop {
		return nil, ErrCrashed
	}
	f, err := c.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{f: f, fs: c, path: name}, nil
}

func (c *FS) ReadFile(name string) ([]byte, error) {
	kind, err := c.next(fsOpOther, name)
	if err != nil {
		return nil, err
	}
	if kind == CrashStop {
		return nil, ErrCrashed
	}
	return c.under.ReadFile(name)
}

func (c *FS) ReadFileFrom(name string, off int64) ([]byte, error) {
	kind, err := c.next(fsOpOther, name)
	if err != nil {
		return nil, err
	}
	if kind == CrashStop {
		return nil, ErrCrashed
	}
	return c.under.ReadFileFrom(name, off)
}

func (c *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	kind, err := c.next(fsOpOther, name)
	if err != nil {
		return nil, err
	}
	if kind == CrashStop {
		return nil, ErrCrashed
	}
	return c.under.ReadDir(name)
}

func (c *FS) Rename(oldpath, newpath string) error {
	kind, err := c.next(fsOpOther, newpath)
	if err != nil {
		return err
	}
	if kind == CrashStop {
		return ErrCrashed
	}
	return c.under.Rename(oldpath, newpath)
}

func (c *FS) Remove(name string) error {
	kind, err := c.next(fsOpOther, name)
	if err != nil {
		return err
	}
	if kind == CrashStop {
		return ErrCrashed
	}
	return c.under.Remove(name)
}

func (c *FS) SyncDir(dir string) error {
	kind, err := c.next(fsOpSync, dir)
	if err != nil {
		return err
	}
	switch kind {
	case SyncFail:
		return ErrInjectedSync
	case CrashStop:
		return ErrCrashed
	}
	return c.under.SyncDir(dir)
}

// file is the per-file half of the failpoint: writes and fsyncs route
// their fate decisions through the parent FS's single operation counter.
type file struct {
	f    store.File
	fs   *FS
	path string
}

func (cf *file) Write(p []byte) (int, error) {
	kind, err := cf.fs.next(fsOpWrite, cf.path)
	if err != nil {
		return 0, err
	}
	switch kind {
	case TornWrite:
		// Half the frame reaches the platter, then the power goes.
		n, _ := cf.f.Write(p[:len(p)/2])
		_ = cf.f.Sync() // the torn prefix must actually be on disk for recovery to see
		return n, ErrCrashed
	case ShortWrite:
		n, _ := cf.f.Write(p[:len(p)/2])
		return n, ErrInjectedWrite
	case CrashStop:
		return 0, ErrCrashed
	}
	return cf.f.Write(p)
}

func (cf *file) Sync() error {
	kind, err := cf.fs.next(fsOpSync, cf.path)
	if err != nil {
		return err
	}
	switch kind {
	case SyncFail:
		return ErrInjectedSync
	case CrashStop:
		return ErrCrashed
	}
	return cf.f.Sync()
}

func (cf *file) Truncate(size int64) error {
	kind, err := cf.fs.next(fsOpOther, cf.path)
	if err != nil {
		return err
	}
	if kind == CrashStop {
		return ErrCrashed
	}
	return cf.f.Truncate(size)
}

func (cf *file) Seek(offset int64, whence int) (int64, error) {
	kind, err := cf.fs.next(fsOpOther, cf.path)
	if err != nil {
		return 0, err
	}
	if kind == CrashStop {
		return 0, ErrCrashed
	}
	return cf.f.Seek(offset, whence)
}

// Close always reaches the real file so a crash-stopped run does not leak
// descriptors; a crashed "process" keeps the bytes it already lost.
func (cf *file) Close() error {
	return cf.f.Close()
}

var _ store.FS = (*FS)(nil)

// String implements fmt.Stringer for debugging armed state.
func (c *FS) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("chaos.FS{ops: %d, armed: %d, crashed: %v, fired: %d}",
		c.ops, len(c.armed), c.crashed, len(c.trace))
}
