package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Connection fault kinds. All match Write calls on wrapped connections:
// the wire protocol writes a length header and a frame per envelope, so a
// faulted write lands either between envelopes or mid-envelope — both are
// failure modes a real network serves up.
const (
	// Drop swallows one write: the caller sees success, the peer sees
	// silence and times out.
	Drop = "drop"
	// Delay sleeps briefly before a write goes through.
	Delay = "delay"
	// Dup writes the bytes twice and then severs the connection: the peer
	// decodes the first copy and must not decode the retransmitted bytes
	// into a phantom message. Severing keeps the fault self-contained —
	// a desynced but open stream would let the server answer a misparsed
	// later request at an uncontrolled moment, destroying the determinism
	// of the shared write counter.
	Dup = "dup"
	// Cut writes a strict prefix and closes the connection: the
	// mid-envelope connection cut.
	Cut = "cut"
	// Reset closes the connection instead of writing.
	Reset = "reset"
	// Corrupt flips one byte mid-write and then severs the connection:
	// over a plaintext stream the peer decodes garbage, over TLS the
	// record MAC fails and the session dies with an authentication
	// error. Severing keeps the fault self-contained, as with Dup.
	Corrupt = "corrupt"
	// Reorder holds one write's bytes back and releases them after the
	// connection's NEXT write goes through first. The wire layer frames
	// each envelope with a single Write call, so this swaps two whole
	// messages — the out-of-order delivery a pipelining client's demux
	// must survive. A frame still held when the connection closes is
	// flushed before the close, so a reorder never degrades to a drop;
	// a severing fault firing while a frame is held may still lose it.
	Reorder = "reorder"
)

// ErrConnFault reports a write the injector failed on purpose.
var ErrConnFault = errors.New("chaos: injected connection fault")

// delayDuration is the pause injected by Delay faults — long enough to
// reorder against other goroutines' work, short enough to stay far from
// any test deadline.
const delayDuration = 5 * time.Millisecond

// ConnFault is one armed connection fault.
type ConnFault struct {
	// Kind is Drop, Delay, Dup, Cut, Reset, or Corrupt.
	Kind string
	// After skips this many writes before firing (0 fires on the next
	// write through any wrapped connection).
	After int
}

// NetDirector arms and fires connection faults for every connection
// wrapped with it, sharing one write counter so a seed maps to one global
// fault position. An optional netsim.Link contributes stochastic drops on
// top of the armed (deterministic) faults.
type NetDirector struct {
	mu     sync.Mutex
	writes int64
	conns  int64
	armed  []*armedConn
	link   *netsim.Link
	trace  []Event
}

type armedConn struct {
	fault     ConnFault
	remaining int
}

// NewNetDirector returns a director with no faults armed.
func NewNetDirector() *NetDirector { return &NetDirector{} }

// Arm schedules one fault on the next matching write.
func (d *NetDirector) Arm(f ConnFault) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.armed = append(d.armed, &armedConn{fault: f, remaining: f.After})
}

// AttachLink adds a netsim reliability model: every write first asks the
// link whether it survives, and a netsim drop behaves like a Drop fault
// (recorded in the trace as "link-drop"). The link's seeded RNG keeps the
// composition deterministic.
func (d *NetDirector) AttachLink(l *netsim.Link) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.link = l
}

// Writes returns the shared write counter.
func (d *NetDirector) Writes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// Trace returns the faults fired so far, in order.
func (d *NetDirector) Trace() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.trace...)
}

// decide counts one write on conn and picks its fate: "" passes through.
func (d *NetDirector) decide(conn string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	for i, a := range d.armed {
		if a.remaining > 0 {
			a.remaining--
			continue
		}
		d.armed = append(d.armed[:i], d.armed[i+1:]...)
		d.trace = append(d.trace, Event{Domain: "net", Op: d.writes, Kind: a.fault.Kind, Detail: conn})
		return a.fault.Kind
	}
	if d.link != nil {
		if _, err := d.link.Send(); err != nil {
			d.trace = append(d.trace, Event{Domain: "net", Op: d.writes, Kind: "link-drop", Detail: conn})
			return Drop
		}
	}
	return ""
}

// nextConn labels a wrapped connection by accept/wrap order — stable
// across runs, unlike ephemeral port numbers.
func (d *NetDirector) nextConn() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.conns++
	return fmt.Sprintf("conn-%d", d.conns)
}

// Listener wraps a net.Listener so every accepted connection routes its
// writes through the director. Wrap the SL-Remote side: responses (and
// their absence) are what exercise the client's retry and redial paths.
type Listener struct {
	net.Listener
	dir *NetDirector
}

// WrapListener attaches a director to a listener.
func WrapListener(l net.Listener, d *NetDirector) *Listener {
	return &Listener{Listener: l, dir: d}
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.dir), nil
}

// Conn is a net.Conn whose writes can be dropped, delayed, duplicated,
// truncated, or reset by the director. Reads pass through untouched — a
// fault on the peer's writes is a fault on this side's reads already.
type Conn struct {
	net.Conn
	dir  *NetDirector
	name string

	hmu  sync.Mutex
	held []byte // one frame held back by a Reorder fault; guarded by hmu
}

// WrapConn attaches a director to one connection.
func WrapConn(c net.Conn, d *NetDirector) *Conn {
	return &Conn{Conn: c, dir: d, name: d.nextConn()}
}

func (c *Conn) Write(p []byte) (int, error) {
	switch c.dir.decide(c.name) {
	case Reorder:
		c.hmu.Lock()
		if c.held == nil {
			c.held = append([]byte(nil), p...)
			c.hmu.Unlock()
			// Held, not lost: the next write (or Close) releases it.
			return len(p), nil
		}
		c.hmu.Unlock()
		// A frame is already held; a second hold would just shift which
		// frame waits, so fall through and write normally (which also
		// releases the held frame).
	case Drop:
		// Swallowed whole: report success, deliver nothing.
		return len(p), nil
	case Delay:
		time.Sleep(delayDuration)
	case Dup:
		n, err := c.Conn.Write(p)
		if err != nil {
			return n, err
		}
		_, _ = c.Conn.Write(p)
		_ = c.Conn.Close()
		return n, nil
	case Cut:
		n, _ := c.Conn.Write(p[:len(p)/2])
		_ = c.Conn.Close()
		return n, fmt.Errorf("%w: connection cut mid-write", ErrConnFault)
	case Reset:
		_ = c.Conn.Close()
		return 0, fmt.Errorf("%w: connection reset", ErrConnFault)
	case Corrupt:
		bad := append([]byte(nil), p...)
		bad[len(bad)/2] ^= 0xFF
		n, err := c.Conn.Write(bad)
		_ = c.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, nil
	}
	n, err := c.Conn.Write(p)
	c.flushHeld()
	return n, err
}

// flushHeld writes out a frame held by a Reorder fault, after the write
// that overtook it.
func (c *Conn) flushHeld() {
	c.hmu.Lock()
	h := c.held
	c.held = nil
	c.hmu.Unlock()
	if len(h) != 0 {
		_, _ = c.Conn.Write(h)
	}
}

// Close flushes any frame a Reorder fault is still holding, then closes
// the connection: reordering delays delivery, it never suppresses it.
func (c *Conn) Close() error {
	c.flushHeld()
	return c.Conn.Close()
}
