package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"

	"repro/internal/slremote"
	"repro/internal/store"
)

// openStore opens a WAL store on dir through the given chaos FS.
func openStore(t *testing.T, fsys *FS, dir string) (*store.Store, *store.Recovered) {
	t.Helper()
	s, rec, err := store.Open(store.Options{Dir: dir, Mode: store.SyncAlways, FS: fsys})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s, rec
}

func TestTornWriteCrashStopsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS(nil)
	s, _ := openStore(t, fsys, dir)

	for i := 0; i < 5; i++ {
		if err := s.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	fsys.Arm(FSFault{Kind: TornWrite})
	if err := s.Append([]byte("doomed")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after torn-write arm: got %v, want ErrCrashed", err)
	}
	if !fsys.Crashed() {
		t.Fatal("FS not crashed after torn write")
	}
	// Every subsequent operation fails until the "process" restarts.
	if err := s.Append([]byte("also-doomed")); err == nil {
		t.Fatal("append on crashed FS succeeded")
	}
	tr := fsys.Trace()
	if len(tr) != 1 || tr[0].Kind != TornWrite {
		t.Fatalf("trace = %v, want one torn-write", tr)
	}

	// Restart over the same disk: recovery must truncate the torn frame
	// and surface exactly the records that were acked.
	fsys.Revive()
	s2, rec := openStore(t, fsys, dir)
	defer s2.Close()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("recovery saw no torn tail, but half a frame was written")
	}
	for i, r := range rec.Records {
		if want := fmt.Sprintf("record-%d", i); string(r) != want {
			t.Fatalf("record %d = %q, want %q", i, r, want)
		}
	}
}

func TestShortWriteRollsBackAndStoreContinues(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS(nil)
	s, _ := openStore(t, fsys, dir)

	if err := s.Append([]byte("before")); err != nil {
		t.Fatalf("append: %v", err)
	}
	fsys.Arm(FSFault{Kind: ShortWrite})
	if err := s.Append([]byte("failed-append")); err == nil {
		t.Fatal("short write reported success")
	}
	// The partial frame must have been rolled back: the next append lands
	// on a record boundary and recovery sees a clean log.
	if err := s.Append([]byte("after")); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rec, err := store.RecoverFS(fsys, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("torn tail of %d bytes survived the rollback", rec.TruncatedBytes)
	}
	var got [][]byte
	got = append(got, rec.Records...)
	want := [][]byte{[]byte("before"), []byte("after")}
	if len(got) != len(want) || !bytes.Equal(got[0], want[0]) || !bytes.Equal(got[1], want[1]) {
		t.Fatalf("recovered %q, want %q", got, want)
	}
}

func TestSyncFailRollsBackUnsyncedFrame(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS(nil)
	s, _ := openStore(t, fsys, dir)
	defer s.Close()

	if err := s.Append([]byte("durable")); err != nil {
		t.Fatalf("append: %v", err)
	}
	fsys.Arm(FSFault{Kind: SyncFail})
	if err := s.Append([]byte("unsynced")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("append with failing fsync: got %v, want ErrInjectedSync", err)
	}
	// The caller aborted its mutation, so the frame must not resurface.
	if err := s.Append([]byte("next")); err != nil {
		t.Fatalf("append after sync failure: %v", err)
	}
	rec, err := store.RecoverFS(fsys, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rec.Records) != 2 ||
		string(rec.Records[0]) != "durable" || string(rec.Records[1]) != "next" {
		t.Fatalf("recovered %q, want [durable next]", rec.Records)
	}
}

// TestSnapshotDirSyncFailureDoesNotShadowWAL pins the retraction path: a
// snapshot whose dir-fsync fails after the rename published the new
// generation must take that file back, or recovery would prefer the stale
// snapshot and drop every append made after the failure.
func TestSnapshotDirSyncFailureDoesNotShadowWAL(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS(nil)
	s, _ := openStore(t, fsys, dir)

	if err := s.Append([]byte("pre-snapshot")); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Snapshot syncs three times: the outgoing WAL, the temp image file,
	// and the directory after the rename. Skip the first two.
	fsys.Arm(FSFault{Kind: SyncFail, After: 2})
	if err := s.Snapshot([]byte("image")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("snapshot with failing dir sync: got %v, want ErrInjectedSync", err)
	}
	if err := s.Append([]byte("post-failure")); err != nil {
		t.Fatalf("append after failed snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rec, err := store.RecoverFS(fsys, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec.Snapshot != nil {
		t.Fatal("recovery loaded the retracted snapshot")
	}
	if len(rec.Records) != 2 || string(rec.Records[1]) != "post-failure" {
		t.Fatalf("recovered %q: the failed snapshot shadowed the WAL tail", rec.Records)
	}
}

func TestFSFaultAfterCountsMatchingOps(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS(nil)
	s, _ := openStore(t, fsys, dir)
	defer s.Close()

	fsys.Arm(FSFault{Kind: ShortWrite, After: 2})
	for i := 0; i < 2; i++ {
		if err := s.Append([]byte("fine")); err != nil {
			t.Fatalf("append %d should pass (After not yet exhausted): %v", i, err)
		}
	}
	if err := s.Append([]byte("third")); err == nil {
		t.Fatal("third write should have faulted")
	}
}

func TestAppendFileRollbackThroughChaosFS(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS(nil)
	af, _, err := store.OpenAppendFileFS(fsys, dir+"/chain.log")
	if err != nil {
		t.Fatalf("OpenAppendFileFS: %v", err)
	}
	defer af.Close()
	if err := af.Append([]byte("one")); err != nil {
		t.Fatalf("append: %v", err)
	}
	fsys.Arm(FSFault{Kind: ShortWrite})
	if err := af.Append([]byte("torn")); err == nil {
		t.Fatal("faulted append reported success")
	}
	if err := af.Append([]byte("two")); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	recs, err := store.ReadAppendFileFS(fsys, dir+"/chain.log")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 2 || string(recs[0]) != "one" || string(recs[1]) != "two" {
		t.Fatalf("records %q, want [one two]", recs)
	}
}

// connPair builds a wrapped client→server byte path over real TCP.
func connPair(t *testing.T, d *NetDirector) (wrapped net.Conn, peer net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	t.Cleanup(func() { raw.Close(); r.c.Close() })
	return WrapConn(raw, d), r.c
}

func TestConnCutWritesPrefixAndCloses(t *testing.T) {
	d := NewNetDirector()
	w, peer := connPair(t, d)
	d.Arm(ConnFault{Kind: Cut})

	msg := []byte("0123456789abcdef")
	n, err := w.Write(msg)
	if !errors.Is(err, ErrConnFault) {
		t.Fatalf("cut write: got %v, want ErrConnFault", err)
	}
	if n != len(msg)/2 {
		t.Fatalf("cut wrote %d bytes, want %d", n, len(msg)/2)
	}
	buf := make([]byte, len(msg))
	total := 0
	for {
		k, err := peer.Read(buf[total:])
		total += k
		if err != nil {
			break
		}
	}
	if total != len(msg)/2 || !bytes.Equal(buf[:total], msg[:len(msg)/2]) {
		t.Fatalf("peer saw %q, want the %d-byte prefix", buf[:total], len(msg)/2)
	}
}

func TestConnDropSwallowsAndDupDoubles(t *testing.T) {
	d := NewNetDirector()
	w, peer := connPair(t, d)

	d.Arm(ConnFault{Kind: Drop})
	if n, err := w.Write([]byte("ghost")); err != nil || n != 5 {
		t.Fatalf("dropped write: n=%d err=%v, want full fake success", n, err)
	}
	d.Arm(ConnFault{Kind: Dup})
	if _, err := w.Write([]byte("echo")); err != nil {
		t.Fatalf("dup write: %v", err)
	}
	w.Close()
	var got bytes.Buffer
	buf := make([]byte, 64)
	for {
		k, err := peer.Read(buf)
		got.Write(buf[:k])
		if err != nil {
			break
		}
	}
	if got.String() != "echoecho" {
		t.Fatalf("peer saw %q, want %q (drop swallowed, dup doubled)", got.String(), "echoecho")
	}
	tr := d.Trace()
	if len(tr) != 2 || tr[0].Kind != Drop || tr[1].Kind != Dup {
		t.Fatalf("trace = %v, want [drop dup]", tr)
	}
}

func TestConnCorruptFlipsByteAndSevers(t *testing.T) {
	d := NewNetDirector()
	w, peer := connPair(t, d)
	d.Arm(ConnFault{Kind: Corrupt})

	msg := []byte("0123456789abcdef")
	if n, err := w.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("corrupt write: n=%d err=%v, want full fake success", n, err)
	}
	buf := make([]byte, len(msg)+8)
	total := 0
	for {
		k, err := peer.Read(buf[total:])
		total += k
		if err != nil {
			break
		}
	}
	if total != len(msg) {
		t.Fatalf("peer saw %d bytes, want %d", total, len(msg))
	}
	if bytes.Equal(buf[:total], msg) {
		t.Fatal("corrupt fault delivered the bytes unmodified")
	}
	diff := 0
	for i := range msg {
		if buf[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt fault changed %d bytes, want exactly 1", diff)
	}
	// The connection is severed after the corrupted write, as with Dup:
	// a desynced-but-open stream would break write-counter determinism.
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("connection still open after corrupt fault")
	}
	tr := d.Trace()
	if len(tr) != 1 || tr[0].Kind != Corrupt {
		t.Fatalf("trace = %v, want [corrupt]", tr)
	}
}

func TestScheduleDeterministicAndStructured(t *testing.T) {
	a := NewSchedule(42, 4, 220)
	b := NewSchedule(42, 4, 220)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if c := NewSchedule(43, 4, 220); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	var torn, cut, crash, quiesce int
	for i, st := range a.Steps {
		for _, f := range st.FSFaults {
			if f.Kind == TornWrite {
				torn++
				if a.Steps[i+1].Op != OpServerRestart {
					t.Fatalf("step %d tears the WAL but step %d is %s, not a server restart", i, i+1, a.Steps[i+1].Op)
				}
			}
		}
		for _, f := range st.NetFaults {
			if f.Kind == Cut {
				cut++
			}
		}
		if st.Op == OpClientCrash {
			crash++
		}
		if st.Op == OpQuiesce {
			quiesce++
		}
		if (st.Op == OpClientCrash || st.Op == OpClientRestart) && st.Client == 0 {
			t.Fatalf("step %d %s targets the anchor client", i, st.Op)
		}
	}
	if torn == 0 || cut == 0 || crash == 0 {
		t.Fatalf("required faults missing: torn=%d cut=%d crash=%d", torn, cut, crash)
	}
	if quiesce < 220/quiesceEvery {
		t.Fatalf("only %d quiesce points", quiesce)
	}
}

func TestCheckConservation(t *testing.T) {
	ok := slremote.State{
		Licenses: map[string]slremote.License{
			"lic": {ID: "lic", TotalGCL: 100, Remaining: 60, Consumed: 15, Lost: 5},
		},
		Clients: map[string]slremote.ClientState{
			"slid-1": {SLID: "slid-1", Outstanding: map[string]int64{"lic": 12}},
			"slid-2": {SLID: "slid-2", Outstanding: map[string]int64{"lic": 8}},
		},
	}
	if err := CheckConservation(ok); err != nil {
		t.Fatalf("balanced state rejected: %v", err)
	}
	bad := ok
	bad.Licenses = map[string]slremote.License{
		"lic": {ID: "lic", TotalGCL: 100, Remaining: 61, Consumed: 15, Lost: 5},
	}
	if err := CheckConservation(bad); err == nil {
		t.Fatal("unit leak passed the conservation check")
	}
}

func TestCheckConservationAllTwoServerSplit(t *testing.T) {
	// A healthy two-shard split: each license lives on exactly one server
	// and its units add up to the declared budget.
	shardA := slremote.State{
		Licenses: map[string]slremote.License{
			"lic-a": {ID: "lic-a", TotalGCL: 100, Remaining: 70, Consumed: 10},
		},
		Clients: map[string]slremote.ClientState{
			"slid-1": {SLID: "slid-1", Outstanding: map[string]int64{"lic-a": 20}},
		},
	}
	shardB := slremote.State{
		Licenses: map[string]slremote.License{
			"lic-b": {ID: "lic-b", TotalGCL: 50, Remaining: 30, Lost: 5},
		},
		Clients: map[string]slremote.ClientState{
			"slid-2": {SLID: "slid-2", Outstanding: map[string]int64{"lic-b": 15}},
		},
	}
	declared := map[string]int64{"lic-a": 100, "lic-b": 50}
	if err := CheckConservationAll(declared, shardA, shardB); err != nil {
		t.Fatalf("balanced split rejected: %v", err)
	}
	// Per-shard and cluster-wide checks share the checker: one shard alone
	// passes against its own slice of the declarations.
	if err := CheckConservationAll(map[string]int64{"lic-a": 100}, shardA); err != nil {
		t.Fatalf("single-shard call rejected: %v", err)
	}

	// Double ownership after a botched failover: the same license served
	// by both shards doubles every unit.
	both := shardB
	both.Licenses = map[string]slremote.License{
		"lic-b": both.Licenses["lic-b"],
		"lic-a": {ID: "lic-a", TotalGCL: 100, Remaining: 100},
	}
	if err := CheckConservationAll(declared, shardA, both); err == nil {
		t.Fatal("double-owned license passed the cluster-wide check")
	}

	// A shard that lost its license wholesale: declared units destroyed.
	if err := CheckConservationAll(declared, shardA); err == nil {
		t.Fatal("missing license passed the cluster-wide check")
	}

	// A diverged budget: the server is internally balanced around a
	// smaller TotalGCL than was declared — only the cluster-wide sum
	// catches it.
	short := shardB
	short.Licenses = map[string]slremote.License{
		"lic-b": {ID: "lic-b", TotalGCL: 40, Remaining: 20, Lost: 5},
	}
	if err := CheckConservationAll(declared, shardA, short); err == nil {
		t.Fatal("shrunken budget passed the cluster-wide check")
	}

	// A license no one declared: units created from nothing.
	if err := CheckConservationAll(map[string]int64{"lic-a": 100}, shardA, shardB); err == nil {
		t.Fatal("undeclared license passed the cluster-wide check")
	}

	// A server whose own ledger is broken fails before any cluster math.
	broken := slremote.State{
		Licenses: map[string]slremote.License{
			"lic-a": {ID: "lic-a", TotalGCL: 100, Remaining: 99},
		},
	}
	if err := CheckConservationAll(map[string]int64{"lic-a": 100}, broken); err == nil {
		t.Fatal("imbalanced server passed the per-server check")
	}
}
