package chaos

import (
	"fmt"
	"sort"

	"repro/internal/slremote"
)

// CheckConservation asserts the global license-unit conservation law over
// an exported server state: for every license,
//
//	TotalGCL == Remaining + Σ_clients outstanding + Consumed + Lost
//
// Every legal transition preserves it — registration seeds Remaining with
// the whole budget, a renewal moves units from Remaining to one client's
// outstanding balance, a consume report moves them from outstanding to
// Consumed, and a crash (or an escrow-less return, Section 5.7) moves them
// from outstanding to Lost. Units may never be created, duplicated by
// replay, or silently dropped — which is exactly what a torn WAL write, a
// duplicated wire frame, or a botched recovery would do.
func CheckConservation(st slremote.State) error {
	outstanding := make(map[string]int64, len(st.Licenses))
	for _, c := range st.Clients {
		for licID, held := range c.Outstanding {
			if held < 0 {
				return fmt.Errorf("chaos: client %s holds negative balance %d of license %s", c.SLID, held, licID)
			}
			outstanding[licID] += held
		}
	}
	ids := make([]string, 0, len(st.Licenses))
	for id := range st.Licenses {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		lic := st.Licenses[id]
		sum := lic.Remaining + outstanding[id] + lic.Consumed + lic.Lost
		if sum != lic.TotalGCL {
			return fmt.Errorf("chaos: license %s violates conservation: total %d != remaining %d + outstanding %d + consumed %d + lost %d (= %d)",
				id, lic.TotalGCL, lic.Remaining, outstanding[id], lic.Consumed, lic.Lost, sum)
		}
		if lic.Remaining < 0 {
			return fmt.Errorf("chaos: license %s has negative remaining %d", id, lic.Remaining)
		}
	}
	return nil
}
