package chaos

import (
	"fmt"
	"sort"

	"repro/internal/slremote"
)

// CheckConservation asserts the global license-unit conservation law over
// an exported server state: for every license,
//
//	TotalGCL == Remaining + Σ_clients outstanding + Consumed + Lost
//
// Every legal transition preserves it — registration seeds Remaining with
// the whole budget, a renewal moves units from Remaining to one client's
// outstanding balance, a consume report moves them from outstanding to
// Consumed, and a crash (or an escrow-less return, Section 5.7) moves them
// from outstanding to Lost. Units may never be created, duplicated by
// replay, or silently dropped — which is exactly what a torn WAL write, a
// duplicated wire frame, or a botched recovery would do.
func CheckConservation(st slremote.State) error {
	outstanding := make(map[string]int64, len(st.Licenses))
	for _, c := range st.Clients {
		for licID, held := range c.Outstanding {
			if held < 0 {
				return fmt.Errorf("chaos: client %s holds negative balance %d of license %s", c.SLID, held, licID)
			}
			outstanding[licID] += held
		}
	}
	ids := make([]string, 0, len(st.Licenses))
	for id := range st.Licenses {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		lic := st.Licenses[id]
		sum := lic.Remaining + outstanding[id] + lic.Consumed + lic.Lost
		if sum != lic.TotalGCL {
			return fmt.Errorf("chaos: license %s violates conservation: total %d != remaining %d + outstanding %d + consumed %d + lost %d (= %d)",
				id, lic.TotalGCL, lic.Remaining, outstanding[id], lic.Consumed, lic.Lost, sum)
		}
		if lic.Remaining < 0 {
			return fmt.Errorf("chaos: license %s has negative remaining %d", id, lic.Remaining)
		}
	}
	return nil
}

// CheckConservationAll asserts the conservation law across a sharded
// cluster: every server's own ledger must balance (CheckConservation), and
// on top of that each declared license must live on exactly one server,
// with its cluster-wide unit sum matching the declared budget. The extra
// checks catch exactly the failures sharding introduces — a license served
// by two shards at once after a botched failover (every unit silently
// doubled), a shard that lost a license wholesale, or a follower promoted
// from a diverged WAL whose budget no longer matches what was registered.
//
// declared maps license ID to the TotalGCL registered for it cluster-wide;
// states are the exported states of every live server (shard leaders). A
// single-entry call degenerates to CheckConservation plus the declared-
// budget check, so per-shard and cluster-wide verification share one
// checker.
func CheckConservationAll(declared map[string]int64, states ...slremote.State) error {
	owners := make(map[string][]int)
	sums := make(map[string]int64)
	for i, st := range states {
		if err := CheckConservation(st); err != nil {
			return fmt.Errorf("server %d: %w", i, err)
		}
		outstanding := make(map[string]int64)
		for _, c := range st.Clients {
			for licID, held := range c.Outstanding {
				outstanding[licID] += held
			}
		}
		for id, lic := range st.Licenses {
			owners[id] = append(owners[id], i)
			sums[id] += lic.Remaining + outstanding[id] + lic.Consumed + lic.Lost
		}
	}
	ids := make([]string, 0, len(declared))
	for id := range declared {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		switch servers := owners[id]; {
		case len(servers) == 0:
			return fmt.Errorf("chaos: declared license %s is on no server: %d units destroyed", id, declared[id])
		case len(servers) > 1:
			return fmt.Errorf("chaos: license %s is owned by servers %v at once: units doubled across shards", id, servers)
		}
		if sums[id] != declared[id] {
			return fmt.Errorf("chaos: license %s violates cluster-wide conservation: declared %d, servers account for %d", id, declared[id], sums[id])
		}
	}
	undeclared := make([]string, 0)
	for id := range owners {
		if _, ok := declared[id]; !ok {
			undeclared = append(undeclared, id)
		}
	}
	if len(undeclared) > 0 {
		sort.Strings(undeclared)
		return fmt.Errorf("chaos: servers hold licenses never declared: %v (units created from nothing)", undeclared)
	}
	return nil
}
