package chaos

import "math/rand"

// Swarm operation kinds, interpreted by the swarm runner (the
// TestChaosSwarm harness in internal/integration).
const (
	// OpToken has a client request an execution token, renewing its
	// sub-GCL over the wire when the local lease tree runs dry. A client
	// that previously crashed re-initializes first — exercising the
	// pessimistic forfeit of Section 5.7.
	OpToken = "token"
	// OpConsume reports spent units to the server (the conservation
	// ledger's consumed column).
	OpConsume = "consume"
	// OpProfile nudges a client's Algorithm 1 inputs (h_i, n_i, α_i).
	OpProfile = "profile"
	// OpClientRestart shuts a client down gracefully (escrowing its root
	// key) and re-initializes it, which must release the escrow exactly
	// once.
	OpClientRestart = "client-restart"
	// OpClientCrash destroys a client's enclave with nothing escrowed and
	// reports the crash; every unit it held must move to the license's
	// Lost column.
	OpClientCrash = "client-crash"
	// OpServerRestart kills the SL-Remote (no final snapshot) and
	// recovers it from the state directory — through the same chaos.FS
	// that may have just torn its WAL.
	OpServerRestart = "server-restart"
	// OpQuiesce runs the invariant checker: conservation, audit-chain
	// verification, and (when the incarnation is clean) recovery
	// round-trip equality.
	OpQuiesce = "quiesce"
)

// Step is one scheduled swarm action. Faults listed on a step are armed
// immediately before the action runs; they fire on whatever matching
// filesystem op or connection write comes next, which the fixed operation
// sequence makes deterministic.
type Step struct {
	Op     string
	Client int // target client index; -1 for server-wide steps

	Units                       int64   // OpConsume: units to report
	Health, Reliability, Weight float64 // OpProfile: Algorithm 1 inputs

	FSFaults  []FSFault   // armed on the server's store filesystem
	NetFaults []ConnFault // armed on the server's listener director
}

// Schedule is a fully pre-generated operation/fault interleaving: one seed
// maps to one schedule, and one schedule (run sequentially) maps to one
// fault trace. Regenerating with the seed a failing run printed replays
// the exact same chaos.
type Schedule struct {
	Seed    int64
	Clients int
	Steps   []Step
}

// Schedule shape parameters. quiesceEvery spaces invariant checks;
// the minimums keep the structural fault placements distinct.
const (
	quiesceEvery = 20
	minClients   = 2
	minSteps     = 40
)

// NewSchedule derives a schedule from the seed: steps operations across
// the given number of clients, an invariant check every quiesceEvery
// steps, a randomized mix of renewals, consume reports, profile changes,
// client crashes/restarts and server restarts, plus three structurally
// placed faults every seed is guaranteed to include — a torn WAL write
// (with the server restart that must recover from it), a mid-envelope
// connection cut, and a client crash. Inputs below the minimums are
// raised to them.
func NewSchedule(seed int64, clients, steps int) *Schedule {
	if clients < minClients {
		clients = minClients
	}
	if steps < minSteps {
		steps = minSteps
	}
	rng := rand.New(rand.NewSource(seed))
	sc := &Schedule{Seed: seed, Clients: clients}

	// Client 0 is the anchor: it is never crashed or restarted, so a
	// consume report on it always reaches the WAL — the guaranteed append
	// the torn-write fault needs in order to fire.
	tornAt := steps / 4
	cutAt := steps / 2
	crashAt := 3 * steps / 4

	for i := 0; i < steps; i++ {
		var st Step
		// Structural placements outrank the periodic quiesce so a
		// required fault can never be shadowed by a check landing on the
		// same index.
		switch {
		case i == tornAt:
			st = Step{Op: OpConsume, Client: 0, Units: 1 + rng.Int63n(3),
				FSFaults: []FSFault{{Kind: TornWrite}}}
		case i == tornAt+1:
			st = Step{Op: OpServerRestart, Client: -1}
		case i == cutAt:
			st = Step{Op: OpConsume, Client: 0, Units: 1 + rng.Int63n(3),
				NetFaults: []ConnFault{{Kind: Cut}}}
		case i == crashAt:
			st = Step{Op: OpClientCrash, Client: 1}
		case i > 0 && i%quiesceEvery == 0:
			st = Step{Op: OpQuiesce, Client: -1}
		default:
			st = sc.randomStep(rng)
		}
		sc.Steps = append(sc.Steps, st)
	}
	sc.Steps = append(sc.Steps, Step{Op: OpQuiesce, Client: -1})
	return sc
}

// randomStep draws one operation, occasionally decorated with a fault.
func (sc *Schedule) randomStep(rng *rand.Rand) Step {
	var st Step
	switch p := rng.Float64(); {
	case p < 0.55:
		st = Step{Op: OpToken, Client: rng.Intn(sc.Clients)}
	case p < 0.75:
		st = Step{Op: OpConsume, Client: rng.Intn(sc.Clients), Units: 1 + rng.Int63n(5)}
	case p < 0.85:
		st = Step{Op: OpProfile, Client: rng.Intn(sc.Clients),
			Health:      0.5 + rng.Float64()/2,
			Reliability: 0.7 + 0.3*rng.Float64(),
			Weight:      0.5 + 1.5*rng.Float64(),
		}
	case p < 0.92:
		// Crash/restart ops spare the anchor client 0.
		st = Step{Op: OpClientRestart, Client: 1 + rng.Intn(sc.Clients-1)}
	case p < 0.96:
		st = Step{Op: OpClientCrash, Client: 1 + rng.Intn(sc.Clients-1)}
	default:
		st = Step{Op: OpServerRestart, Client: -1}
	}
	if rng.Float64() < 0.08 {
		st.FSFaults = append(st.FSFaults, FSFault{
			Kind:  []string{ShortWrite, SyncFail}[rng.Intn(2)],
			After: rng.Intn(3),
		})
	}
	if rng.Float64() < 0.10 {
		st.NetFaults = append(st.NetFaults, ConnFault{
			Kind:  []string{Drop, Delay, Dup, Reset}[rng.Intn(4)],
			After: rng.Intn(4),
		})
	}
	return st
}
