// Package chaos is the repository's deterministic fault-injection
// toolkit. The paper's execution-control guarantees are claims about what
// survives failure — a crash forfeits every outstanding lease (§5.7), a
// graceful shutdown escrows the root key exactly once (§5.6), the WAL
// replays to the same server — and those claims are only testable under
// faults that arrive at inconvenient moments. This package makes the
// inconvenient moments reproducible:
//
//   - FS implements store.FS and can tear a write in half, short-write,
//     fail an fsync, or crash-stop the "process" at the Nth filesystem
//     operation;
//   - Conn/Listener wrap net.Conn so the wire protocol sees dropped,
//     delayed, duplicated, truncated-mid-envelope, or reset traffic,
//     optionally composed with an internal/netsim reliability model;
//   - Schedule turns one PRNG seed into a full operation/fault
//     interleaving for a swarm of SL-Local clients against one SL-Remote;
//   - CheckConservation asserts the global license-unit conservation law
//     after any quiesce point.
//
// Everything is keyed to operation counters, never wall-clock time, so a
// failing swarm run's seed replays the exact same fault trace.
package chaos

import "fmt"

// Event is one injected fault, recorded at fire time. Traces from two runs
// of the same seed must be identical — the swarm test asserts exactly
// that with reflect.DeepEqual.
type Event struct {
	// Domain is "fs" or "net".
	Domain string
	// Op is the injector's operation counter when the fault fired (the
	// Nth filesystem op or the Nth connection write).
	Op int64
	// Kind names the fault ("torn-write", "reset", ...).
	Kind string
	// Detail locates it: a file path or a connection's remote address.
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%s[%d] %s %s", e.Domain, e.Op, e.Kind, e.Detail)
}
