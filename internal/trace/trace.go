// Package trace captures dynamic execution profiles of workloads: which
// function called which (and how often) and how much dynamic work each
// function performed. Partition evaluation consumes traces to compute the
// paper's metrics: dynamic coverage (fraction of dynamic work inside SGX),
// ECALL/OCALL counts (calls crossing the enclave boundary), and EPC
// residency.
//
// Workload implementations are instrumented with a Recorder: they declare
// their functions once and call Enter/Work at function boundaries while
// executing real logic. The Recorder simultaneously builds the call graph
// (static structure) and the trace (dynamic profile), mirroring how the
// paper derives both from profiled executions.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/callgraph"
)

// Call is one aggregated dynamic call edge.
type Call struct {
	Caller, Callee string
	Count          int64
}

// Trace is a dynamic execution profile.
type Trace struct {
	// Calls is the aggregated dynamic call-edge multiset.
	Calls []Call
	// Work maps function name → dynamic work units executed inside it
	// (the analogue of dynamic instruction counts in the paper).
	Work map[string]int64
}

// TotalWork sums dynamic work over all functions.
func (t *Trace) TotalWork() int64 {
	var total int64
	for _, w := range t.Work {
		total += w
	}
	return total
}

// WorkIn sums dynamic work over a set of functions.
func (t *Trace) WorkIn(fns map[string]bool) int64 {
	var total int64
	for f, w := range t.Work {
		if fns[f] {
			total += w
		}
	}
	return total
}

// CrossingCalls returns (ecalls, ocalls): dynamic calls entering and
// leaving the migrated set.
func (t *Trace) CrossingCalls(migrated map[string]bool) (ecalls, ocalls int64) {
	for _, c := range t.Calls {
		fromIn, toIn := migrated[c.Caller], migrated[c.Callee]
		switch {
		case !fromIn && toIn:
			ecalls += c.Count
		case fromIn && !toIn:
			ocalls += c.Count
		}
	}
	return ecalls, ocalls
}

// DynamicCoverage returns the fraction of total dynamic work executed by
// the migrated functions — the paper's Table 5 "dynamic coverage" metric.
func (t *Trace) DynamicCoverage(migrated map[string]bool) float64 {
	total := t.TotalWork()
	if total == 0 {
		return 0
	}
	return float64(t.WorkIn(migrated)) / float64(total)
}

// Recorder instruments a workload run. It is safe for concurrent use so
// parallel workloads (MapReduce) can record from several goroutines.
type Recorder struct {
	mu    sync.Mutex
	graph *callgraph.Graph
	calls map[[2]string]int64
	work  map[string]int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		graph: callgraph.New(),
		calls: make(map[[2]string]int64),
		work:  make(map[string]int64),
	}
}

// Declare registers a function with its static attributes. Declare every
// function before recording calls through it.
func (r *Recorder) Declare(n callgraph.Node) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.graph.AddNode(n)
}

// Enter records one dynamic call from caller to callee.
func (r *Recorder) Enter(caller, callee string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls[[2]string{caller, callee}]++
}

// EnterN records n dynamic calls from caller to callee at once (cheaper
// for hot loops).
func (r *Recorder) EnterN(caller, callee string, n int64) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls[[2]string{caller, callee}] += n
}

// Work records units of dynamic work performed inside a function.
func (r *Recorder) Work(fn string, units int64) {
	if units <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.work[fn] += units
}

// Graph finalizes and returns the call graph: every recorded dynamic call
// becomes a weighted edge. Calls involving undeclared functions are an
// error — they indicate a broken instrumentation.
func (r *Recorder) Graph() (*callgraph.Graph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for pair := range r.calls {
		if r.graph.Node(pair[0]) == nil {
			return nil, fmt.Errorf("trace: call from undeclared function %q", pair[0])
		}
		if r.graph.Node(pair[1]) == nil {
			return nil, fmt.Errorf("trace: call to undeclared function %q", pair[1])
		}
	}
	// AddCall accumulates, so flush pending calls into the graph exactly
	// once and reset the pending map to keep Graph idempotent.
	for pair, count := range r.calls {
		if err := r.graph.AddCall(pair[0], pair[1], count); err != nil {
			return nil, err
		}
	}
	r.calls = make(map[[2]string]int64)
	return r.graph, nil
}

// Trace returns the dynamic profile recorded so far, with calls in
// deterministic order. Call after Graph (Graph folds pending calls into
// the graph; Trace reads edge weights back from it so both views agree).
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := &Trace{Work: make(map[string]int64, len(r.work))}
	for f, w := range r.work {
		tr.Work[f] = w
	}
	edges := r.graph.Edges()
	// Include any calls not yet flushed into the graph.
	pending := make(map[[2]string]int64, len(r.calls))
	for k, v := range r.calls {
		pending[k] = v
	}
	for _, e := range edges {
		pending[[2]string{e.From, e.To}] += e.Count
	}
	keys := make([][2]string, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	tr.Calls = make([]Call, 0, len(keys))
	for _, k := range keys {
		tr.Calls = append(tr.Calls, Call{Caller: k[0], Callee: k[1], Count: pending[k]})
	}
	return tr
}
