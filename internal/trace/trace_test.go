package trace

import (
	"sync"
	"testing"

	"repro/internal/callgraph"
)

func declare(t *testing.T, r *Recorder, names ...string) {
	t.Helper()
	for _, n := range names {
		if err := r.Declare(callgraph.Node{Name: n, CodeBytes: 100, MemoryBytes: 4096}); err != nil {
			t.Fatalf("Declare(%s): %v", n, err)
		}
	}
}

func TestRecorderBuildsGraphAndTrace(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "main", "auth", "work")
	r.Enter("main", "auth")
	r.EnterN("main", "work", 10)
	r.Work("work", 500)
	r.Work("main", 50)

	g, err := r.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	if got := g.CallWeight("main", "work"); got != 10 {
		t.Fatalf("edge weight = %d", got)
	}
	tr := r.Trace()
	if len(tr.Calls) != 2 {
		t.Fatalf("calls = %+v", tr.Calls)
	}
	if tr.TotalWork() != 550 {
		t.Fatalf("total work = %d", tr.TotalWork())
	}
}

func TestRecorderGraphIdempotent(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "a", "b")
	r.EnterN("a", "b", 5)
	g1, err := r.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	g2, err := r.Graph()
	if err != nil {
		t.Fatalf("second Graph: %v", err)
	}
	if g1 != g2 {
		t.Fatal("Graph returned different instances")
	}
	if got := g2.CallWeight("a", "b"); got != 5 {
		t.Fatalf("double-counted edge: %d", got)
	}
}

func TestRecorderUndeclaredCall(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "a")
	r.Enter("a", "ghost")
	if _, err := r.Graph(); err == nil {
		t.Fatal("undeclared callee accepted")
	}
	r2 := NewRecorder()
	declare(t, r2, "a")
	r2.Enter("ghost", "a")
	if _, err := r2.Graph(); err == nil {
		t.Fatal("undeclared caller accepted")
	}
}

func TestRecorderIgnoresNonPositive(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "a", "b")
	r.EnterN("a", "b", 0)
	r.EnterN("a", "b", -5)
	r.Work("a", 0)
	r.Work("a", -10)
	if _, err := r.Graph(); err != nil {
		t.Fatalf("Graph: %v", err)
	}
	tr := r.Trace()
	if len(tr.Calls) != 0 || tr.TotalWork() != 0 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestTraceBeforeGraphIncludesPending(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "a", "b")
	r.EnterN("a", "b", 7)
	tr := r.Trace() // before Graph flushes
	if len(tr.Calls) != 1 || tr.Calls[0].Count != 7 {
		t.Fatalf("pending calls missing: %+v", tr.Calls)
	}
}

func TestCrossingCalls(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "u1", "u2", "t1", "t2")
	r.EnterN("u1", "t1", 10)  // ecall
	r.EnterN("t1", "t2", 100) // internal
	r.EnterN("t2", "u2", 5)   // ocall
	r.EnterN("u1", "u2", 50)  // untrusted internal
	tr := r.Trace()
	migrated := map[string]bool{"t1": true, "t2": true}
	e, o := tr.CrossingCalls(migrated)
	if e != 10 || o != 5 {
		t.Fatalf("ecalls=%d ocalls=%d, want 10/5", e, o)
	}
}

func TestDynamicCoverage(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "u", "t")
	r.Work("u", 100)
	r.Work("t", 900)
	tr := r.Trace()
	if got := tr.DynamicCoverage(map[string]bool{"t": true}); got != 0.9 {
		t.Fatalf("coverage = %v, want 0.9", got)
	}
	empty := &Trace{Work: map[string]int64{}}
	if got := empty.DynamicCoverage(nil); got != 0 {
		t.Fatalf("empty coverage = %v", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "a", "b")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Enter("a", "b")
				r.Work("b", 2)
			}
		}()
	}
	wg.Wait()
	tr := r.Trace()
	if tr.Calls[0].Count != 8000 {
		t.Fatalf("concurrent count = %d", tr.Calls[0].Count)
	}
	if tr.Work["b"] != 16000 {
		t.Fatalf("concurrent work = %d", tr.Work["b"])
	}
}

func TestTraceDeterministicOrder(t *testing.T) {
	r := NewRecorder()
	declare(t, r, "z", "a", "m")
	r.Enter("z", "a")
	r.Enter("a", "m")
	r.Enter("m", "z")
	tr := r.Trace()
	if tr.Calls[0].Caller != "a" || tr.Calls[1].Caller != "m" || tr.Calls[2].Caller != "z" {
		t.Fatalf("order = %+v", tr.Calls)
	}
}
