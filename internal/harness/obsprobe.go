package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// MetricsProbe measures metric deltas over an experiment interval: snap a
// registry before driving traffic, then read per-metric differences
// afterwards. Drivers assert on the deltas instead of reaching into
// package internals, which keeps experiments honest against the exact
// counters the live daemons export.
type MetricsProbe struct {
	reg  *obs.Registry
	base obs.Snapshot
}

// NewMetricsProbe snapshots the registry as the interval's baseline.
func NewMetricsProbe(reg *obs.Registry) *MetricsProbe {
	return &MetricsProbe{reg: reg, base: reg.Snapshot()}
}

// Delta returns every metric's change since the baseline (zero deltas are
// dropped). Histograms surface as <name>_count / <name>_sum.
func (p *MetricsProbe) Delta() obs.Snapshot {
	return p.reg.Snapshot().Delta(p.base)
}

// Get returns one metric's change since the baseline; labels may be nil
// for unlabeled metrics.
func (p *MetricsProbe) Get(name string, labels map[string]string) float64 {
	return p.Delta().Get(name, labels)
}

// Reset moves the baseline to now.
func (p *MetricsProbe) Reset() {
	p.base = p.reg.Snapshot()
}

// Render formats a delta as sorted "name delta" lines for experiment
// reports.
func (p *MetricsProbe) Render() string {
	delta := p.Delta()
	keys := make([]string, 0, len(delta))
	for k := range delta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %+g\n", k, delta[k])
	}
	return b.String()
}
